//! The experiment harness end to end at Tiny scale: the suites behind
//! Figures 4/5 and 10–13 run, produce self-consistent data for every
//! app × configuration cell, and the RDD profiling behind Figures 3
//! and 7 yields normalized distributions.

use dlp_bench::harness::{
    run_app, run_policy_suite, run_size_suite, ExperimentConfig, LABEL_32K, SIZE_LABELS,
};
use dlp_bench::report::geomean;
use gpu_workloads::{registry, Scale};

#[test]
fn policy_suite_covers_every_cell() {
    let suite = run_policy_suite(Scale::Tiny);
    assert_eq!(suite.apps.len(), 18);
    assert!(suite.failures.is_empty(), "{}", suite.failure_digest());
    for spec in &suite.apps {
        let row = &suite.runs[spec.abbr];
        for label in ["16KB(Baseline)", "Stall-Bypass", "Global-Protection", "DLP", LABEL_32K] {
            let run = &row[label];
            assert!(run.stats.completed, "{} {label}", spec.abbr);
            assert!(run.stats.ipc() > 0.0, "{} {label}", spec.abbr);
        }
        // The four schemes execute the same trace.
        let base = row["16KB(Baseline)"].stats.thread_insns;
        for label in ["Stall-Bypass", "Global-Protection", "DLP", LABEL_32K] {
            assert_eq!(row[label].stats.thread_insns, base, "{} {label}", spec.abbr);
        }
    }
}

#[test]
fn size_suite_covers_every_cell() {
    let suite = run_size_suite(Scale::Tiny);
    assert!(suite.failures.is_empty(), "{}", suite.failure_digest());
    for spec in &suite.apps {
        let row = &suite.runs[spec.abbr];
        for label in SIZE_LABELS {
            assert!(row[label].stats.completed, "{} {label}", spec.abbr);
            let mr = row[label].stats.l1d.reuse_miss_rate();
            assert!((0.0..=1.0).contains(&mr), "{} {label}: miss rate {mr}", spec.abbr);
        }
    }
}

#[test]
fn rdd_profiles_are_normalized() {
    for spec in registry().into_iter().take(6) {
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            profile_rd: true,
            ..ExperimentConfig::baseline()
        };
        let run = run_app(spec.abbr, cfg).unwrap();
        let sink = run.rdd.unwrap();
        let prof = sink.lock();
        if prof.overall.total() > 0 {
            let sum: f64 = prof.overall.shares().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: shares sum {sum}", spec.abbr);
        }
        for (pc, h) in &prof.per_pc {
            if h.total() > 0 {
                let sum: f64 = h.shares().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{} pc {pc}", spec.abbr);
            }
        }
    }
}

#[test]
fn geomean_matches_manual_computation() {
    let suite = run_policy_suite(Scale::Tiny);
    let mut normalized = Vec::new();
    for spec in &suite.apps {
        let row = &suite.runs[spec.abbr];
        let b = row["16KB(Baseline)"].stats.ipc();
        normalized.push(row["DLP"].stats.ipc() / b);
    }
    let g = geomean(&normalized).expect("a full policy suite has a non-empty geomean");
    let manual =
        (normalized.iter().map(|v| v.ln()).sum::<f64>() / normalized.len() as f64).exp();
    assert!((g - manual).abs() < 1e-9);
    assert!(g > 0.5 && g < 3.0, "tiny-scale DLP geomean {g} out of sanity range");
}
