//! Whole-stack runs: every Table 2 benchmark under every scheme must
//! complete, retire exactly its trace, and keep the memory system's
//! global invariants.

use dlp_core::PolicyKind;
use gpu_sim::isa::OpKind;
use gpu_sim::{Gpu, Kernel, SimConfig};
use gpu_workloads::{build, registry, Scale};

/// Expected instruction/transaction totals derived from the static
/// trace, independent of the timing model.
fn static_totals(k: &dyn Kernel) -> (u64, u64) {
    let grid = k.grid();
    let mut warp_insns = 0u64;
    let mut txns = 0u64;
    for cta in 0..grid.num_ctas {
        for w in 0..grid.warps_per_cta {
            for op in k.warp_ops(cta, w) {
                warp_insns += 1;
                if let OpKind::Mem { addrs, .. } = &op.kind {
                    txns += gpu_sim::coalescer::coalesce(addrs, 128).len() as u64;
                }
            }
        }
    }
    (warp_insns, txns)
}

#[test]
fn every_app_completes_under_every_policy() {
    for spec in registry() {
        let expected = static_totals(build(spec.abbr, Scale::Tiny).as_ref());
        for kind in PolicyKind::ALL {
            let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
            let mut gpu = Gpu::new(cfg, build(spec.abbr, Scale::Tiny));
            let stats = gpu.run().unwrap();
            assert!(stats.completed, "{} under {kind:?} hit the cycle cap", spec.abbr);
            assert_eq!(
                stats.warp_insns, expected.0,
                "{} under {kind:?}: issued instruction count drifted",
                spec.abbr
            );
            assert_eq!(
                stats.mem_transactions, expected.1,
                "{} under {kind:?}: coalesced transaction count drifted",
                spec.abbr
            );
            // Every transaction reaches the L1D exactly once.
            assert_eq!(stats.l1d.accesses, stats.mem_transactions, "{}", spec.abbr);
        }
    }
}

#[test]
fn access_accounting_is_exhaustive() {
    // hits + allocated misses + merges + bypasses = accesses, for every
    // app and scheme: no transaction may vanish or double-count.
    for spec in registry() {
        for kind in PolicyKind::ALL {
            let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
            let mut gpu = Gpu::new(cfg, build(spec.abbr, Scale::Tiny));
            let s = gpu.run().unwrap();
            let accounted = s.l1d.hits
                + s.l1d.misses_allocated
                + s.l1d.mshr_merges
                + s.l1d.bypassed_loads
                + s.l1d.bypassed_stores;
            assert_eq!(
                accounted, s.l1d.accesses,
                "{} under {kind:?}: {} accounted vs {} accesses",
                spec.abbr, accounted, s.l1d.accesses
            );
        }
    }
}

#[test]
fn baseline_never_bypasses_and_protection_never_over_evicts() {
    for spec in registry() {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2);
        let mut gpu = Gpu::new(cfg, build(spec.abbr, Scale::Tiny));
        let s = gpu.run().unwrap();
        assert_eq!(s.l1d.bypassed_loads, 0, "{}: baseline bypassed loads", spec.abbr);
        assert_eq!(s.l1d.bypassed_stores, 0, "{}: baseline bypassed stores", spec.abbr);

        let cfg = SimConfig::tesla_m2090(PolicyKind::Dlp).scaled_down(2);
        let mut gpu = Gpu::new(cfg, build(spec.abbr, Scale::Tiny));
        let d = gpu.run().unwrap();
        assert!(
            d.l1d.evictions <= s.l1d.evictions,
            "{}: DLP must not evict more than baseline ({} vs {})",
            spec.abbr,
            d.l1d.evictions,
            s.l1d.evictions
        );
    }
}

#[test]
fn dram_only_sees_l2_misses() {
    // DRAM reads can never exceed L2 accesses; L2 hits + misses add up.
    for kind in PolicyKind::ALL {
        let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
        let mut gpu = Gpu::new(cfg, build("CFD", Scale::Tiny));
        let s = gpu.run().unwrap();
        assert!(s.dram.reads <= s.l2.accesses, "{kind:?}");
        assert!(s.l2.hits <= s.l2.accesses, "{kind:?}");
    }
}

#[test]
fn geometry_sweep_runs_the_same_trace() {
    use dlp_core::CacheGeometry;
    let mut insns = Vec::new();
    for geom in [
        CacheGeometry::fermi_l1d_16k(),
        CacheGeometry::fermi_l1d_32k(),
        CacheGeometry::fermi_l1d_64k(),
    ] {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline)
            .with_l1_geometry(geom)
            .scaled_down(4);
        let mut gpu = Gpu::new(cfg, build("MM", Scale::Tiny));
        let s = gpu.run().unwrap();
        assert!(s.completed);
        insns.push((s.thread_insns, s.mem_transactions));
    }
    assert_eq!(insns[0], insns[1], "cache size must not change the executed trace");
    assert_eq!(insns[1], insns[2]);
}
