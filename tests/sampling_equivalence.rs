//! Sampled ⇄ exact equivalence for SMARTS-style interval sampling.
//!
//! The sampling controller (see DESIGN.md §14) claims three things:
//! leaving `SimConfig::sampling` unset changes nothing, turning it on
//! is deterministic, and the per-window ratio estimators it feeds
//! produce 95% confidence intervals that actually cover the exact-run
//! metric. These tests pin all three across the same app × policy
//! matrix the leap- and shard-equivalence suites use.
//!
//! Everything here is deterministic: the windows are placed by a fixed
//! `seed`, so a cell either passes forever or fails forever — there is
//! no flake budget to spend. Coverage, however, is pinned as a *rate*
//! with a hard relative-error backstop rather than cell-by-cell: at
//! `Scale::Tiny` a run only fits a handful of windows, so the t-interval
//! runs on 3–8 samples and the SMARTS asymptotics (thousands of
//! windows) do not apply. Demanding 100% coverage at this scale would
//! force magic sampling parameters tuned to the current phase
//! alignment — the opposite of a regression pin.

use dlp_bench::{summarize, Estimate, SamplingSummary};
use dlp_core::PolicyKind;
use gpu_sim::{Gpu, RunStats, SamplingConfig, SamplingReport, SimConfig};
use gpu_workloads::{build, Scale};

/// Small windows so even `Scale::Tiny` runs collect several samples:
/// 512-cycle warm-up, 512-cycle measurement, 768-cycle fast-forward.
const SAMPLING: SamplingConfig = SamplingConfig { detail: 512, skip: 768, warmup: 512, seed: 1 };

fn run_exact(app: &str, kind: PolicyKind) -> RunStats {
    let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
    let mut gpu = Gpu::new(cfg, build(app, Scale::Tiny));
    let stats = gpu.run().unwrap();
    assert!(gpu.sampling_report().is_none(), "exact run must not attach a sampling report");
    stats
}

fn run_sampled(app: &str, kind: PolicyKind) -> (RunStats, SamplingReport) {
    let cfg = SimConfig::tesla_m2090(kind).scaled_down(4).with_sampling(SAMPLING);
    let mut gpu = Gpu::new(cfg, build(app, Scale::Tiny));
    let stats = gpu.run().unwrap();
    let report =
        gpu.sampling_report().expect("sampled run must attach a sampling report").clone();
    (stats, report)
}

/// The exact-run counterparts of the four estimated metrics, computed
/// with the same definitions `dlp_bench::estimate::summarize` uses.
fn exact_metrics(s: &RunStats) -> [(&'static str, f64); 4] {
    let insns = s.warp_insns as f64;
    [
        ("ipc", insns / s.cycles as f64),
        ("mpki", 1000.0 * (s.l1d.accesses - s.l1d.hits) as f64 / insns),
        ("hit_rate", s.l1d.hits as f64 / s.l1d.accesses as f64),
        ("flits_per_kinsn", 1000.0 * s.icnt.total_flits() as f64 / insns),
    ]
}

fn estimates(sum: &SamplingSummary) -> [(&'static str, Option<Estimate>); 4] {
    [
        ("ipc", sum.ipc),
        ("mpki", sum.mpki),
        ("hit_rate", sum.hit_rate),
        ("flits_per_kinsn", sum.flits_per_kinsn),
    ]
}

#[test]
fn sampled_runs_are_deterministic() {
    // Two identically configured sampled runs must agree byte-for-byte
    // on both the final statistics and every window sample — the same
    // determinism contract every other execution mode honours.
    for (app, kind) in [("STR", PolicyKind::Dlp), ("KM", PolicyKind::Baseline)] {
        let (s1, r1) = run_sampled(app, kind);
        let (s2, r2) = run_sampled(app, kind);
        assert_eq!(s1, s2, "{app}/{kind:?}: sampled stats drifted between identical runs");
        assert_eq!(r1, r2, "{app}/{kind:?}: sampling report drifted between identical runs");
    }
}

#[test]
fn sampling_actually_fast_forwards() {
    // STR stalls on memory for most of its run; if the controller never
    // fast-forwarded, the mode would be exact simulation with extra
    // bookkeeping and the speedup claim would be vacuous.
    let (_, report) = run_sampled("STR", PolicyKind::Baseline);
    let sum = summarize(&report);
    assert!(sum.windows > 0, "no measurement window ever completed");
    assert!(report.ff_cycles > 0, "no cycle was ever fast-forwarded");
    assert!(
        sum.sampled_fraction() < 1.0,
        "sampled fraction is {} — the run never left detailed mode",
        sum.sampled_fraction()
    );
    assert!(report.ff_insns > 0, "fast-forward advanced no instructions");
}

#[test]
fn sampled_estimates_track_the_exact_metrics() {
    // The SMARTS contract, scaled honestly to Tiny runs. Three pins:
    //
    //  1. Every committed estimate lands within 50% relative error of
    //     the exact value — a hard backstop that catches a broken
    //     estimator or a fast-forward that corrupts state, while
    //     tolerating the cold-congestion bias a 512-cycle warm-up
    //     cannot erase on bursty apps (BFS rebuilds its queue depth
    //     over thousands of cycles; each window-edge drain resets it).
    //  2. At least 75% of committed estimates cover the exact value
    //     within their 95% interval. With 3–8 windows per run the
    //     t-interval under-covers, but a real regression (say, the
    //     functional path diverging from detailed semantics) pushes the
    //     rate far below this.
    //  3. KM — cache-friendly, phase-stable, the cell where small-sample
    //     effects are negligible — must cover strictly on every policy
    //     and metric.
    let mut misses = String::new();
    let mut errors = String::new();
    let mut km_misses = String::new();
    let mut committed = 0usize;
    let mut covered = 0usize;
    for app in ["KM", "BFS", "STR", "CFD"] {
        for kind in PolicyKind::ALL {
            let exact = run_exact(app, kind);
            let (_, report) = run_sampled(app, kind);
            let sum = summarize(&report);
            assert!(sum.windows > 0, "{app}/{kind:?}: sampled run collected no windows");
            for ((name, truth), (_, est)) in exact_metrics(&exact).iter().zip(estimates(&sum)) {
                let Some(est) = est else { continue };
                committed += 1;
                let cell = format!(
                    "  {app}/{kind:?} {name}: exact {truth:.4} vs {:.4} ± {:.4}\n",
                    est.mean, est.half
                );
                if est.contains(*truth) {
                    covered += 1;
                } else {
                    misses.push_str(&cell);
                    if app == "KM" {
                        km_misses.push_str(&cell);
                    }
                }
                if (est.mean - truth).abs() > 0.5 * truth.abs() {
                    errors.push_str(&cell);
                }
            }
        }
    }
    assert!(
        committed >= 32,
        "only {committed} estimates were committed across the whole matrix"
    );
    assert!(errors.is_empty(), "estimates strayed beyond 50% of the exact run:\n{errors}");
    assert!(km_misses.is_empty(), "intervals failed to cover on phase-stable KM:\n{km_misses}");
    assert!(
        covered * 4 >= committed * 3,
        "only {covered}/{committed} estimates covered the exact value (need 75%):\n{misses}"
    );
}

#[test]
fn disabling_sampling_is_byte_identical_to_the_seed_path() {
    // `sampling: None` must leave the simulator on the pre-sampling
    // code path exactly: same stats as an independently built exact
    // run, no report, and `SimConfig::default`-style configs unchanged.
    for kind in [PolicyKind::Baseline, PolicyKind::Dlp] {
        let a = run_exact("KM", kind);
        let b = run_exact("KM", kind);
        assert_eq!(a, b, "{kind:?}: exact mode is not deterministic");
    }
    let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline);
    assert!(cfg.sampling.is_none(), "sampling must be off by default");
}
