//! The harness failure path, driven by the `DLP_FORCE_FAIL` hook: one
//! app is forced to panic, and a sweep must still complete every other
//! job and name the casualty in its failure digest.
//!
//! Kept in its own test binary because it mutates process environment;
//! the other suites must never observe the variable.

use dlp_bench::harness::{run_many, run_policy_suite, ExperimentConfig, FORCE_FAIL_ENV};
use gpu_workloads::Scale;

#[test]
fn forced_failure_yields_partial_results_and_a_digest() {
    std::env::set_var(FORCE_FAIL_ENV, "KM");

    // run_many: the poisoned job fails (after its one retry), the
    // others succeed, order is preserved.
    let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
    let jobs =
        vec![("MM".to_string(), cfg), ("KM".to_string(), cfg), ("SS".to_string(), cfg)];
    let out = run_many(&jobs);
    assert!(out[0].is_ok() && out[2].is_ok());
    let failure = match &out[1] {
        Err(f) => f,
        Ok(_) => panic!("KM was forced to fail"),
    };
    assert_eq!(failure.app, "KM");
    assert!(failure.retried, "the job gets one retry before being reported");
    assert!(failure.error.contains("panic"), "{}", failure.error);

    // The fig10 input sweep: every non-poisoned cell present, the
    // digest names app, policy and geometry for each failed job.
    let suite = run_policy_suite(Scale::Tiny);
    assert_eq!(suite.failures.len(), 5, "KM fails under all 4 schemes + 32KB");
    assert!(suite.failures.iter().all(|f| f.app == "KM"));
    let digest = suite.failure_digest();
    assert!(digest.contains("KM") && digest.contains("16KB"), "{digest}");
    for spec in &suite.apps {
        let row = &suite.runs[spec.abbr];
        let expected = if spec.abbr == "KM" { 0 } else { 5 };
        assert_eq!(row.len(), expected, "{}", spec.abbr);
    }

    std::env::remove_var(FORCE_FAIL_ENV);
}
