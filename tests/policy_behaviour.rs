//! Directional properties of the schemes — the qualitative claims of
//! the paper's evaluation, asserted at test scale:
//!
//! * protection raises the L1D hit rate on thrashing (CI) workloads;
//! * every bypassing scheme reduces L1D traffic and evictions;
//! * DLP engages its PDPT (nonzero PDs, samples, VTA activity) on CI
//!   apps and stays quiet where there is nothing to protect;
//! * cache-sufficient apps are performance-insensitive to the scheme.

use dlp_core::PolicyKind;
use gpu_sim::{Gpu, RunStats, SimConfig};
use gpu_workloads::{build, registry, AppClass, Scale};

fn run(app: &str, kind: PolicyKind) -> RunStats {
    let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
    let mut gpu = Gpu::new(cfg, build(app, Scale::Tiny));
    gpu.run().unwrap()
}

#[test]
fn protection_raises_hit_rate_on_thrashing_apps() {
    // Apps whose Tiny-scale working sets overwhelm 4-way LRU but carry
    // protectable reuse.
    for app in ["SR2K", "SRK", "STR"] {
        let base = run(app, PolicyKind::Baseline);
        let dlp = run(app, PolicyKind::Dlp);
        assert!(
            dlp.l1d.hit_rate() > base.l1d.hit_rate(),
            "{app}: DLP hit rate {:.3} must exceed baseline {:.3}",
            dlp.l1d.hit_rate(),
            base.l1d.hit_rate()
        );
    }
}

#[test]
fn bypassing_schemes_reduce_cache_traffic_and_evictions() {
    for app in ["MM", "STR", "BFS", "PVR"] {
        let base = run(app, PolicyKind::Baseline);
        for kind in [PolicyKind::GlobalProtection, PolicyKind::Dlp] {
            let s = run(app, kind);
            assert!(
                s.l1d.cache_traffic() <= base.l1d.cache_traffic(),
                "{app}/{kind:?}: traffic {} vs baseline {}",
                s.l1d.cache_traffic(),
                base.l1d.cache_traffic()
            );
            assert!(
                s.l1d.evictions <= base.l1d.evictions,
                "{app}/{kind:?}: evictions {} vs baseline {}",
                s.l1d.evictions,
                base.l1d.evictions
            );
        }
    }
}

#[test]
fn dlp_engages_its_machinery_on_ci_apps() {
    for spec in registry().into_iter().filter(|s| s.class == AppClass::CI) {
        let s = run(spec.abbr, PolicyKind::Dlp);
        assert!(s.policy.samples > 0, "{}: sampling never closed", spec.abbr);
        assert!(s.policy.vta_insertions > 0, "{}: VTA never fed", spec.abbr);
    }
}

#[test]
fn stall_bypass_never_stalls_on_set_reservation() {
    for spec in registry() {
        let s = run(spec.abbr, PolicyKind::StallBypass);
        assert_eq!(
            s.l1d.stall_all_reserved, 0,
            "{}: Stall-Bypass must convert set-reservation stalls into bypasses",
            spec.abbr
        );
    }
}

#[test]
fn protection_schemes_track_pd_within_hardware_width() {
    for app in ["KM", "MM", "BFS"] {
        for kind in [PolicyKind::GlobalProtection, PolicyKind::Dlp] {
            let s = run(app, kind);
            assert!(
                s.policy.avg_pd() <= 15.0,
                "{app}/{kind:?}: mean PD {} exceeds the 4-bit field",
                s.policy.avg_pd()
            );
        }
    }
}

#[test]
fn both_protection_schemes_expose_pd_snapshots() {
    // The figures binary renders learned PDs from `pd_snapshot()`; both
    // protecting schemes must produce one. DLP reports one row per
    // active instruction; GlobalProtection reports its single global PD
    // as a synthetic row so the table machinery is shared.
    for (kind, per_insn) in [(PolicyKind::GlobalProtection, false), (PolicyKind::Dlp, true)] {
        let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
        let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
        gpu.run().unwrap();
        let snap = gpu
            .l1d(0)
            .policy()
            .pd_snapshot()
            .unwrap_or_else(|| panic!("{kind:?} must expose a PD snapshot"));
        if per_insn {
            assert!(!snap.is_empty(), "DLP's PDPT saw activity on a CI app");
        } else {
            assert_eq!(snap.len(), 1, "GlobalProtection reports one global PD row");
            assert_eq!(snap[0].0, 0, "synthetic instruction id for the global PD");
        }
        for &(insn, pd) in &snap {
            assert!(pd <= 15, "{kind:?}: PD {pd} for insn {insn} exceeds the 4-bit field");
        }
    }
    // Non-protecting schemes keep no PDs at all.
    for kind in [PolicyKind::Baseline, PolicyKind::StallBypass] {
        let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
        let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
        gpu.run().unwrap();
        assert!(gpu.l1d(0).policy().pd_snapshot().is_none(), "{kind:?} keeps no PDs");
    }
}

#[test]
fn bigger_cache_never_reduces_hits_on_reuse_apps() {
    use dlp_core::CacheGeometry;
    for app in ["MM", "KM", "SS", "STR"] {
        let small = {
            let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(4);
            Gpu::new(cfg, build(app, Scale::Tiny)).run().unwrap()
        };
        let big = {
            let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline)
                .with_l1_geometry(CacheGeometry::fermi_l1d_64k())
                .scaled_down(4);
            Gpu::new(cfg, build(app, Scale::Tiny)).run().unwrap()
        };
        assert!(
            big.l1d.hits >= small.l1d.hits,
            "{app}: 64KB hits {} < 16KB hits {}",
            big.l1d.hits,
            small.l1d.hits
        );
    }
}

#[test]
fn compulsory_misses_are_size_invariant() {
    use dlp_core::CacheGeometry;
    for app in ["HG", "KM", "BFS"] {
        let mut per_size = Vec::new();
        for geom in [CacheGeometry::fermi_l1d_16k(), CacheGeometry::fermi_l1d_64k()] {
            let cfg =
                SimConfig::tesla_m2090(PolicyKind::Baseline).with_l1_geometry(geom).scaled_down(4);
            per_size.push(Gpu::new(cfg, build(app, Scale::Tiny)).run().unwrap().l1d.compulsory_misses);
        }
        assert_eq!(per_size[0], per_size[1], "{app}: compulsory misses depend only on the trace");
    }
}
