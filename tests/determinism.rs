//! The whole simulator must be bit-deterministic: two constructions of
//! the same experiment produce identical statistics, regardless of
//! scheme, geometry or workload randomness (all RNGs are seeded).

use dlp_core::{CacheGeometry, PolicyKind};
use gpu_sim::{Gpu, RunStats, SimConfig};
use gpu_workloads::{build, Scale};

fn run_once(app: &str, kind: PolicyKind) -> RunStats {
    let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
    let mut gpu = Gpu::new(cfg, build(app, Scale::Tiny));
    gpu.run().unwrap()
}

fn assert_identical(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.thread_insns, b.thread_insns, "{what}: thread insns");
    assert_eq!(a.l1d, b.l1d, "{what}: L1D stats");
    assert_eq!(a.l2, b.l2, "{what}: L2 stats");
    assert_eq!(a.icnt, b.icnt, "{what}: icnt stats");
    assert_eq!(a.dram, b.dram, "{what}: DRAM stats");
    assert_eq!(a.policy, b.policy, "{what}: policy stats");
}

#[test]
fn repeated_runs_are_bit_identical() {
    // The randomized-address apps are the interesting cases.
    for app in ["BFS", "STR", "BT", "PVR", "CFD"] {
        for kind in PolicyKind::ALL {
            let a = run_once(app, kind);
            let b = run_once(app, kind);
            assert_identical(&a, &b, &format!("{app}/{kind:?}"));
        }
    }
}

#[test]
fn incremental_driving_matches_one_shot() {
    // run_for() in small steps must land on the same final state as a
    // single run() — the clock loop has no hidden per-call state.
    let mk = || {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Dlp).scaled_down(2);
        Gpu::new(cfg, build("KM", Scale::Tiny))
    };
    let one_shot = mk().run().unwrap();
    let mut gpu = mk();
    let mut last = gpu.run_for(137).unwrap();
    while !last.completed {
        last = gpu.run_for(137).unwrap();
    }
    assert_identical(&one_shot, &last, "incremental vs one-shot");
}

#[test]
fn rd_profiles_are_deterministic() {
    use rd_tools::RdProfiler;
    let run = |app: &str| {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2);
        let mut gpu = Gpu::new(cfg, build(app, Scale::Tiny));
        let sink = RdProfiler::new_sink();
        for sm in 0..cfg.num_sms {
            gpu.set_l1d_observer(sm, Box::new(RdProfiler::new(cfg.l1d.geom.num_sets, sink.clone())));
        }
        gpu.run().unwrap();
        let prof = sink.lock();
        (prof.overall, prof.per_pc.len())
    };
    assert_eq!(run("BFS"), run("BFS"));
    assert_eq!(run("STR"), run("STR"));
}

#[test]
fn run_many_is_independent_of_worker_count() {
    // The harness farms jobs out to worker threads; scheduling must not
    // leak into results. A serial sweep and a parallel sweep of the
    // same jobs produce byte-identical statistics, job for job.
    use dlp_bench::harness::{run_many_with_workers, ExperimentConfig};
    let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
    let jobs: Vec<_> =
        ["KM", "MM", "BFS", "STR", "SS"].iter().map(|a| (a.to_string(), cfg)).collect();
    let serial = run_many_with_workers(&jobs, 1);
    // More workers than jobs (8 > 5) exercises the steal path: some
    // workers start with an empty queue and must steal their first job.
    for workers in [4, 8] {
        let parallel = run_many_with_workers(&jobs, workers);
        assert_eq!(serial.len(), parallel.len());
        for ((s, p), (app, _)) in serial.iter().zip(&parallel).zip(&jobs) {
            let s = s.as_ref().unwrap_or_else(|f| panic!("{f}"));
            let p = p.as_ref().unwrap_or_else(|f| panic!("{f}"));
            assert_eq!(
                s.stats, p.stats,
                "{app}: worker count {workers} changed the statistics"
            );
        }
    }
}

/// FNV-1a, enough to fingerprint a canonical stats rendering without
/// pulling a hash crate into the workspace.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn fig10_policy_suite_digest_is_golden() {
    // End-to-end lock on the figure-10 sweep: every statistic of every
    // (app, scheme) cell, fingerprinted. Any change to the simulation
    // engine that alters behaviour — idle-skip ticking, the run cache,
    // replacement-policy scratch buffers — must NOT move this digest;
    // a deliberate fidelity change must update it alongside an entry in
    // CHANGES.md explaining the delta.
    use dlp_bench::harness::{run_policy_suite, LABEL_32K};
    const GOLDEN: u64 = 0x4e25_bd31_86d4_d866;
    let suite = run_policy_suite(Scale::Tiny);
    assert!(suite.failures.is_empty(), "{}", suite.failure_digest());
    let mut canon = String::new();
    let mut cells = String::new();
    for spec in &suite.apps {
        let row = &suite.runs[spec.abbr];
        for label in PolicyKind::ALL.map(|k| k.label()).iter().chain([&LABEL_32K]) {
            let cell = format!("{}/{}: {:?}\n", spec.abbr, label, row[label].stats);
            cells.push_str(&format!(
                "  {:>4}/{:<9} {:#018x}\n",
                spec.abbr,
                label,
                fnv1a(cell.as_bytes())
            ));
            canon.push_str(&cell);
        }
    }
    let digest = fnv1a(canon.as_bytes());
    // On mismatch, print the digest of every (app, scheme) cell so the
    // change is localizable by diffing against a known-good run's table
    // instead of bisecting 100+ jobs by hand.
    assert_eq!(
        digest, GOLDEN,
        "fig10 sweep statistics changed (digest {digest:#018x}, golden {GOLDEN:#018x}).\n\
         Per-cell digests — diff against a pre-change run of this test to find the moved cells:\n\
         {cells}"
    );
}

#[test]
fn deadline_chunked_driving_is_byte_identical_to_unlimited() {
    // With `DLP_JOB_DEADLINE_MS` set, the harness drives a job with
    // chunked `run_for` calls instead of one `run()`; nothing about the
    // statistics may depend on which path ran. Compared at the byte
    // level through the persist codec (the daemon's wire form), via the
    // uncached test hook — through `run_app` the second arm would be a
    // cache hit and the comparison vacuous.
    use dlp_bench::harness::{run_app_uncached_for_tests, ExperimentConfig};
    use std::time::Duration;
    let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
    for app in ["KM", "CFD", "STR"] {
        let unlimited = run_app_uncached_for_tests(app, cfg, None, None).unwrap();
        // Generous budget, default chunk: the deadline arm, never firing.
        let chunked =
            run_app_uncached_for_tests(app, cfg, Some(Duration::from_secs(3600)), None).unwrap();
        assert_eq!(
            dlp_bench::persist::encode_run(app, &unlimited),
            dlp_bench::persist::encode_run(app, &chunked),
            "{app}: deadline-chunked run diverged from the unlimited path"
        );
        // A forced 137-cycle chunk makes the job cross dozens of
        // run_for boundaries — still byte-identical.
        let fine =
            run_app_uncached_for_tests(app, cfg, Some(Duration::from_secs(3600)), Some(137))
                .unwrap();
        assert_eq!(
            dlp_bench::persist::encode_run(app, &unlimited),
            dlp_bench::persist::encode_run(app, &fine),
            "{app}: fine-chunked run diverged from the unlimited path"
        );
    }
}

#[test]
fn different_geometries_differ_but_reproducibly() {
    // STR's tables overflow a 16 KB L1D even at Tiny scale, so doubling
    // the associativity must change the hit pattern.
    let a16 = {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2);
        Gpu::new(cfg, build("STR", Scale::Tiny)).run().unwrap()
    };
    let a32 = {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline)
            .with_l1_geometry(CacheGeometry::fermi_l1d_32k())
            .scaled_down(2);
        Gpu::new(cfg, build("STR", Scale::Tiny)).run().unwrap()
    };
    assert_ne!(a16.l1d.hits, a32.l1d.hits, "more ways must change hit behaviour on STR");
}
