//! The simulation integrity layer end to end: seeded faults injected
//! into the interconnect and DRAM must surface as typed errors — via
//! the forward-progress watchdog, the conservation-law auditor, or the
//! structural checks at the reply path — and a fault-free machine must
//! stay silent even with the auditor running continuously.

use dlp_core::PolicyKind;
use gpu_mem::{FaultConfig, FaultKind, FaultSite, MemError};
use gpu_sim::{Gpu, SimConfig, SimError};
use gpu_workloads::{build, Scale};

/// A scaled-down machine with a tight watchdog, suitable for proving
/// detection latencies without multi-second runs.
fn cfg_with_fault(kind: FaultKind, site: FaultSite, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2);
    cfg.watchdog_cycles = 5_000;
    cfg.fault = Some(FaultConfig::single(kind, site, seed));
    cfg
}

#[test]
fn dropped_request_hangs_and_the_watchdog_reports_it() {
    // A dropped forward packet deadlocks the requesting warp: its MSHR
    // entry never fills. With the auditor off, only the watchdog can
    // notice — and it must, well before the cycle cap.
    let mut cfg = cfg_with_fault(FaultKind::Drop, FaultSite::IcntForward, 7);
    cfg.audit_interval = 0;
    let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
    let err = gpu.run().expect_err("a dropped request must not complete");
    let report = match &err {
        SimError::Hang(r) => r,
        other => panic!("expected a hang, got {other}"),
    };
    // Detection latency: one watchdog window after progress stopped,
    // nowhere near the 30M-cycle cap.
    assert!(report.cycle < cfg.max_cycles / 100, "hang detected at cycle {}", report.cycle);
    assert_eq!(report.cycle - report.last_progress_cycle, cfg.watchdog_cycles);
    // The report names the loss: more fetches went out than replies
    // came back, and some SM is still waiting.
    assert!(report.missing_replies() > 0);
    assert!(report.fetches_sent > report.replies_delivered);
    assert!(!report.sms.is_empty());
    let rendered = format!("{report}");
    assert!(rendered.contains("SM"), "report must list stuck SMs:\n{rendered}");
}

#[test]
fn dropped_request_trips_the_conservation_auditor_first() {
    // Same fault, auditor on: packet conservation (sent = delivered +
    // in flight) breaks the moment the packet vanishes, so the auditor
    // reports long before the watchdog window elapses.
    let mut cfg = cfg_with_fault(FaultKind::Drop, FaultSite::IcntForward, 7);
    cfg.audit_interval = 256;
    let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
    match gpu.run() {
        Err(SimError::InvariantViolation { check, cycle, .. }) => {
            assert!(cycle < cfg.watchdog_cycles, "auditor beat the watchdog: cycle {cycle}");
            assert!(
                check.contains("conservation"),
                "a drop is a conservation violation, got check {check:?}"
            );
        }
        other => panic!("expected an invariant violation, got {other:?}"),
    }
}

#[test]
fn duplicated_reply_is_rejected_at_the_l1d() {
    // The duplicate's second copy finds its MSHR entry already filled.
    let cfg = cfg_with_fault(FaultKind::Duplicate, FaultSite::IcntReturn, 11);
    let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
    match gpu.run() {
        Err(SimError::MshrViolation { source: MemError::MshrMissingFill { .. }, .. }) => {}
        other => panic!("expected an L1D MSHR violation, got {other:?}"),
    }
}

#[test]
fn duplicated_dram_completion_is_rejected_at_the_partition() {
    let cfg = cfg_with_fault(FaultKind::Duplicate, FaultSite::Dram, 13);
    let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
    match gpu.run() {
        Err(SimError::PartitionFault { source: MemError::L2MshrMissingFill { .. }, .. }) => {}
        other => panic!("expected a partition L2-MSHR fault, got {other:?}"),
    }
}

#[test]
fn misrouted_packet_is_caught_at_ejection() {
    let cfg = cfg_with_fault(FaultKind::Misroute, FaultSite::IcntForward, 17);
    let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
    match gpu.run() {
        Err(SimError::PacketMisrouted { port, expected, .. }) => assert_ne!(port, expected),
        other => panic!("expected a misrouting error, got {other:?}"),
    }
}

#[test]
fn delayed_packet_is_not_a_failure() {
    // A 2000-cycle delay is indistinguishable from congestion: the run
    // must complete, and neither watchdog nor auditor may fire.
    let mut cfg = cfg_with_fault(FaultKind::Delay, FaultSite::IcntReturn, 19);
    cfg.audit_interval = 256;
    let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
    let stats = gpu.run().expect("a delayed packet still arrives");
    assert!(stats.completed);
}

#[test]
fn fault_free_runs_stay_clean_under_continuous_auditing() {
    // Zero injected faults, auditor at a tight interval, every policy:
    // no false positives, and the statistics match an unaudited run.
    for kind in PolicyKind::ALL {
        let mut cfg = SimConfig::tesla_m2090(kind).scaled_down(2);
        cfg.audit_interval = 64;
        let audited = Gpu::new(cfg, build("BFS", Scale::Tiny))
            .run()
            .unwrap_or_else(|e| panic!("{kind:?}: false positive: {e}"));
        let mut plain_cfg = cfg;
        plain_cfg.audit_interval = 0;
        let plain = Gpu::new(plain_cfg, build("BFS", Scale::Tiny)).run().unwrap();
        assert!(audited.completed);
        assert_eq!(audited, plain, "{kind:?}: auditing perturbed the simulation");
    }
}

#[test]
fn rate_zero_injector_is_inert() {
    // An attached injector with rate 0 must behave exactly like no
    // injector at all.
    let mut cfg = SimConfig::tesla_m2090(PolicyKind::Dlp).scaled_down(2);
    cfg.audit_interval = 128;
    cfg.fault = Some(FaultConfig {
        rate_ppm: 0,
        ..FaultConfig::single(FaultKind::Drop, FaultSite::IcntForward, 23)
    });
    let stats = Gpu::new(cfg, build("STR", Scale::Tiny)).run().unwrap();
    assert!(stats.completed);
}

#[test]
fn cycle_cap_overrun_carries_a_report() {
    // Starve the machine of cycles: the cap error carries the same
    // diagnostic snapshot as a hang.
    let mut cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2);
    cfg.max_cycles = 50;
    cfg.watchdog_cycles = 0;
    let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
    match gpu.run() {
        Err(SimError::CycleCapExceeded(report)) => assert_eq!(report.cycle, 50),
        other => panic!("expected a cycle-cap overrun, got {other:?}"),
    }
}
