//! Flow-conservation invariants across pipeline stages: nothing the
//! LD/ST units emit may be lost or duplicated anywhere in the
//! hierarchy, under any scheme.

use dlp_core::PolicyKind;
use gpu_sim::{Gpu, SimConfig};
use gpu_workloads::{build, registry, Scale};

#[test]
fn l1d_access_conservation() {
    for spec in registry() {
        for kind in PolicyKind::ALL {
            let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
            let s = Gpu::new(cfg, build(spec.abbr, Scale::Tiny)).run().unwrap();
            assert!(s.completed);
            // Submitted transactions all reached the cache...
            assert_eq!(s.l1d.accesses, s.mem_transactions, "{} {kind:?}", spec.abbr);
            // ...and were each resolved exactly one way.
            let resolved = s.l1d.hits
                + s.l1d.misses_allocated
                + s.l1d.mshr_merges
                + s.l1d.bypassed_loads
                + s.l1d.bypassed_stores;
            assert_eq!(resolved, s.l1d.accesses, "{} {kind:?}", spec.abbr);
        }
    }
}

#[test]
fn eviction_conservation() {
    // A cache can never evict more valid lines than it filled, and
    // dirty evictions are a subset of evictions.
    for spec in registry() {
        for kind in PolicyKind::ALL {
            let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
            let s = Gpu::new(cfg, build(spec.abbr, Scale::Tiny)).run().unwrap();
            assert!(
                s.l1d.evictions <= s.l1d.misses_allocated,
                "{} {kind:?}: evicted {} > filled {}",
                spec.abbr,
                kind as usize,
                s.l1d.misses_allocated
            );
            assert!(s.l1d.dirty_evictions <= s.l1d.evictions, "{} {kind:?}", spec.abbr);
            assert!(s.l2.dirty_evictions <= s.l2.evictions, "{} {kind:?}", spec.abbr);
        }
    }
}

#[test]
fn interconnect_flit_conservation() {
    // Forward flits = fetches (1 flit each) + writebacks/write-through
    // (5 flits); return flits = replies (5 flits each). Cross-check the
    // totals against the cache-level counters.
    for kind in PolicyKind::ALL {
        let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
        let s = Gpu::new(cfg, build("STR", Scale::Tiny)).run().unwrap();
        let fetches = s.l1d.misses_allocated + s.l1d.bypass_fetches;
        let writes = s.l1d.dirty_evictions + s.l1d.bypassed_stores;
        assert_eq!(
            s.icnt.fwd_flits,
            fetches + 5 * writes,
            "{kind:?}: forward flits disagree with cache counters"
        );
        assert_eq!(
            s.icnt.ret_flits % 5,
            0,
            "{kind:?}: return traffic must be whole 5-flit replies"
        );
        assert_eq!(
            s.icnt.ret_flits / 5,
            fetches,
            "{kind:?}: every fetch gets exactly one reply"
        );
    }
}

#[test]
fn l2_sees_exactly_the_l1_miss_traffic() {
    for kind in PolicyKind::ALL {
        let cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
        let s = Gpu::new(cfg, build("MM", Scale::Tiny)).run().unwrap();
        // Bypassed loads that merge into an in-flight bypass fetch send
        // no packet of their own, so the packet-level census uses
        // `bypass_fetches` (fetches actually emitted), not
        // `bypassed_loads` (accesses logically bypassed).
        let l1_outbound =
            s.l1d.misses_allocated + s.l1d.bypass_fetches + s.l1d.bypassed_stores + s.l1d.dirty_evictions;
        assert_eq!(
            s.l2.accesses, l1_outbound,
            "{kind:?}: L2 accesses {} vs L1 outbound {}",
            s.l2.accesses, l1_outbound
        );
        assert!(s.l1d.bypass_fetches <= s.l1d.bypassed_loads);
    }
}

#[test]
fn compulsory_bounded_by_distinct_lines() {
    let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(4);
    let s = Gpu::new(cfg, build("KM", Scale::Tiny)).run().unwrap();
    assert!(s.l1d.compulsory_misses <= s.l1d.accesses);
    assert!(s.l1d.compulsory_misses > 0, "a real workload touches new lines");
}
