//! Cycle-leap ⇄ tick-every-cycle equivalence.
//!
//! The cycle-leap event core (see DESIGN.md "Cycle-leap event core")
//! claims its jumps are invisible: every statistic of every run is
//! byte-identical to the tick-every-cycle reference path selected by
//! [`SimConfig::with_reference_ticking`]. These tests pin that claim
//! across representative apps and all four policies, pin the watchdog's
//! behaviour across long leaps (no spurious hang; genuine hangs fire at
//! the identical cycle), and pin the `ticked_cycles` accounting the
//! dlp-bench telemetry reports.

//! The sharded epoch engine (see DESIGN.md §12) makes the same claim
//! one level up: statistics are byte-identical at *any shard count*.
//! The shard-equivalence tests below pin classic vs 2 vs 4 shards over
//! the same app × policy matrix, plus hang parity and the
//! oversubscribed-launcher case where every round is a single cycle.

use dlp_core::PolicyKind;
use gpu_mem::{FaultConfig, FaultKind, FaultSite};
use gpu_sim::{Gpu, RunStats, ShardTelemetry, SimConfig, SimError};
use gpu_workloads::{build, Scale};

/// FNV-1a fingerprint of a canonical stats rendering (same scheme as
/// the golden fig10 digest in `determinism.rs`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Is gpu-sim built with the `audit` cargo feature? Under audit every
/// leap is re-simulated tick-by-tick (that is the point — the no-op
/// assertion runs per skipped cycle), so `ticked_cycles` equals the
/// simulated length and the "did we actually skip" assertions below
/// would prove nothing. The feature's fingerprint is the non-zero
/// default audit interval.
fn audit_build() -> bool {
    SimConfig::tesla_m2090(PolicyKind::Baseline).audit_interval != 0
}

/// Run one app once; returns the stats and the ticked-cycle count.
fn run_once(app: &str, kind: PolicyKind, reference: bool) -> (RunStats, u64) {
    let mut cfg = SimConfig::tesla_m2090(kind).scaled_down(4);
    if reference {
        cfg = cfg.with_reference_ticking();
    }
    let mut gpu = Gpu::new(cfg, build(app, Scale::Tiny));
    let stats = gpu.run().unwrap();
    (stats, gpu.ticked_cycles())
}

#[test]
fn leap_and_reference_statistics_are_byte_identical() {
    // Memory-bound, cache-friendly, and mixed apps, all four schemes:
    // the matrix where a leak in the leap's conservative bound would
    // show up as a moved counter. Compare whole-struct equality AND the
    // per-cell FNV digest of the Debug rendering, so a mismatch names
    // the exact cell rather than failing on an opaque struct diff.
    let mut table = String::new();
    let mut mismatches = String::new();
    for app in ["KM", "BFS", "STR", "CFD"] {
        for kind in PolicyKind::ALL {
            let (leap, _) = run_once(app, kind, false);
            let (refr, _) = run_once(app, kind, true);
            let dl = fnv1a(format!("{leap:?}").as_bytes());
            let dr = fnv1a(format!("{refr:?}").as_bytes());
            table.push_str(&format!("  {app:>4}/{kind:<18?} {dl:#018x}\n"));
            if leap != refr || dl != dr {
                mismatches.push_str(&format!(
                    "  {app}/{kind:?}: leap {dl:#018x} != reference {dr:#018x}\n"
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "cycle-leap drifted from the tick-every-cycle reference:\n{mismatches}\
         full leap-side digest table:\n{table}"
    );
}

#[test]
fn ticked_cycles_accounting_is_consistent() {
    // Reference mode ticks every simulated cycle; leap mode must tick
    // strictly fewer (STR stalls on memory for most of its run, so if
    // the leap never fired this would fail) while simulating the same
    // number of cycles.
    let (leap, leap_ticked) = run_once("STR", PolicyKind::Baseline, false);
    let (refr, ref_ticked) = run_once("STR", PolicyKind::Baseline, true);
    assert_eq!(leap.cycles, refr.cycles, "modes disagree on simulated length");
    assert_eq!(ref_ticked, refr.cycles, "reference mode must tick every cycle");
    assert!(leap_ticked <= leap.cycles, "cannot tick more cycles than were simulated");
    assert!(
        audit_build() || leap_ticked < leap.cycles,
        "leap mode never skipped a cycle on a memory-bound app \
         ({leap_ticked} ticked of {} simulated)",
        leap.cycles
    );
}

#[test]
fn long_legitimate_leaps_do_not_trip_the_watchdog() {
    // STR spends most of its time stalled on DRAM, so the leap core
    // repeatedly jumps across hundreds of quiet cycles. A watchdog that
    // measured quiet time naively across a jump (now - last_progress at
    // the landing point) would mis-read those jumps as hangs. With a
    // watchdog window well above any real progress gap, the run must
    // complete — and identically to the reference path under the same
    // window.
    let run = |reference: bool| {
        let mut cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2);
        cfg.watchdog_cycles = 5_000;
        if reference {
            cfg = cfg.with_reference_ticking();
        }
        let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
        let stats = gpu.run().unwrap_or_else(|e| panic!("spurious watchdog report: {e}"));
        (stats, gpu.ticked_cycles())
    };
    let (leap, ticked) = run(false);
    let (refr, _) = run(true);
    assert_eq!(leap, refr, "watchdog-armed leap run drifted from reference");
    assert!(
        audit_build() || ticked < leap.cycles,
        "the run never leapt, so the test proved nothing"
    );
}

/// Run one app once with the sharded epoch engine.
fn run_with_shards(app: &str, kind: PolicyKind, shards: usize) -> (RunStats, ShardTelemetry) {
    let cfg = SimConfig::tesla_m2090(kind).scaled_down(4).with_shards(shards);
    let mut gpu = Gpu::new(cfg, build(app, Scale::Tiny));
    let stats = gpu.run().unwrap();
    (stats, gpu.shard_telemetry().clone())
}

#[test]
fn sharded_statistics_are_byte_identical_at_any_shard_count() {
    // The tentpole contract: the same app × policy matrix as the leap
    // equivalence test, classic single-threaded vs 2 vs 4 shards, must
    // produce byte-identical stats — equality AND matching FNV digests
    // of the Debug rendering, so a drift names the exact cell.
    let mut mismatches = String::new();
    let mut rounds_seen = 0u64;
    for app in ["KM", "BFS", "STR", "CFD"] {
        for kind in PolicyKind::ALL {
            let (classic, _) = run_once(app, kind, false);
            let d1 = fnv1a(format!("{classic:?}").as_bytes());
            for n in [2usize, 4] {
                let (sharded, tel) = run_with_shards(app, kind, n);
                let dn = fnv1a(format!("{sharded:?}").as_bytes());
                assert_eq!(tel.shards, n, "{app}/{kind:?}: engine ignored the shard count");
                rounds_seen += tel.rounds;
                if classic != sharded || d1 != dn {
                    mismatches.push_str(&format!(
                        "  {app}/{kind:?}: classic {d1:#018x} != {n} shards {dn:#018x} \
                         (rounds {}, restarts {})\n",
                        tel.rounds, tel.restarts
                    ));
                }
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "sharded execution drifted from the classic path:\n{mismatches}"
    );
    assert!(rounds_seen > 0, "no cell ever ran a barrier round — the engine never engaged");
}

#[test]
fn sharded_telemetry_accounts_every_shard() {
    let (_, tel) = run_with_shards("STR", PolicyKind::Dlp, 4);
    assert_eq!(tel.shards, 4);
    assert_eq!(tel.per_shard_ticked.len(), 4);
    assert_eq!(
        tel.epoch_cycles,
        SimConfig::tesla_m2090(PolicyKind::Dlp).icnt.hop_latency + 1,
        "epoch length must be the crossbar hop latency plus one"
    );
    if tel.restarts == 0 {
        assert!(tel.rounds > 0, "a completed run must have executed rounds");
        assert!(
            tel.per_shard_ticked.iter().any(|&t| t > 0),
            "no shard ever stepped a cycle"
        );
    }
}

#[test]
fn sharded_shard_count_is_clamped_to_the_machine() {
    // More shards than components must silently clamp, not panic or
    // leave idle ghost shards: 64 shards on a 4-SM / 12-partition
    // machine runs (at most) 12.
    let (sharded, tel) = run_with_shards("KM", PolicyKind::Baseline, 64);
    let (classic, _) = run_once("KM", PolicyKind::Baseline, false);
    assert_eq!(sharded, classic);
    assert!(tel.shards <= 12, "shard count must clamp to the component count");
}

#[test]
fn oversubscribed_launcher_is_shard_invariant() {
    // One SM and a deep CTA backlog: CTAs stay pending for most of the
    // run, so every round is a single cycle with a barrier launch scan
    // (the launch-cursor replay path). Statistics must still match, and
    // the empty-SM shards must not deadlock the barriers.
    let run = |shards: usize| {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1).with_shards(shards);
        let mut gpu = Gpu::new(cfg, build("KM", Scale::Tiny));
        let stats = gpu.run().unwrap();
        (stats, gpu.shard_telemetry().clone())
    };
    let (classic, _) = run(1);
    for n in [2usize, 4] {
        let (sharded, tel) = run(n);
        assert_eq!(sharded, classic, "{n}-shard oversubscribed run drifted");
        assert_eq!(tel.shards, n);
    }
}

#[test]
fn genuine_hangs_fire_at_the_identical_cycle_under_shards() {
    // The dropped-packet deadlock of the leap test, sharded: the
    // watchdog must fire at the identical cycle with the identical
    // flow counters, because rounds are clamped to the watchdog
    // deadline exactly as leaps are.
    let report = |shards: usize| {
        let mut cfg =
            SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2).with_shards(shards);
        cfg.watchdog_cycles = 5_000;
        cfg.audit_interval = 0;
        cfg.fault = Some(FaultConfig::single(FaultKind::Drop, FaultSite::IcntForward, 7));
        let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
        match gpu.run().expect_err("a dropped request must not complete") {
            SimError::Hang(r) => r,
            other => panic!("expected a hang, got {other}"),
        }
    };
    let classic = report(1);
    for n in [2usize, 4] {
        let sharded = report(n);
        assert_eq!(sharded.cycle, classic.cycle, "{n} shards: hang fired at a different cycle");
        assert_eq!(sharded.last_progress_cycle, classic.last_progress_cycle);
        assert_eq!(sharded.fetches_sent, classic.fetches_sent);
        assert_eq!(sharded.replies_delivered, classic.replies_delivered);
    }
}

#[test]
fn genuine_hangs_fire_at_the_identical_cycle_under_leap() {
    // A dropped forward packet deadlocks a warp for real. The leap core
    // clamps every jump to the watchdog horizon, so the hang must be
    // detected at exactly the cycle the reference path reports — not a
    // leap-quantum later.
    let report = |reference: bool| {
        let mut cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2);
        cfg.watchdog_cycles = 5_000;
        cfg.audit_interval = 0;
        cfg.fault = Some(FaultConfig::single(FaultKind::Drop, FaultSite::IcntForward, 7));
        if reference {
            cfg = cfg.with_reference_ticking();
        }
        let mut gpu = Gpu::new(cfg, build("STR", Scale::Tiny));
        match gpu.run().expect_err("a dropped request must not complete") {
            SimError::Hang(r) => r,
            other => panic!("expected a hang, got {other}"),
        }
    };
    let leap = report(false);
    let refr = report(true);
    assert_eq!(leap.cycle, refr.cycle, "hang detected at a different cycle under leap");
    assert_eq!(
        leap.last_progress_cycle, refr.last_progress_cycle,
        "modes disagree on when progress stopped"
    );
    assert_eq!(leap.fetches_sent, refr.fetches_sent);
    assert_eq!(leap.replies_delivered, refr.replies_delivered);
}
