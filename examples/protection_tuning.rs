//! Sweep DLP's protection parameters on one benchmark — the knobs the
//! paper fixes in §4 (sampling period, PD decrease step, step
//! comparison, VTA associativity) exposed for exploration.
//!
//! ```text
//! cargo run --release -p dlp-examples --example protection_tuning [APP] [--full]
//! ```

use dlp_core::{CacheGeometry, PolicyKind, ProtectionConfig};
use gpu_sim::{Gpu, SimConfig};
use gpu_workloads::{build, Scale};

fn run(app: &str, scale: Scale, protection: Option<ProtectionConfig>) -> (f64, f64, f64) {
    let mut cfg = SimConfig::tesla_m2090(PolicyKind::Dlp);
    cfg.protection_override = protection;
    let mut gpu = Gpu::new(cfg, build(app, scale));
    let stats = gpu.run().unwrap();
    assert!(stats.completed);
    (stats.ipc(), stats.l1d.hit_rate(), stats.policy.avg_pd())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("SR2K");
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Tiny };

    let geom = CacheGeometry::fermi_l1d_16k();
    let paper = ProtectionConfig::paper_default(geom);

    // Baseline LRU reference.
    let mut base_cfg = SimConfig::tesla_m2090(PolicyKind::Baseline);
    base_cfg.protection_override = None;
    let mut gpu = Gpu::new(base_cfg, build(app, scale));
    let base = gpu.run().unwrap();
    println!("{app} ({scale:?}); baseline LRU IPC = {:.1}\n", base.ipc());
    println!("{:<44} {:>8} {:>7} {:>7}", "DLP variant", "IPC/base", "hit%", "avgPD");

    let variants: Vec<(String, ProtectionConfig)> = vec![
        ("paper defaults (200, step-cmp, dec 4, VTA 4w)".into(), paper),
        ("sampling period 50".into(), ProtectionConfig { sample_period: 50, ..paper }),
        ("sampling period 800".into(), ProtectionConfig { sample_period: 800, ..paper }),
        ("exact division".into(), ProtectionConfig { step_comparison: false, ..paper }),
        ("gentle decrease (step 1)".into(), ProtectionConfig { decrease_step: 1, ..paper }),
        ("aggressive decrease (step 8)".into(), ProtectionConfig { decrease_step: 8, ..paper }),
        ("narrow VTA (2-way)".into(), ProtectionConfig { vta_assoc: 2, ..paper }),
        ("wide VTA (8-way)".into(), ProtectionConfig { vta_assoc: 8, ..paper }),
        ("low PD ceiling (7)".into(), ProtectionConfig { max_pd: 7, ..paper }),
    ];

    for (label, pc) in variants {
        let (ipc, hit, pd) = run(app, scale, Some(pc));
        println!(
            "{:<44} {:>8.2} {:>6.1}% {:>7.2}",
            label,
            ipc / base.ipc(),
            hit * 100.0,
            pd
        );
    }
}
