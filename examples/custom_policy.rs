//! Implementing a new cache-management scheme against the
//! `dlp_core::ReplacementPolicy` interface and driving it through a
//! real L1D controller.
//!
//! The example adds *random replacement* — a policy the paper does not
//! evaluate — runs a synthetic thrashing access stream through an L1D
//! under plain LRU, random replacement, and DLP, and reports the hit
//! rates each achieves.
//!
//! ```text
//! cargo run --release -p dlp-examples --example custom_policy
//! ```

use dlp_core::{
    build_policy, AccessCtx, CacheGeometry, MissDecision, PolicyKind, PolicyStats,
    ReplacementPolicy, WayView,
};
use gpu_mem::l1d::{L1dCache, L1dConfig};
use gpu_mem::packet::{MemReq, Packet, PacketKind};

/// Random replacement: evict a pseudo-randomly chosen non-reserved way.
/// A deterministic xorshift keeps runs reproducible.
struct RandomReplacement {
    rng: u64,
    stats: PolicyStats,
    assoc: usize,
}

impl RandomReplacement {
    fn new(geom: CacheGeometry) -> Self {
        RandomReplacement { rng: 0xDEADBEEF, stats: PolicyStats::default(), assoc: geom.assoc }
    }

    fn next(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

impl ReplacementPolicy for RandomReplacement {
    fn on_query(&mut self, _set: usize) {
        self.stats.queries += 1;
    }
    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {}
    fn on_miss(&mut self, _set: usize, _tag: u64, _ctx: &AccessCtx) {}

    fn decide_replacement(&mut self, _set: usize, ways: &[WayView], _ctx: &AccessCtx) -> MissDecision {
        if let Some(way) = ways.iter().position(|w| !w.valid && !w.reserved) {
            return MissDecision::Allocate { way };
        }
        let evictable: Vec<usize> =
            (0..self.assoc).filter(|&w| ways[w].valid && !ways[w].reserved).collect();
        match evictable.as_slice() {
            [] => MissDecision::Stall,
            some => {
                let pick = some[(self.next() % some.len() as u64) as usize];
                MissDecision::Allocate { way: pick }
            }
        }
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _tag: u64) {}
    fn on_fill(&mut self, _set: usize, _way: usize, _tag: u64, _ctx: &AccessCtx) {}

    fn kind(&self) -> PolicyKind {
        // Reported as Baseline-class: it never bypasses.
        PolicyKind::Baseline
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

/// A cyclic working set of `lines` cache lines, re-walked `passes`
/// times — thrashes LRU whenever `lines / num_sets > associativity`.
fn cyclic_stream(lines: u64, passes: usize) -> Vec<u64> {
    let mut addrs = Vec::new();
    for _ in 0..passes {
        for l in 0..lines {
            addrs.push(l * 128);
        }
    }
    addrs
}

fn run_stream(policy: Box<dyn ReplacementPolicy>, addrs: &[u64]) -> (f64, u64) {
    let cfg = L1dConfig::fermi_baseline();
    let mut l1 = L1dCache::new(cfg, policy);
    let mut cycle = 0u64;
    for (i, &addr) in addrs.iter().enumerate() {
        cycle += 4;
        l1.cycle(cycle).unwrap();
        let req = MemReq {
            id: i as u64,
            addr,
            is_write: false,
            pc: 0,
            sm: 0,
            warp: 0,
            dst_reg: 1,
            born: 0,
        };
        // Retry until the pipeline register frees (structural stalls).
        while !l1.submit(req, cycle).unwrap() {
            cycle += 1;
            l1.cycle(cycle).unwrap();
        }
        // Serve memory instantly so the experiment isolates replacement
        // behaviour from timing.
        while let Some(pkt) = l1.pop_outgoing() {
            let reply = match pkt.kind {
                PacketKind::ReadReq => PacketKind::ReadReply,
                PacketKind::BypassReadReq => PacketKind::BypassReadReply,
                _ => continue,
            };
            l1.on_reply(Packet { kind: reply, ..pkt }, cycle).unwrap();
        }
    }
    (l1.stats().hit_rate(), l1.stats().bypassed_loads)
}

fn main() {
    let geom = CacheGeometry::fermi_l1d_16k();
    // 8 lines per set: twice the associativity — LRU's worst case.
    let addrs = cyclic_stream(geom.num_sets as u64 * 8, 40);

    println!("Cyclic working set of 2x the cache, 40 passes ({} accesses)\n", addrs.len());
    for (name, policy) in [
        ("LRU (baseline)", build_policy(PolicyKind::Baseline, geom)),
        ("Random replacement (custom)", Box::new(RandomReplacement::new(geom)) as _),
        ("DLP", build_policy(PolicyKind::Dlp, geom)),
    ] {
        let (hit_rate, bypassed) = run_stream(policy, &addrs);
        println!("{name:30} hit rate {:5.1}%   bypassed {bypassed}", hit_rate * 100.0);
    }
    println!(
        "\nLRU gets ~0% on a cyclic over-capacity set; random replacement keeps\n\
         a capacity-proportional fraction; DLP pins protected lines and\n\
         bypasses the rest, approaching associativity/working-set per set."
    );
}
