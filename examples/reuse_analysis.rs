//! Reuse-distance analysis of any modeled benchmark — the measurement
//! machinery behind Figures 3 and 7 of the paper, exposed as a tool.
//!
//! ```text
//! cargo run --release -p dlp-examples --example reuse_analysis [APP] [--full]
//! ```
//!
//! Attaches an `rd_tools::RdProfiler` to every SM's L1D, runs the
//! workload under the baseline policy, and prints the overall and
//! per-memory-instruction reuse-distance distributions.

use dlp_core::PolicyKind;
use gpu_sim::{Gpu, SimConfig};
use gpu_workloads::{build, Scale};
use rd_tools::{RdBucket, RdProfiler};

fn bar(frac: f64) -> String {
    let n = (frac * 40.0).round() as usize;
    "#".repeat(n)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("BFS");
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Tiny };

    let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline);
    let mut gpu = Gpu::new(cfg, build(app, scale));
    let sink = RdProfiler::new_sink();
    for sm in 0..cfg.num_sms {
        gpu.set_l1d_observer(sm, Box::new(RdProfiler::new(cfg.l1d.geom.num_sets, sink.clone())));
    }
    let stats = gpu.run().unwrap();
    assert!(stats.completed);

    let prof = sink.lock();
    let total = prof.overall.total() + prof.overall.compulsory;
    println!("{app}: {} L1D accesses, {} with a reuse distance\n", total, prof.overall.total());

    println!("Overall reuse-distance distribution (Figure 3 view):");
    let shares = prof.overall.shares();
    for (b, share) in RdBucket::ALL.iter().zip(shares) {
        println!("  {:8} {:5.1}%  {}", b.label(), share * 100.0, bar(share));
    }
    println!(
        "  compulsory (first touch): {:.1}% of all accesses",
        100.0 * prof.overall.compulsory as f64 / total.max(1) as f64
    );
    println!(
        "  beyond 4-way LRU reach:   {:.1}% of reuses",
        prof.overall.frac_beyond(4) * 100.0
    );

    println!("\nPer-memory-instruction distributions (Figure 7 view):");
    let mut pcs: Vec<u32> = prof.per_pc.keys().copied().collect();
    pcs.sort_unstable();
    for pc in pcs {
        let h = &prof.per_pc[&pc];
        if h.total() == 0 {
            continue;
        }
        let s = h.shares();
        println!(
            "  insn{pc:<3} 1~4 {:5.1}% | 5~8 {:5.1}% | 9~64 {:5.1}% | >64 {:5.1}%  ({} reuses)",
            s[0] * 100.0,
            s[1] * 100.0,
            s[2] * 100.0,
            s[3] * 100.0,
            h.total()
        );
    }
    println!(
        "\nInstructions whose mass sits in 9~64 need protection distances\n\
         beyond plain LRU; instructions in 1~4 need none — the per-\n\
         instruction diversity DLP exploits (paper §3.3)."
    );
}
