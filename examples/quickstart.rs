//! Quickstart: simulate one of the paper's benchmarks on the Tesla
//! M2090 model under the baseline LRU L1D and under DLP, and compare.
//!
//! ```text
//! cargo run --release -p dlp-examples --example quickstart [APP]
//! ```
//!
//! `APP` is a Table 2 abbreviation (default `SR2K`). Use `--full` for the
//! evaluation-scale workload (slower).

use dlp_core::PolicyKind;
use gpu_sim::{Gpu, SimConfig};
use gpu_workloads::{build, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("SR2K");
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Tiny };

    println!("Simulating {app} ({scale:?} scale) on the Table 1 platform...\n");

    let mut results = Vec::new();
    for kind in [PolicyKind::Baseline, PolicyKind::Dlp] {
        let cfg = SimConfig::tesla_m2090(kind);
        let mut gpu = Gpu::new(cfg, build(app, scale));
        let stats = gpu.run().unwrap();
        assert!(stats.completed, "{kind:?} hit the cycle cap");
        println!("== {:?} ==", kind);
        println!("  cycles            {:>12}", stats.cycles);
        println!("  IPC               {:>12.1}", stats.ipc());
        println!("  L1D hit rate      {:>11.1}%", stats.l1d.hit_rate() * 100.0);
        println!(
            "  L1D traffic       {:>12} (bypassed {})",
            stats.l1d.cache_traffic(),
            stats.l1d.bypassed_loads + stats.l1d.bypassed_stores
        );
        println!("  L1D evictions     {:>12}", stats.l1d.evictions);
        println!("  interconnect flits{:>12}", stats.icnt.total_flits());
        println!("  mean PD (samples) {:>12.2}", stats.policy.avg_pd());
        println!();
        results.push(stats);
    }

    let speedup = results[1].ipc() / results[0].ipc();
    println!("DLP speedup over baseline: {speedup:.2}x");
}
