//! Property-based tests for the policy machinery: for *any* legal
//! sequence of cache events, the schemes must uphold their structural
//! invariants (no reserved way chosen, PLs bounded, determinism, ...).

// Integration tests assert on failure paths directly; the
// unwrap_used/expect_used denies target shipping simulator code.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use dlp_core::{
    build_policy, pd_adjustment, AccessCtx, CacheGeometry, Dlp, MissDecision, PolicyKind,
    ProtectionConfig, ReplacementPolicy, VictimTagArray, WayView,
};
use proptest::prelude::*;

/// One externally-driven cache event, as the L1D controller would emit.
#[derive(Clone, Debug)]
enum Event {
    Query { set: usize },
    Hit { set: usize, way: usize, insn: u8 },
    Miss { set: usize, tag: u64, insn: u8 },
    Decide { set: usize, occupancy: u8, reserved: u8, insn: u8 },
    Evict { set: usize, way: usize, tag: u64 },
    Fill { set: usize, way: usize, tag: u64, insn: u8 },
    ForceSample,
}

fn event_strategy(num_sets: usize, assoc: usize) -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..num_sets).prop_map(|set| Event::Query { set }),
        (0..num_sets, 0..assoc, any::<u8>())
            .prop_map(|(set, way, insn)| Event::Hit { set, way, insn: insn & 0x7f }),
        (0..num_sets, 0..1000u64, any::<u8>())
            .prop_map(|(set, tag, insn)| Event::Miss { set, tag, insn: insn & 0x7f }),
        (0..num_sets, any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(set, occ, res, insn)| {
            Event::Decide { set, occupancy: occ, reserved: res, insn: insn & 0x7f }
        }),
        (0..num_sets, 0..assoc, 0..1000u64)
            .prop_map(|(set, way, tag)| Event::Evict { set, way, tag }),
        (0..num_sets, 0..assoc, 0..1000u64, any::<u8>())
            .prop_map(|(set, way, tag, insn)| Event::Fill { set, way, tag, insn: insn & 0x7f }),
        Just(Event::ForceSample),
    ]
}

fn ways_from_masks(assoc: usize, occupancy: u8, reserved: u8) -> Vec<WayView> {
    (0..assoc)
        .map(|w| {
            if reserved >> w & 1 == 1 {
                WayView::reserved()
            } else if occupancy >> w & 1 == 1 {
                WayView::valid(5000 + w as u64)
            } else {
                WayView::invalid()
            }
        })
        .collect()
}

/// Drive a policy through an event trace, checking per-decision
/// invariants. Returns the decision log for determinism checks.
fn drive(policy: &mut dyn ReplacementPolicy, events: &[Event], assoc: usize) -> Vec<MissDecision> {
    let mut log = Vec::new();
    for ev in events {
        match *ev {
            Event::Query { set } => policy.on_query(set),
            Event::Hit { set, way, insn } => {
                policy.on_hit(set, way, &AccessCtx { insn_id: insn, is_write: false })
            }
            Event::Miss { set, tag, insn } => {
                policy.on_miss(set, tag, &AccessCtx { insn_id: insn, is_write: false })
            }
            Event::Decide { set, occupancy, reserved, insn } => {
                let ways = ways_from_masks(assoc, occupancy, reserved);
                let d = policy.decide_replacement(
                    set,
                    &ways,
                    &AccessCtx { insn_id: insn, is_write: false },
                );
                match d {
                    MissDecision::Allocate { way } => {
                        assert!(way < assoc, "victim way out of range");
                        assert!(!ways[way].reserved, "chose a reserved way");
                    }
                    MissDecision::Stall => {
                        assert!(
                            ways.iter().all(|w| w.reserved),
                            "{:?} stalled while an unreserved way existed",
                            policy.kind()
                        );
                        assert!(
                            matches!(policy.kind(), PolicyKind::Baseline),
                            "only plain LRU parks on a saturated set"
                        );
                    }
                    MissDecision::Bypass => {
                        assert_ne!(
                            policy.kind(),
                            PolicyKind::Baseline,
                            "baseline LRU must never bypass"
                        );
                    }
                }
                log.push(d);
            }
            Event::Evict { set, way, tag } => policy.on_evict(set, way, tag),
            Event::Fill { set, way, tag, insn } => {
                policy.on_fill(set, way, tag, &AccessCtx { insn_id: insn, is_write: false })
            }
            Event::ForceSample => policy.force_sample(),
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_policies_uphold_decision_invariants(
        events in prop::collection::vec(event_strategy(32, 4), 0..400),
    ) {
        let geom = CacheGeometry::fermi_l1d_16k();
        for kind in PolicyKind::ALL {
            let mut p = build_policy(kind, geom);
            drive(p.as_mut(), &events, geom.assoc);
        }
    }

    #[test]
    fn policies_are_deterministic(
        events in prop::collection::vec(event_strategy(32, 4), 0..300),
    ) {
        let geom = CacheGeometry::fermi_l1d_16k();
        for kind in PolicyKind::ALL {
            let mut a = build_policy(kind, geom);
            let mut b = build_policy(kind, geom);
            let la = drive(a.as_mut(), &events, geom.assoc);
            let lb = drive(b.as_mut(), &events, geom.assoc);
            prop_assert_eq!(la, lb);
            prop_assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn dlp_protected_life_never_exceeds_max_pd(
        events in prop::collection::vec(event_strategy(32, 4), 0..400),
    ) {
        let geom = CacheGeometry::fermi_l1d_16k();
        let cfg = ProtectionConfig::paper_default(geom);
        let max_pd = cfg.max_pd;
        let mut p = Dlp::new(cfg);
        for chunk in events.chunks(16) {
            drive(&mut p, chunk, geom.assoc);
            for set in 0..geom.num_sets {
                for way in 0..geom.assoc {
                    prop_assert!(p.protected_life(set, way) <= max_pd);
                }
            }
        }
    }

    #[test]
    fn dlp_pd_bounded_for_all_instructions(
        events in prop::collection::vec(event_strategy(16, 4), 0..400),
    ) {
        let geom = CacheGeometry::fermi_l1d_16k();
        let cfg = ProtectionConfig::paper_default(geom);
        let mut p = Dlp::new(cfg);
        drive(&mut p, &events, geom.assoc);
        for insn in 0..128u8 {
            prop_assert!(p.pd_of(insn) <= cfg.max_pd);
        }
    }

    #[test]
    fn pd_adjustment_capped_and_monotone(nasc in 1u8..16, hv in 0u16..2000, ht in 0u16..2000) {
        let adj = pd_adjustment(nasc, hv, ht);
        prop_assert!(adj as u32 <= 4 * nasc as u32);
        if hv > 0 {
            // More VTA hits never yields a smaller step.
            prop_assert!(pd_adjustment(nasc, hv.saturating_mul(2), ht) >= adj);
        }
    }

    #[test]
    fn vta_never_overflows_and_probe_after_insert_hits(
        ops in prop::collection::vec((0usize..8, 0u64..64, any::<u8>()), 1..200),
    ) {
        let mut vta = VictimTagArray::new(8, 4);
        for &(set, tag, insn) in &ops {
            vta.insert(set, tag, insn & 0x7f);
            prop_assert!(vta.occupancy() <= 8 * 4);
            prop_assert_eq!(vta.peek(set, tag), Some(insn & 0x7f));
        }
    }

    #[test]
    fn geometry_set_mapping_total(line in any::<u64>()) {
        for geom in [
            CacheGeometry::fermi_l1d_16k(),
            CacheGeometry::fermi_l1d_32k(),
            CacheGeometry::fermi_l1d_64k(),
            CacheGeometry::fermi_l2_slice(),
        ] {
            prop_assert!(geom.set_of_line(line) < geom.num_sets);
        }
    }
}
