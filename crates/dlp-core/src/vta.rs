//! The Victim Tag Array (§4.1.2).
//!
//! Tags of lines evicted from the TDA are retained here so reuse at
//! distances beyond the cache's associativity is still observable. Each
//! entry stores only the tag and the 7-bit instruction ID the line last
//! carried in the TDA; sets are managed with LRU. A TDA miss probes the
//! VTA; a VTA hit is credited to the stored instruction ID and the entry
//! is removed (the line is about to re-enter the TDA under the current
//! instruction's ID).

use crate::insn::InsnId;
use crate::recency::RecencyArray;

#[derive(Clone, Copy, Debug, Default)]
struct VtaEntry {
    valid: bool,
    tag: u64,
    insn_id: InsnId,
}

/// A set-associative array of victim tags.
pub struct VictimTagArray {
    num_sets: usize,
    assoc: usize,
    entries: Vec<VtaEntry>,
    recency: RecencyArray,
    insertions: u64,
    hits: u64,
}

impl VictimTagArray {
    /// Create a VTA with `num_sets` sets of `assoc` entries. The paper
    /// sizes it identically to the TDA (footnote 2: VTA associativity =
    /// cache associativity).
    pub fn new(num_sets: usize, assoc: usize) -> Self {
        assert!(num_sets > 0 && assoc > 0, "VTA must have at least one entry");
        VictimTagArray {
            num_sets,
            assoc,
            entries: vec![VtaEntry::default(); num_sets * assoc],
            recency: RecencyArray::new(num_sets, assoc),
            insertions: 0,
            hits: 0,
        }
    }

    /// VTA associativity — the paper's `Nasc` constant used by the PD
    /// adjustment (§4.2).
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of sets (mirrors the TDA's set count).
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        debug_assert!(set < self.num_sets);
        set * self.assoc
    }

    /// Record an eviction from the TDA: insert `(tag, insn_id)` into
    /// `set`, replacing the LRU victim entry.
    pub fn insert(&mut self, set: usize, tag: u64, insn_id: InsnId) {
        self.insertions += 1;
        let base = self.base(set);
        // Reuse an existing entry for the same tag (shouldn't normally
        // happen — a line is either in the TDA or the VTA — but protects
        // against duplicates if a line is evicted twice between probes).
        let slot = (0..self.assoc)
            .find(|&w| self.entries[base + w].valid && self.entries[base + w].tag == tag)
            .or_else(|| (0..self.assoc).find(|&w| !self.entries[base + w].valid))
            .or_else(|| self.recency.lru_among(set, |_| true));
        debug_assert!(slot.is_some(), "VTA set has at least one way");
        // An unfiltered LRU scan over a non-empty set always yields a
        // victim, so the fallback to way 0 is unreachable.
        let w = slot.unwrap_or(0);
        self.entries[base + w] = VtaEntry { valid: true, tag, insn_id };
        self.recency.touch(set, w);
    }

    /// Probe the VTA after a TDA miss. On a hit the entry is invalidated
    /// and the instruction ID it carried is returned.
    pub fn probe_remove(&mut self, set: usize, tag: u64) -> Option<InsnId> {
        let base = self.base(set);
        for w in 0..self.assoc {
            let e = &mut self.entries[base + w];
            if e.valid && e.tag == tag {
                e.valid = false;
                self.hits += 1;
                return Some(e.insn_id);
            }
        }
        None
    }

    /// Probe without removing (used by tests and the RD analysis tools).
    pub fn peek(&self, set: usize, tag: u64) -> Option<InsnId> {
        let base = self.base(set);
        (0..self.assoc)
            .map(|w| self.entries[base + w])
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.insn_id)
    }

    /// Total insertions so far.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of currently valid entries (for tests/diagnostics).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_probe_hits_and_removes() {
        let mut vta = VictimTagArray::new(4, 4);
        vta.insert(1, 0xabc, 7);
        assert_eq!(vta.peek(1, 0xabc), Some(7));
        assert_eq!(vta.probe_remove(1, 0xabc), Some(7));
        assert_eq!(vta.probe_remove(1, 0xabc), None, "entry must be consumed by the hit");
        assert_eq!(vta.hits(), 1);
        assert_eq!(vta.insertions(), 1);
    }

    #[test]
    fn probe_is_set_local() {
        let mut vta = VictimTagArray::new(4, 4);
        vta.insert(0, 0xabc, 1);
        assert_eq!(vta.probe_remove(1, 0xabc), None);
        assert_eq!(vta.probe_remove(0, 0xabc), Some(1));
    }

    #[test]
    fn lru_replacement_evicts_oldest_victim() {
        let mut vta = VictimTagArray::new(1, 2);
        vta.insert(0, 1, 0);
        vta.insert(0, 2, 0);
        vta.insert(0, 3, 0); // evicts tag 1
        assert_eq!(vta.peek(0, 1), None);
        assert_eq!(vta.peek(0, 2), Some(0));
        assert_eq!(vta.peek(0, 3), Some(0));
    }

    #[test]
    fn duplicate_insert_does_not_duplicate_entry() {
        let mut vta = VictimTagArray::new(1, 4);
        vta.insert(0, 9, 1);
        vta.insert(0, 9, 2);
        assert_eq!(vta.occupancy(), 1);
        assert_eq!(vta.peek(0, 9), Some(2), "newest insn id wins");
    }

    #[test]
    fn invalidated_slot_is_reused_before_eviction() {
        let mut vta = VictimTagArray::new(1, 2);
        vta.insert(0, 1, 0);
        vta.insert(0, 2, 0);
        assert_eq!(vta.probe_remove(0, 1), Some(0));
        vta.insert(0, 3, 0); // must take the freed slot, keeping tag 2
        assert_eq!(vta.peek(0, 2), Some(0));
        assert_eq!(vta.peek(0, 3), Some(0));
    }
}
