//! Scheme-internal statistics exposed for the experiment harness.

use serde::{Deserialize, Serialize};

/// Counters a [`crate::ReplacementPolicy`] accumulates about its own
/// decisions. Cache-level counters (hits, misses, traffic, evictions)
/// live with the cache controller in `gpu-mem`; these are the knobs that
/// are only visible inside the scheme.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Set queries observed (each new access to the cache).
    pub queries: u64,
    /// Misses the scheme chose to bypass because every non-reserved way
    /// in the set was protected (PL > 0).
    pub protected_bypasses: u64,
    /// Hits recorded in the victim tag array.
    pub vta_hits: u64,
    /// Lines inserted into the victim tag array (TDA evictions seen).
    pub vta_insertions: u64,
    /// Victim tags restored after a bypassed miss (the on-miss VTA probe
    /// consumed the entry but the line never entered the TDA).
    pub vta_reinserted: u64,
    /// Completed sampling periods (PD recomputations considered).
    pub samples: u64,
    /// Samples that took the PD-increase path of Figure 9.
    pub pd_increases: u64,
    /// Samples that took the PD-decrease path of Figure 9.
    pub pd_decreases: u64,
    /// Sum over samples of the mean PD after recomputation, scaled by
    /// 1000 (fixed-point so the struct stays integer-only and exactly
    /// serializable). `mean_pd_milli / samples` is the average PD level.
    pub mean_pd_milli_sum: u64,
}

impl PolicyStats {
    /// Average protection distance over all completed samples, or 0.0 if
    /// the scheme never sampled.
    pub fn avg_pd(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.mean_pd_milli_sum as f64 / 1000.0 / self.samples as f64
        }
    }

    /// Merge counters from another instance (used when aggregating the
    /// 16 per-SM policies of one simulation into a single report).
    pub fn merge(&mut self, other: &PolicyStats) {
        self.queries += other.queries;
        self.protected_bypasses += other.protected_bypasses;
        self.vta_hits += other.vta_hits;
        self.vta_insertions += other.vta_insertions;
        self.vta_reinserted += other.vta_reinserted;
        self.samples += other.samples;
        self.pd_increases += other.pd_increases;
        self.pd_decreases += other.pd_decreases;
        self.mean_pd_milli_sum += other.mean_pd_milli_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pd_zero_when_never_sampled() {
        assert_eq!(PolicyStats::default().avg_pd(), 0.0);
    }

    #[test]
    fn avg_pd_fixed_point() {
        let s = PolicyStats { samples: 2, mean_pd_milli_sum: 9000, ..Default::default() };
        assert!((s.avg_pd() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PolicyStats { queries: 1, vta_hits: 2, ..Default::default() };
        let b = PolicyStats { queries: 10, vta_hits: 20, samples: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.queries, 11);
        assert_eq!(a.vta_hits, 22);
        assert_eq!(a.samples, 1);
    }
}
