//! Memory-instruction identifiers.
//!
//! DLP attributes cache hits to the *static memory instruction* (program
//! counter) that brought a line into the cache or last hit it (§4.1.1).
//! Hardware stores a 7-bit hashed PC in every TDA/VTA entry and indexes
//! the 128-entry PDPT with it; we reproduce that width exactly so
//! aliasing behaves as it would in the proposed hardware.

/// Number of bits in the hashed instruction ID (§4.3: 7 bits).
pub const INSN_ID_BITS: u32 = 7;

/// Number of PDPT entries (§4.1.3: 128 = 2^7).
pub const PDPT_ENTRIES: usize = 1 << INSN_ID_BITS;

/// A hashed memory-instruction identifier in `0..PDPT_ENTRIES`.
pub type InsnId = u8;

/// Hash a program counter down to the 7-bit instruction ID stored in TDA,
/// VTA and PDPT entries.
///
/// GPU kernels issue memory instructions from word-aligned PCs, so we
/// fold the PC's upper bits onto its lower bits before truncating; two
/// memory instructions only alias if they collide in all folded windows,
/// which for the ≤128 distinct memory PCs of the paper's benchmarks
/// (§4.1.3) essentially never happens.
#[inline]
pub fn hash_pc(pc: u32) -> InsnId {
    let folded = pc ^ (pc >> INSN_ID_BITS) ^ (pc >> (2 * INSN_ID_BITS)) ^ (pc >> (3 * INSN_ID_BITS));
    (folded & (PDPT_ENTRIES as u32 - 1)) as InsnId
}

/// Does `pc` overflow the 7-bit instruction-id space — i.e. did
/// [`hash_pc`] have to fold upper bits away, making aliasing *possible*?
/// The paper assumes ≤128 distinct memory PCs and never measures beyond
/// it (ROADMAP item 5); the simulator counts these so saturation at the
/// scale axis's 100–1000× workloads is observable instead of silent.
#[inline]
pub fn pc_wraps(pc: u32) -> bool {
    pc >= PDPT_ENTRIES as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_fits_in_seven_bits() {
        for pc in (0..1_000_000u32).step_by(97) {
            assert!((hash_pc(pc) as usize) < PDPT_ENTRIES);
        }
    }

    #[test]
    fn small_distinct_pcs_do_not_alias() {
        // The per-kernel static memory instructions in this workspace use
        // small consecutive PC numbers; they must map to distinct IDs.
        let ids: std::collections::HashSet<_> = (0u32..PDPT_ENTRIES as u32).map(hash_pc).collect();
        assert_eq!(ids.len(), PDPT_ENTRIES);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_pc(0xdead_beef), hash_pc(0xdead_beef));
    }

    #[test]
    fn wrap_threshold_is_the_id_space() {
        assert!(!pc_wraps(0));
        assert!(!pc_wraps(PDPT_ENTRIES as u32 - 1));
        assert!(pc_wraps(PDPT_ENTRIES as u32));
        assert!(pc_wraps(u32::MAX));
    }
}
