//! The Protection Distance Prediction Table (§4.1.3).
//!
//! 128 entries, indexed by the 7-bit hashed instruction ID. Each entry
//! holds the per-instruction TDA-hit and VTA-hit counters for the current
//! sampling period plus the instruction's current protection distance.
//! Field widths follow §4.3: 8-bit TDA hits, 10-bit VTA hits, 4-bit PD —
//! the counters saturate at their hardware widths.

use crate::insn::{InsnId, PDPT_ENTRIES};

/// Saturation limit of the 8-bit TDA hits field.
pub const TDA_HITS_MAX: u16 = (1 << 8) - 1;
/// Saturation limit of the 10-bit VTA hits field.
pub const VTA_HITS_MAX: u16 = (1 << 10) - 1;
/// Saturation limit of the 4-bit PD field.
pub const PD_MAX: u8 = (1 << 4) - 1;

/// One PDPT row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdptEntry {
    /// Hits in the tag-and-data array credited to this instruction in the
    /// current sample (8-bit saturating).
    pub tda_hits: u16,
    /// Hits in the victim tag array credited to this instruction in the
    /// current sample (10-bit saturating).
    pub vta_hits: u16,
    /// Current protection distance assigned to lines this instruction
    /// touches (4-bit).
    pub pd: u8,
}

/// The full table plus the global (summed) hit counters used by the
/// Figure 9 decision.
pub struct Pdpt {
    entries: Vec<PdptEntry>,
    global_tda_hits: u64,
    global_vta_hits: u64,
}

impl Default for Pdpt {
    fn default() -> Self {
        Self::new()
    }
}

impl Pdpt {
    /// An all-zero table (all PDs start at 0: no protection until the
    /// first sample says otherwise).
    pub fn new() -> Self {
        Pdpt { entries: vec![PdptEntry::default(); PDPT_ENTRIES], global_tda_hits: 0, global_vta_hits: 0 }
    }

    /// Number of rows (always 128, kept as a method for reports).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false — the table has a fixed 128 rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current PD for an instruction.
    #[inline]
    pub fn pd(&self, insn: InsnId) -> u8 {
        self.entries[insn as usize].pd
    }

    /// Record a TDA hit credited to `insn`.
    #[inline]
    pub fn credit_tda_hit(&mut self, insn: InsnId) {
        let e = &mut self.entries[insn as usize];
        e.tda_hits = (e.tda_hits + 1).min(TDA_HITS_MAX);
        self.global_tda_hits += 1;
    }

    /// Record a VTA hit credited to `insn`.
    #[inline]
    pub fn credit_vta_hit(&mut self, insn: InsnId) {
        let e = &mut self.entries[insn as usize];
        e.vta_hits = (e.vta_hits + 1).min(VTA_HITS_MAX);
        self.global_vta_hits += 1;
    }

    /// Global TDA hits accumulated this sample.
    pub fn global_tda_hits(&self) -> u64 {
        self.global_tda_hits
    }

    /// Global VTA hits accumulated this sample.
    pub fn global_vta_hits(&self) -> u64 {
        self.global_vta_hits
    }

    /// Read-only view of an entry (tests, reports).
    pub fn entry(&self, insn: InsnId) -> PdptEntry {
        self.entries[insn as usize]
    }

    /// Apply `f` to every row's `(tda_hits, vta_hits, pd)` and store the
    /// returned PD. Used by the per-instruction PD-increase path.
    pub fn update_pds(&mut self, mut f: impl FnMut(&PdptEntry) -> u8) {
        for e in &mut self.entries {
            e.pd = f(e).min(PD_MAX);
        }
    }

    /// End-of-sample reset (§4.1.3): zero all hit counters, global and
    /// per-row; PDs persist.
    pub fn reset_hits(&mut self) {
        for e in &mut self.entries {
            e.tda_hits = 0;
            e.vta_hits = 0;
        }
        self.global_tda_hits = 0;
        self.global_vta_hits = 0;
    }

    /// Mean PD over all rows that have a nonzero PD *or* saw traffic —
    /// rows for instruction IDs a kernel never issues would drag an
    /// unweighted mean to zero. Falls back to the mean over all rows
    /// when nothing qualifies.
    pub fn mean_active_pd(&self) -> f64 {
        // Single allocation-free pass: this runs on every sampling
        // period close, which the hot-path lint reaches from the L1D
        // cycle chain. The f64 accumulation order matches the old
        // collect-then-sum form exactly, so sweep digests are unmoved.
        let mut sum = 0.0f64;
        let mut n: u64 = 0;
        for e in &self.entries {
            if e.pd > 0 || e.tda_hits > 0 || e.vta_hits > 0 {
                sum += e.pd as f64;
                n += 1;
            }
        }
        if n == 0 {
            return 0.0;
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_is_all_zero() {
        let t = Pdpt::new();
        assert_eq!(t.len(), PDPT_ENTRIES);
        for i in 0..PDPT_ENTRIES {
            assert_eq!(t.entry(i as InsnId), PdptEntry::default());
        }
    }

    #[test]
    fn credits_accumulate_per_row_and_globally() {
        let mut t = Pdpt::new();
        t.credit_tda_hit(3);
        t.credit_tda_hit(3);
        t.credit_vta_hit(3);
        t.credit_vta_hit(9);
        assert_eq!(t.entry(3).tda_hits, 2);
        assert_eq!(t.entry(3).vta_hits, 1);
        assert_eq!(t.entry(9).vta_hits, 1);
        assert_eq!(t.global_tda_hits(), 2);
        assert_eq!(t.global_vta_hits(), 2);
    }

    #[test]
    fn tda_counter_saturates_at_8_bits() {
        let mut t = Pdpt::new();
        for _ in 0..300 {
            t.credit_tda_hit(0);
        }
        assert_eq!(t.entry(0).tda_hits, TDA_HITS_MAX);
        assert_eq!(t.global_tda_hits(), 300, "global counter is not width-limited");
    }

    #[test]
    fn vta_counter_saturates_at_10_bits() {
        let mut t = Pdpt::new();
        for _ in 0..1200 {
            t.credit_vta_hit(0);
        }
        assert_eq!(t.entry(0).vta_hits, VTA_HITS_MAX);
    }

    #[test]
    fn reset_clears_hits_but_keeps_pd() {
        let mut t = Pdpt::new();
        t.credit_tda_hit(1);
        t.credit_vta_hit(1);
        t.update_pds(|_| 5);
        t.reset_hits();
        assert_eq!(t.entry(1).tda_hits, 0);
        assert_eq!(t.entry(1).vta_hits, 0);
        assert_eq!(t.pd(1), 5);
        assert_eq!(t.global_tda_hits(), 0);
    }

    #[test]
    fn update_pds_clamps_to_4_bits() {
        let mut t = Pdpt::new();
        t.update_pds(|_| 200);
        assert_eq!(t.pd(0), PD_MAX);
    }

    #[test]
    fn mean_active_pd_ignores_untouched_rows() {
        let mut t = Pdpt::new();
        t.credit_tda_hit(0);
        t.update_pds(|e| if e.tda_hits > 0 { 8 } else { 0 });
        assert!((t.mean_active_pd() - 8.0).abs() < 1e-9);
    }
}
