//! The protecting schemes: [`Dlp`] (per-instruction PDs, §4) and
//! [`GlobalProtection`] (single PD, §5.3) built on shared machinery.
//!
//! Both schemes maintain, per TDA entry, a Protected Life (PL) counter
//! and the instruction ID that brought in / last hit the line; both feed
//! a victim tag array and recompute protection distances once per
//! sampling period following Figure 9. They differ only in the *PD
//! model*: DLP keeps one PD per memory instruction in the PDPT, while
//! Global-Protection keeps a single PD, so the model is a small trait
//! the shared policy is generic over.

use crate::geometry::CacheGeometry;
use crate::insn::InsnId;
use crate::pd::{pd_adjustment, PdComputation};
use crate::pdpt::{Pdpt, PD_MAX};
use crate::policy::{AccessCtx, MissDecision, PolicyKind, ReplacementPolicy, WayView};
use crate::recency::RecencyArray;
use crate::stats::PolicyStats;
use crate::vta::VictimTagArray;

/// Tunable parameters of the protection machinery. The paper's values
/// are produced by [`ProtectionConfig::paper_default`]; the ablation
/// benches sweep the rest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProtectionConfig {
    /// Geometry of the protected cache (TDA).
    pub geom: CacheGeometry,
    /// VTA associativity — also the `Nasc` constant of the PD update
    /// (footnote 2: set to the cache's associativity, i.e. 4).
    pub vta_assoc: usize,
    /// L1D accesses per sampling period (§4.1.4: 200).
    pub sample_period: u32,
    /// Upper bound on any PD (§4.3: the PL field is 4 bits wide → 15).
    pub max_pd: u8,
    /// Use the paper's shift-based step comparison for the PD increment.
    /// When false, the exact `Nasc × ⌊HitVTA/HitTDA⌋` division (capped at
    /// `4×Nasc`) is used instead — an ablation knob, not a paper mode.
    pub step_comparison: bool,
    /// How much every PD shrinks when a sample takes Figure 9's decrease
    /// path. The paper uses `Nasc`; the ablation benches sweep this.
    pub decrease_step: u8,
}

impl ProtectionConfig {
    /// The configuration evaluated in the paper for a given TDA geometry.
    pub fn paper_default(geom: CacheGeometry) -> Self {
        ProtectionConfig {
            geom,
            vta_assoc: geom.assoc,
            sample_period: 200,
            max_pd: PD_MAX,
            step_comparison: true,
            decrease_step: geom.assoc as u8,
        }
    }

    fn pd_increment(&self, hit_vta: u16, hit_tda: u16) -> u8 {
        let nasc = self.vta_assoc as u8;
        if self.step_comparison {
            pd_adjustment(nasc, hit_vta, hit_tda)
        } else if hit_vta == 0 {
            0
        } else {
            match hit_vta.checked_div(hit_tda) {
                None => 4 * nasc,
                Some(q) => ((q as u32 * nasc as u32).min(4 * nasc as u32)) as u8,
            }
        }
    }
}

/// How protection distances are stored and updated — the only part that
/// differs between DLP and Global-Protection.
trait PdModel: Send {
    const KIND: PolicyKind;

    fn pd_for(&self, insn: InsnId) -> u8;
    fn credit_tda(&mut self, insn: InsnId);
    fn credit_vta(&mut self, insn: InsnId);
    fn global_tda(&self) -> u64;
    fn global_vta(&self) -> u64;
    fn apply_increase(&mut self, cfg: &ProtectionConfig);
    fn apply_decrease(&mut self, cfg: &ProtectionConfig);
    fn reset_hits(&mut self);
    fn mean_pd(&self) -> f64;
    /// Largest PD currently stored anywhere in the model (auditing).
    fn max_stored_pd(&self) -> u8;
}

/// DLP's per-instruction model: the 128-entry PDPT.
struct PerInsnModel {
    pdpt: Pdpt,
}

impl PdModel for PerInsnModel {
    const KIND: PolicyKind = PolicyKind::Dlp;

    fn pd_for(&self, insn: InsnId) -> u8 {
        self.pdpt.pd(insn)
    }

    fn credit_tda(&mut self, insn: InsnId) {
        self.pdpt.credit_tda_hit(insn);
    }

    fn credit_vta(&mut self, insn: InsnId) {
        self.pdpt.credit_vta_hit(insn);
    }

    fn global_tda(&self) -> u64 {
        self.pdpt.global_tda_hits()
    }

    fn global_vta(&self) -> u64 {
        self.pdpt.global_vta_hits()
    }

    fn apply_increase(&mut self, cfg: &ProtectionConfig) {
        let max_pd = cfg.max_pd;
        self.pdpt.update_pds(|e| {
            let inc = cfg.pd_increment(e.vta_hits, e.tda_hits);
            e.pd.saturating_add(inc).min(max_pd)
        });
    }

    fn apply_decrease(&mut self, cfg: &ProtectionConfig) {
        let step = cfg.decrease_step;
        self.pdpt.update_pds(|e| e.pd.saturating_sub(step));
    }

    fn reset_hits(&mut self) {
        self.pdpt.reset_hits();
    }

    fn mean_pd(&self) -> f64 {
        self.pdpt.mean_active_pd()
    }

    fn max_stored_pd(&self) -> u8 {
        (0..self.pdpt.len()).map(|i| self.pdpt.pd(i as InsnId)).max().unwrap_or(0)
    }
}

/// Global-Protection's model: one PD and one pair of hit counters.
struct GlobalModel {
    pd: u8,
    tda_hits: u64,
    vta_hits: u64,
}

impl PdModel for GlobalModel {
    const KIND: PolicyKind = PolicyKind::GlobalProtection;

    fn pd_for(&self, _insn: InsnId) -> u8 {
        self.pd
    }

    fn credit_tda(&mut self, _insn: InsnId) {
        self.tda_hits += 1;
    }

    fn credit_vta(&mut self, _insn: InsnId) {
        self.vta_hits += 1;
    }

    fn global_tda(&self) -> u64 {
        self.tda_hits
    }

    fn global_vta(&self) -> u64 {
        self.vta_hits
    }

    fn apply_increase(&mut self, cfg: &ProtectionConfig) {
        let hv = self.vta_hits.min(u16::MAX as u64) as u16;
        let ht = self.tda_hits.min(u16::MAX as u64) as u16;
        let inc = cfg.pd_increment(hv, ht);
        self.pd = self.pd.saturating_add(inc).min(cfg.max_pd);
    }

    fn apply_decrease(&mut self, cfg: &ProtectionConfig) {
        self.pd = self.pd.saturating_sub(cfg.decrease_step);
    }

    fn reset_hits(&mut self) {
        self.tda_hits = 0;
        self.vta_hits = 0;
    }

    fn mean_pd(&self) -> f64 {
        self.pd as f64
    }

    fn max_stored_pd(&self) -> u8 {
        self.pd
    }
}

/// Shared protection policy, generic over the PD model.
struct ProtectionPolicy<M: PdModel> {
    cfg: ProtectionConfig,
    model: M,
    recency: RecencyArray,
    /// Protected Life per TDA entry (4-bit counter in hardware).
    pl: Vec<u8>,
    /// Instruction ID per TDA entry (7-bit field in hardware).
    line_insn: Vec<InsnId>,
    vta: VictimTagArray,
    /// The VTA entry consumed by the most recent [`ReplacementPolicy::on_miss`]
    /// probe, kept as `(set, tag, owner)` until the miss resolves. If the
    /// miss is bypassed the line never enters the TDA, so the entry is
    /// restored in [`ReplacementPolicy::on_bypass`]; any allocation or a
    /// newer miss clears it. The controller serializes misses through its
    /// pipeline register, so one slot suffices.
    pending_vta: Option<(usize, u64, InsnId)>,
    accesses_this_sample: u32,
    stats: PolicyStats,
}

impl<M: PdModel> ProtectionPolicy<M> {
    fn with_model(cfg: ProtectionConfig, model: M) -> Self {
        let lines = cfg.geom.num_lines();
        ProtectionPolicy {
            recency: RecencyArray::new(cfg.geom.num_sets, cfg.geom.assoc),
            pl: vec![0; lines],
            line_insn: vec![0; lines],
            vta: VictimTagArray::new(cfg.geom.num_sets, cfg.vta_assoc),
            pending_vta: None,
            accesses_this_sample: 0,
            stats: PolicyStats::default(),
            cfg,
            model,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.cfg.geom.assoc + way
    }

    fn run_sample(&mut self) {
        match PdComputation::classify(self.model.global_vta(), self.model.global_tda()) {
            PdComputation::Increase => {
                self.model.apply_increase(&self.cfg);
                self.stats.pd_increases += 1;
            }
            PdComputation::Decrease => {
                self.model.apply_decrease(&self.cfg);
                self.stats.pd_decreases += 1;
            }
            PdComputation::Hold => {}
        }
        self.stats.samples += 1;
        self.stats.mean_pd_milli_sum += (self.model.mean_pd() * 1000.0) as u64;
        self.model.reset_hits();
        self.accesses_this_sample = 0;
    }

    fn refresh_line(&mut self, set: usize, way: usize, insn: InsnId) {
        let i = self.idx(set, way);
        self.line_insn[i] = insn;
        self.pl[i] = self.model.pd_for(insn).min(self.cfg.max_pd);
        self.recency.touch(set, way);
    }
}

impl<M: PdModel> ReplacementPolicy for ProtectionPolicy<M> {
    fn on_query(&mut self, set: usize) {
        self.stats.queries += 1;
        // §4.1.1: every query of a set ages all its protected lives, so
        // protected lines are eventually released even under pure misses.
        let base = set * self.cfg.geom.assoc;
        for way in 0..self.cfg.geom.assoc {
            let pl = &mut self.pl[base + way];
            *pl = pl.saturating_sub(1);
        }
        self.accesses_this_sample += 1;
        if self.accesses_this_sample >= self.cfg.sample_period {
            self.run_sample();
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        // Credit the hit to the instruction recorded in the entry — the
        // one that brought the line in or last hit it (§4.1.1) — then
        // take ownership and rearm the protected life with our PD.
        let owner = self.line_insn[self.idx(set, way)];
        self.model.credit_tda(owner);
        self.refresh_line(set, way, ctx.insn_id);
    }

    fn on_miss(&mut self, set: usize, tag: u64, _ctx: &AccessCtx) {
        self.pending_vta = match self.vta.probe_remove(set, tag) {
            Some(owner) => {
                self.model.credit_vta(owner);
                self.stats.vta_hits += 1;
                Some((set, tag, owner))
            }
            None => None,
        };
    }

    fn decide_replacement(&mut self, set: usize, ways: &[WayView], _ctx: &AccessCtx) -> MissDecision {
        if let Some(way) = ways.iter().position(|w| !w.valid && !w.reserved) {
            return MissDecision::Allocate { way };
        }
        let eligible = |way: usize| {
            ways[way].valid && !ways[way].reserved && self.pl[set * self.cfg.geom.assoc + way] == 0
        };
        if let Some(way) = self.recency.lru_among(set, eligible) {
            return MissDecision::Allocate { way };
        }
        // No way is replaceable: every line is either protected (PL > 0)
        // or reserved by an in-flight fill. §4.1.1 bypasses the miss in
        // this situation rather than contending for the set.
        self.stats.protected_bypasses += 1;
        MissDecision::Bypass
    }

    fn on_evict(&mut self, set: usize, way: usize, tag: u64) {
        let owner = self.line_insn[self.idx(set, way)];
        self.vta.insert(set, tag, owner);
        self.stats.vta_insertions += 1;
    }

    fn on_bypass(&mut self, set: usize, tag: u64, _ctx: &AccessCtx) {
        // The on_miss probe consumed this line's victim tag, but the line
        // is being bypassed and will never enter the TDA. Restore the
        // entry (with its original owner) so a later re-reference still
        // scores a VTA hit instead of the reuse evidence vanishing.
        match self.pending_vta {
            Some((s, t, owner)) if s == set && t == tag => {
                self.pending_vta = None;
                self.vta.insert(set, tag, owner);
                self.stats.vta_reinserted += 1;
            }
            _ => {}
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, _tag: u64, ctx: &AccessCtx) {
        self.refresh_line(set, way, ctx.insn_id);
    }

    fn force_sample(&mut self) {
        if self.accesses_this_sample > 0 {
            self.run_sample();
        }
    }

    fn kind(&self) -> PolicyKind {
        M::KIND
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }

    fn audit(&self) -> Result<(), String> {
        // §4.3 bounds: PLs are 4-bit counters seeded from a PD that is
        // itself capped, so nothing may ever exceed max_pd.
        if let Some((i, &pl)) = self.pl.iter().enumerate().find(|&(_, &pl)| pl > self.cfg.max_pd)
        {
            return Err(format!(
                "protected life {pl} at TDA entry {i} exceeds the PD cap {}",
                self.cfg.max_pd
            ));
        }
        if self.model.max_stored_pd() > self.cfg.max_pd {
            return Err(format!(
                "stored PD {} exceeds the cap {}",
                self.model.max_stored_pd(),
                self.cfg.max_pd
            ));
        }
        let vta_cap = self.cfg.geom.num_sets * self.cfg.vta_assoc;
        if self.vta.occupancy() > vta_cap {
            return Err(format!(
                "VTA holds {} tags but capacity is {vta_cap}",
                self.vta.occupancy()
            ));
        }
        Ok(())
    }
}

/// The paper's Dynamic Line Protection scheme (§4).
pub struct Dlp {
    inner: ProtectionPolicy<PerInsnModel>,
}

impl Dlp {
    /// Build DLP for the given protection configuration.
    pub fn new(cfg: ProtectionConfig) -> Self {
        Dlp { inner: ProtectionPolicy::with_model(cfg, PerInsnModel { pdpt: Pdpt::new() }) }
    }

    /// Current PD of one instruction (tests / diagnostics).
    pub fn pd_of(&self, insn: InsnId) -> u8 {
        self.inner.model.pdpt.pd(insn)
    }

    /// Current protected life of a TDA entry (tests / diagnostics).
    pub fn protected_life(&self, set: usize, way: usize) -> u8 {
        self.inner.pl[self.inner.idx(set, way)]
    }

    /// Read-only access to the PDPT (reports).
    pub fn pdpt(&self) -> &Pdpt {
        &self.inner.model.pdpt
    }
}

impl ReplacementPolicy for Dlp {
    fn on_query(&mut self, set: usize) {
        self.inner.on_query(set);
    }
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.inner.on_hit(set, way, ctx);
    }
    fn on_miss(&mut self, set: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_miss(set, tag, ctx);
    }
    fn decide_replacement(&mut self, set: usize, ways: &[WayView], ctx: &AccessCtx) -> MissDecision {
        self.inner.decide_replacement(set, ways, ctx)
    }
    fn on_evict(&mut self, set: usize, way: usize, tag: u64) {
        self.inner.on_evict(set, way, tag);
    }
    fn on_bypass(&mut self, set: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_bypass(set, tag, ctx);
    }
    fn on_fill(&mut self, set: usize, way: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_fill(set, way, tag, ctx);
    }
    fn force_sample(&mut self) {
        self.inner.force_sample();
    }
    fn pd_snapshot(&self) -> Option<Vec<(InsnId, u8)>> {
        let pdpt = &self.inner.model.pdpt;
        let rows: Vec<(InsnId, u8)> = (0..pdpt.len() as u16)
            .map(|i| i as InsnId)
            .filter(|&i| {
                let e = pdpt.entry(i);
                e.pd > 0 || e.tda_hits > 0 || e.vta_hits > 0
            })
            .map(|i| (i, pdpt.pd(i)))
            .collect();
        Some(rows)
    }
    fn kind(&self) -> PolicyKind {
        self.inner.kind()
    }
    fn stats(&self) -> PolicyStats {
        self.inner.stats()
    }
    fn audit(&self) -> Result<(), String> {
        self.inner.audit()
    }
}

/// The single-PD Global-Protection comparison scheme (§5.3), emulating
/// PDP on the GPU L1D.
pub struct GlobalProtection {
    inner: ProtectionPolicy<GlobalModel>,
}

impl GlobalProtection {
    /// Build Global-Protection for the given configuration.
    pub fn new(cfg: ProtectionConfig) -> Self {
        GlobalProtection {
            inner: ProtectionPolicy::with_model(cfg, GlobalModel { pd: 0, tda_hits: 0, vta_hits: 0 }),
        }
    }

    /// The single global PD (tests / diagnostics).
    pub fn global_pd(&self) -> u8 {
        self.inner.model.pd
    }
}

impl ReplacementPolicy for GlobalProtection {
    fn on_query(&mut self, set: usize) {
        self.inner.on_query(set);
    }
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.inner.on_hit(set, way, ctx);
    }
    fn on_miss(&mut self, set: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_miss(set, tag, ctx);
    }
    fn decide_replacement(&mut self, set: usize, ways: &[WayView], ctx: &AccessCtx) -> MissDecision {
        self.inner.decide_replacement(set, ways, ctx)
    }
    fn on_evict(&mut self, set: usize, way: usize, tag: u64) {
        self.inner.on_evict(set, way, tag);
    }
    fn on_bypass(&mut self, set: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_bypass(set, tag, ctx);
    }
    fn on_fill(&mut self, set: usize, way: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_fill(set, way, tag, ctx);
    }
    fn force_sample(&mut self) {
        self.inner.force_sample();
    }
    fn pd_snapshot(&self) -> Option<Vec<(InsnId, u8)>> {
        // One global PD — report it as a single row under a synthetic
        // instruction id so figures/reports render the same shape as
        // DLP's per-instruction table.
        Some(vec![(0, self.inner.model.pd)])
    }
    fn kind(&self) -> PolicyKind {
        self.inner.kind()
    }
    fn stats(&self) -> PolicyStats {
        self.inner.stats()
    }
    fn audit(&self) -> Result<(), String> {
        self.inner.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtectionConfig {
        ProtectionConfig::paper_default(CacheGeometry::fermi_l1d_16k())
    }

    fn ctx(insn: InsnId) -> AccessCtx {
        AccessCtx { insn_id: insn, is_write: false }
    }

    /// Fill all 4 ways of `set` through the normal miss path.
    fn fill_set(p: &mut Dlp, set: usize, insn: InsnId) {
        for t in 0..4u64 {
            p.on_query(set);
            p.on_miss(set, 100 + t, &ctx(insn));
            let ways: Vec<WayView> =
                (0..t).map(WayView::valid).chain(std::iter::repeat_n(WayView::invalid(), 4 - t as usize)).collect();
            match p.decide_replacement(set, &ways, &ctx(insn)) {
                MissDecision::Allocate { way } => p.on_fill(set, way, 100 + t, &ctx(insn)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn pd_starts_at_zero_and_lines_start_unprotected() {
        let mut p = Dlp::new(cfg());
        fill_set(&mut p, 0, 1);
        // PD is 0 so protected life is 0: a further miss must evict LRU
        // (way 0), not bypass.
        p.on_query(0);
        let ways: Vec<WayView> = (100..104).map(WayView::valid).collect();
        assert_eq!(p.decide_replacement(0, &ways, &ctx(1)), MissDecision::Allocate { way: 0 });
    }

    #[test]
    fn protected_set_bypasses() {
        let mut p = Dlp::new(cfg());
        // Manually arm protection by driving a PD increase: lots of VTA
        // hits, no TDA hits.
        fill_set(&mut p, 0, 1);
        // Evict all four lines so their tags land in the VTA.
        for (way, tag) in (0..4).zip(100..104u64) {
            p.on_evict(0, way, tag);
        }
        // Re-reference the evicted tags -> VTA hits for insn 1.
        for t in 100..104u64 {
            p.on_query(0);
            p.on_miss(0, t, &ctx(1));
        }
        // Close the sample: VTA hits (4) > TDA hits (0) -> PD increase.
        p.force_sample();
        assert!(p.pd_of(1) > 0, "PD must have grown");

        // Refill under the now-positive PD, then ask for a victim: every
        // line is protected, so the miss bypasses.
        fill_set(&mut p, 1, 1);
        p.on_query(1);
        let ways: Vec<WayView> = (100..104).map(WayView::valid).collect();
        assert_eq!(p.decide_replacement(1, &ways, &ctx(1)), MissDecision::Bypass);
        assert!(p.stats().protected_bypasses >= 1);
    }

    #[test]
    fn protection_drains_with_queries() {
        let mut p = Dlp::new(cfg());
        // Arm PD for insn 1 as above.
        fill_set(&mut p, 0, 1);
        for (way, tag) in (0..4).zip(100..104u64) {
            p.on_evict(0, way, tag);
        }
        for t in 100..104u64 {
            p.on_query(0);
            p.on_miss(0, t, &ctx(1));
        }
        p.force_sample();
        let pd = p.pd_of(1);
        assert!(pd > 0);

        fill_set(&mut p, 2, 1);
        // Query the set `pd` times without touching the lines: the
        // protected lives drain to zero and eviction becomes possible.
        for _ in 0..pd {
            p.on_query(2);
        }
        let ways: Vec<WayView> = (100..104).map(WayView::valid).collect();
        assert!(matches!(p.decide_replacement(2, &ways, &ctx(1)), MissDecision::Allocate { .. }));
    }

    #[test]
    fn hit_credits_previous_owner_not_current() {
        let mut p = Dlp::new(cfg());
        fill_set(&mut p, 0, 5); // lines owned by insn 5
        p.on_query(0);
        p.on_hit(0, 2, &ctx(9)); // insn 9 hits a line owned by insn 5
        assert_eq!(p.pdpt().entry(5).tda_hits, 1, "credit goes to the stored owner");
        assert_eq!(p.pdpt().entry(9).tda_hits, 0);
        // Ownership transferred: a second hit credits insn 9.
        p.on_query(0);
        p.on_hit(0, 2, &ctx(3));
        assert_eq!(p.pdpt().entry(9).tda_hits, 1);
    }

    #[test]
    fn decrease_path_shrinks_pds() {
        let mut p = Dlp::new(cfg());
        fill_set(&mut p, 0, 1);
        // Arm a PD first.
        for (way, tag) in (0..4).zip(100..104u64) {
            p.on_evict(0, way, tag);
        }
        for t in 100..104u64 {
            p.on_query(0);
            p.on_miss(0, t, &ctx(1));
        }
        p.force_sample();
        let armed = p.pd_of(1);
        assert!(armed >= 4);

        // Now a sample with only TDA hits -> decrease by Nasc (4).
        fill_set(&mut p, 1, 1);
        for _ in 0..8 {
            p.on_query(1);
            p.on_hit(1, 0, &ctx(1));
        }
        p.force_sample();
        assert_eq!(p.pd_of(1), armed - 4);
    }

    #[test]
    fn global_protection_uses_one_pd_for_all_insns() {
        let mut p = GlobalProtection::new(cfg());
        // VTA hits from insn 7 only.
        p.on_query(0);
        p.on_miss(0, 50, &ctx(7));
        let ways = vec![WayView::invalid(); 4];
        if let MissDecision::Allocate { way } = p.decide_replacement(0, &ways, &ctx(7)) {
            p.on_fill(0, way, 50, &ctx(7));
        }
        p.on_evict(0, 0, 50);
        p.on_query(0);
        p.on_miss(0, 50, &ctx(7));
        p.force_sample();
        let pd = p.global_pd();
        assert!(pd > 0);
        // The PD applies to a totally different instruction too: its
        // fills are protected.
        p.on_query(1);
        let ways = vec![WayView::invalid(); 4];
        if let MissDecision::Allocate { way } = p.decide_replacement(1, &ways, &ctx(99)) {
            p.on_fill(1, way, 60, &ctx(99));
        }
        assert_eq!(p.inner.pl[p.inner.idx(1, 0)], pd);
    }

    #[test]
    fn sampling_fires_automatically_at_period() {
        let small = ProtectionConfig { sample_period: 10, ..cfg() };
        let mut p = Dlp::new(small);
        for _ in 0..10 {
            p.on_query(0);
        }
        assert_eq!(p.stats().samples, 1);
        for _ in 0..9 {
            p.on_query(0);
        }
        assert_eq!(p.stats().samples, 1);
        p.on_query(0);
        assert_eq!(p.stats().samples, 2);
    }

    #[test]
    fn all_reserved_bypasses_like_all_protected() {
        // A reserved way is as unreplaceable as a protected one: the
        // §4.1.1 bypass covers both, so DLP never parks a miss on a
        // saturated set.
        let mut p = Dlp::new(cfg());
        let ways = vec![WayView::reserved(); 4];
        assert_eq!(p.decide_replacement(0, &ways, &ctx(0)), MissDecision::Bypass);
        assert!(!p.bypass_on_stall(), "structural MSHR stalls still park");
    }

    #[test]
    fn bypassed_miss_restores_vta_entry_for_re_reference() {
        // Regression for the bypass/VTA interaction: the on_miss probe
        // consumes the victim tag, but if the miss is then bypassed the
        // line never re-enters the TDA — the entry must be restored so a
        // re-reference of the same line still scores a VTA hit.
        let mut p = Dlp::new(cfg());
        fill_set(&mut p, 0, 1);
        // Evict one line so its tag (100) lands in the VTA.
        p.on_evict(0, 0, 100);
        assert_eq!(p.stats().vta_insertions, 1);

        // Re-reference tag 100: VTA hit, entry consumed...
        p.on_query(0);
        p.on_miss(0, 100, &ctx(1));
        assert_eq!(p.stats().vta_hits, 1);
        // ...and the controller bypasses the miss (e.g. protected set).
        p.on_bypass(0, 100, &ctx(1));
        assert_eq!(p.stats().vta_reinserted, 1);

        // A second re-reference must still find the tag in the VTA.
        p.on_query(0);
        p.on_miss(0, 100, &ctx(1));
        assert_eq!(p.stats().vta_hits, 2, "bypass must not erase the victim tag");

        // Without a bypass (the miss allocated), a later miss to the
        // same tag finds nothing: the entry really was consumed.
        p.on_query(0);
        p.on_miss(0, 100, &ctx(1));
        assert_eq!(p.stats().vta_hits, 2);
    }

    #[test]
    fn on_bypass_ignores_unrelated_tags() {
        let mut p = Dlp::new(cfg());
        fill_set(&mut p, 0, 1);
        p.on_evict(0, 0, 100);
        p.on_query(0);
        p.on_miss(0, 100, &ctx(1));
        // A bypass of a *different* line must not resurrect tag 100.
        p.on_bypass(0, 999, &ctx(1));
        assert_eq!(p.stats().vta_reinserted, 0);
        p.on_query(0);
        p.on_miss(0, 100, &ctx(1));
        assert_eq!(p.stats().vta_hits, 1, "consumed entry stays consumed");
    }

    #[test]
    fn global_protection_snapshot_is_single_row() {
        let p = GlobalProtection::new(cfg());
        assert_eq!(p.pd_snapshot(), Some(vec![(0, 0)]));
    }

    #[test]
    fn pd_capped_at_four_bits() {
        let mut p = Dlp::new(cfg());
        // Repeatedly drive maximal increases: fill a line for insn 1,
        // evict it, then re-reference it so the VTA hit is credited to
        // insn 1 with zero TDA hits in the sample.
        for round in 0..10u64 {
            let tag = 1000 + round;
            p.on_query(0);
            p.on_miss(0, tag, &ctx(1));
            p.on_fill(0, 0, tag, &ctx(1));
            p.on_evict(0, 0, tag);
            p.on_query(0);
            p.on_miss(0, tag, &ctx(1)); // VTA hit credited to insn 1
            p.force_sample();
        }
        assert!(p.pd_of(1) <= PD_MAX);
        assert_eq!(p.pd_of(1), PD_MAX, "repeated max increments must saturate");
    }
}
