//! # dlp-core — Dynamic Line Protection for GPU L1D caches
//!
//! This crate implements the cache-management schemes studied in
//! *"Improving First Level Cache Efficiency for GPUs Using Dynamic Line
//! Protection"* (Zhu, Wernsman, Zambreno — ICPP 2018):
//!
//! * [`LruBaseline`] — the plain LRU replacement used by the baseline
//!   16 KB / 32-set / 4-way Fermi-style L1D cache,
//! * [`StallBypass`] — LRU plus a bypass path taken whenever the L1D
//!   stalls structurally (full MSHR, full miss queue, or a set with no
//!   reservable way),
//! * [`GlobalProtection`] — a single-protection-distance adaptation of
//!   PDP (Duong et al., MICRO 2012) driven by global victim-tag-array
//!   feedback,
//! * [`Dlp`] — the paper's contribution: per-memory-instruction
//!   protection distances predicted at runtime from TDA/VTA hit
//!   feedback collected in a 128-entry Protection Distance Prediction
//!   Table ([`Pdpt`]).
//!
//! The crate is deliberately independent of any particular simulator:
//! a policy is driven through the [`ReplacementPolicy`] trait by
//! whatever owns the tag array (in this workspace, `gpu-mem`'s L1D
//! controller). All state a scheme needs beyond the tags themselves —
//! recency stamps, protected-life counters, the victim tag array, the
//! PDPT — lives inside the policy object, mirroring the hardware
//! organization of Figure 8 in the paper.
//!
//! ## Quick example
//!
//! ```
//! use dlp_core::{CacheGeometry, Dlp, ProtectionConfig, ReplacementPolicy, AccessCtx, MissDecision, WayView};
//!
//! let geom = CacheGeometry::fermi_l1d_16k();
//! let mut dlp = Dlp::new(ProtectionConfig::paper_default(geom));
//! let ctx = AccessCtx { insn_id: dlp_core::hash_pc(0x1a0), is_write: false };
//!
//! // A miss in an empty set allocates into an invalid way.
//! dlp.on_query(3);
//! dlp.on_miss(3, 0xdead, &ctx);
//! let ways = vec![WayView::invalid(); geom.assoc];
//! match dlp.decide_replacement(3, &ways, &ctx) {
//!     MissDecision::Allocate { way } => dlp.on_fill(3, way, 0xdead, &ctx),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Unit tests exercise failure paths where unwrap/expect is the point;
// the unwrap_used/expect_used denies apply to shipping simulator code.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod geometry;
pub mod insn;
pub mod overhead;
pub mod pd;
pub mod pdpt;
pub mod policy;
pub mod protection;
pub mod recency;
pub mod stats;
pub mod vta;

pub use baseline::{LruBaseline, StallBypass};
pub use geometry::CacheGeometry;
pub use insn::{hash_pc, pc_wraps, InsnId, INSN_ID_BITS, PDPT_ENTRIES};
pub use overhead::{dlp_overhead, OverheadReport};
pub use pd::{pd_adjustment, PdComputation};
pub use pdpt::{Pdpt, PdptEntry};
pub use policy::{AccessCtx, MissDecision, PolicyKind, ReplacementPolicy, WayView};
pub use protection::{Dlp, GlobalProtection, ProtectionConfig};
pub use stats::PolicyStats;
pub use vta::VictimTagArray;

/// Build a boxed policy of the given [`PolicyKind`] for a cache with the
/// given geometry, using the paper's default protection parameters.
///
/// This is the convenience constructor used by the simulator and the
/// experiment harness; tests that need non-default protection parameters
/// construct [`Dlp`] / [`GlobalProtection`] directly.
pub fn build_policy(kind: PolicyKind, geom: CacheGeometry) -> Box<dyn ReplacementPolicy> {
    match kind {
        PolicyKind::Baseline => Box::new(LruBaseline::new(geom)),
        PolicyKind::StallBypass => Box::new(StallBypass::new(geom)),
        PolicyKind::GlobalProtection => {
            Box::new(GlobalProtection::new(ProtectionConfig::paper_default(geom)))
        }
        PolicyKind::Dlp => Box::new(Dlp::new(ProtectionConfig::paper_default(geom))),
    }
}
