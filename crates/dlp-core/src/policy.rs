//! The replacement-policy interface between a cache controller and a
//! management scheme.
//!
//! The cache controller (e.g. `gpu-mem`'s L1D) owns the tag array and the
//! miss-handling machinery; the policy owns everything a scheme adds on
//! top — recency state, protected-life counters, the victim tag array and
//! the PDPT. The controller drives the policy through the hooks below in
//! a fixed order per access:
//!
//! 1. [`ReplacementPolicy::on_query`] — once per *new* access to a set
//!    (a stalled access retrying in the pipeline register does **not**
//!    re-query; the paper decrements protected life per memory request,
//!    not per retry cycle).
//! 2. On a tag hit: [`ReplacementPolicy::on_hit`].
//! 3. On a tag miss: [`ReplacementPolicy::on_miss`] (VTA probe), then —
//!    if the request wants to allocate — [`ReplacementPolicy::decide_replacement`].
//! 4. If the decision was `Allocate` onto a valid line, the controller
//!    evicts it and reports the eviction via [`ReplacementPolicy::on_evict`]
//!    before reserving the way; when the fill returns it calls
//!    [`ReplacementPolicy::on_fill`].

use crate::insn::InsnId;
use crate::stats::PolicyStats;

/// Which of the four schemes of the paper to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// Plain LRU (the 16 KB baseline configuration).
    Baseline,
    /// LRU + bypass-on-structural-stall (§5.3 "Stall-Bypass").
    StallBypass,
    /// Single global protection distance (§5.3 "Global-Protection").
    GlobalProtection,
    /// Per-instruction dynamic line protection (§4, the contribution).
    Dlp,
}

impl PolicyKind {
    /// All four schemes in the order the paper's figures list them.
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::Baseline, PolicyKind::StallBypass, PolicyKind::GlobalProtection, PolicyKind::Dlp];

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "16KB(Baseline)",
            PolicyKind::StallBypass => "Stall-Bypass",
            PolicyKind::GlobalProtection => "Global-Protection",
            PolicyKind::Dlp => "DLP",
        }
    }
}

/// Per-access context handed to every policy hook.
#[derive(Clone, Copy, Debug)]
pub struct AccessCtx {
    /// Hashed PC of the memory instruction issuing the access.
    pub insn_id: InsnId,
    /// Whether this is a store. With the write-back, write-allocate L1D
    /// modeled in `gpu-mem`, stores participate in protection exactly
    /// like loads (they allocate lines and therefore need a PD); the
    /// flag is exposed for schemes that want to differentiate.
    pub is_write: bool,
}

/// What the controller exposes about one way when asking for a victim.
#[derive(Clone, Copy, Debug)]
pub struct WayView {
    /// The way holds a valid line.
    pub valid: bool,
    /// The way is reserved by an in-flight fill and must not be touched.
    pub reserved: bool,
    /// Tag of the resident line (meaningful only if `valid`).
    pub tag: u64,
}

impl WayView {
    /// An empty, allocatable way.
    pub fn invalid() -> Self {
        WayView { valid: false, reserved: false, tag: 0 }
    }

    /// A resident, evictable line with the given tag.
    pub fn valid(tag: u64) -> Self {
        WayView { valid: true, reserved: false, tag }
    }

    /// A way reserved by an outstanding fill.
    pub fn reserved() -> Self {
        WayView { valid: false, reserved: true, tag: 0 }
    }

    /// Can the controller place a new line here right now?
    #[inline]
    pub fn evictable(&self) -> bool {
        !self.reserved
    }
}

/// Outcome of [`ReplacementPolicy::decide_replacement`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissDecision {
    /// Reserve `way` for the incoming line (evicting its current
    /// occupant first if valid).
    Allocate {
        /// Victim way index.
        way: usize,
    },
    /// Forward the request to the next level without allocating
    /// (the paper's bypass path).
    Bypass,
    /// Nothing can be allocated and the scheme does not bypass: the
    /// request parks in the pipeline register and retries.
    Stall,
}

/// A cache-management scheme pluggable into the L1D controller.
pub trait ReplacementPolicy: Send {
    /// A new access (load or store, hit or miss) queries `set`.
    fn on_query(&mut self, set: usize);

    /// The access hit `way` in `set`.
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx);

    /// The access missed in the tag array; `tag` identifies the wanted
    /// line. Protection schemes probe their victim tag array here.
    fn on_miss(&mut self, set: usize, tag: u64, ctx: &AccessCtx);

    /// Pick a victim way / bypass / stall for a miss that wants to
    /// allocate. `ways[i].reserved` ways must not be chosen.
    fn decide_replacement(&mut self, set: usize, ways: &[WayView], ctx: &AccessCtx) -> MissDecision;

    /// A valid line with `tag` was evicted from `way` (capacity or
    /// write-evict). Protection schemes push it into the VTA.
    fn on_evict(&mut self, set: usize, way: usize, tag: u64);

    /// The miss for `tag` was ultimately **bypassed** — the line will
    /// never enter the tag array. Protection schemes restore the victim
    /// tag their [`ReplacementPolicy::on_miss`] probe consumed, so a
    /// later re-reference of the bypassed line still registers as a VTA
    /// hit (otherwise bypasses would silently erase reuse evidence and
    /// deflate the measured PDs).
    fn on_bypass(&mut self, set: usize, tag: u64, ctx: &AccessCtx) {
        let _ = (set, tag, ctx);
    }

    /// The fill for an earlier `Allocate` decision landed in `way`.
    fn on_fill(&mut self, set: usize, way: usize, tag: u64, ctx: &AccessCtx);

    /// Should a *structurally* stalled access (MSHR full, miss queue
    /// full, or all ways reserved) bypass instead of stalling?
    fn bypass_on_stall(&self) -> bool {
        false
    }

    /// Would [`ReplacementPolicy::decide_replacement`] return
    /// [`MissDecision::Stall`] for this set **without mutating any
    /// state**? Used by the cycle-leap event core to classify a parked
    /// access's stall reason read-only. The default `false` is correct
    /// for every scheme that never stalls (Stall-Bypass converts stalls
    /// to bypasses; the protection schemes treat a fully reserved set
    /// like a fully protected one and bypass, §4.1.1); only plain LRU
    /// overrides it.
    fn replacement_would_stall(&self, set: usize, ways: &[WayView]) -> bool {
        let _ = (set, ways);
        false
    }

    /// Force the current sampling period to end (used to bound sampling
    /// time for cache-sufficient kernels with few loads, §4.1.4).
    /// No-op for schemes without sampling.
    fn force_sample(&mut self) {}

    /// Snapshot of the per-instruction protection distances, for
    /// schemes that keep them (`None` otherwise). Rows are
    /// `(instruction id, current PD)` for instructions with any
    /// activity this run.
    fn pd_snapshot(&self) -> Option<Vec<(InsnId, u8)>> {
        None
    }

    /// Structural self-check for the runtime invariant auditor:
    /// scheme-internal state must be within its configured bounds
    /// (protected-life counters ≤ the PD cap, victim tags within the
    /// VTA's reach). Schemes without internal state have nothing to
    /// check.
    fn audit(&self) -> Result<(), String> {
        Ok(())
    }

    /// Scheme name for reports.
    fn kind(&self) -> PolicyKind;

    /// Scheme-internal statistics (bypasses, samples, PD trajectory...).
    fn stats(&self) -> PolicyStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wayview_constructors() {
        assert!(WayView::invalid().evictable());
        assert!(WayView::valid(7).evictable());
        assert!(!WayView::reserved().evictable());
        assert!(WayView::valid(7).valid);
        assert_eq!(WayView::valid(7).tag, 7);
    }

    #[test]
    fn policy_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            PolicyKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
