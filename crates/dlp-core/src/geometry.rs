//! Cache geometry and address → (set, tag) decomposition.
//!
//! The paper's baseline L1D (Table 1) is 16 KB organized as 32 sets ×
//! 4 ways × 128-byte lines with a *hash* set index; the L2 slices use a
//! *linear* index. Both index functions are implemented here so the same
//! geometry type serves every cache level in the workspace.

use serde::{Deserialize, Serialize};

/// Set-index function applied to the line address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexFunction {
    /// `set = line_addr % num_sets` — used by the L2 slices (Table 1).
    Linear,
    /// XOR-folded hash of the line address — used by the Fermi L1D
    /// (Table 1 lists "Hash index"). Folding the upper address bits into
    /// the index spreads power-of-two strides across sets, which is what
    /// the real hash achieves.
    Hash,
}

/// Static shape of one cache: line size, number of sets, associativity,
/// and the set-index function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Bytes per cache line. The paper's GPU uses 128-byte lines at both
    /// levels.
    pub line_bytes: u64,
    /// Number of sets.
    pub num_sets: usize,
    /// Ways per set.
    pub assoc: usize,
    /// How a line address is mapped to a set.
    pub index_fn: IndexFunction,
}

impl CacheGeometry {
    /// The paper's baseline L1D: 16 KB, 32 sets, 4 ways, 128 B lines,
    /// hash-indexed (Table 1).
    pub fn fermi_l1d_16k() -> Self {
        CacheGeometry { line_bytes: 128, num_sets: 32, assoc: 4, index_fn: IndexFunction::Hash }
    }

    /// The 32 KB comparison configuration (§5.3): associativity doubled
    /// to 8 ways, everything else unchanged.
    pub fn fermi_l1d_32k() -> Self {
        CacheGeometry { assoc: 8, ..Self::fermi_l1d_16k() }
    }

    /// The 64 KB configuration used by Figures 4 and 5: 16 ways.
    pub fn fermi_l1d_64k() -> Self {
        CacheGeometry { assoc: 16, ..Self::fermi_l1d_16k() }
    }

    /// One L2 slice: the 768 KB L2 is spread over 12 memory partitions,
    /// 64 KB per slice = 64 sets × 8 ways × 128 B, linearly indexed
    /// (Table 1).
    pub fn fermi_l2_slice() -> Self {
        CacheGeometry { line_bytes: 128, num_sets: 64, assoc: 8, index_fn: IndexFunction::Linear }
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.line_bytes * (self.num_sets as u64) * (self.assoc as u64)
    }

    /// Total number of lines (TDA entries).
    pub fn num_lines(&self) -> usize {
        self.num_sets * self.assoc
    }

    /// The line address (byte address with the intra-line offset stripped).
    #[inline]
    pub fn line_addr(&self, byte_addr: u64) -> u64 {
        byte_addr / self.line_bytes
    }

    /// Map a *line address* to its set.
    #[inline]
    pub fn set_of_line(&self, line_addr: u64) -> usize {
        debug_assert!(self.num_sets.is_power_of_two());
        let mask = (self.num_sets - 1) as u64;
        match self.index_fn {
            IndexFunction::Linear => (line_addr & mask) as usize,
            IndexFunction::Hash => {
                // Fold three higher windows of the line address onto the
                // index bits. This mirrors the XOR-based set hash used by
                // Fermi-class L1Ds to break up power-of-two strides.
                let bits = self.num_sets.trailing_zeros();
                let a = line_addr;
                let folded = a ^ (a >> bits) ^ (a >> (2 * bits)) ^ (a >> (3 * bits));
                (folded & mask) as usize
            }
        }
    }

    /// Map a *line address* to its tag (everything above the line offset;
    /// since the set index is hashed we keep the full line address as the
    /// tag, which is what a hash-indexed hardware tag array must do too).
    #[inline]
    pub fn tag_of_line(&self, line_addr: u64) -> u64 {
        line_addr
    }

    /// Decompose a byte address into `(set, tag)`.
    #[inline]
    pub fn locate(&self, byte_addr: u64) -> (usize, u64) {
        let line = self.line_addr(byte_addr);
        (self.set_of_line(line), self.tag_of_line(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_capacity_matches_table1() {
        let g = CacheGeometry::fermi_l1d_16k();
        assert_eq!(g.capacity_bytes(), 16 * 1024);
        assert_eq!(g.num_lines(), 128);
    }

    #[test]
    fn doubled_assoc_doubles_capacity() {
        assert_eq!(CacheGeometry::fermi_l1d_32k().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheGeometry::fermi_l1d_64k().capacity_bytes(), 64 * 1024);
    }

    #[test]
    fn l2_slice_is_64k() {
        assert_eq!(CacheGeometry::fermi_l2_slice().capacity_bytes(), 64 * 1024);
    }

    #[test]
    fn linear_index_wraps() {
        let g = CacheGeometry { index_fn: IndexFunction::Linear, ..CacheGeometry::fermi_l1d_16k() };
        assert_eq!(g.set_of_line(0), 0);
        assert_eq!(g.set_of_line(31), 31);
        assert_eq!(g.set_of_line(32), 0);
        assert_eq!(g.set_of_line(33), 1);
    }

    #[test]
    fn hash_index_within_range_and_deterministic() {
        let g = CacheGeometry::fermi_l1d_16k();
        for line in 0u64..10_000 {
            let s = g.set_of_line(line);
            assert!(s < g.num_sets);
            assert_eq!(s, g.set_of_line(line), "set mapping must be deterministic");
        }
    }

    #[test]
    fn hash_index_spreads_power_of_two_strides() {
        // A stride equal to num_sets lines maps everything to one set
        // under the linear index; the hash index must spread it.
        let g = CacheGeometry::fermi_l1d_16k();
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..64 {
            seen.insert(g.set_of_line(i * g.num_sets as u64));
        }
        assert!(seen.len() > g.num_sets / 2, "hash index spread only {} sets", seen.len());
    }

    #[test]
    fn locate_strips_line_offset() {
        let g = CacheGeometry::fermi_l1d_16k();
        let (s0, t0) = g.locate(0x1000);
        let (s1, t1) = g.locate(0x1000 + 127);
        assert_eq!((s0, t0), (s1, t1));
        let (_, t2) = g.locate(0x1000 + 128);
        assert_ne!(t0, t2);
    }
}
