//! Hardware-cost model for the DLP additions (§4.3).
//!
//! The paper accounts, for the baseline 16 KB / 32-set / 4-way L1D:
//!
//! * per TDA entry: 7-bit instruction ID + 4-bit protected life
//!   → 128 entries × 11 bits = 1408 bits = **176 bytes**,
//! * per VTA entry: 32-bit tag + 7-bit instruction ID
//!   → 128 entries × 39 bits = 4992 bits = **624 bytes**,
//! * per PDPT entry: 7-bit ID + 8-bit TDA hits + 10-bit VTA hits +
//!   4-bit PD → 128 entries × 29 bits = 3712 bits = **464 bytes**,
//!
//! for a total of **1264 bytes**, i.e. 7.48 % of the 16896-byte baseline
//! cache (16 KB data + 704 B of 44-bit tag state).

use crate::geometry::CacheGeometry;
use crate::insn::{INSN_ID_BITS, PDPT_ENTRIES};

/// Bit widths of the added fields, fixed by §4.3.
pub const PL_BITS: u64 = 4;
/// VTA tag width assumed by the paper's accounting.
pub const VTA_TAG_BITS: u64 = 32;
/// PDPT per-entry TDA-hits counter width.
pub const PDPT_TDA_HITS_BITS: u64 = 8;
/// PDPT per-entry VTA-hits counter width.
pub const PDPT_VTA_HITS_BITS: u64 = 10;
/// PDPT per-entry PD field width.
pub const PDPT_PD_BITS: u64 = 4;

/// Storage cost breakdown of a DLP deployment, in bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadReport {
    /// Extra bits added to the TDA (instruction IDs + protected lives).
    pub tda_extra_bytes: u64,
    /// The whole VTA (tags + instruction IDs).
    pub vta_bytes: u64,
    /// The whole PDPT.
    pub pdpt_bytes: u64,
    /// Baseline cache size used as the denominator (data + tag state).
    pub baseline_bytes: u64,
}

impl OverheadReport {
    /// Total added storage.
    pub fn total_extra_bytes(&self) -> u64 {
        self.tda_extra_bytes + self.vta_bytes + self.pdpt_bytes
    }

    /// Overhead as a fraction of the baseline cache.
    pub fn fraction_of_baseline(&self) -> f64 {
        self.total_extra_bytes() as f64 / self.baseline_bytes as f64
    }
}

/// Compute the DLP storage overhead for a cache of the given geometry
/// with a VTA of `vta_entries` entries, following the §4.3 accounting.
pub fn dlp_overhead(geom: CacheGeometry, vta_entries: u64) -> OverheadReport {
    let tda_entries = geom.num_lines() as u64;
    let insn_bits = INSN_ID_BITS as u64;

    let tda_extra_bits = tda_entries * (insn_bits + PL_BITS);
    let vta_bits = vta_entries * (VTA_TAG_BITS + insn_bits);
    let pdpt_bits = (PDPT_ENTRIES as u64)
        * (insn_bits + PDPT_TDA_HITS_BITS + PDPT_VTA_HITS_BITS + PDPT_PD_BITS);

    // §4.3 uses 16896 B for the baseline: 16384 B of data plus 512 B of
    // tag storage (128 tags × 32 bits).
    let baseline_bytes = geom.capacity_bytes() + tda_entries * VTA_TAG_BITS / 8;

    OverheadReport {
        tda_extra_bytes: tda_extra_bits / 8,
        vta_bytes: vta_bits / 8,
        pdpt_bytes: pdpt_bits / 8,
        baseline_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let g = CacheGeometry::fermi_l1d_16k();
        let r = dlp_overhead(g, g.num_lines() as u64);
        assert_eq!(r.tda_extra_bytes, 176);
        assert_eq!(r.vta_bytes, 624);
        assert_eq!(r.pdpt_bytes, 464);
        assert_eq!(r.total_extra_bytes(), 1264);
        assert_eq!(r.baseline_bytes, 16896);
        let pct = r.fraction_of_baseline() * 100.0;
        assert!((pct - 7.48).abs() < 0.02, "overhead {pct:.2}% != paper's 7.48%");
    }

    #[test]
    fn overhead_scales_with_vta_size() {
        let g = CacheGeometry::fermi_l1d_16k();
        let small = dlp_overhead(g, 64);
        let big = dlp_overhead(g, 256);
        assert!(big.total_extra_bytes() > small.total_extra_bytes());
        assert_eq!(big.tda_extra_bytes, small.tda_extra_bytes, "TDA cost independent of VTA");
    }
}
