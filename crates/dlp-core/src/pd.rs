//! Protection-distance computation (§4.2, Figure 9).
//!
//! At the end of each sampling period the scheme compares the *global*
//! VTA and TDA hit counts:
//!
//! * `VTA > TDA` — lines are being reused mostly *after* eviction, so
//!   protection should grow. Each instruction's PD is incremented by
//!   `Nasc × ⌊HitVTA / HitTDA⌋`, implemented with the paper's
//!   *step comparison*: `HitVTA` is compared against `4×`, `2×`, `1×`
//!   and `½×` `HitTDA`, the first comparison that holds selecting a
//!   multiplier of `4`, `2`, `1` or `½` applied to `Nasc` by shifting.
//!   The `4×Nasc` step doubles as the anti-over-protection cap.
//! * `VTA < ½ TDA` — resident lines already absorb the reuse, so all
//!   PDs are decreased by `Nasc`.
//! * otherwise — PDs are left alone.

/// The per-instruction PD increment selected by step comparison.
///
/// `nasc` is the VTA associativity (4 in the paper's configuration).
/// `hit_vta` / `hit_tda` are this instruction's hit counts in the
/// finished sample. An instruction with VTA hits but *zero* TDA hits is
/// reusing lines exclusively after eviction, so it takes the maximum
/// step; an instruction with no VTA hits needs no extra protection.
#[inline]
pub fn pd_adjustment(nasc: u8, hit_vta: u16, hit_tda: u16) -> u8 {
    if hit_vta == 0 {
        return 0;
    }
    let hv = hit_vta as u32;
    let ht = hit_tda as u32;
    if ht == 0 || hv >= ht << 2 {
        (nasc as u32) << 2
    } else if hv >= ht << 1 {
        (nasc as u32) << 1
    } else if hv >= ht {
        nasc as u32
    } else if 2 * hv >= ht {
        (nasc >> 1) as u32
    } else {
        0
    }
    .min(u8::MAX as u32) as u8
}

/// Which arm of Figure 9 a finished sample takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PdComputation {
    /// Global VTA hits exceed global TDA hits: grow PDs per instruction.
    Increase,
    /// Global VTA hits below half of global TDA hits: shrink all PDs by
    /// `Nasc`.
    Decrease,
    /// In between: leave PDs unchanged.
    Hold,
}

impl PdComputation {
    /// Classify a finished sample from the global hit counters.
    #[inline]
    pub fn classify(global_vta_hits: u64, global_tda_hits: u64) -> Self {
        if global_vta_hits > global_tda_hits {
            PdComputation::Increase
        } else if 2 * global_vta_hits < global_tda_hits {
            PdComputation::Decrease
        } else {
            PdComputation::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NASC: u8 = 4;

    #[test]
    fn no_vta_hits_means_no_increment() {
        assert_eq!(pd_adjustment(NASC, 0, 0), 0);
        assert_eq!(pd_adjustment(NASC, 0, 100), 0);
    }

    #[test]
    fn steps_match_the_paper() {
        // HitVTA >= 4*HitTDA -> 4*Nasc
        assert_eq!(pd_adjustment(NASC, 40, 10), 16);
        // HitVTA >= 2*HitTDA -> 2*Nasc
        assert_eq!(pd_adjustment(NASC, 20, 10), 8);
        // HitVTA >= HitTDA -> Nasc
        assert_eq!(pd_adjustment(NASC, 10, 10), 4);
        // HitVTA >= HitTDA/2 -> Nasc/2
        assert_eq!(pd_adjustment(NASC, 5, 10), 2);
        // Below half -> 0
        assert_eq!(pd_adjustment(NASC, 4, 10), 0);
    }

    #[test]
    fn vta_hits_without_tda_hits_takes_max_step() {
        assert_eq!(pd_adjustment(NASC, 1, 0), 16);
    }

    #[test]
    fn cap_is_four_times_nasc() {
        assert_eq!(pd_adjustment(NASC, 10_000, 1), 4 * NASC);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(PdComputation::classify(11, 10), PdComputation::Increase);
        assert_eq!(PdComputation::classify(10, 10), PdComputation::Hold);
        assert_eq!(PdComputation::classify(5, 10), PdComputation::Hold); // exactly half
        assert_eq!(PdComputation::classify(4, 10), PdComputation::Decrease);
        assert_eq!(PdComputation::classify(0, 1), PdComputation::Decrease);
        assert_eq!(PdComputation::classify(0, 0), PdComputation::Hold);
    }

    #[test]
    fn monotone_in_vta_hits() {
        let mut last = 0;
        for hv in 0..200u16 {
            let adj = pd_adjustment(NASC, hv, 20);
            assert!(adj >= last, "adjustment must not shrink as VTA hits grow");
            last = adj;
        }
    }
}
