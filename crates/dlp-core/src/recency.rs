//! Per-set LRU recency tracking shared by every scheme.
//!
//! All four schemes in the paper fall back to LRU ordering when choosing
//! among equally eligible victims, so the recency machinery lives in one
//! place. We use monotonically increasing 64-bit stamps per way; the LRU
//! way is the one with the smallest stamp. Stamps are per-cache, so a
//! stamp comparison across sets is meaningless but never performed.

/// LRU stamps for a `num_sets × assoc` tag array.
#[derive(Clone, Debug)]
pub struct RecencyArray {
    assoc: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl RecencyArray {
    /// Create with all ways at stamp 0 (i.e. all equally old).
    pub fn new(num_sets: usize, assoc: usize) -> Self {
        RecencyArray { assoc, stamps: vec![0; num_sets * assoc], clock: 0 }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        debug_assert!(way < self.assoc);
        set * self.assoc + way
    }

    /// Mark `way` of `set` as most recently used.
    #[inline]
    pub fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.clock;
    }

    /// Stamp of a way (smaller = older).
    #[inline]
    pub fn stamp(&self, set: usize, way: usize) -> u64 {
        self.stamps[self.idx(set, way)]
    }

    /// Least recently used way among those for which `eligible(way)` is
    /// true. Returns `None` when no way is eligible.
    pub fn lru_among(&self, set: usize, mut eligible: impl FnMut(usize) -> bool) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for way in 0..self.assoc {
            if !eligible(way) {
                continue;
            }
            let s = self.stamp(set, way);
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some((way, s));
            }
        }
        best.map(|(w, _)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_ways_are_oldest() {
        let mut r = RecencyArray::new(4, 4);
        r.touch(0, 1);
        r.touch(0, 2);
        // Ways 0 and 3 never touched; LRU must be one of them (way 0, the
        // first scanned, by tie-break).
        assert_eq!(r.lru_among(0, |_| true), Some(0));
    }

    #[test]
    fn lru_order_follows_touches() {
        let mut r = RecencyArray::new(1, 4);
        for w in [0, 1, 2, 3] {
            r.touch(0, w);
        }
        assert_eq!(r.lru_among(0, |_| true), Some(0));
        r.touch(0, 0);
        assert_eq!(r.lru_among(0, |_| true), Some(1));
    }

    #[test]
    fn eligibility_filter_respected() {
        let mut r = RecencyArray::new(1, 4);
        for w in [0, 1, 2, 3] {
            r.touch(0, w);
        }
        assert_eq!(r.lru_among(0, |w| w != 0), Some(1));
        assert_eq!(r.lru_among(0, |_| false), None);
    }

    #[test]
    fn sets_are_independent() {
        let mut r = RecencyArray::new(2, 2);
        r.touch(0, 0);
        r.touch(0, 1);
        // Set 1 untouched: both stamps 0, LRU picks way 0.
        assert_eq!(r.lru_among(1, |_| true), Some(0));
        assert_eq!(r.lru_among(0, |_| true), Some(0));
    }
}
