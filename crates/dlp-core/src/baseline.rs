//! The two non-protecting schemes: plain LRU and Stall-Bypass.

use crate::geometry::CacheGeometry;
use crate::policy::{AccessCtx, MissDecision, PolicyKind, ReplacementPolicy, WayView};
use crate::recency::RecencyArray;
use crate::stats::PolicyStats;

/// Plain LRU replacement — the paper's baseline 16 KB configuration.
///
/// A miss allocates into an invalid way if one exists, otherwise the
/// least-recently-used non-reserved way. If every way is reserved by an
/// in-flight fill the access stalls in the pipeline register (§2).
pub struct LruBaseline {
    recency: RecencyArray,
    stats: PolicyStats,
}

impl LruBaseline {
    /// Create for a cache of the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        LruBaseline { recency: RecencyArray::new(geom.num_sets, geom.assoc), stats: PolicyStats::default() }
    }

    /// The replacement decision [`ReplacementPolicy::decide_replacement`]
    /// will make for this set, computed without touching any state.
    ///
    /// Public because LRU victim selection is side-effect-free: the L2
    /// partition's cycle-leap event mirror peeks the decision (including
    /// the victim way, to replay the DRAM-admission check) to predict
    /// whether the queued head access would progress.
    pub fn peek_victim(&self, set: usize, ways: &[WayView]) -> MissDecision {
        // Prefer an invalid (and unreserved) way, then LRU among valid
        // unreserved ways.
        if let Some(way) = ways.iter().position(|w| !w.valid && !w.reserved) {
            return MissDecision::Allocate { way };
        }
        match self.recency.lru_among(set, |w| ways[w].valid && !ways[w].reserved) {
            Some(way) => MissDecision::Allocate { way },
            None => MissDecision::Stall,
        }
    }
}

impl ReplacementPolicy for LruBaseline {
    fn on_query(&mut self, _set: usize) {
        self.stats.queries += 1;
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.recency.touch(set, way);
    }

    fn on_miss(&mut self, _set: usize, _tag: u64, _ctx: &AccessCtx) {}

    fn decide_replacement(&mut self, set: usize, ways: &[WayView], _ctx: &AccessCtx) -> MissDecision {
        self.peek_victim(set, ways)
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _tag: u64) {}

    fn on_fill(&mut self, set: usize, way: usize, _tag: u64, _ctx: &AccessCtx) {
        self.recency.touch(set, way);
    }

    fn replacement_would_stall(&self, set: usize, ways: &[WayView]) -> bool {
        matches!(self.peek_victim(set, ways), MissDecision::Stall)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Baseline
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

/// LRU replacement plus the Stall-Bypass path (§5.3): whenever the L1D
/// would stall for *any* structural reason — no MSHR entry, no reservable
/// way in the set, or a full miss queue — the access is bypassed to the
/// interconnect instead.
///
/// Replacement decisions are identical to [`LruBaseline`]; the only
/// difference is `bypass_on_stall` returning `true` (the controller
/// converts structural stalls into bypasses) and all-ways-reserved
/// misses turning into `Bypass` instead of `Stall`.
pub struct StallBypass {
    inner: LruBaseline,
}

impl StallBypass {
    /// Create for a cache of the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        StallBypass { inner: LruBaseline::new(geom) }
    }
}

impl ReplacementPolicy for StallBypass {
    fn on_query(&mut self, set: usize) {
        self.inner.on_query(set);
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.inner.on_hit(set, way, ctx);
    }

    fn on_miss(&mut self, set: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_miss(set, tag, ctx);
    }

    fn decide_replacement(&mut self, set: usize, ways: &[WayView], ctx: &AccessCtx) -> MissDecision {
        match self.inner.decide_replacement(set, ways, ctx) {
            MissDecision::Stall => MissDecision::Bypass,
            other => other,
        }
    }

    fn on_evict(&mut self, set: usize, way: usize, tag: u64) {
        self.inner.on_evict(set, way, tag);
    }

    fn on_fill(&mut self, set: usize, way: usize, tag: u64, ctx: &AccessCtx) {
        self.inner.on_fill(set, way, tag, ctx);
    }

    fn bypass_on_stall(&self) -> bool {
        true
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::StallBypass
    }

    fn stats(&self) -> PolicyStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessCtx {
        AccessCtx { insn_id: 0, is_write: false }
    }

    fn small_geom() -> CacheGeometry {
        CacheGeometry::fermi_l1d_16k()
    }

    #[test]
    fn lru_prefers_invalid_way() {
        let mut p = LruBaseline::new(small_geom());
        let ways = vec![WayView::valid(1), WayView::invalid(), WayView::valid(2), WayView::valid(3)];
        assert_eq!(p.decide_replacement(0, &ways, &ctx()), MissDecision::Allocate { way: 1 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruBaseline::new(small_geom());
        let ways: Vec<_> = (0..4).map(WayView::valid).collect();
        for w in [0, 1, 2, 3] {
            p.on_hit(0, w, &ctx());
        }
        p.on_hit(0, 0, &ctx());
        assert_eq!(p.decide_replacement(0, &ways, &ctx()), MissDecision::Allocate { way: 1 });
    }

    #[test]
    fn lru_skips_reserved_ways() {
        let mut p = LruBaseline::new(small_geom());
        let mut ways: Vec<_> = (0..4).map(WayView::valid).collect();
        for w in [0, 1, 2, 3] {
            p.on_hit(0, w, &ctx());
        }
        ways[0] = WayView::reserved();
        ways[1] = WayView::reserved();
        assert_eq!(p.decide_replacement(0, &ways, &ctx()), MissDecision::Allocate { way: 2 });
    }

    #[test]
    fn lru_stalls_when_everything_reserved() {
        let mut p = LruBaseline::new(small_geom());
        let ways = vec![WayView::reserved(); 4];
        assert_eq!(p.decide_replacement(0, &ways, &ctx()), MissDecision::Stall);
        assert!(!p.bypass_on_stall());
    }

    #[test]
    fn stall_bypass_bypasses_when_everything_reserved() {
        let mut p = StallBypass::new(small_geom());
        let ways = vec![WayView::reserved(); 4];
        assert_eq!(p.decide_replacement(0, &ways, &ctx()), MissDecision::Bypass);
        assert!(p.bypass_on_stall());
    }

    #[test]
    fn stall_bypass_otherwise_behaves_like_lru() {
        let mut p = StallBypass::new(small_geom());
        let ways = vec![WayView::invalid(); 4];
        assert_eq!(p.decide_replacement(0, &ways, &ctx()), MissDecision::Allocate { way: 0 });
        assert_eq!(p.kind(), PolicyKind::StallBypass);
    }

    #[test]
    fn would_stall_peek_matches_decide_replacement() {
        let mut p = LruBaseline::new(small_geom());
        let free = vec![WayView::invalid(); 4];
        assert!(!p.replacement_would_stall(0, &free));
        let reserved = vec![WayView::reserved(); 4];
        assert!(p.replacement_would_stall(0, &reserved));
        assert_eq!(p.decide_replacement(0, &reserved, &ctx()), MissDecision::Stall);
        // Stall-Bypass never stalls, so the read-only peek must agree.
        let sb = StallBypass::new(small_geom());
        assert!(!sb.replacement_would_stall(0, &reserved));
    }

    #[test]
    fn fill_counts_as_recency_touch() {
        let mut p = LruBaseline::new(small_geom());
        let ways: Vec<_> = (0..4).map(WayView::valid).collect();
        // Fill ways 0..3 in order, then re-fill way 0: LRU is way 1.
        for w in [0, 1, 2, 3, 0] {
            p.on_fill(0, w, w as u64, &ctx());
        }
        assert_eq!(p.decide_replacement(0, &ways, &ctx()), MissDecision::Allocate { way: 1 });
    }
}
