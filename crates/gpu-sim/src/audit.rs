//! Runtime invariant auditor: conservation laws checked mid-run.
//!
//! The clock loop keeps a small set of flow counters
//! ([`FlowCounters`]); every `audit_interval` cycles the auditor
//! compares them against a census of the machine's queues. Three
//! families of checks run:
//!
//! 1. **Reply conservation** — every reply-expecting packet injected
//!    into the crossbar is either delivered back, or accounted for in
//!    exactly one place (a crossbar queue, a partition stage, or an L2
//!    MSHR merge list). A dropped or duplicated packet breaks the
//!    equality within one audit period.
//! 2. **Flit conservation** — cumulative flits injected per direction
//!    equal flits delivered plus flits bound up in undelivered packets.
//! 3. **Structural audits** — each component checks its own bounds
//!    (MSHR occupancy and merge limits, DLP's PL ≤ PD cap, VTA reach),
//!    via the `audit()` methods on caches, partitions and policies.
//!
//! The checks are census-based (they never mutate state), so a passing
//! audit is free of side effects and a failing one pinpoints which law
//! broke and by how much.

/// Cumulative flow counters maintained by the clock loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowCounters {
    /// Reply-expecting packets accepted into the forward crossbar.
    pub fetches_sent: u64,
    /// Reply packets handed to an L1D.
    pub replies_delivered: u64,
    /// Flits of packets delivered out of the forward direction.
    pub fwd_flits_delivered: u64,
    /// Flits of packets delivered out of the return direction.
    pub ret_flits_delivered: u64,
}

/// Reply conservation: `sent = delivered + in-network + in-partition`.
/// `held` must census every reply-expecting packet between the two
/// counters exactly once.
pub(crate) fn check_reply_conservation(
    sent: u64,
    delivered: u64,
    in_network: usize,
    in_partitions: usize,
) -> Result<(), String> {
    let held = in_network as u64 + in_partitions as u64;
    if sent != delivered + held {
        return Err(format!(
            "{sent} reply-expecting packets sent, but {delivered} delivered + {held} held \
             ({in_network} in crossbar, {in_partitions} in partitions) = {}",
            delivered + held
        ));
    }
    Ok(())
}

/// Flit conservation for one direction: cumulative injected flits equal
/// delivered flits plus flits still queued.
pub(crate) fn check_flit_conservation(
    direction: &str,
    injected: u64,
    delivered: u64,
    in_flight: u64,
) -> Result<(), String> {
    if injected != delivered + in_flight {
        return Err(format!(
            "{direction}: {injected} flits injected, but {delivered} delivered + {in_flight} in flight = {}",
            delivered + in_flight
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_flows_pass() {
        assert_eq!(check_reply_conservation(10, 7, 2, 1), Ok(()));
        assert_eq!(check_flit_conservation("fwd", 100, 90, 10), Ok(()));
    }

    #[test]
    fn a_dropped_packet_breaks_reply_conservation() {
        // 10 sent, 7 delivered, but only 2 found anywhere: one vanished.
        let err = check_reply_conservation(10, 7, 2, 0).unwrap_err();
        assert!(err.contains("10 reply-expecting packets sent"), "{err}");
    }

    #[test]
    fn a_duplicated_packet_breaks_reply_conservation() {
        // 10 sent but 11 accounted for: one exists twice.
        assert!(check_reply_conservation(10, 8, 2, 1).is_err());
    }

    #[test]
    fn missing_flits_break_flit_conservation() {
        assert!(check_flit_conservation("ret", 100, 90, 5).is_err());
    }
}
