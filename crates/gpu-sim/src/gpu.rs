//! The full GPU: SMs, crossbar, memory partitions and the clock loop.
//!
//! Core and interconnect share the 650 MHz clock (Table 1); each memory
//! partition internally advances its DRAM at the 924 MHz command clock.
//! Per core cycle the driver:
//!
//! 1. launches pending CTAs onto SMs with room,
//! 2. cycles every SM (which cycles its L1D),
//! 3. drains L1D miss queues into the crossbar,
//! 4. ejects crossbar packets into partitions and cycles them,
//! 5. injects partition replies back into the crossbar,
//! 6. delivers arrived replies to the owning SM's L1D.

use crate::audit::{check_flit_conservation, check_reply_conservation, FlowCounters};
use crate::config::SimConfig;
use crate::error::{HangReport, PartitionSnapshot, SimError, SmSnapshot};
use crate::kernel::Kernel;
use crate::sm::Sm;
use crate::stats::RunStats;
use gpu_mem::fault::{FaultInjector, FaultSite};
use gpu_mem::icnt::Interconnect;
use gpu_mem::observer::AccessObserver;
use gpu_mem::partition::MemoryPartition;
use std::collections::VecDeque;


/// A configured GPU with a kernel to run.
pub struct Gpu {
    cfg: SimConfig,
    sms: Vec<Sm>,
    icnt: Interconnect,
    parts: Vec<MemoryPartition>,
    kernel: Box<dyn Kernel>,
    pending_ctas: VecDeque<usize>,
    launch_cursor: usize,
    now: u64,
    counters: FlowCounters,
    /// Progress metric (insns issued + replies delivered) at the last
    /// cycle it changed, and that cycle — the watchdog's state.
    last_progress: u64,
    last_progress_cycle: u64,
    /// Idle-skip state: which SMs / partitions have work. A component is
    /// promoted to busy at the event that gives it work (CTA launch,
    /// packet enqueue, reply delivery) and demoted after a cycle in
    /// which it reports idle — quiescent components are not ticked at
    /// all, and the busy counts make [`Gpu::finished`] O(1).
    sm_busy: Vec<bool>,
    part_busy: Vec<bool>,
    busy_sms: usize,
    busy_parts: usize,
    /// Running total of warp instructions issued (the watchdog metric's
    /// SM half, maintained incrementally).
    total_warp_insns: u64,
}

impl Gpu {
    /// Build the platform and queue every CTA of the kernel's grid.
    pub fn new(cfg: SimConfig, kernel: Box<dyn Kernel>) -> Self {
        let grid = kernel.grid();
        let slots = cfg.warp_limit.unwrap_or(cfg.max_warps_per_sm).min(cfg.max_warps_per_sm);
        assert!(
            grid.warps_per_cta <= slots,
            "CTA of {} warps cannot fit an SM of {} usable slots",
            grid.warps_per_cta,
            slots
        );
        let mut icnt = Interconnect::new(cfg.icnt);
        let mut parts: Vec<MemoryPartition> =
            (0..cfg.icnt.num_partitions).map(|_| MemoryPartition::new(cfg.partition)).collect();
        if let Some(f) = cfg.fault {
            match f.site {
                FaultSite::IcntForward | FaultSite::IcntReturn => {
                    icnt.set_fault_injector(FaultInjector::new(f));
                }
                FaultSite::Dram => {
                    for (i, p) in parts.iter_mut().enumerate() {
                        p.set_dram_fault_injector(FaultInjector::with_salt(f, i as u64));
                    }
                }
            }
        }
        Gpu {
            sms: (0..cfg.num_sms).map(|i| Sm::new(i, &cfg)).collect(),
            icnt,
            parts,
            kernel,
            pending_ctas: (0..grid.num_ctas).collect(),
            launch_cursor: 0,
            now: 0,
            counters: FlowCounters::default(),
            last_progress: 0,
            last_progress_cycle: 0,
            sm_busy: vec![false; cfg.num_sms],
            part_busy: vec![false; cfg.icnt.num_partitions],
            busy_sms: 0,
            busy_parts: 0,
            total_warp_insns: 0,
            cfg,
        }
    }

    #[inline]
    fn mark_sm_busy(sm_busy: &mut [bool], busy_sms: &mut usize, s: usize) {
        if !sm_busy[s] {
            sm_busy[s] = true;
            *busy_sms += 1;
        }
    }

    /// Attach a reuse-distance observer to one SM's L1D (do this before
    /// running).
    pub fn set_l1d_observer(&mut self, sm: usize, obs: Box<dyn AccessObserver>) {
        self.sms[sm].l1d.set_observer(obs);
    }

    /// Current core cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Read access to one SM's L1D (post-run introspection: policy
    /// state, PD tables, counters).
    pub fn l1d(&self, sm: usize) -> &gpu_mem::l1d::L1dCache {
        &self.sms[sm].l1d
    }

    fn launch_ctas(&mut self) {
        if self.pending_ctas.is_empty() {
            return;
        }
        // Round-robin across SMs, as the hardware CTA scheduler does, so
        // partially filled grids spread over the whole chip.
        let wpc = self.kernel.grid().warps_per_cta;
        let n = self.sms.len();
        let mut denied = 0;
        while denied < n && !self.pending_ctas.is_empty() {
            let idx = self.launch_cursor % n;
            if self.sms[idx].can_accept_cta(wpc) {
                let Some(cta) = self.pending_ctas.pop_front() else { break };
                let warps = (0..wpc).map(|w| self.kernel.warp_ops(cta, w)).collect();
                self.sms[idx].launch_cta(cta, warps);
                Self::mark_sm_busy(&mut self.sm_busy, &mut self.busy_sms, idx);
                denied = 0;
            } else {
                denied += 1;
            }
            self.launch_cursor = self.launch_cursor.wrapping_add(1);
        }
    }

    /// One core/interconnect cycle.
    fn step(&mut self) -> Result<(), SimError> {
        self.now += 1;
        let now = self.now;

        self.launch_ctas();

        // Cycle only SMs with work; an idle SM's cycle is a no-op, so
        // skipping it changes nothing but wall time.
        for (s, sm) in self.sms.iter_mut().enumerate() {
            if !self.sm_busy[s] {
                continue;
            }
            self.total_warp_insns += sm.cycle(now)?;
            // CTA completions free slots; successors launch next cycle.
            sm.take_finished_ctas();
        }


        // L1D miss queues -> crossbar (forward direction). Idle SMs have
        // empty miss queues by definition.
        for (s, sm) in self.sms.iter_mut().enumerate() {
            if !self.sm_busy[s] {
                continue;
            }
            while let Some(pkt) = sm.l1d.peek_outgoing() {
                let dst = self.icnt.partition_of(pkt.addr);
                let expects_reply = pkt.kind.expects_reply();
                if self.icnt.try_send_fwd(dst, *pkt, now) {
                    sm.l1d.pop_outgoing();
                    if expects_reply {
                        self.counters.fetches_sent += 1;
                    }
                } else {
                    break;
                }
            }
            // All traffic is drained above; demote the SM once it has
            // nothing left anywhere (warps, queues, cache machinery).
            if self.sm_busy[s] && sm.idle() {
                self.sm_busy[s] = false;
                self.busy_sms -= 1;
            }
        }


        // Crossbar -> partitions, then partition internals. Ejection is
        // polled for every partition (packets arrive regardless of the
        // partition's own state); the partition machinery itself is only
        // cycled while busy, with its DRAM clock caught up on wake.
        for (p, part) in self.parts.iter_mut().enumerate() {
            while part.can_accept() {
                match self.icnt.pop_fwd(p, now) {
                    Some(pkt) => {
                        // Misrouting is cheap to detect and always fatal:
                        // the wrong partition would service the address.
                        let expected = self.icnt.partition_of(pkt.addr);
                        if expected != p {
                            return Err(SimError::PacketMisrouted {
                                port: p,
                                expected,
                                addr: pkt.addr,
                                cycle: now,
                            });
                        }
                        self.counters.fwd_flits_delivered += pkt.flits();
                        part.enqueue(pkt);
                        if !self.part_busy[p] {
                            self.part_busy[p] = true;
                            self.busy_parts += 1;
                        }
                    }
                    None => break,
                }
            }
            if !self.part_busy[p] {
                continue;
            }
            part.cycle(now).map_err(|source| SimError::PartitionFault {
                partition: p,
                source,
                cycle: now,
            })?;
            // Partition replies -> crossbar (return direction).
            while let Some(pkt) = part.pop_reply() {
                let dst = pkt.req.sm as usize;
                if !self.icnt.try_send_ret(dst, pkt, now) {
                    part.unpop_reply(pkt);
                    break;
                }
            }
            if self.part_busy[p] && part.idle() {
                self.part_busy[p] = false;
                self.busy_parts -= 1;
            }
        }


        // Crossbar -> L1Ds.
        for (s, sm) in self.sms.iter_mut().enumerate() {
            while let Some(pkt) = self.icnt.pop_ret(s, now) {
                self.counters.ret_flits_delivered += pkt.flits();
                self.counters.replies_delivered += 1;
                sm.l1d
                    .on_reply(pkt, now)
                    .map_err(|source| SimError::MshrViolation { sm: s, source, cycle: now })?;
                // The reply gives the SM work (a response to ripen); an
                // outstanding fetch implies a non-quiescent L1D, so the
                // SM should already be busy — keep it that way cheaply.
                Self::mark_sm_busy(&mut self.sm_busy, &mut self.busy_sms, s);
            }
        }


        // Forward-progress watchdog (the metric is maintained
        // incrementally instead of re-summed across SMs every cycle).
        let metric = self.counters.replies_delivered + self.total_warp_insns;
        if metric != self.last_progress {
            self.last_progress = metric;
            self.last_progress_cycle = now;
        } else if self.cfg.watchdog_cycles > 0
            && now - self.last_progress_cycle >= self.cfg.watchdog_cycles
            && !self.finished()
        {
            return Err(SimError::Hang(Box::new(self.hang_report())));
        }

        // Periodic invariant audit.
        if self.cfg.audit_interval > 0 && now % self.cfg.audit_interval == 0 {
            self.run_audit()?;
        }
        Ok(())
    }

    /// Run every conservation and structural check once, at the current
    /// cycle. Exposed so tests can audit at a chosen instant.
    pub fn run_audit(&self) -> Result<(), SimError> {
        let now = self.now;
        let fail = |check: &'static str, detail: String| SimError::InvariantViolation {
            check,
            detail,
            cycle: now,
        };

        let in_partitions: usize = self.parts.iter().map(|p| p.held_reply_packets()).sum();
        let in_network = self.icnt.fwd_expecting_reply() + self.icnt.ret_in_flight();
        check_reply_conservation(
            self.counters.fetches_sent,
            self.counters.replies_delivered,
            in_network,
            in_partitions,
        )
        .map_err(|d| fail("reply conservation", d))?;

        let (fwd_in_flight, ret_in_flight) = self.icnt.in_flight_flits();
        let stats = self.icnt.stats();
        check_flit_conservation(
            "forward",
            stats.fwd_flits,
            self.counters.fwd_flits_delivered,
            fwd_in_flight,
        )
        .map_err(|d| fail("flit conservation", d))?;
        check_flit_conservation(
            "return",
            stats.ret_flits,
            self.counters.ret_flits_delivered,
            ret_in_flight,
        )
        .map_err(|d| fail("flit conservation", d))?;

        for (s, sm) in self.sms.iter().enumerate() {
            sm.l1d.audit().map_err(|d| fail("L1D structural audit", format!("SM {s}: {d}")))?;
        }
        for (p, part) in self.parts.iter().enumerate() {
            part.audit()
                .map_err(|d| fail("partition structural audit", format!("partition {p}: {d}")))?;
        }
        Ok(())
    }

    /// Snapshot the whole machine for a failure diagnostic.
    pub fn hang_report(&self) -> HangReport {
        HangReport {
            cycle: self.now,
            last_progress_cycle: self.last_progress_cycle,
            pending_ctas: self.pending_ctas.len(),
            fetches_sent: self.counters.fetches_sent,
            replies_delivered: self.counters.replies_delivered,
            icnt_in_flight: self.icnt.in_flight(),
            icnt_fwd_depths: self.icnt.fwd_queue_depths(),
            icnt_ret_depths: self.icnt.ret_queue_depths(),
            sms: self
                .sms
                .iter()
                .map(|sm| SmSnapshot {
                    id: sm.id,
                    active_warps: sm.active_warps(),
                    warp_insns: sm.stats().warp_insns,
                    ldst_queue: sm.ldst_queue_len(),
                    mshr_occupancy: sm.l1d.mshr_occupancy(),
                    outgoing: sm.l1d.outgoing_len(),
                    input_blocked: sm.l1d.input_blocked(),
                })
                .collect(),
            partitions: self
                .parts
                .iter()
                .enumerate()
                .map(|(id, p)| PartitionSnapshot {
                    id,
                    in_queue: p.in_queue_len(),
                    l2_mshr: p.l2_mshr_occupancy(),
                    out_queue: p.out_queue_len(),
                    dram_idle: p.dram_idle(),
                })
                .collect(),
        }
    }

    fn finished(&self) -> bool {
        // O(1): busy counts are maintained by step(); a component is
        // demoted only after a cycle in which it reported idle, so the
        // counts reaching zero implies the full scans would too.
        let done = self.pending_ctas.is_empty()
            && self.icnt.in_flight() == 0
            && self.busy_sms == 0
            && self.busy_parts == 0;
        debug_assert!(
            !done
                || (self.sms.iter().all(Sm::idle)
                    && self.parts.iter().all(MemoryPartition::idle)),
            "busy counts report finished but a component still has work"
        );
        done
    }

    /// Run to completion and report, or abort with a typed error: a
    /// hang report from the watchdog, a cycle-cap overrun, or the first
    /// invariant violation found.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        while !self.finished() {
            if self.now >= self.cfg.max_cycles {
                return Err(SimError::CycleCapExceeded(Box::new(self.hang_report())));
            }
            self.step()?;
        }
        Ok(self.collect(true))
    }

    /// Run at most `cycles` more cycles (incremental driving for tests
    /// and interactive exploration). Unlike [`Gpu::run`], reaching the
    /// requested horizon is success, not an error.
    pub fn run_for(&mut self, cycles: u64) -> Result<RunStats, SimError> {
        let end = self.now + cycles;
        while !self.finished() && self.now < end {
            self.step()?;
        }
        Ok(self.collect(self.finished()))
    }

    fn collect(&self, completed: bool) -> RunStats {
        let mut out = RunStats { cycles: self.now, completed, ..Default::default() };
        for sm in &self.sms {
            let s = sm.stats();
            out.thread_insns += s.thread_insns;
            out.warp_insns += s.warp_insns;
            out.mem_transactions += s.mem_transactions;
            out.l1d.merge(sm.l1d.stats());
            out.policy.merge(&sm.l1d.policy_stats());
        }
        out.icnt = sm_icnt_stats(&self.icnt);
        for p in &self.parts {
            out.l2.merge(p.l2_stats());
            out.dram.merge(p.dram_stats());
        }
        out
    }
}

fn sm_icnt_stats(icnt: &Interconnect) -> gpu_mem::stats::IcntStats {
    icnt.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::TraceOp;
    use crate::kernel::GridDesc;
    use dlp_core::PolicyKind;

    /// A streaming kernel: every warp loads a private range then does
    /// dependent ALU work.
    struct Stream {
        ctas: usize,
        warps: usize,
        iters: usize,
    }

    impl Kernel for Stream {
        fn name(&self) -> &str {
            "stream"
        }
        fn grid(&self) -> GridDesc {
            GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
        }
        fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
            let mut ops = Vec::new();
            let warp_base = ((cta * self.warps + warp) * self.iters) as u64 * 4096;
            for i in 0..self.iters {
                let base = warp_base + (i as u64) * 4096;
                ops.push(TraceOp::load(0, 1, (0..32).map(|l| base + l * 4).collect()));
                ops.push(TraceOp::alu(1, 4).with_srcs([1]).with_dst(2));
                ops.push(TraceOp::alu(2, 4).with_srcs([2]).with_dst(3));
            }
            ops
        }
    }

    #[test]
    fn small_kernel_completes_on_every_policy() {
        for kind in PolicyKind::ALL {
            let cfg = SimConfig::tesla_m2090(kind).scaled_down(2);
            let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 4, warps: 2, iters: 3 }));
            let stats = gpu.run().unwrap();
            assert!(stats.completed, "{kind:?} did not complete");
            assert_eq!(stats.warp_insns, 4 * 2 * 3 * 3, "{kind:?} wrong insn count");
            assert_eq!(stats.l1d.accesses, stats.mem_transactions);
            assert!(stats.ipc() > 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let cfg = SimConfig::tesla_m2090(PolicyKind::Dlp).scaled_down(2);
            Gpu::new(cfg, Box::new(Stream { ctas: 6, warps: 3, iters: 4 }))
        };
        let a = mk().run().unwrap();
        let b = mk().run().unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1d, b.l1d);
        assert_eq!(a.icnt, b.icnt);
    }

    #[test]
    fn memory_bound_kernel_touches_dram() {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1);
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 2, warps: 2, iters: 4 }));
        let stats = gpu.run().unwrap();
        assert!(stats.dram.reads > 0);
        assert!(stats.icnt.total_flits() > 0);
        assert!(stats.l2.accesses > 0);
    }

    #[test]
    fn more_ctas_than_capacity_still_drain() {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1);
        // 1 SM × 48 slots, 8-warp CTAs -> 6 resident; 20 CTAs queue up.
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 20, warps: 8, iters: 2 }));
        let stats = gpu.run().unwrap();
        assert!(stats.completed);
        assert_eq!(stats.warp_insns, 20 * 8 * 2 * 3);
    }

    #[test]
    fn warp_throttling_limits_concurrency() {
        // With a 2-warp limit and 2-warp CTAs, at most one CTA is
        // resident per SM; the kernel still completes.
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1).with_warp_limit(2);
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 6, warps: 2, iters: 2 }));
        let stats = gpu.run().unwrap();
        assert!(stats.completed);
        assert_eq!(stats.warp_insns, 6 * 2 * 2 * 3);
        // Throttled runs serialize CTAs, so they take longer than the
        // unthrottled machine.
        let full = Gpu::new(
            SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1),
            Box::new(Stream { ctas: 6, warps: 2, iters: 2 }),
        )
        .run()
        .unwrap();
        assert!(stats.cycles > full.cycles);
    }

    #[test]
    fn reuse_kernel_hits_in_l1d() {
        /// Warps re-read the same small array repeatedly.
        struct Reuse;
        impl Kernel for Reuse {
            fn name(&self) -> &str {
                "reuse"
            }
            fn grid(&self) -> GridDesc {
                GridDesc { num_ctas: 1, warps_per_cta: 1 }
            }
            fn warp_ops(&self, _c: usize, _w: usize) -> Vec<TraceOp> {
                (0..64)
                    .map(|i| {
                        TraceOp::load(0, 1, (0..32).map(|l| (i % 2) * 128 + l * 4).collect())
                    })
                    .collect()
            }
        }
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1);
        let stats = Gpu::new(cfg, Box::new(Reuse)).run().unwrap();
        assert_eq!(stats.l1d.accesses, 64);
        assert_eq!(stats.l1d.hits, 62, "all but the two compulsory misses hit");
    }
}
