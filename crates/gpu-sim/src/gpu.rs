//! The full GPU: SMs, crossbar, memory partitions and the clock loop.
//!
//! Core and interconnect share the 650 MHz clock (Table 1); each memory
//! partition internally advances its DRAM at the 924 MHz command clock.
//! Per core cycle the driver:
//!
//! 1. launches pending CTAs onto SMs with room,
//! 2. cycles every SM (which cycles its L1D),
//! 3. drains L1D miss queues into the crossbar,
//! 4. ejects crossbar packets into partitions and cycles them,
//! 5. injects partition replies back into the crossbar,
//! 6. delivers arrived replies to the owning SM's L1D.
//!
//! # Cycle-leap event core
//!
//! Memory-bound kernels spend most of their cycles stalled: every warp
//! blocked on a scoreboard, every queue waiting on a latency that was
//! fixed the moment the packet was stamped. Instead of ticking through
//! that dead time, [`Gpu::run`] asks each component for a *conservative*
//! bound on its next event ([`Sm::next_event`],
//! [`MemoryPartition::next_event`], the crossbar's queue-head ready
//! stamps) and jumps `now` straight to the minimum. Skipped cycles are
//! replayed arithmetically ([`Gpu::leap_to`]) so the aging counters —
//! L1D stall classes, rejected submits, the CTA round-robin cursor, the
//! partitions' fractional DRAM clocks — end up byte-identical to a
//! tick-every-cycle run. `SimConfig::leap = false` selects the original
//! reference loop; under the `audit` feature every leap window is
//! re-simulated tick-by-tick and each cycle asserted to be a no-op (see
//! DESIGN.md "Cycle-leap event core").

use crate::audit::{check_flit_conservation, check_reply_conservation, FlowCounters};
use crate::config::SimConfig;
use crate::error::{HangReport, PartitionSnapshot, SimError, SmSnapshot};
use crate::kernel::Kernel;
use crate::sampling::{SamplingConfig, SamplingReport, WindowSample};
use crate::shard::ShardTelemetry;
use crate::sm::Sm;
use crate::stats::RunStats;
use gpu_mem::fault::{FaultInjector, FaultSite};
use gpu_mem::icnt::Interconnect;
use gpu_mem::observer::AccessObserver;
use gpu_mem::packet::Packet;
use gpu_mem::partition::MemoryPartition;
use std::collections::VecDeque;

/// Advance the round-robin CTA launch cursor by `slots` denied scan
/// slots with overflow detection: a wrap would silently rotate the
/// launch order, which is a fidelity corruption, not a recoverable
/// condition. Shared by the per-cycle launch scan, the leap replay and
/// the shard barrier replay.
pub(crate) fn advance_cursor(cursor: &mut usize, slots: u128, now: u64) -> Result<(), SimError> {
    let overflow = SimError::LaunchCursorOverflow { cycle: now, slots };
    let sum = (*cursor as u128).checked_add(slots).ok_or_else(|| overflow.clone())?;
    *cursor = usize::try_from(sum).map_err(|_| overflow)?;
    Ok(())
}

/// Build the crossbar and memory partitions (with any configured fault
/// injectors) from scratch — shared by [`Gpu::new`] and the sharded
/// engine's misspeculation restart, which must reproduce the injector
/// seeds exactly.
fn build_memory_system(cfg: &SimConfig) -> (Interconnect, Vec<MemoryPartition>) {
    let mut icnt = Interconnect::new(cfg.icnt);
    let mut parts: Vec<MemoryPartition> =
        (0..cfg.icnt.num_partitions).map(|_| MemoryPartition::new(cfg.partition)).collect();
    if let Some(f) = cfg.fault {
        match f.site {
            FaultSite::IcntForward | FaultSite::IcntReturn => {
                icnt.set_fault_injector(FaultInjector::new(f));
            }
            FaultSite::Dram => {
                for (i, p) in parts.iter_mut().enumerate() {
                    p.set_dram_fault_injector(FaultInjector::with_salt(f, i as u64));
                }
            }
        }
    }
    (icnt, parts)
}

/// Every conservation and structural check, against an explicitly
/// assembled view of the machine. [`Gpu::run_audit`] passes its own
/// component vectors; the sharded engine passes references collected
/// from the shards in global order at a barrier (where the crossbar is
/// authoritative because the round has been merged).
pub(crate) fn audit_machine(
    now: u64,
    counters: &FlowCounters,
    icnt: &Interconnect,
    sms: &[&Sm],
    parts: &[&MemoryPartition],
) -> Result<(), SimError> {
    let fail = |check: &'static str, detail: String| SimError::InvariantViolation {
        check,
        detail,
        cycle: now,
    };

    let in_partitions: usize = parts.iter().map(|p| p.held_reply_packets()).sum();
    let in_network = icnt.fwd_expecting_reply() + icnt.ret_in_flight();
    check_reply_conservation(
        counters.fetches_sent,
        counters.replies_delivered,
        in_network,
        in_partitions,
    )
    .map_err(|d| fail("reply conservation", d))?;

    let (fwd_in_flight, ret_in_flight) = icnt.in_flight_flits();
    let stats = icnt.stats();
    check_flit_conservation(
        "forward",
        stats.fwd_flits,
        counters.fwd_flits_delivered,
        fwd_in_flight,
    )
    .map_err(|d| fail("flit conservation", d))?;
    check_flit_conservation(
        "return",
        stats.ret_flits,
        counters.ret_flits_delivered,
        ret_in_flight,
    )
    .map_err(|d| fail("flit conservation", d))?;

    for (s, sm) in sms.iter().enumerate() {
        sm.l1d.audit().map_err(|d| fail("L1D structural audit", format!("SM {s}: {d}")))?;
    }
    for (p, part) in parts.iter().enumerate() {
        part.audit()
            .map_err(|d| fail("partition structural audit", format!("partition {p}: {d}")))?;
    }
    Ok(())
}

/// A configured GPU with a kernel to run.
pub struct Gpu {
    pub(crate) cfg: SimConfig,
    pub(crate) sms: Vec<Sm>,
    pub(crate) icnt: Interconnect,
    pub(crate) parts: Vec<MemoryPartition>,
    pub(crate) kernel: Box<dyn Kernel>,
    pub(crate) pending_ctas: VecDeque<usize>,
    pub(crate) launch_cursor: usize,
    pub(crate) now: u64,
    pub(crate) counters: FlowCounters,
    /// Progress metric (insns issued + replies delivered) at the last
    /// cycle it changed, and that cycle — the watchdog's state.
    pub(crate) last_progress: u64,
    pub(crate) last_progress_cycle: u64,
    /// Idle-skip state: which SMs / partitions have work. A component is
    /// promoted to busy at the event that gives it work (CTA launch,
    /// packet enqueue, reply delivery) and demoted after a cycle in
    /// which it reports idle — quiescent components are not ticked at
    /// all, and the busy counts make [`Gpu::finished`] O(1).
    pub(crate) sm_busy: Vec<bool>,
    pub(crate) part_busy: Vec<bool>,
    pub(crate) busy_sms: usize,
    pub(crate) busy_parts: usize,
    /// Running total of warp instructions issued (the watchdog metric's
    /// SM half, maintained incrementally).
    pub(crate) total_warp_insns: u64,
    /// Cycles actually stepped (as opposed to leapt over). With the
    /// cycle-leap event core this is the count of event cycles; the
    /// ratio against [`RunStats::cycles`] is the leap efficiency
    /// reported by the benchmark telemetry. Deliberately *not* part of
    /// [`RunStats`]: simulated results are byte-identical with leaping
    /// on or off, and this counter is the one number that legitimately
    /// differs.
    pub(crate) ticked_cycles: u64,
    /// The component that most recently forced a tick (reported an event
    /// at `now + 1`). Active phases are bursty — the same SM or
    /// partition stays hot for many consecutive cycles — so
    /// [`Gpu::next_step_cycle`] re-checks this one component first and
    /// skips the full scan while it stays hot. Purely an optimization:
    /// "no leap" is always a conservative answer, so a stale hint can
    /// only cost a scan, never correctness.
    pub(crate) leap_hint: LeapHint,
    /// Per-SM sleep: `sm_next_ev[s]` is a conservative bound below which
    /// SM `s` has no internal event (same bound [`Sm::next_event`] feeds
    /// the global leap), so its `cycle` call is skipped even on cycles
    /// the machine as a whole must tick — a memory storm keeps the
    /// partitions busy every cycle, but the 15 SMs parked on full MSHRs
    /// would each re-probe their stalled access per tick for nothing.
    /// 0 means "must cycle" (external input arrived), `u64::MAX` means
    /// "wake only on an interconnect reply".
    pub(crate) sm_next_ev: Vec<u64>,
    /// The last cycle SM `s` actually ran `cycle`, i.e. has aged its
    /// stall counters through. A waking SM first replays the gap with
    /// [`Sm::leap_catchup`]; [`Gpu::settle_sms`] does the same before
    /// any state is reported (stats, hang reports). This single
    /// deferred-aging account also covers whole-machine leaps.
    pub(crate) sm_last_cycled: Vec<u64>,
    /// Whether SM `s` slept through the step in progress — latched at
    /// the cycle phase, because the phase itself refreshes `sm_next_ev`
    /// to a future cycle and later phases (the forward drain) must see
    /// the decision, not the refreshed bound.
    pub(crate) sm_asleep: Vec<bool>,
    /// Whether any L1D observer is attached. Observed runs force the
    /// single-threaded path: the sharded engine's misspeculation
    /// restart would replay accesses into the (external, shared)
    /// observer sink, and restart cannot unsee them.
    pub(crate) observed: bool,
    /// Latched after a shard misspeculation restart: the rest of this
    /// GPU's lifetime runs single-threaded so the sequential replay's
    /// byte-identity guarantee holds without re-restarting.
    pub(crate) shards_disabled: bool,
    /// Accumulated sharded-engine telemetry (empty when every run took
    /// the classic path).
    pub(crate) shard_telemetry: ShardTelemetry,
    /// What the SMARTS sampling controller measured, when
    /// [`SimConfig::sampling`] was set for the last `run`.
    pub(crate) sampling_report: Option<SamplingReport>,
}

/// See [`Gpu::leap_hint`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum LeapHint {
    None,
    /// `sms[i].next_event` said `now + 1`.
    Sm(usize),
    /// The return queue toward SM `i` had a ripe head.
    IcntRet(usize),
    /// Partition `i` could pop a ripe forward packet.
    IcntFwd(usize),
    /// `parts[i].next_event` said `now + 1`.
    Partition(usize),
}

impl Gpu {
    /// Build the platform and queue every CTA of the kernel's grid.
    pub fn new(cfg: SimConfig, kernel: Box<dyn Kernel>) -> Self {
        let grid = kernel.grid();
        let slots = cfg.warp_limit.unwrap_or(cfg.max_warps_per_sm).min(cfg.max_warps_per_sm);
        assert!(
            grid.warps_per_cta <= slots,
            "CTA of {} warps cannot fit an SM of {} usable slots",
            grid.warps_per_cta,
            slots
        );
        let (icnt, parts) = build_memory_system(&cfg);
        Gpu {
            sms: (0..cfg.num_sms).map(|i| Sm::new(i, &cfg)).collect(),
            icnt,
            parts,
            kernel,
            pending_ctas: (0..grid.num_ctas).collect(),
            launch_cursor: 0,
            now: 0,
            counters: FlowCounters::default(),
            last_progress: 0,
            last_progress_cycle: 0,
            sm_busy: vec![false; cfg.num_sms],
            part_busy: vec![false; cfg.icnt.num_partitions],
            busy_sms: 0,
            busy_parts: 0,
            total_warp_insns: 0,
            ticked_cycles: 0,
            leap_hint: LeapHint::None,
            sm_next_ev: vec![0; cfg.num_sms],
            sm_last_cycled: vec![0; cfg.num_sms],
            sm_asleep: vec![false; cfg.num_sms],
            observed: false,
            shards_disabled: false,
            shard_telemetry: ShardTelemetry::default(),
            sampling_report: None,
            cfg,
        }
    }

    /// Cycles actually stepped, as opposed to leapt over. The benchmark
    /// harness reports `ticked_cycles / cycles` as leap efficiency.
    pub fn ticked_cycles(&self) -> u64 {
        self.ticked_cycles
    }

    /// Telemetry from the sharded epoch engine, accumulated across
    /// every `run`/`run_for` call of this GPU. All-zero (and an empty
    /// per-shard vector) when every run took the classic
    /// single-threaded path.
    pub fn shard_telemetry(&self) -> &ShardTelemetry {
        &self.shard_telemetry
    }

    /// How many shards this run will actually use. The classic
    /// single-threaded path (1) is forced when leaping is off (the
    /// reference loop is the equivalence oracle), when an observer is
    /// attached (see [`Gpu::observed`]) or after a misspeculation
    /// restart; otherwise the configured count, clamped to the
    /// component counts.
    pub(crate) fn effective_shards(&self) -> usize {
        if !self.cfg.leap
            || self.observed
            || self.shards_disabled
            || self.cfg.sampling.is_some()
        {
            return 1;
        }
        self.cfg.shards.clamp(1, self.cfg.num_sms.max(self.cfg.icnt.num_partitions))
    }

    /// Rebuild every component from the configuration, exactly as
    /// [`Gpu::new`] left them — the sharded engine's misspeculation
    /// restart. The kernel is stateless by contract
    /// ([`Kernel::warp_stream`] is a pure function of `(cta, warp)`),
    /// so re-queueing the grid reproduces the run from cycle 0. `ticked_cycles` and the shard
    /// telemetry deliberately survive: work done by the abandoned
    /// attempt was real wall-clock work and the telemetry reports it.
    pub(crate) fn reset_run_state(&mut self) {
        let cfg = self.cfg;
        let (icnt, parts) = build_memory_system(&cfg);
        self.sms = (0..cfg.num_sms).map(|i| Sm::new(i, &cfg)).collect();
        self.icnt = icnt;
        self.parts = parts;
        self.pending_ctas = (0..self.kernel.grid().num_ctas).collect();
        self.launch_cursor = 0;
        self.now = 0;
        self.counters = FlowCounters::default();
        self.last_progress = 0;
        self.last_progress_cycle = 0;
        self.sm_busy = vec![false; cfg.num_sms];
        self.part_busy = vec![false; cfg.icnt.num_partitions];
        self.busy_sms = 0;
        self.busy_parts = 0;
        self.total_warp_insns = 0;
        self.leap_hint = LeapHint::None;
        self.sm_next_ev = vec![0; cfg.num_sms];
        self.sm_last_cycled = vec![0; cfg.num_sms];
        self.sm_asleep = vec![false; cfg.num_sms];
        self.sampling_report = None;
    }

    #[inline]
    fn mark_sm_busy(sm_busy: &mut [bool], busy_sms: &mut usize, sm_next_ev: &mut [u64], s: usize) {
        // External input always wakes the SM: force a cycle on the next
        // step regardless of any cached sleep bound.
        sm_next_ev[s] = 0;
        if !sm_busy[s] {
            sm_busy[s] = true;
            *busy_sms += 1;
        }
    }

    /// Per-SM sleeping is only sound on the leap path, and the audited /
    /// periodically-audited builds deliberately tick every busy SM so
    /// the tick-through no-op verification exercises real cycles.
    #[inline]
    pub(crate) fn sm_sleep_enabled(&self) -> bool {
        self.cfg.leap && self.cfg.audit_interval == 0 && !cfg!(feature = "audit")
    }

    /// Bring every busy SM's deferred aging up to date (through the
    /// current cycle, inclusive) so externally visible state — run
    /// statistics, hang reports, post-run introspection — is identical
    /// to what the tick-every-cycle reference produces.
    pub(crate) fn settle_sms(&mut self) {
        let now = self.now;
        for (s, sm) in self.sms.iter_mut().enumerate() {
            if !self.sm_busy[s] {
                continue;
            }
            let behind = now - self.sm_last_cycled[s];
            if behind > 0 {
                sm.leap_catchup(behind);
                self.sm_last_cycled[s] = now;
            }
        }
    }

    /// Attach a reuse-distance observer to one SM's L1D (do this before
    /// running). Observed runs always take the classic single-threaded
    /// path regardless of [`SimConfig::shards`] — the shard engine's
    /// misspeculation restart cannot withdraw accesses already pushed
    /// into an external sink.
    pub fn set_l1d_observer(&mut self, sm: usize, obs: Box<dyn AccessObserver>) {
        self.observed = true;
        self.sms[sm].l1d.set_observer(obs);
    }

    /// Current core cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Read access to one SM's L1D (post-run introspection: policy
    /// state, PD tables, counters).
    pub fn l1d(&self, sm: usize) -> &gpu_mem::l1d::L1dCache {
        &self.sms[sm].l1d
    }

    fn launch_ctas(&mut self) -> Result<(), SimError> {
        if self.pending_ctas.is_empty() {
            return Ok(());
        }
        // Round-robin across SMs, as the hardware CTA scheduler does, so
        // partially filled grids spread over the whole chip.
        let wpc = self.kernel.grid().warps_per_cta;
        let n = self.sms.len();
        let mut denied = 0;
        while denied < n && !self.pending_ctas.is_empty() {
            let idx = self.launch_cursor % n;
            if self.sms[idx].can_accept_cta(wpc) {
                let Some(cta) = self.pending_ctas.pop_front() else { break };
                // dlp-lint: allow(P301) -- allocates once per CTA launch, not per cycle; the stream list is the owned payload handed to the SM
                let warps = (0..wpc).map(|w| self.kernel.warp_stream(cta, w)).collect();
                self.sms[idx].launch_cta(cta, warps);
                Self::mark_sm_busy(
                    &mut self.sm_busy,
                    &mut self.busy_sms,
                    &mut self.sm_next_ev,
                    idx,
                );
                denied = 0;
            } else {
                denied += 1;
            }
            advance_cursor(&mut self.launch_cursor, 1, self.now)?;
        }
        Ok(())
    }

    /// One core/interconnect cycle.
    fn step(&mut self) -> Result<(), SimError> {
        self.now += 1;
        self.ticked_cycles += 1;
        let now = self.now;

        self.launch_ctas()?;

        // Cycle only SMs with work; an idle SM's cycle is a no-op, so
        // skipping it changes nothing but wall time. On the leap path a
        // busy SM additionally *sleeps* through its own dead time
        // (`sm_next_ev`): cycles the machine must tick for other
        // components' sake skip this SM's cycle entirely, and the waking
        // SM first replays the gap arithmetically. `leap_catchup` is
        // state-identical to the skipped retries because nothing mutates
        // the SM inside the gap — every external input (reply, CTA
        // launch) resets `sm_next_ev` to 0 and ends the sleep.
        let sleep = self.sm_sleep_enabled();
        for (s, sm) in self.sms.iter_mut().enumerate() {
            let asleep = self.sm_busy[s] && sleep && self.sm_next_ev[s] > now;
            self.sm_asleep[s] = asleep;
            if !self.sm_busy[s] || asleep {
                continue;
            }
            let behind = now - 1 - self.sm_last_cycled[s];
            if behind > 0 {
                sm.leap_catchup(behind);
            }
            self.total_warp_insns += sm.cycle(now)?;
            self.sm_last_cycled[s] = now;
            // CTA completions free slots; successors launch next cycle.
            sm.take_finished_ctas();
            if sleep {
                self.sm_next_ev[s] = sm.next_event(now).unwrap_or(u64::MAX);
            }
        }


        // L1D miss queues -> crossbar (forward direction). Idle SMs have
        // empty miss queues by definition, and a sleeping SM's outgoing
        // queue is empty too (a non-empty queue forbids sleep) — nor can
        // it become idle while its state is frozen, so skip both.
        for (s, sm) in self.sms.iter_mut().enumerate() {
            if !self.sm_busy[s] || self.sm_asleep[s] {
                continue;
            }
            while let Some(pkt) = sm.l1d.peek_outgoing() {
                let dst = self.icnt.partition_of(pkt.addr);
                let expects_reply = pkt.kind.expects_reply();
                if self.icnt.try_send_fwd(dst, *pkt, now) {
                    sm.l1d.pop_outgoing();
                    if expects_reply {
                        self.counters.fetches_sent += 1;
                    }
                } else {
                    break;
                }
            }
            // All traffic is drained above; demote the SM once it has
            // nothing left anywhere (warps, queues, cache machinery).
            if self.sm_busy[s] && sm.idle() {
                self.sm_busy[s] = false;
                self.busy_sms -= 1;
            }
        }


        // Crossbar -> partitions, then partition internals. Ejection is
        // polled for every partition (packets arrive regardless of the
        // partition's own state); the partition machinery itself is only
        // cycled while busy, with its DRAM clock caught up on wake.
        for (p, part) in self.parts.iter_mut().enumerate() {
            while part.can_accept() {
                match self.icnt.pop_fwd(p, now) {
                    Some(pkt) => {
                        // Misrouting is cheap to detect and always fatal:
                        // the wrong partition would service the address.
                        let expected = self.icnt.partition_of(pkt.addr);
                        if expected != p {
                            return Err(SimError::PacketMisrouted {
                                port: p,
                                expected,
                                addr: pkt.addr,
                                cycle: now,
                            });
                        }
                        self.counters.fwd_flits_delivered += pkt.flits();
                        part.enqueue(pkt);
                        if !self.part_busy[p] {
                            self.part_busy[p] = true;
                            self.busy_parts += 1;
                        }
                    }
                    None => break,
                }
            }
            if !self.part_busy[p] {
                continue;
            }
            part.cycle(now).map_err(|source| SimError::PartitionFault {
                partition: p,
                source,
                cycle: now,
            })?;
            // Partition replies -> crossbar (return direction).
            while let Some(pkt) = part.pop_reply() {
                let dst = pkt.req.sm as usize;
                if !self.icnt.try_send_ret(dst, pkt, now) {
                    part.unpop_reply(pkt);
                    break;
                }
            }
            if self.part_busy[p] && part.idle() {
                self.part_busy[p] = false;
                self.busy_parts -= 1;
            }
        }


        // Crossbar -> L1Ds.
        for (s, sm) in self.sms.iter_mut().enumerate() {
            while let Some(pkt) = self.icnt.pop_ret(s, now) {
                self.counters.ret_flits_delivered += pkt.flits();
                self.counters.replies_delivered += 1;
                // A reply mutates the very state (MSHR, tags) that the
                // deferred stall-aging classifies against, so a sleeping
                // SM must replay its gap with the pre-reply state first.
                // The gap includes this cycle: the reference SM's own
                // phase — one more no-op retry — ran before delivery.
                let behind = now - self.sm_last_cycled[s];
                if behind > 0 {
                    sm.leap_catchup(behind);
                    self.sm_last_cycled[s] = now;
                }
                sm.l1d
                    .on_reply(pkt, now)
                    .map_err(|source| SimError::MshrViolation { sm: s, source, cycle: now })?;
                // The reply gives the SM work (a response to ripen); an
                // outstanding fetch implies a non-quiescent L1D, so the
                // SM should already be busy — keep it that way cheaply.
                Self::mark_sm_busy(&mut self.sm_busy, &mut self.busy_sms, &mut self.sm_next_ev, s);
            }
        }


        // Forward-progress watchdog (the metric is maintained
        // incrementally instead of re-summed across SMs every cycle).
        let metric = self.counters.replies_delivered + self.total_warp_insns;
        if metric != self.last_progress {
            self.last_progress = metric;
            self.last_progress_cycle = now;
        } else if self.cfg.watchdog_cycles > 0
            && now - self.last_progress_cycle >= self.cfg.watchdog_cycles
            && !self.finished()
        {
            self.settle_sms();
            return Err(self.hang_abort());
        }

        // Periodic invariant audit.
        if self.cfg.audit_interval > 0 && now % self.cfg.audit_interval == 0 {
            self.run_audit()?;
        }
        Ok(())
    }

    /// The next cycle [`Gpu::step`] must actually run: the minimum of
    /// every component's conservative next-event bound, clamped so the
    /// watchdog and the periodic auditor still observe their exact
    /// cycles. Returns `now + 1` (no leap) whenever any component could
    /// act immediately, and degrades to `now + 1` when no event is
    /// scheduled anywhere (a dropped-packet deadlock with the watchdog
    /// off ticks toward the cycle cap exactly as the reference loop
    /// does).
    fn next_step_cycle(&mut self) -> u64 {
        let now = self.now;
        let fallthrough = now + 1;
        // A launchable CTA issues next cycle; only a fully denied scan
        // (every SM full) is skippable dead time.
        if !self.pending_ctas.is_empty() {
            let wpc = self.kernel.grid().warps_per_cta;
            if self.sms.iter().any(|sm| sm.can_accept_cta(wpc)) {
                return fallthrough;
            }
        }
        // Fast path: the component that forced the last tick usually
        // forces this one too — one probe instead of a machine-wide
        // scan. A miss falls through to the full scan, which refreshes
        // the hint; a stale hint is therefore never a correctness issue.
        let hot = match self.leap_hint {
            LeapHint::None => false,
            LeapHint::Sm(s) => {
                self.sm_busy[s]
                    && if self.sm_sleep_enabled() {
                        self.sm_next_ev[s] <= fallthrough
                    } else {
                        matches!(self.sms[s].next_event(now), Some(ev) if ev <= fallthrough)
                    }
            }
            LeapHint::IcntRet(s) => self.icnt.next_ret_ready(s).is_some_and(|r| r <= fallthrough),
            LeapHint::IcntFwd(p) => {
                self.parts[p].can_accept()
                    && self.icnt.next_fwd_ready(p).is_some_and(|r| r <= fallthrough)
            }
            LeapHint::Partition(p) => {
                self.part_busy[p]
                    && matches!(self.parts[p].next_event(now), Some(ev) if ev <= fallthrough)
            }
        };
        if hot {
            return fallthrough;
        }
        let mut t = u64::MAX;
        if self.sm_sleep_enabled() {
            // The per-SM sleep cache holds exactly the bound this scan
            // needs — maintained by step(), so no SM is re-probed here.
            for s in 0..self.sms.len() {
                if !self.sm_busy[s] {
                    continue;
                }
                let ev = self.sm_next_ev[s];
                if ev <= fallthrough {
                    self.leap_hint = LeapHint::Sm(s);
                    return fallthrough;
                }
                t = t.min(ev);
            }
        } else {
            for (s, sm) in self.sms.iter_mut().enumerate() {
                if !self.sm_busy[s] {
                    continue;
                }
                match sm.next_event(now) {
                    Some(ev) if ev <= fallthrough => {
                        self.leap_hint = LeapHint::Sm(s);
                        return fallthrough;
                    }
                    Some(ev) => t = t.min(ev),
                    None => {}
                }
            }
        }
        // Crossbar queue heads eject strictly in FIFO order, so the head
        // ready stamp gates each port. Return packets are always
        // deliverable; forward packets only land while the partition's
        // input queue has room (a full queue drains only via a partition
        // event, which the partition's own bound covers).
        for s in 0..self.sms.len() {
            if let Some(ready) = self.icnt.next_ret_ready(s) {
                if ready <= fallthrough {
                    self.leap_hint = LeapHint::IcntRet(s);
                    return fallthrough;
                }
                t = t.min(ready);
            }
        }
        for (p, part) in self.parts.iter_mut().enumerate() {
            if part.can_accept() {
                if let Some(ready) = self.icnt.next_fwd_ready(p) {
                    if ready <= fallthrough {
                        self.leap_hint = LeapHint::IcntFwd(p);
                        return fallthrough;
                    }
                    t = t.min(ready);
                }
            }
            if self.part_busy[p] {
                match part.next_event(now) {
                    Some(ev) if ev <= fallthrough => {
                        self.leap_hint = LeapHint::Partition(p);
                        return fallthrough;
                    }
                    Some(ev) => t = t.min(ev),
                    None => {}
                }
            }
        }
        self.leap_hint = LeapHint::None;
        // The watchdog must fire at the identical cycle a ticked run
        // would report, and scheduled audits must run on schedule — a
        // leap never jumps across either.
        if self.cfg.watchdog_cycles > 0 {
            t = t.min(self.last_progress_cycle + self.cfg.watchdog_cycles);
        }
        if self.cfg.audit_interval > 0 {
            t = t.min((now + 1).next_multiple_of(self.cfg.audit_interval));
        }
        if t == u64::MAX {
            return fallthrough;
        }
        t.max(fallthrough)
    }

    /// Advance `now` to `target`, replaying the skipped cycles — all
    /// provably no-ops per [`Gpu::next_step_cycle`] — arithmetically:
    ///
    /// - a pending-CTA backlog would have burned one fully denied
    ///   round-robin scan per cycle (cursor advances once per SM);
    /// - SMs need nothing here: deferred aging (`sm_last_cycled`)
    ///   replays the gap via [`Sm::leap_catchup`] when each SM next
    ///   cycles or when [`Gpu::settle_sms`] runs;
    /// - partitions need nothing either: their fractional DRAM clock
    ///   catches up lazily on the next [`MemoryPartition::cycle`] call.
    ///
    /// Under the `audit` feature the window is instead re-simulated
    /// tick-by-tick, asserting after every step that the activity
    /// signature did not change — i.e. that the leap bound really was
    /// conservative. Statistics come out identical on that path too,
    /// because the replayed cycles age the same counters the arithmetic
    /// path adds in bulk.
    fn leap_to(&mut self, target: u64) -> Result<(), SimError> {
        debug_assert!(target >= self.now, "leap target is in the past");
        if cfg!(feature = "audit") {
            while self.now < target {
                let before = self.activity_signature();
                self.step()?;
                debug_assert_eq!(
                    before,
                    self.activity_signature(),
                    "cycle {} inside a leap window was not a no-op",
                    self.now
                );
            }
            return Ok(());
        }
        let skipped = target - self.now;
        if skipped == 0 {
            return Ok(());
        }
        if !self.pending_ctas.is_empty() {
            // Each skipped cycle was a fully denied round-robin scan:
            // the cursor advanced once per SM. Checked — a silent wrap
            // would rotate the launch order (see `advance_cursor`).
            let slots = (self.sms.len() as u128) * u128::from(skipped);
            advance_cursor(&mut self.launch_cursor, slots, self.now)?;
        }
        self.now = target;
        Ok(())
    }

    /// FNV-1a hash of everything that distinguishes an *active* cycle
    /// from dead time: flow counters, queue occupancies, in-flight
    /// packet census, DRAM traffic. Aging counters (stall cycles,
    /// rejected submits, the launch cursor) are deliberately excluded —
    /// they advance in dead time by design and are replayed
    /// arithmetically. Used by the `audit`-feature leap verification.
    fn activity_signature(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                // dlp-lint: allow(F103) -- FNV-1a is modular multiplication by definition
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        put(self.total_warp_insns);
        put(self.counters.fetches_sent);
        put(self.counters.replies_delivered);
        put(self.counters.fwd_flits_delivered);
        put(self.counters.ret_flits_delivered);
        put(self.icnt.in_flight() as u64);
        put(self.pending_ctas.len() as u64);
        put(self.busy_sms as u64);
        put(self.busy_parts as u64);
        for sm in &self.sms {
            put(sm.active_warps() as u64);
            put(sm.ldst_queue_len() as u64);
            put(sm.l1d.mshr_occupancy() as u64);
            put(sm.l1d.outgoing_len() as u64);
            put(sm.l1d.pending_responses() as u64);
        }
        for p in &self.parts {
            put(p.in_queue_len() as u64);
            put(p.l2_mshr_occupancy() as u64);
            put(p.out_queue_len() as u64);
            let d = p.dram_stats();
            put(d.reads + d.writes);
        }
        h
    }

    /// Run every conservation and structural check once, at the current
    /// cycle. Exposed so tests can audit at a chosen instant. Cold: it
    /// runs once per `audit_interval` cycles, never per tick.
    #[cold]
    pub fn run_audit(&self) -> Result<(), SimError> {
        let sms: Vec<&Sm> = self.sms.iter().collect();
        let parts: Vec<&MemoryPartition> = self.parts.iter().collect();
        audit_machine(self.now, &self.counters, &self.icnt, &sms, &parts)
    }

    /// Watchdog abort: box the diagnostic snapshot into the error off
    /// the hot path (the only allocation `step` could otherwise reach).
    #[cold]
    fn hang_abort(&self) -> SimError {
        SimError::Hang(Box::new(self.hang_report()))
    }

    /// Snapshot the whole machine for a failure diagnostic. Cold: runs
    /// once, on the way out of a hung or cycle-capped run.
    #[cold]
    pub fn hang_report(&self) -> HangReport {
        HangReport {
            cycle: self.now,
            last_progress_cycle: self.last_progress_cycle,
            pending_ctas: self.pending_ctas.len(),
            fetches_sent: self.counters.fetches_sent,
            replies_delivered: self.counters.replies_delivered,
            icnt_in_flight: self.icnt.in_flight(),
            icnt_fwd_depths: self.icnt.fwd_queue_depths(),
            icnt_ret_depths: self.icnt.ret_queue_depths(),
            sms: self
                .sms
                .iter()
                .map(|sm| SmSnapshot {
                    id: sm.id,
                    active_warps: sm.active_warps(),
                    warp_insns: sm.stats().warp_insns,
                    ldst_queue: sm.ldst_queue_len(),
                    mshr_occupancy: sm.l1d.mshr_occupancy(),
                    outgoing: sm.l1d.outgoing_len(),
                    input_blocked: sm.l1d.input_blocked(),
                })
                .collect(),
            partitions: self
                .parts
                .iter()
                .enumerate()
                .map(|(id, p)| PartitionSnapshot {
                    id,
                    in_queue: p.in_queue_len(),
                    l2_mshr: p.l2_mshr_occupancy(),
                    out_queue: p.out_queue_len(),
                    dram_idle: p.dram_idle(),
                })
                .collect(),
        }
    }

    pub(crate) fn finished(&self) -> bool {
        // O(1): busy counts are maintained by step(); a component is
        // demoted only after a cycle in which it reported idle, so the
        // counts reaching zero implies the full scans would too.
        let done = self.pending_ctas.is_empty()
            && self.icnt.in_flight() == 0
            && self.busy_sms == 0
            && self.busy_parts == 0;
        debug_assert!(
            !done
                || (self.sms.iter().all(Sm::idle)
                    && self.parts.iter().all(MemoryPartition::idle)),
            "busy counts report finished but a component still has work"
        );
        done
    }

    /// Run to completion and report, or abort with a typed error: a
    /// hang report from the watchdog, a cycle-cap overrun, or the first
    /// invariant violation found.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        if let Some(sc) = self.cfg.sampling {
            return self.run_sampled(sc);
        }
        if self.effective_shards() > 1 {
            return crate::shard::run_sharded(self, None);
        }
        while !self.finished() {
            if self.now >= self.cfg.max_cycles {
                self.settle_sms();
                return Err(SimError::CycleCapExceeded(Box::new(self.hang_report())));
            }
            if self.cfg.leap {
                // Leap to just before the next event, then step it. The
                // cycle-cap clamp keeps the overrun error surfacing at
                // the same cycle the reference loop reports.
                let target = self.next_step_cycle().min(self.cfg.max_cycles);
                if target > self.now + 1 {
                    self.leap_to(target - 1)?;
                }
            }
            self.step()?;
        }
        self.settle_sms();
        Ok(self.collect(true))
    }

    /// Run at most `cycles` more cycles (incremental driving for tests
    /// and interactive exploration). Unlike [`Gpu::run`], reaching the
    /// requested horizon is success, not an error.
    pub fn run_for(&mut self, cycles: u64) -> Result<RunStats, SimError> {
        let end = self.now + cycles;
        if self.effective_shards() > 1 {
            return crate::shard::run_sharded(self, Some(end));
        }
        while !self.finished() && self.now < end {
            if self.cfg.leap {
                let target = self.next_step_cycle();
                if target > end {
                    // The whole remaining horizon is dead time: account
                    // for it and stop at the horizon, exactly where the
                    // reference loop would.
                    self.leap_to(end)?;
                    break;
                }
                if target > self.now + 1 {
                    self.leap_to(target - 1)?;
                }
            }
            self.step()?;
        }
        self.settle_sms();
        Ok(self.collect(self.finished()))
    }

    /// What the sampling controller measured during the last [`Gpu::run`],
    /// or `None` when the run executed in exact mode.
    pub fn sampling_report(&self) -> Option<&SamplingReport> {
        self.sampling_report.as_ref()
    }

    /// SMARTS-style interval sampling: alternate short detailed windows
    /// (warm-up + measurement, simulated cycle-accurately by the very
    /// loop [`Gpu::run`] uses) with long functionally fast-forwarded
    /// gaps. Per-window counter deltas become [`WindowSample`]s whose
    /// spread yields the confidence interval dlp-bench reports.
    fn run_sampled(&mut self, sc: SamplingConfig) -> Result<RunStats, SimError> {
        let mut report = SamplingReport::default();
        // Deterministic phase offset: shift the sampling grid by a
        // seed-dependent amount so repeated experiments with different
        // seeds observe different program phases.
        let offset = sc.seed % sc.skip;
        if offset > 0 && !self.finished() {
            self.drain_in_flight()?;
            self.fast_forward_gap(offset, &mut report)?;
        }
        while !self.finished() {
            if self.now >= self.cfg.max_cycles {
                self.settle_sms();
                self.sampling_report = Some(report);
                return Err(SimError::CycleCapExceeded(Box::new(self.hang_report())));
            }
            // Warm-up: detailed execution whose counters are discarded —
            // it exists to re-form queues, MSHR pressure and in-flight
            // traffic after the functional gap.
            self.run_detailed_window(sc.warmup, &mut report)?;
            if self.finished() {
                break;
            }
            // Measurement window: everything between the two snapshots
            // is cycle-accurate, so the deltas are unbiased estimators.
            let start = self.now;
            let before = self.sample_snapshot();
            self.run_detailed_window(sc.detail, &mut report)?;
            let after = self.sample_snapshot();
            report.windows.push(WindowSample {
                cycles: self.now - start,
                warp_insns: after.warp_insns - before.warp_insns,
                thread_insns: after.thread_insns - before.thread_insns,
                accesses: after.accesses - before.accesses,
                hits: after.hits - before.hits,
                flits: after.flits - before.flits,
            });
            if self.finished() {
                break;
            }
            self.drain_in_flight()?;
            self.fast_forward_gap(sc.skip, &mut report)?;
        }
        self.settle_sms();
        self.sampling_report = Some(report);
        Ok(self.collect(true))
    }

    /// One detailed window: the exact-mode run loop, bounded at
    /// `self.now + cycles`. Counts every cycle it advances (stepped or
    /// leapt) as detailed time in the report.
    fn run_detailed_window(
        &mut self,
        cycles: u64,
        report: &mut SamplingReport,
    ) -> Result<(), SimError> {
        let start = self.now;
        let end = start + cycles;
        while !self.finished() && self.now < end {
            if self.now >= self.cfg.max_cycles {
                report.detailed_cycles += self.now - start;
                self.settle_sms();
                self.sampling_report = Some(report.clone());
                return Err(SimError::CycleCapExceeded(Box::new(self.hang_report())));
            }
            if self.cfg.leap {
                let target = self.next_step_cycle();
                if target > end {
                    // The rest of the window is dead time; account for
                    // it and stop exactly at the window edge.
                    self.leap_to(end)?;
                    break;
                }
                if target > self.now + 1 {
                    self.leap_to(target - 1)?;
                }
            }
            self.step()?;
        }
        // The loop may have leapt to the window edge without stepping.
        // [`MemoryPartition::next_event`] computes its DRAM-domain term
        // relative to the partition's *internal* clock, which is only
        // current right after a step that cycled it — so before the next
        // window probes for a leap bound, replay the leapt tail into
        // each partition's clock (sound: the bound that licensed the
        // leap guarantees the tail was quiet).
        for p in &mut self.parts {
            p.advance_quiet(self.now);
        }
        report.detailed_cycles += self.now - start;
        Ok(())
    }

    /// Resolve every in-flight request so the machine reaches a
    /// quiescent point the functional fast-forward can start from:
    /// partitions answer everything they hold, crossbar packets arrive
    /// instantly, L1Ds absorb the replies and retire the warps that
    /// were waiting. Conservation counters are maintained throughout, so
    /// the periodic audits stay valid across the window edge.
    fn drain_in_flight(&mut self) -> Result<(), SimError> {
        let now = self.now;
        // Age deferred per-SM accounting through the window edge first,
        // while the "cycles behind" bookkeeping is still coherent.
        self.settle_sms();
        let mut replies: Vec<Packet> = Vec::new();
        let mut effects: Vec<(u64, bool)> = Vec::new();
        // 1. Partitions complete their L2 misses and flush their queues.
        //    This empties every L2 MSHR, which the functional apply
        //    paths below require.
        for p in 0..self.parts.len() {
            replies.extend(self.parts[p].drain_functional());
        }
        // 2. Requests still sitting in L1D outgoing queues route
        //    directly to their partition (they never enter the crossbar,
        //    so no flit delivery is recorded for them — matching the
        //    send side, which never counted them either).
        for s in 0..self.sms.len() {
            while let Some(pkt) = self.sms[s].l1d.pop_outgoing() {
                if pkt.kind.expects_reply() {
                    self.counters.fetches_sent += 1;
                }
                let dst = self.icnt.partition_of(pkt.addr);
                if let Some(reply) = self.parts[dst].apply_functional(pkt) {
                    replies.push(reply);
                }
            }
        }
        // 3. Packets in flight toward the partitions arrive now.
        for p in 0..self.parts.len() {
            for (_, pkt) in self.icnt.extract_ready_fwd(p, u64::MAX) {
                self.counters.fwd_flits_delivered += pkt.flits();
                if let Some(reply) = self.parts[p].apply_functional(pkt) {
                    replies.push(reply);
                }
            }
        }
        // 4. Replies in flight toward the SMs arrive now.
        for s in 0..self.sms.len() {
            for (_, pkt) in self.icnt.extract_ready_ret(s, u64::MAX) {
                self.counters.ret_flits_delivered += pkt.flits();
                replies.push(pkt);
            }
        }
        // 5. Deliver every owed reply to its L1D.
        for pkt in replies {
            let s = pkt.req.sm as usize;
            self.counters.replies_delivered += 1;
            self.sms[s]
                .l1d
                .on_reply(pkt, now)
                .map_err(|source| SimError::MshrViolation { sm: s, source, cycle: now })?;
        }
        // 6. SMs ripen the responses, retire the blocked warps, and
        //    retry anything the replay queues held. Fresh misses raised
        //    here fill instantly; their L2-side footprint is applied
        //    functionally.
        for s in 0..self.sms.len() {
            self.sms[s].drain_functional(now, &mut effects)?;
            for &(addr, is_write) in &effects {
                let dst = self.icnt.partition_of(addr);
                self.parts[dst].l2_touch_functional(addr, is_write);
            }
            effects.clear();
            self.sms[s].take_finished_ctas();
        }
        // 7. Re-derive the busy/sleep bookkeeping the event core trusts.
        for s in 0..self.sms.len() {
            let idle = self.sms[s].idle();
            match (self.sm_busy[s], idle) {
                (true, true) => {
                    self.sm_busy[s] = false;
                    self.busy_sms -= 1;
                }
                (false, false) => {
                    self.sm_busy[s] = true;
                    self.busy_sms += 1;
                }
                _ => {}
            }
            self.sm_next_ev[s] = 0;
            self.sm_last_cycled[s] = now;
            self.sm_asleep[s] = false;
        }
        for p in 0..self.parts.len() {
            debug_assert!(self.parts[p].idle(), "partition {p} not idle after drain");
            if self.part_busy[p] {
                self.part_busy[p] = false;
                self.busy_parts -= 1;
            }
        }
        debug_assert_eq!(self.icnt.in_flight(), 0, "crossbar not empty after drain");
        self.leap_hint = LeapHint::None;
        self.last_progress = self.counters.replies_delivered + self.total_warp_insns;
        self.last_progress_cycle = now;
        Ok(())
    }

    /// Functionally execute roughly `gap` cycles' worth of work: warps
    /// advance instruction by instruction, every memory access updates
    /// cache and policy state with an instant fill, and nothing touches
    /// crossbar or DRAM timing. The instruction budget is set by the
    /// last measurement window's issue rate so the gap represents the
    /// same amount of program progress detailed simulation would make.
    fn fast_forward_gap(
        &mut self,
        gap: u64,
        report: &mut SamplingReport,
    ) -> Result<(), SimError> {
        let budget = match report.windows.last() {
            Some(w) if w.cycles > 0 => {
                (w.warp_insns.saturating_mul(gap) / w.cycles).max(64)
            }
            // Cold start (phase offset before the first window): assume
            // one warp instruction per cycle.
            _ => gap.max(64),
        };
        let mut executed = 0u64;
        let mut effects: Vec<(u64, bool)> = Vec::new();
        while executed < budget {
            self.launch_ctas()?;
            let mut progressed = false;
            for s in 0..self.sms.len() {
                let quantum = (budget - executed).min(512);
                let done = self.sms[s].advance_functional(quantum, self.now, &mut effects)?;
                if done > 0 {
                    progressed = true;
                }
                executed += done;
                self.total_warp_insns += done;
                for &(addr, is_write) in &effects {
                    let dst = self.icnt.partition_of(addr);
                    self.parts[dst].l2_touch_functional(addr, is_write);
                }
                effects.clear();
                self.sms[s].take_finished_ctas();
                if executed >= budget {
                    break;
                }
            }
            if !progressed {
                // Nothing ran and launch_ctas had nothing to place: the
                // grid is out of work — the gap ends early.
                break;
            }
        }
        // Re-derive busy flags: SMs may have run dry mid-gap, and
        // launch_ctas marked newly fed SMs busy already.
        for s in 0..self.sms.len() {
            let idle = self.sms[s].idle();
            match (self.sm_busy[s], idle) {
                (true, true) => {
                    self.sm_busy[s] = false;
                    self.busy_sms -= 1;
                }
                (false, false) => {
                    self.sm_busy[s] = true;
                    self.busy_sms += 1;
                }
                _ => {}
            }
            self.sm_next_ev[s] = 0;
            self.sm_asleep[s] = false;
        }
        // Advance the clock: the full gap normally; pro-rated when the
        // program ran dry partway through, so end-of-run cycle counts
        // stay meaningful.
        let advance = if executed >= budget || !self.finished() {
            gap
        } else {
            gap.saturating_mul(executed) / budget
        };
        self.now += advance;
        report.ff_cycles += advance;
        report.ff_insns += executed;
        for s in 0..self.sms.len() {
            self.sm_last_cycled[s] = self.now;
        }
        self.last_progress = self.counters.replies_delivered + self.total_warp_insns;
        self.last_progress_cycle = self.now;
        Ok(())
    }

    /// Cumulative counter snapshot for window-delta estimation.
    fn sample_snapshot(&self) -> WindowSample {
        let mut snap = WindowSample::default();
        for sm in &self.sms {
            let s = sm.stats();
            snap.warp_insns += s.warp_insns;
            snap.thread_insns += s.thread_insns;
            let c = sm.l1d.stats();
            snap.accesses += c.accesses;
            snap.hits += c.hits;
        }
        // Injected, not delivered, flits: delivery lags injection by the
        // full queueing latency, which under congestion exceeds a window
        // length — a delivered-basis delta would systematically starve
        // the window. Injection shares its basis with the exact-mode
        // figure ([`IcntStats::total_flits`]).
        snap.flits = sm_icnt_stats(&self.icnt).total_flits();
        snap
    }

    /// Largest per-warp resident trace footprint across the chip — the
    /// scale axis's bounded-memory witness.
    pub fn peak_warp_trace_bytes(&self) -> u64 {
        self.sms.iter().map(|sm| sm.peak_warp_trace_bytes()).max().unwrap_or(0)
    }

    pub(crate) fn collect(&self, completed: bool) -> RunStats {
        let mut out = RunStats { cycles: self.now, completed, ..Default::default() };
        for sm in &self.sms {
            let s = sm.stats();
            out.thread_insns += s.thread_insns;
            out.warp_insns += s.warp_insns;
            out.mem_transactions += s.mem_transactions;
            out.l1d.merge(sm.l1d.stats());
            out.policy.merge(&sm.l1d.policy_stats());
            out.insn_id_wraps += sm.l1d.insn_id_wraps();
            out.pdpt_evict_pressure += sm.l1d.pdpt_evict_pressure();
        }
        out.peak_warp_trace_bytes = self.peak_warp_trace_bytes();
        out.icnt = sm_icnt_stats(&self.icnt);
        for p in &self.parts {
            out.l2.merge(p.l2_stats());
            out.dram.merge(p.dram_stats());
        }
        out
    }
}

fn sm_icnt_stats(icnt: &Interconnect) -> gpu_mem::stats::IcntStats {
    icnt.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::TraceOp;
    use crate::kernel::GridDesc;
    use dlp_core::PolicyKind;

    /// A streaming kernel: every warp loads a private range then does
    /// dependent ALU work.
    struct Stream {
        ctas: usize,
        warps: usize,
        iters: usize,
    }

    impl Kernel for Stream {
        fn name(&self) -> &str {
            "stream"
        }
        fn grid(&self) -> GridDesc {
            GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
        }
        fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn crate::stream::OpStream> {
            let mut ops = Vec::new();
            let warp_base = ((cta * self.warps + warp) * self.iters) as u64 * 4096;
            for i in 0..self.iters {
                let base = warp_base + (i as u64) * 4096;
                ops.push(TraceOp::load(0, 1, (0..32).map(|l| base + l * 4).collect()));
                ops.push(TraceOp::alu(1, 4).with_srcs([1]).with_dst(2));
                ops.push(TraceOp::alu(2, 4).with_srcs([2]).with_dst(3));
            }
            Box::new(crate::stream::VecStream::new(ops))
        }
    }

    #[test]
    fn small_kernel_completes_on_every_policy() {
        for kind in PolicyKind::ALL {
            let cfg = SimConfig::tesla_m2090(kind).scaled_down(2);
            let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 4, warps: 2, iters: 3 }));
            let stats = gpu.run().unwrap();
            assert!(stats.completed, "{kind:?} did not complete");
            assert_eq!(stats.warp_insns, 4 * 2 * 3 * 3, "{kind:?} wrong insn count");
            assert_eq!(stats.l1d.accesses, stats.mem_transactions);
            assert!(stats.ipc() > 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let cfg = SimConfig::tesla_m2090(PolicyKind::Dlp).scaled_down(2);
            Gpu::new(cfg, Box::new(Stream { ctas: 6, warps: 3, iters: 4 }))
        };
        let a = mk().run().unwrap();
        let b = mk().run().unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1d, b.l1d);
        assert_eq!(a.icnt, b.icnt);
    }

    #[test]
    fn memory_bound_kernel_touches_dram() {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1);
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 2, warps: 2, iters: 4 }));
        let stats = gpu.run().unwrap();
        assert!(stats.dram.reads > 0);
        assert!(stats.icnt.total_flits() > 0);
        assert!(stats.l2.accesses > 0);
    }

    #[test]
    fn more_ctas_than_capacity_still_drain() {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1);
        // 1 SM × 48 slots, 8-warp CTAs -> 6 resident; 20 CTAs queue up.
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 20, warps: 8, iters: 2 }));
        let stats = gpu.run().unwrap();
        assert!(stats.completed);
        assert_eq!(stats.warp_insns, 20 * 8 * 2 * 3);
    }

    #[test]
    fn warp_throttling_limits_concurrency() {
        // With a 2-warp limit and 2-warp CTAs, at most one CTA is
        // resident per SM; the kernel still completes.
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1).with_warp_limit(2);
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 6, warps: 2, iters: 2 }));
        let stats = gpu.run().unwrap();
        assert!(stats.completed);
        assert_eq!(stats.warp_insns, 6 * 2 * 2 * 3);
        // Throttled runs serialize CTAs, so they take longer than the
        // unthrottled machine.
        let full = Gpu::new(
            SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1),
            Box::new(Stream { ctas: 6, warps: 2, iters: 2 }),
        )
        .run()
        .unwrap();
        assert!(stats.cycles > full.cycles);
    }

    #[test]
    fn sampled_run_completes_and_reports_windows() {
        for kind in PolicyKind::ALL {
            let sc = SamplingConfig { detail: 200, skip: 600, warmup: 100, seed: 0 };
            let cfg = SimConfig::tesla_m2090(kind).scaled_down(2).with_sampling(sc);
            let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 16, warps: 4, iters: 16 }));
            let stats = gpu.run().unwrap();
            assert!(stats.completed, "{kind:?} sampled run did not complete");
            // Every warp instruction executes exactly once, detailed or
            // functional — the total is exact, not estimated.
            assert_eq!(stats.warp_insns, 16 * 4 * 16 * 3, "{kind:?} wrong insn count");
            let report = gpu.sampling_report().expect("sampled run leaves a report");
            assert!(!report.windows.is_empty(), "{kind:?}: no measurement windows");
            assert!(report.ff_insns > 0, "{kind:?}: nothing fast-forwarded");
            assert!(report.ff_cycles > 0);
            for w in &report.windows {
                assert!(w.cycles > 0);
                assert!(w.hits <= w.accesses);
            }
        }
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let mk = |seed| {
            let sc = SamplingConfig { detail: 128, skip: 512, warmup: 64, seed };
            let cfg =
                SimConfig::tesla_m2090(PolicyKind::Dlp).scaled_down(2).with_sampling(sc);
            let mut gpu =
                Gpu::new(cfg, Box::new(Stream { ctas: 12, warps: 4, iters: 12 }));
            let stats = gpu.run().unwrap();
            (stats, gpu.sampling_report().unwrap().clone())
        };
        let (sa, ra) = mk(7);
        let (sb, rb) = mk(7);
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.l1d, sb.l1d);
        assert_eq!(ra, rb, "same seed must reproduce the same windows");
        // A different seed shifts the sampling grid, which the report
        // reflects (the run still completes with the same total work).
        let (sc_, rc) = mk(123);
        assert_eq!(sa.warp_insns, sc_.warp_insns);
        assert!(sc_.completed);
        assert_ne!(ra, rc, "different seeds should observe different windows");
    }

    #[test]
    fn exact_mode_is_untouched_by_the_sampling_field() {
        // sampling: None must leave the run loop on the exact path —
        // identical cycles and counters to a config that never heard of
        // sampling (the golden-digest guarantee, in miniature).
        let cfg = SimConfig::tesla_m2090(PolicyKind::Dlp).scaled_down(2);
        assert!(cfg.sampling.is_none());
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 6, warps: 3, iters: 4 }));
        let stats = gpu.run().unwrap();
        assert!(gpu.sampling_report().is_none());
        assert!(stats.completed);
    }

    #[test]
    fn sampled_run_respects_the_cycle_cap() {
        let sc = SamplingConfig { detail: 64, skip: 128, warmup: 32, seed: 0 };
        let mut cfg =
            SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(2).with_sampling(sc);
        cfg.max_cycles = 300;
        let mut gpu = Gpu::new(cfg, Box::new(Stream { ctas: 32, warps: 8, iters: 64 }));
        match gpu.run() {
            Err(SimError::CycleCapExceeded(report)) => {
                assert!(report.cycle >= 300);
            }
            other => panic!("expected a cycle-cap error, got {other:?}"),
        }
    }

    #[test]
    fn launch_cursor_overflow_is_a_typed_error() {
        let mut cursor = usize::MAX - 1;
        assert!(advance_cursor(&mut cursor, 1, 7).is_ok());
        assert_eq!(cursor, usize::MAX);
        let err = advance_cursor(&mut cursor, 1, 9).unwrap_err();
        match err {
            SimError::LaunchCursorOverflow { cycle, slots } => {
                assert_eq!(cycle, 9);
                assert_eq!(slots, 1);
            }
            other => panic!("wrong error variant: {other}"),
        }
        assert_eq!(cursor, usize::MAX, "cursor is left untouched on failure");
        // The leap replay's bulk advance hits the same guard.
        let mut cursor = usize::MAX - 100;
        let err = advance_cursor(&mut cursor, 16 * 50_000, 42).unwrap_err();
        assert!(matches!(err, SimError::LaunchCursorOverflow { cycle: 42, .. }));
    }

    #[test]
    fn reuse_kernel_hits_in_l1d() {
        /// Warps re-read the same small array repeatedly.
        struct Reuse;
        impl Kernel for Reuse {
            fn name(&self) -> &str {
                "reuse"
            }
            fn grid(&self) -> GridDesc {
                GridDesc { num_ctas: 1, warps_per_cta: 1 }
            }
            fn warp_stream(&self, _c: usize, _w: usize) -> Box<dyn crate::stream::OpStream> {
                Box::new(crate::stream::VecStream::new(
                    (0..64)
                        .map(|i| {
                            TraceOp::load(0, 1, (0..32).map(|l| (i % 2) * 128 + l * 4).collect())
                        })
                        .collect(),
                ))
            }
        }
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline).scaled_down(1);
        let stats = Gpu::new(cfg, Box::new(Reuse)).run().unwrap();
        assert_eq!(stats.l1d.accesses, 64);
        assert_eq!(stats.l1d.hits, 62, "all but the two compulsory misses hit");
    }
}
