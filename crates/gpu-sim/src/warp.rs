//! Per-warp execution state: instruction stream position and the
//! register scoreboard.

use crate::isa::{OpKind, Reg, TraceOp, MAX_REGS, NO_REG};
use crate::stream::OpStream;

/// One resident warp.
pub struct Warp {
    /// Warp slot index within the SM.
    pub slot: usize,
    /// Global CTA this warp belongs to.
    pub cta: usize,
    /// Launch order stamp (GTO "oldest" tiebreak).
    pub age: u64,
    stream: Box<dyn OpStream>,
    /// The next op to issue, pulled eagerly from the stream so the
    /// scheduler's scoreboard/next-op predicates stay `&self` reads.
    cur: Option<TraceOp>,
    /// Bitmask of registers with an outstanding producer.
    pending_mask: u64,
    /// Outstanding transaction count per register (loads split into
    /// several sector transactions).
    pending_count: [u16; MAX_REGS],
    /// Stores issued but not yet retired by the L1D.
    outstanding_stores: u32,
}

impl Warp {
    /// Create a warp about to execute `stream`.
    pub fn new(slot: usize, cta: usize, age: u64, mut stream: Box<dyn OpStream>) -> Self {
        let cur = stream.next_op();
        Warp {
            slot,
            cta,
            age,
            stream,
            cur,
            pending_mask: 0,
            pending_count: [0; MAX_REGS],
            outstanding_stores: 0,
        }
    }

    /// The next op to issue, if the stream isn't exhausted.
    pub fn peek(&self) -> Option<&TraceOp> {
        self.cur.as_ref()
    }

    /// All instructions issued?
    pub fn stream_done(&self) -> bool {
        self.cur.is_none()
    }

    /// Stream exhausted *and* all outstanding work retired?
    pub fn finished(&self) -> bool {
        self.stream_done() && self.pending_mask == 0 && self.outstanding_stores == 0
    }

    /// High-water mark of trace bytes this warp's stream kept resident.
    pub fn peak_trace_bytes(&self) -> usize {
        self.stream.peak_resident_bytes()
    }

    #[inline]
    fn reg_pending(&self, r: Reg) -> bool {
        r != NO_REG && (self.pending_mask >> (r as u64 % MAX_REGS as u64)) & 1 == 1
    }

    /// Scoreboard check: can the next op issue this cycle?
    pub fn scoreboard_ready(&self) -> bool {
        match self.peek() {
            None => false,
            Some(op) => {
                !self.reg_pending(op.dst)
                    && !self.reg_pending(op.srcs[0])
                    && !self.reg_pending(op.srcs[1])
            }
        }
    }

    /// Mark a register as awaiting `producers` writebacks.
    pub fn mark_pending(&mut self, r: Reg, producers: u16) {
        assert!(r != NO_REG && (r as usize) < MAX_REGS);
        assert_eq!(self.pending_count[r as usize], 0, "register already pending");
        assert!(producers > 0);
        self.pending_count[r as usize] = producers;
        self.pending_mask |= 1 << r;
    }

    /// One producer of `r` completed. Clears the scoreboard bit when the
    /// last one lands.
    pub fn complete_one(&mut self, r: Reg) {
        assert!(r != NO_REG && (r as usize) < MAX_REGS);
        let c = &mut self.pending_count[r as usize];
        assert!(*c > 0, "completion for a register that is not pending");
        *c -= 1;
        if *c == 0 {
            self.pending_mask &= !(1 << r);
        }
    }

    /// Track a store leaving for the L1D.
    pub fn store_issued(&mut self, transactions: u32) {
        self.outstanding_stores += transactions;
    }

    /// A store transaction retired.
    pub fn store_retired(&mut self) {
        assert!(self.outstanding_stores > 0);
        self.outstanding_stores -= 1;
    }

    /// Advance past the op just issued, returning it. The following op
    /// (if any) is pulled from the stream immediately, keeping the
    /// peek-based predicates valid.
    pub fn advance(&mut self) -> TraceOp {
        assert!(self.cur.is_some(), "advance past the end of the stream");
        // Unreachable fallback after the assert; keeps the signature
        // total without a panicking-macro path in simulator code.
        let op = self.cur.take().unwrap_or(TraceOp::alu(0, 0));
        self.cur = self.stream.next_op();
        op
    }

    /// Is the next op a memory op (needs the LD/ST unit)?
    pub fn next_is_mem(&self) -> bool {
        matches!(self.peek().map(|o| &o.kind), Some(OpKind::Mem { .. }))
    }

    /// Does unblocking this warp require an *event* — a memory response,
    /// ALU writeback, or store retirement — rather than just another
    /// issue slot? True exactly when the warp is alive but cannot issue.
    /// The cycle-leap event core leans on this: such a warp cannot
    /// become issuable inside a leapt window, because every producer
    /// completion is itself a scheduled event.
    pub fn needs_wakeup_event(&self) -> bool {
        !self.finished() && !self.scoreboard_ready()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::TraceOp;
    use crate::stream::VecStream;

    fn warp(ops: Vec<TraceOp>) -> Warp {
        Warp::new(0, 0, 0, Box::new(VecStream::new(ops)))
    }

    #[test]
    fn empty_warp_is_finished() {
        let w = warp(vec![]);
        assert!(w.finished());
        assert!(!w.scoreboard_ready());
    }

    #[test]
    fn dependent_op_waits_for_load() {
        let mut w = warp(vec![
            TraceOp::load(0, 1, vec![0]),
            TraceOp::alu(1, 2).with_srcs([1]).with_dst(2),
        ]);
        assert!(w.scoreboard_ready());
        w.advance();
        w.mark_pending(1, 1);
        assert!(!w.scoreboard_ready(), "src r1 pending");
        w.complete_one(1);
        assert!(w.scoreboard_ready());
    }

    #[test]
    fn independent_op_issues_under_outstanding_load() {
        let mut w = warp(vec![
            TraceOp::load(0, 1, vec![0]),
            TraceOp::alu(1, 2).with_dst(3),
        ]);
        w.advance();
        w.mark_pending(1, 1);
        assert!(w.scoreboard_ready(), "no operand overlap -> can issue");
    }

    #[test]
    fn waw_on_pending_dst_blocks() {
        let mut w = warp(vec![
            TraceOp::load(0, 1, vec![0]),
            TraceOp::alu(1, 2).with_dst(1),
        ]);
        w.advance();
        w.mark_pending(1, 1);
        assert!(!w.scoreboard_ready());
    }

    #[test]
    fn multi_transaction_load_completes_after_all_parts() {
        let mut w = warp(vec![TraceOp::load(0, 5, vec![0, 4096])]);
        w.advance();
        w.mark_pending(5, 2);
        assert!(!w.finished());
        w.complete_one(5);
        assert!(!w.finished());
        w.complete_one(5);
        assert!(w.finished());
    }

    #[test]
    fn outstanding_stores_hold_completion() {
        let mut w = warp(vec![TraceOp::store(0, vec![0])]);
        w.advance();
        w.store_issued(1);
        assert!(w.stream_done());
        assert!(!w.finished());
        w.store_retired();
        assert!(w.finished());
    }

    #[test]
    fn advance_returns_ops_in_stream_order() {
        let ops = vec![
            TraceOp::load(0, 1, vec![0]),
            TraceOp::alu(1, 2).with_srcs([1]).with_dst(2),
        ];
        let mut w = warp(ops.clone());
        assert_eq!(w.advance(), ops[0]);
        assert_eq!(w.advance(), ops[1]);
        assert!(w.stream_done());
    }

    #[test]
    fn peak_trace_bytes_reports_the_stream_high_water_mark() {
        let ops = vec![TraceOp::load(0, 1, vec![0, 4096])];
        let expect = crate::stream::ops_bytes(&ops);
        let w = warp(ops);
        assert_eq!(w.peak_trace_bytes(), expect);
    }

    #[test]
    #[should_panic(expected = "register already pending")]
    fn double_pending_panics() {
        let mut w = warp(vec![TraceOp::load(0, 1, vec![0]), TraceOp::load(1, 1, vec![0])]);
        w.advance();
        w.mark_pending(1, 1);
        w.advance();
        w.mark_pending(1, 1);
    }
}
