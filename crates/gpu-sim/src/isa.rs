//! The trace "ISA" kernels are expressed in.
//!
//! A workload is a per-warp sequence of [`TraceOp`]s: ALU operations
//! with a latency and register operands, and memory operations carrying
//! the byte address each active lane touches. This is the abstraction
//! level of trace-driven GPU simulators (e.g. Accel-Sim): enough to
//! exercise scheduling, latency hiding and every memory-system path,
//! without modeling arithmetic semantics the cache never sees.

/// Register index within a warp's register window (0..=62).
pub type Reg = u8;

/// Sentinel for "no register".
pub const NO_REG: Reg = u8::MAX;

/// Maximum registers addressable per warp (scoreboard width).
pub const MAX_REGS: usize = 64;

/// What an operation does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Arithmetic / shared-memory / control work that occupies the warp
    /// for a pipeline latency and (optionally) writes `dst`.
    Alu {
        /// Cycles until the destination register is written back.
        latency: u32,
        /// Active lanes executing the op (thread-instruction count).
        active: u8,
    },
    /// A global-memory instruction: one byte address per active lane.
    Mem {
        /// Store (true) or load (false).
        is_write: bool,
        /// Byte address touched by each active lane.
        addrs: Vec<u64>,
    },
}

/// One warp-level instruction in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Static program counter; memory PCs feed DLP's instruction hash.
    pub pc: u32,
    /// Destination register or [`NO_REG`].
    pub dst: Reg,
    /// Source registers ([`NO_REG`] padding).
    pub srcs: [Reg; 2],
    /// Operation payload.
    pub kind: OpKind,
}

impl TraceOp {
    /// An ALU op with the given latency, full warp active, no operands.
    pub fn alu(pc: u32, latency: u32) -> Self {
        TraceOp { pc, dst: NO_REG, srcs: [NO_REG; 2], kind: OpKind::Alu { latency, active: 32 } }
    }

    /// A global load writing `dst`, one address per active lane.
    pub fn load(pc: u32, dst: Reg, addrs: Vec<u64>) -> Self {
        assert!(!addrs.is_empty() && addrs.len() <= 32, "1..=32 active lanes");
        assert!(dst != NO_REG, "loads must write a register");
        TraceOp { pc, dst, srcs: [NO_REG; 2], kind: OpKind::Mem { is_write: false, addrs } }
    }

    /// A global store, one address per active lane.
    pub fn store(pc: u32, addrs: Vec<u64>) -> Self {
        assert!(!addrs.is_empty() && addrs.len() <= 32, "1..=32 active lanes");
        TraceOp { pc, dst: NO_REG, srcs: [NO_REG; 2], kind: OpKind::Mem { is_write: true, addrs } }
    }

    /// Attach source registers (up to two; dependences on loads create
    /// the latency-hiding pressure real kernels have).
    pub fn with_srcs<const N: usize>(mut self, srcs: [Reg; N]) -> Self {
        assert!(N <= 2);
        for (i, s) in srcs.into_iter().enumerate() {
            self.srcs[i] = s;
        }
        self
    }

    /// Attach a destination register.
    pub fn with_dst(mut self, dst: Reg) -> Self {
        self.dst = dst;
        self
    }

    /// Restrict an ALU op to `n` active lanes.
    pub fn with_active(mut self, n: u8) -> Self {
        if let OpKind::Alu { active, .. } = &mut self.kind {
            *active = n;
        }
        self
    }

    /// Thread instructions this op represents (active lanes).
    pub fn active_lanes(&self) -> u32 {
        match &self.kind {
            OpKind::Alu { active, .. } => *active as u32,
            OpKind::Mem { addrs, .. } => addrs.len() as u32,
        }
    }

    /// Is this a memory operation?
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, OpKind::Mem { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let a = TraceOp::alu(3, 8).with_dst(2).with_srcs([1]);
        assert_eq!(a.pc, 3);
        assert_eq!(a.dst, 2);
        assert_eq!(a.srcs, [1, NO_REG]);
        assert_eq!(a.active_lanes(), 32);
        assert!(!a.is_mem());

        let l = TraceOp::load(7, 5, vec![0, 4, 8]);
        assert!(l.is_mem());
        assert_eq!(l.active_lanes(), 3);

        let s = TraceOp::store(9, vec![16; 32]);
        assert_eq!(s.active_lanes(), 32);
        assert_eq!(s.dst, NO_REG);
    }

    #[test]
    fn with_active_trims_lanes() {
        let a = TraceOp::alu(0, 1).with_active(7);
        assert_eq!(a.active_lanes(), 7);
    }

    #[test]
    #[should_panic(expected = "1..=32 active lanes")]
    fn load_rejects_empty_lane_list() {
        TraceOp::load(0, 1, vec![]);
    }

    #[test]
    #[should_panic(expected = "loads must write a register")]
    fn load_rejects_no_reg_dst() {
        TraceOp::load(0, NO_REG, vec![0]);
    }
}
