//! Greedy-then-oldest (GTO) warp scheduling — Table 1's policy.
//!
//! A GTO scheduler keeps issuing from the warp it issued last as long as
//! that warp stays ready; when it stalls, the scheduler falls back to
//! the *oldest* ready warp (by launch age). GTO concentrates one warp's
//! locality in the L1D before moving on, which is why GPGPU-Sim uses it
//! as the cache-friendly default.

/// One warp scheduler. The SM instantiates two (Table 1), splitting its
/// warp slots between them.
pub struct GtoScheduler {
    /// Warp slots this scheduler owns, maintained in age order.
    warps: Vec<(u64, usize)>,
    /// The slot issued from last cycle, if any.
    greedy: Option<usize>,
}

impl Default for GtoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl GtoScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        GtoScheduler { warps: Vec::new(), greedy: None }
    }

    /// Register a newly launched warp with its age stamp.
    pub fn add(&mut self, slot: usize, age: u64) {
        let pos = self.warps.partition_point(|&(a, _)| a <= age);
        self.warps.insert(pos, (age, slot));
    }

    /// Remove a finished warp.
    pub fn remove(&mut self, slot: usize) {
        self.warps.retain(|&(_, s)| s != slot);
        if self.greedy == Some(slot) {
            self.greedy = None;
        }
    }

    /// Number of warps currently owned.
    pub fn len(&self) -> usize {
        self.warps.len()
    }

    /// No warps assigned?
    pub fn is_empty(&self) -> bool {
        self.warps.is_empty()
    }

    /// The slot the greedy pointer currently prefers (diagnostics; the
    /// cycle-leap equivalence tests use it to verify that no-issue
    /// cycles leave scheduler state untouched).
    pub fn greedy_slot(&self) -> Option<usize> {
        self.greedy
    }

    /// Pick the warp to issue from this cycle: last-issued if still
    /// ready, else the oldest ready one. Updates the greedy pointer
    /// **only on a successful pick** — a cycle in which nothing is ready
    /// mutates no scheduler state, which is what lets the cycle-leap
    /// event core skip dead cycles without touching schedulers at all.
    pub fn pick(&mut self, mut ready: impl FnMut(usize) -> bool) -> Option<usize> {
        if let Some(g) = self.greedy {
            if ready(g) {
                return Some(g);
            }
        }
        for &(_, slot) in &self.warps {
            if ready(slot) {
                self.greedy = Some(slot);
                return Some(slot);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sticks_with_greedy_warp_while_ready() {
        let mut s = GtoScheduler::new();
        s.add(0, 0);
        s.add(1, 1);
        assert_eq!(s.pick(|_| true), Some(0));
        assert_eq!(s.pick(|_| true), Some(0), "greedy repeats");
    }

    #[test]
    fn falls_back_to_oldest_ready() {
        let mut s = GtoScheduler::new();
        s.add(5, 10);
        s.add(3, 2); // older
        s.add(7, 30);
        assert_eq!(s.pick(|w| w != 3), Some(5), "oldest ready wins");
        // Now greedy=5; if 5 stalls and all ready, oldest (3) is next.
        assert_eq!(s.pick(|w| w != 5), Some(3));
    }

    #[test]
    fn returns_none_when_nothing_ready() {
        let mut s = GtoScheduler::new();
        s.add(0, 0);
        assert_eq!(s.pick(|_| false), None);
    }

    #[test]
    fn no_issue_pick_leaves_greedy_untouched() {
        // The cycle-leap event core skips cycles in which nothing can
        // issue; that is only sound if a fruitless pick would not have
        // mutated the greedy pointer.
        let mut s = GtoScheduler::new();
        s.add(0, 0);
        s.add(1, 1);
        assert_eq!(s.pick(|_| true), Some(0));
        assert_eq!(s.greedy_slot(), Some(0));
        assert_eq!(s.pick(|_| false), None);
        assert_eq!(s.greedy_slot(), Some(0), "no-issue cycles are pure");
    }

    #[test]
    fn removal_clears_greedy_pointer() {
        let mut s = GtoScheduler::new();
        s.add(0, 0);
        s.add(1, 1);
        assert_eq!(s.pick(|_| true), Some(0));
        s.remove(0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pick(|_| true), Some(1));
    }

    #[test]
    fn ages_keep_insertion_sorted() {
        let mut s = GtoScheduler::new();
        s.add(2, 20);
        s.add(1, 10);
        s.add(3, 30);
        // None greedy yet; oldest ready = slot 1.
        assert_eq!(s.pick(|_| true), Some(1));
    }
}
