//! Cursor-based instruction streams: the O(1)-memory interface between
//! a kernel and the warps executing it.
//!
//! A [`crate::Kernel`] hands each warp a [`OpStream`] instead of a
//! materialized `Vec<TraceOp>`: the warp pulls one op at a time with
//! [`OpStream::next_op`], so the resident state per warp is bounded by
//! the stream's internal buffer (one generator segment, one trace-file
//! chunk...), not by the trace length. That bound is what unlocks the
//! 100–1000× scale axis — a million-op warp costs the same memory as a
//! hundred-op one.
//!
//! [`VecStream`] is the compatibility adapter for code that still
//! produces whole traces (hand-written test kernels, the default
//! [`crate::Kernel::warp_ops`]); [`materialize`] is the inverse, for
//! analysis tools that genuinely need the full sequence.

use crate::isa::{OpKind, TraceOp};

/// A warp's instruction stream.
///
/// Contract:
/// * the op sequence is **deterministic**: two streams created from the
///   same `(kernel, cta, warp)` yield identical sequences, and
///   [`OpStream::reset`] rewinds to an identical replay (the sharded
///   engine's misspeculation restart and the analysis tools both
///   re-derive traces and must observe the same ops);
/// * [`OpStream::peek`] does not advance the cursor: `peek()` followed
///   by `next_op()` returns the same op;
/// * resident state is O(1) in the *trace length* — implementations
///   buffer at most a bounded window of upcoming ops and report it via
///   [`OpStream::resident_bytes`].
pub trait OpStream: Send {
    /// Pull the next op, or `None` when the stream is exhausted.
    fn next_op(&mut self) -> Option<TraceOp>;

    /// The op [`OpStream::next_op`] would return, without consuming it.
    fn peek(&mut self) -> Option<&TraceOp>;

    /// Rewind to the beginning of the stream for an identical replay.
    fn reset(&mut self);

    /// Bytes of trace data currently buffered by this stream.
    fn resident_bytes(&self) -> usize;

    /// High-water mark of [`OpStream::resident_bytes`] over the
    /// stream's lifetime. For a generator this is the largest segment
    /// buffered so far; for the [`VecStream`] adapter it is the whole
    /// trace — which is exactly the regression the scale-smoke CI job
    /// watches for.
    fn peak_resident_bytes(&self) -> usize;
}

/// Heap bytes owned by one op (the lane-address payload of memory ops).
pub fn op_bytes(op: &TraceOp) -> usize {
    let payload = match &op.kind {
        OpKind::Mem { addrs, .. } => addrs.capacity() * std::mem::size_of::<u64>(),
        OpKind::Alu { .. } => 0,
    };
    std::mem::size_of::<TraceOp>() + payload
}

/// Total resident bytes of a buffered op slice.
pub fn ops_bytes(ops: &[TraceOp]) -> usize {
    ops.iter().map(op_bytes).sum()
}

/// Compatibility adapter: a stream over an already-materialized trace.
///
/// Its resident state is the full trace by construction, so anything
/// built on it keeps the old memory behaviour — useful for tests, tiny
/// hand-written kernels and the stream⇄materialized equivalence suite,
/// but not for the scale axis.
pub struct VecStream {
    ops: Vec<TraceOp>,
    at: usize,
    bytes: usize,
}

impl VecStream {
    /// Wrap a materialized trace.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        let bytes = ops_bytes(&ops);
        VecStream { ops, at: 0, bytes }
    }
}

impl OpStream for VecStream {
    fn next_op(&mut self) -> Option<TraceOp> {
        let op = self.ops.get(self.at)?.clone();
        self.at += 1;
        Some(op)
    }

    fn peek(&mut self) -> Option<&TraceOp> {
        self.ops.get(self.at)
    }

    fn reset(&mut self) {
        self.at = 0;
    }

    fn resident_bytes(&self) -> usize {
        self.bytes
    }

    fn peak_resident_bytes(&self) -> usize {
        self.bytes
    }
}

/// Drain a stream into a full trace (profilers and equivalence tests;
/// the simulator itself never does this).
pub fn materialize(mut stream: Box<dyn OpStream>) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    while let Some(op) = stream.next_op() {
        ops.push(op);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceOp> {
        vec![
            TraceOp::load(0, 1, vec![0, 128]),
            TraceOp::alu(64, 4).with_srcs([1]).with_dst(2),
            TraceOp::store(1, vec![4096]).with_srcs([2]),
        ]
    }

    #[test]
    fn vec_stream_replays_the_trace() {
        let mut s = VecStream::new(trace());
        let mut got = Vec::new();
        while let Some(op) = s.next_op() {
            got.push(op);
        }
        assert_eq!(got, trace());
        assert!(s.next_op().is_none(), "exhausted stream stays exhausted");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s = VecStream::new(trace());
        assert_eq!(s.peek().cloned(), Some(trace()[0].clone()));
        assert_eq!(s.peek().cloned(), Some(trace()[0].clone()));
        assert_eq!(s.next_op(), Some(trace()[0].clone()));
        assert_eq!(s.peek().cloned(), Some(trace()[1].clone()));
    }

    #[test]
    fn reset_rewinds_to_an_identical_replay() {
        let mut s = VecStream::new(trace());
        let first: Vec<_> = std::iter::from_fn(|| s.next_op()).collect();
        s.reset();
        let second: Vec<_> = std::iter::from_fn(|| s.next_op()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn vec_stream_residency_is_the_whole_trace() {
        let t = trace();
        let expect = ops_bytes(&t);
        let s = VecStream::new(t);
        assert_eq!(s.resident_bytes(), expect);
        assert_eq!(s.peak_resident_bytes(), expect);
        assert!(expect >= 3 * std::mem::size_of::<TraceOp>());
    }

    #[test]
    fn materialize_round_trips() {
        assert_eq!(materialize(Box::new(VecStream::new(trace()))), trace());
    }
}
