//! Simulation configuration — Table 1 of the paper, transcribed.

use crate::sampling::SamplingConfig;
use dlp_core::{CacheGeometry, PolicyKind, ProtectionConfig};
use gpu_mem::fault::FaultConfig;
use gpu_mem::icnt::IcntConfig;
use gpu_mem::l1d::L1dConfig;
use gpu_mem::partition::PartitionConfig;

/// Full platform configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Streaming multiprocessors (Table 1: 16).
    pub num_sms: usize,
    /// Threads per warp (Table 1: 32).
    pub warp_size: usize,
    /// Resident-warp limit per SM (Table 1: 48).
    pub max_warps_per_sm: usize,
    /// Optional thread-level-parallelism throttle: cap resident warps
    /// below the hardware limit, as CCWS-style schedulers do (§7.2 /
    /// §8 future work: combining throttling with line protection).
    pub warp_limit: Option<usize>,
    /// Warp schedulers per SM (Table 1: 2, GTO).
    pub schedulers_per_sm: usize,
    /// Which L1D management scheme to run.
    pub policy: PolicyKind,
    /// Non-default protection parameters for the DLP/Global-Protection
    /// schemes (ablation studies). `None` uses the paper's values.
    pub protection_override: Option<ProtectionConfig>,
    /// L1D shape and miss-handling resources.
    pub l1d: L1dConfig,
    /// Crossbar parameters.
    pub icnt: IcntConfig,
    /// Memory-partition parameters (Table 1: 12 partitions).
    pub partition: PartitionConfig,
    /// LD/ST unit transaction queue depth per SM.
    pub ldst_queue: usize,
    /// Force the policy's sampling period to close every this many
    /// issued warp instructions (§4.1.4's cap for kernels with few
    /// loads). 0 disables.
    pub sample_insn_cap: u64,
    /// Safety valve: abort the run after this many core cycles.
    pub max_cycles: u64,
    /// Forward-progress watchdog: abort with a hang report when no
    /// instruction retires and no memory reply arrives for this many
    /// consecutive cycles. 0 disables the watchdog.
    pub watchdog_cycles: u64,
    /// Run the invariant auditor every this many cycles (0 = off).
    /// Building `gpu-sim` with the `audit` cargo feature turns it on by
    /// default; any build can enable it per run by setting this field.
    pub audit_interval: u64,
    /// Cycle-leap event core: jump `now` straight to the next scheduled
    /// event instead of ticking through memory-stall dead time. Results
    /// are byte-identical either way (the reference-mode equivalence
    /// suite pins this); `false` selects the tick-every-cycle reference
    /// path, mainly for differential testing and debugging.
    pub leap: bool,
    /// Deterministic fault injection into the memory system — used by
    /// the integrity tests to prove the watchdog and auditor catch
    /// corruption. `None` (the default) simulates faithfully.
    pub fault: Option<FaultConfig>,
    /// Sharded epoch engine: partition the SMs and memory partitions
    /// into this many shards and run them on parallel threads in
    /// deterministic lock-step epochs bounded by the crossbar hop
    /// latency. Statistics are byte-identical at any shard count (the
    /// shard-equivalence suite pins 1 vs 2 vs 4). 1 (the default)
    /// selects the classic single-threaded path; requires `leap`.
    pub shards: usize,
    /// SMARTS-style interval sampling: `Some` alternates detailed
    /// measurement windows with functional fast-forward and reports
    /// per-window counter samples for confidence intervals. `None`
    /// (the default) runs exact simulation, byte-identical to builds
    /// without the sampling code.
    pub sampling: Option<SamplingConfig>,
}

impl SimConfig {
    /// The paper's platform: a Tesla M2090 (Fermi) as configured in
    /// Table 1, with the chosen L1D policy.
    pub fn tesla_m2090(policy: PolicyKind) -> Self {
        SimConfig {
            num_sms: 16,
            warp_size: 32,
            max_warps_per_sm: 48,
            warp_limit: None,
            schedulers_per_sm: 2,
            policy,
            protection_override: None,
            l1d: L1dConfig::fermi_baseline(),
            icnt: IcntConfig::fermi(),
            partition: PartitionConfig::fermi(),
            ldst_queue: 64,
            sample_insn_cap: 4096,
            max_cycles: 30_000_000,
            // Generous: the deepest legitimate stall (a full DRAM bank
            // queue behind a row-miss storm) resolves within hundreds
            // of cycles, so 50k quiet cycles means a real deadlock.
            watchdog_cycles: 50_000,
            audit_interval: if cfg!(feature = "audit") { 4096 } else { 0 },
            leap: true,
            fault: None,
            shards: 1,
            sampling: None,
        }
    }

    /// Select the tick-every-cycle reference path instead of the
    /// cycle-leap event core (differential testing / debugging).
    pub fn with_reference_ticking(mut self) -> Self {
        self.leap = false;
        self
    }

    /// Same platform with a different L1D geometry (the 32 KB / 64 KB
    /// comparison configurations of §5.3 and Figures 4–5).
    pub fn with_l1_geometry(mut self, geom: CacheGeometry) -> Self {
        self.l1d.geom = geom;
        self
    }

    /// Scale the machine down (fewer SMs) for fast tests; memory-side
    /// shape is preserved.
    pub fn scaled_down(mut self, num_sms: usize) -> Self {
        assert!(num_sms >= 1 && num_sms <= self.icnt.num_sms);
        self.num_sms = num_sms;
        self
    }

    /// Cap resident warps per SM below the hardware limit (thread
    /// throttling).
    pub fn with_warp_limit(mut self, warps: usize) -> Self {
        assert!(warps >= 1 && warps <= self.max_warps_per_sm);
        self.warp_limit = Some(warps);
        self
    }

    /// Run the machine as `shards` parallel lock-step shards (1 =
    /// classic single-threaded execution). Statistics are byte-identical
    /// at any count; values beyond the component counts are clamped at
    /// run time.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1);
        self.shards = shards;
        self
    }

    /// Enable SMARTS-style interval sampling: detailed windows of
    /// `sc.detail` cycles (each preceded by `sc.warmup` discarded
    /// warm-up cycles) separated by functionally fast-forwarded gaps
    /// of `sc.skip` cycles. Forces the sequential shard path.
    pub fn with_sampling(mut self, sc: SamplingConfig) -> Self {
        self.sampling = Some(sc);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = SimConfig::tesla_m2090(PolicyKind::Baseline);
        assert_eq!(c.num_sms, 16);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.schedulers_per_sm, 2);
        assert_eq!(c.l1d.geom.capacity_bytes(), 16 * 1024);
        assert_eq!(c.l1d.geom.num_sets, 32);
        assert_eq!(c.l1d.geom.assoc, 4);
        assert_eq!(c.icnt.num_partitions, 12);
        assert_eq!(c.partition.l2_geom.capacity_bytes() * 12, 768 * 1024);
        assert_eq!(c.partition.dram.num_banks, 6);
    }

    #[test]
    fn geometry_override() {
        let c = SimConfig::tesla_m2090(PolicyKind::Dlp)
            .with_l1_geometry(CacheGeometry::fermi_l1d_32k());
        assert_eq!(c.l1d.geom.capacity_bytes(), 32 * 1024);
        assert_eq!(c.l1d.geom.num_sets, 32, "sets unchanged, associativity doubled");
    }

    #[test]
    fn shards_default_to_single_threaded() {
        let c = SimConfig::tesla_m2090(PolicyKind::Baseline);
        assert_eq!(c.shards, 1);
        assert_eq!(c.with_shards(4).shards, 4);
    }
}
