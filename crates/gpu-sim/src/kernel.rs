//! The interface a workload implements to run on the simulated GPU.

use crate::isa::TraceOp;

/// Launch shape of a kernel grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridDesc {
    /// Cooperative thread arrays (thread blocks) in the grid.
    pub num_ctas: usize,
    /// Warps per CTA (CTA size / 32).
    pub warps_per_cta: usize,
}

impl GridDesc {
    /// Total warps in the grid.
    pub fn total_warps(&self) -> usize {
        self.num_ctas * self.warps_per_cta
    }
}

/// A GPU kernel expressed as deterministic per-warp instruction traces.
///
/// `warp_ops(cta, warp)` must be a pure function of its arguments (and
/// the kernel's construction parameters): the simulator may call it at
/// any time relative to execution, and the analysis tools re-derive the
/// same traces when profiling reuse distances.
pub trait Kernel: Send {
    /// Short benchmark name (e.g. `"BFS"`).
    fn name(&self) -> &str;

    /// Grid shape.
    fn grid(&self) -> GridDesc;

    /// The instruction trace of warp `warp` of CTA `cta`.
    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp>;
}

impl GridDesc {
    /// Convenience: a single-CTA grid.
    pub fn single(warps: usize) -> Self {
        GridDesc { num_ctas: 1, warps_per_cta: warps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_warps_multiplies() {
        assert_eq!(GridDesc { num_ctas: 5, warps_per_cta: 4 }.total_warps(), 20);
        assert_eq!(GridDesc::single(3).total_warps(), 3);
    }
}
