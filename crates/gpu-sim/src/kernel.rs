//! The interface a workload implements to run on the simulated GPU.

use crate::isa::TraceOp;
use crate::stream::{self, OpStream};

/// Launch shape of a kernel grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridDesc {
    /// Cooperative thread arrays (thread blocks) in the grid.
    pub num_ctas: usize,
    /// Warps per CTA (CTA size / 32).
    pub warps_per_cta: usize,
}

impl GridDesc {
    /// Total warps in the grid.
    pub fn total_warps(&self) -> usize {
        self.num_ctas * self.warps_per_cta
    }
}

/// A GPU kernel expressed as deterministic per-warp instruction streams.
///
/// `warp_stream(cta, warp)` must be a pure function of its arguments
/// (and the kernel's construction parameters): the simulator may call
/// it at any time relative to execution, the sharded engine re-derives
/// streams after a misspeculation restart, and the analysis tools
/// re-derive the same traces when profiling reuse distances. Two
/// streams for the same `(cta, warp)` — and one stream replayed via
/// [`OpStream::reset`] — must yield identical op sequences.
pub trait Kernel: Send {
    /// Short benchmark name (e.g. `"BFS"`).
    fn name(&self) -> &str;

    /// Grid shape.
    fn grid(&self) -> GridDesc;

    /// The instruction stream of warp `warp` of CTA `cta`. The stream
    /// owns all its state (no borrow of the kernel), so the warps of a
    /// CTA can execute long after the launch call returns.
    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream>;

    /// The fully materialized trace of one warp. Analysis-only: the
    /// simulator never calls this (warps consume streams op by op), so
    /// eager materialization cost is confined to profilers and tests.
    // dlp-lint: allow(P302) -- the one sanctioned materialization point: delegates to warp_stream, used only off the simulation path
    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        stream::materialize(self.warp_stream(cta, warp))
    }
}

impl GridDesc {
    /// Convenience: a single-CTA grid.
    pub fn single(warps: usize) -> Self {
        GridDesc { num_ctas: 1, warps_per_cta: warps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_warps_multiplies() {
        assert_eq!(GridDesc { num_ctas: 5, warps_per_cta: 4 }.total_warps(), 20);
        assert_eq!(GridDesc::single(3).total_warps(), 3);
    }
}
