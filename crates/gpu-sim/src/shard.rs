//! Deterministic sharded epoch engine.
//!
//! Partition the SMs and memory partitions into N contiguous shards and
//! run the shards on parallel threads in lock-step *epochs* bounded by
//! the crossbar hop latency. Components only communicate through the
//! crossbar, and any packet injected at cycle `c` becomes poppable no
//! earlier than `c + 1 + hop_latency` (one cycle of serialization plus
//! the hop), so within a round of at most `hop_latency + 1` cycles the
//! shards cannot observe each other's new traffic: intra-round
//! execution is independent.
//!
//! # The contract: byte-identical statistics at any shard count
//!
//! Determinism is engineered, not hoped for:
//!
//! * **All crossbar sends are deferred.** A shard never touches the
//!   shared [`Interconnect`] during a round; it appends would-be sends
//!   to a per-shard chronological log. At the barrier the logs are
//!   k-way merged in canonical `(cycle, direction, source)` order —
//!   shards own contiguous component ranges, so shard index order *is*
//!   global source-id order — and replayed into the real crossbar,
//!   reproducing the exact serialization, fault-injection, and
//!   queue-occupancy sequence of the single-threaded loop.
//! * **Pops are pre-extracted and slack-corrected.** At round start
//!   each shard receives the ripe FIFO prefix of its ports' queues
//!   (everything poppable by round end); unconsumed leftovers are
//!   restored at the barrier *before* the merge. Because merge-time
//!   capacity checks must see the occupancy the sequential machine saw
//!   at each send's cycle, every pop's cycle is logged and charged back
//!   as *slack* against the capacity check of sends that precede it.
//! * **Misspeculation restarts, it never corrupts.** If a merged send
//!   would have been refused by the sequential machine (queue full at
//!   that cycle), the optimistic shard execution has diverged: the run
//!   is restarted from cycle 0 on the classic single-threaded path
//!   (and stays there for this GPU's lifetime). The first
//!   canonical-order capacity violation is exactly the first sequential
//!   divergence, so detection is sound and the restart reproduces the
//!   sequential byte stream by construction.
//!
//! Rounds additionally end early at watchdog deadlines, audit
//! multiples, the cycle cap, `run_for` horizons, and whenever CTAs are
//! still pending launch (launches are a cross-shard operation and run
//! at barriers only). See DESIGN.md §12 for the invariance argument.

use crate::error::SimError;
use crate::gpu::{advance_cursor, audit_machine, Gpu, LeapHint};
use crate::sm::Sm;
use crate::stats::RunStats;
use gpu_mem::icnt::{partition_for, Interconnect};
use gpu_mem::packet::Packet;
use gpu_mem::partition::MemoryPartition;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Telemetry from the sharded epoch engine, accumulated across every
/// `run`/`run_for` call of one [`Gpu`]. Wall-clock-shaped (like
/// [`Gpu::ticked_cycles`]): none of these numbers feed [`RunStats`],
/// which are byte-identical at any shard count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Shards the engine actually ran with (0 until the first sharded
    /// round; the classic path never sets it).
    pub shards: usize,
    /// Upper bound on a round's length in cycles (`hop_latency + 1`);
    /// individual rounds can be shorter (launch backlog, watchdog,
    /// audit multiples, horizons).
    pub epoch_cycles: u64,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Shard-rounds in which a shard had no event to step — it paid the
    /// barrier without doing work (the load-imbalance signal).
    pub barrier_stalls: u64,
    /// Cycles each shard actually stepped (index = shard).
    pub per_shard_ticked: Vec<u64>,
    /// Misspeculation restarts: rounds whose merge found a send the
    /// sequential machine would have refused, forcing a from-scratch
    /// single-threaded rerun.
    pub restarts: u64,
}

/// One deferred crossbar send, logged by a shard during a round.
#[derive(Clone, Copy)]
struct SendEvt {
    /// Core cycle the send happened at.
    cycle: u64,
    /// Forward (SM → partition) or return (partition → SM) direction.
    forward: bool,
    /// Destination port (global index).
    dst: usize,
    /// The packet.
    pkt: Packet,
}

impl SendEvt {
    /// Canonical merge key. Within one cycle the sequential loop drains
    /// every SM's forward traffic (phase 3, ascending SM order) before
    /// any partition's replies (phase 4, ascending partition order), so
    /// direction orders before source; contiguous chunking makes shard
    /// index order equal global source-id order within `(cycle, dir)`.
    fn key(&self, shard: usize) -> (u64, u8, usize) {
        (self.cycle, u8::from(!self.forward), shard)
    }
}

/// The first error a shard hit, keyed so the minimum across shards is
/// exactly the error the sequential loop would have reported first.
/// Major ranks the intra-cycle phase (1 = SM cycle, 2 = partition
/// eject/cycle, 3 = reply delivery), `comp` the global component index
/// within the phase, `minor` the sub-step (partition eject before
/// partition cycle).
struct ErrAt {
    cycle: u64,
    major: u8,
    comp: usize,
    minor: u8,
    err: SimError,
}

impl ErrAt {
    fn key(&self) -> (u64, u8, usize, u8) {
        (self.cycle, self.major, self.comp, self.minor)
    }
}

/// Pop cycles logged for one crossbar port this round, consumed as
/// merge-time capacity slack: `slack_at(t)` is how many of the port's
/// packets — already popped by the shards — the sequential machine
/// would still have held when a cycle-`t` send was admitted. Sends
/// precede pops within a cycle in both directions, so a pop at exactly
/// `t` still counts. The cursor only moves forward: the merge replays
/// sends in nondecreasing cycle order.
#[derive(Default)]
struct PopLedger {
    cycles: Vec<u64>,
    ptr: usize,
}

impl PopLedger {
    fn slack_at(&mut self, t: u64) -> usize {
        while self.ptr < self.cycles.len() && self.cycles[self.ptr] < t {
            self.ptr += 1;
        }
        self.cycles.len() - self.ptr
    }
}

/// How a sharded drive ended.
enum Outcome {
    /// Every CTA retired and the machine drained.
    Finished,
    /// `run_for` horizon reached with work left.
    Horizon,
    /// Watchdog: no forward progress for the configured window.
    Hang,
    /// `run` exceeded the cycle cap with work left.
    CapExceeded,
    /// A shard (or the barrier itself) hit a typed simulation error.
    Error(SimError),
    /// The merge refused a send the shards had optimistically accepted.
    Misspeculation,
}

/// One shard: a contiguous slice of SMs and memory partitions with
/// their scheduling state, plus the round-local communication buffers.
struct Shard {
    /// Global index of `sms[0]`.
    sm0: usize,
    /// Global index of `parts[0]`.
    part0: usize,
    sms: Vec<Sm>,
    parts: Vec<MemoryPartition>,
    // Local slices of the Gpu scheduling state (same semantics as the
    // fields of the same name on `Gpu`, indexed by local component).
    sm_busy: Vec<bool>,
    sm_next_ev: Vec<u64>,
    sm_last_cycled: Vec<u64>,
    sm_asleep: Vec<bool>,
    part_busy: Vec<bool>,
    busy_sms: usize,
    busy_parts: usize,
    /// Ripe crossbar packets handed to this shard for the round, per
    /// local port (forward: partitions, return: SMs).
    fwd_inbox: Vec<VecDeque<(u64, Packet)>>,
    ret_inbox: Vec<VecDeque<(u64, Packet)>>,
    /// Deferred sends, chronological (the round steps cycles in order
    /// and each cycle's phases log in sequential-loop order).
    sends: Vec<SendEvt>,
    /// Pop cycles per local port this round (capacity slack for the
    /// merge).
    fwd_pops: Vec<Vec<u64>>,
    ret_pops: Vec<Vec<u64>>,
    // Round-local statistic deltas, merged into the Gpu's counters at
    // the barrier.
    round_insns: u64,
    round_fetches: u64,
    round_fwd_flits: u64,
    round_ret_flits: u64,
    round_replies: u64,
    /// Cycles stepped this round.
    stepped: u64,
    /// Last cycle this shard actually stepped, cumulative across rounds.
    last_stepped: u64,
    /// Last cycle this round at which this shard's progress metric
    /// (insns + replies) moved.
    progress_cycle: Option<u64>,
    /// First error this round, in sequential phase order.
    error: Option<ErrAt>,
    /// Per-SM sleeping enabled (mirrors `Gpu::sm_sleep_enabled`).
    sleep: bool,
    /// Global partition count (address routing).
    num_partitions: usize,
}

impl Shard {
    /// Detach the ripe prefix of every owned port for a round ending at
    /// `horizon` (inclusive).
    fn prepare_round(&mut self, icnt: &mut Interconnect, horizon: u64) {
        for j in 0..self.parts.len() {
            self.fwd_inbox[j] = icnt.extract_ready_fwd(self.part0 + j, horizon);
        }
        for j in 0..self.sms.len() {
            self.ret_inbox[j] = icnt.extract_ready_ret(self.sm0 + j, horizon);
        }
    }

    /// Return every unconsumed inbox packet to the head of its queue
    /// (leftovers are older than anything still enqueued). Idempotent:
    /// restoring empty inboxes is a no-op.
    fn restore_inboxes(&mut self, icnt: &mut Interconnect) {
        for j in 0..self.parts.len() {
            let left = std::mem::take(&mut self.fwd_inbox[j]);
            if !left.is_empty() {
                icnt.restore_front_fwd(self.part0 + j, left);
            }
        }
        for j in 0..self.sms.len() {
            let left = std::mem::take(&mut self.ret_inbox[j]);
            if !left.is_empty() {
                icnt.restore_front_ret(self.sm0 + j, left);
            }
        }
    }

    /// Barrier-side planning bound: the earliest cycle after `now` at
    /// which any of this shard's components (or the crossbar queues
    /// feeding them) has an event. Mirrors the component scan of the
    /// sequential `next_step_cycle`, floored at `now + 1`.
    fn next_event_bound(&mut self, now: u64, icnt: &Interconnect) -> u64 {
        let floor = now + 1;
        let mut t = u64::MAX;
        for (j, sm) in self.sms.iter_mut().enumerate() {
            if !self.sm_busy[j] {
                continue;
            }
            let ev = if self.sleep {
                self.sm_next_ev[j]
            } else {
                sm.next_event(now).unwrap_or(u64::MAX)
            };
            if ev != u64::MAX {
                t = t.min(ev.max(floor));
            }
        }
        for j in 0..self.sms.len() {
            if let Some(ready) = icnt.next_ret_ready(self.sm0 + j) {
                t = t.min(ready.max(floor));
            }
        }
        for (j, part) in self.parts.iter_mut().enumerate() {
            if part.can_accept() {
                if let Some(ready) = icnt.next_fwd_ready(self.part0 + j) {
                    t = t.min(ready.max(floor));
                }
            }
            if self.part_busy[j] {
                // Probe at the partition's *internal* clock, not the
                // barrier time: its DRAM-domain term is computed
                // relative to internal state, and the partition was
                // last cycled at its last event, which can precede the
                // round horizon. Returned times are absolute; the floor
                // clamp lifts already-due events to the next cycle.
                let origin = part.last_cycled();
                if let Some(ev) = part.next_event(origin) {
                    t = t.min(ev.max(floor));
                }
            }
        }
        t
    }

    /// In-round event probe against the local inboxes: the next cycle
    /// in `(prev, end]` this shard must step, or `None` to finish the
    /// round.
    fn next_local_event(&mut self, prev: u64, end: u64) -> Option<u64> {
        let floor = prev + 1;
        if floor > end {
            return None;
        }
        let mut t = u64::MAX;
        for (j, sm) in self.sms.iter_mut().enumerate() {
            if !self.sm_busy[j] {
                continue;
            }
            let ev = if self.sleep {
                self.sm_next_ev[j]
            } else {
                sm.next_event(prev).unwrap_or(u64::MAX)
            };
            if ev != u64::MAX {
                t = t.min(ev.max(floor));
            }
        }
        for inbox in &self.ret_inbox {
            if let Some(&(ready, _)) = inbox.front() {
                t = t.min(ready.max(floor));
            }
        }
        for (j, part) in self.parts.iter_mut().enumerate() {
            if part.can_accept() {
                if let Some(&(ready, _)) = self.fwd_inbox[j].front() {
                    t = t.min(ready.max(floor));
                }
            }
            if self.part_busy[j] {
                // Internal-clock origin, as in `next_event_bound`: the
                // partition was last cycled at its previous event,
                // which can lag `prev` when another component drove the
                // intervening steps across a round boundary.
                let origin = part.last_cycled();
                if let Some(ev) = part.next_event(origin) {
                    t = t.min(ev.max(floor));
                }
            }
        }
        (t <= end).then_some(t)
    }

    /// One core cycle of this shard's components — the sequential
    /// `Gpu::step` phases 2–5 restricted to the owned slice, with every
    /// crossbar interaction replaced by inbox pops and send-log
    /// appends. CTA launches (phase 1) happen at barriers only.
    fn step_local(&mut self, now: u64) {
        self.stepped += 1;
        self.last_stepped = now;
        let progress_before = self.round_insns + self.round_replies;

        // Phase 2: cycle busy, awake SMs (deferred aging replayed on
        // wake, exactly as the sequential loop does).
        for (j, sm) in self.sms.iter_mut().enumerate() {
            let asleep = self.sm_busy[j] && self.sleep && self.sm_next_ev[j] > now;
            self.sm_asleep[j] = asleep;
            if !self.sm_busy[j] || asleep {
                continue;
            }
            let behind = now - 1 - self.sm_last_cycled[j];
            if behind > 0 {
                sm.leap_catchup(behind);
            }
            match sm.cycle(now) {
                Ok(insns) => self.round_insns += insns,
                Err(err) => {
                    self.error =
                        Some(ErrAt { cycle: now, major: 1, comp: self.sm0 + j, minor: 0, err });
                    return;
                }
            }
            self.sm_last_cycled[j] = now;
            sm.take_finished_ctas();
            if self.sleep {
                self.sm_next_ev[j] = sm.next_event(now).unwrap_or(u64::MAX);
            }
        }

        // Phase 3: L1D miss queues → send log (forward direction).
        // Optimistic: no backpressure here — the barrier merge applies
        // the sequential capacity check and restarts on a refusal.
        for (j, sm) in self.sms.iter_mut().enumerate() {
            if !self.sm_busy[j] || self.sm_asleep[j] {
                continue;
            }
            while let Some(pkt) = sm.l1d.peek_outgoing() {
                let dst = partition_for(pkt.addr, self.num_partitions);
                if pkt.kind.expects_reply() {
                    self.round_fetches += 1;
                }
                self.sends.push(SendEvt { cycle: now, forward: true, dst, pkt: *pkt });
                sm.l1d.pop_outgoing();
            }
            if self.sm_busy[j] && sm.idle() {
                self.sm_busy[j] = false;
                self.busy_sms -= 1;
            }
        }

        // Phase 4: inbox → partitions, partition internals, replies →
        // send log (return direction).
        for (j, part) in self.parts.iter_mut().enumerate() {
            let gp = self.part0 + j;
            while part.can_accept() {
                match self.fwd_inbox[j].front() {
                    Some(&(ready, _)) if ready <= now => {
                        let Some((_, pkt)) = self.fwd_inbox[j].pop_front() else { break };
                        self.fwd_pops[j].push(now);
                        let expected = partition_for(pkt.addr, self.num_partitions);
                        if expected != gp {
                            self.error = Some(ErrAt {
                                cycle: now,
                                major: 2,
                                comp: gp,
                                minor: 0,
                                err: SimError::PacketMisrouted {
                                    port: gp,
                                    expected,
                                    addr: pkt.addr,
                                    cycle: now,
                                },
                            });
                            return;
                        }
                        self.round_fwd_flits += pkt.flits();
                        part.enqueue(pkt);
                        if !self.part_busy[j] {
                            self.part_busy[j] = true;
                            self.busy_parts += 1;
                        }
                    }
                    _ => break,
                }
            }
            if !self.part_busy[j] {
                continue;
            }
            if let Err(source) = part.cycle(now) {
                self.error = Some(ErrAt {
                    cycle: now,
                    major: 2,
                    comp: gp,
                    minor: 1,
                    err: SimError::PartitionFault { partition: gp, source, cycle: now },
                });
                return;
            }
            while let Some(pkt) = part.pop_reply() {
                self.sends.push(SendEvt {
                    cycle: now,
                    forward: false,
                    dst: pkt.req.sm as usize,
                    pkt,
                });
            }
            if self.part_busy[j] && part.idle() {
                self.part_busy[j] = false;
                self.busy_parts -= 1;
            }
        }

        // Phase 5: inbox → L1Ds (replies, by owning return port).
        for (j, sm) in self.sms.iter_mut().enumerate() {
            loop {
                match self.ret_inbox[j].front() {
                    Some(&(ready, _)) if ready <= now => {
                        let Some((_, pkt)) = self.ret_inbox[j].pop_front() else { break };
                        self.ret_pops[j].push(now);
                        self.round_ret_flits += pkt.flits();
                        self.round_replies += 1;
                        let behind = now - self.sm_last_cycled[j];
                        if behind > 0 {
                            sm.leap_catchup(behind);
                            self.sm_last_cycled[j] = now;
                        }
                        if let Err(source) = sm.l1d.on_reply(pkt, now) {
                            self.error = Some(ErrAt {
                                cycle: now,
                                major: 3,
                                comp: self.sm0 + j,
                                minor: 0,
                                err: SimError::MshrViolation {
                                    sm: self.sm0 + j,
                                    source,
                                    cycle: now,
                                },
                            });
                            return;
                        }
                        self.sm_next_ev[j] = 0;
                        if !self.sm_busy[j] {
                            self.sm_busy[j] = true;
                            self.busy_sms += 1;
                        }
                    }
                    _ => break,
                }
            }
        }

        if self.round_insns + self.round_replies != progress_before {
            self.progress_cycle = Some(now);
        }
    }

    /// Run one round: step every local event cycle in `[start, end]`.
    fn run_round(&mut self, start: u64, end: u64) {
        self.stepped = 0;
        self.progress_cycle = None;
        let mut prev = start - 1;
        while self.error.is_none() {
            let Some(c) = self.next_local_event(prev, end) else { break };
            self.step_local(c);
            prev = c;
        }
    }
}

/// Lock a shard, recovering from poison: a worker panic is converted
/// to a typed error by the worker itself, and the state behind a
/// poisoned lock is still the best diagnostic available.
fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Shared barrier-control state between the driver and the workers.
struct Control {
    /// Round bounds, published before each `go`.
    round_start: AtomicU64,
    round_end: AtomicU64,
    /// Published before the final `go`: workers exit.
    stop: AtomicBool,
    /// Round-start rendezvous (n workers + driver).
    go: Barrier,
    /// Round-end rendezvous.
    done: Barrier,
}

/// Run the GPU with the sharded epoch engine. `until` is the absolute
/// horizon for `run_for` (`None` = run to completion under the cycle
/// cap).
pub(crate) fn run_sharded(gpu: &mut Gpu, until: Option<u64>) -> Result<RunStats, SimError> {
    let n = gpu.effective_shards();
    let hop = gpu.cfg.icnt.hop_latency;
    gpu.shard_telemetry.shards = n;
    gpu.shard_telemetry.epoch_cycles = hop + 1;
    if gpu.shard_telemetry.per_shard_ticked.len() != n {
        gpu.shard_telemetry.per_shard_ticked = vec![0; n];
    }

    let shards = split_into_shards(gpu, n);
    let ctl = Control {
        round_start: AtomicU64::new(0),
        round_end: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        go: Barrier::new(n + 1),
        done: Barrier::new(n + 1),
    };

    let outcome = std::thread::scope(|scope| {
        for m in &shards {
            scope.spawn(|| worker(m, &ctl));
        }
        let o = drive(gpu, &shards, until, hop, &ctl);
        // Release the workers from their `go` rendezvous with the stop
        // flag raised so the scope can join them.
        ctl.stop.store(true, Ordering::Release);
        ctl.go.wait();
        o
    });

    reassemble(gpu, shards);

    match outcome {
        Outcome::Finished => {
            gpu.settle_sms();
            Ok(gpu.collect(true))
        }
        Outcome::Horizon => {
            gpu.settle_sms();
            Ok(gpu.collect(gpu.finished()))
        }
        Outcome::Hang => {
            gpu.settle_sms();
            Err(SimError::Hang(Box::new(gpu.hang_report())))
        }
        Outcome::CapExceeded => {
            gpu.settle_sms();
            Err(SimError::CycleCapExceeded(Box::new(gpu.hang_report())))
        }
        Outcome::Error(e) => Err(e),
        Outcome::Misspeculation => {
            // The optimistic round diverged from the sequential
            // history: replay the whole run single-threaded. The
            // kernel is stateless and the fault-injector seeds are
            // config-derived, so the replay is the byte-exact
            // sequential run. Latched: a second attempt would diverge
            // identically.
            gpu.shard_telemetry.restarts += 1;
            gpu.shards_disabled = true;
            gpu.reset_run_state();
            match until {
                None => gpu.run(),
                // `now` is 0 after the reset, so the relative horizon
                // equals the absolute cycle the caller asked for.
                Some(end) => gpu.run_for(end),
            }
        }
    }
}

/// Worker thread: one round per `go`/`done` rendezvous. A panic inside
/// the round is caught and recorded as a typed error so the driver
/// never deadlocks at the `done` barrier.
fn worker(m: &Mutex<Shard>, ctl: &Control) {
    loop {
        ctl.go.wait();
        if ctl.stop.load(Ordering::Acquire) {
            break;
        }
        // The barrier rendezvous already orders these loads after the
        // driver's stores; Acquire/Release restates that locally (free
        // on x86/aarch64) instead of leaning on the barrier from afar.
        let start = ctl.round_start.load(Ordering::Acquire);
        let end = ctl.round_end.load(Ordering::Acquire);
        {
            let mut g = lock_shard(m);
            let shard = &mut *g;
            if catch_unwind(AssertUnwindSafe(|| shard.run_round(start, end))).is_err()
                && shard.error.is_none()
            {
                shard.error = Some(ErrAt {
                    cycle: start,
                    major: u8::MAX,
                    comp: 0,
                    minor: 0,
                    err: SimError::InvariantViolation {
                        check: "shard worker panicked",
                        detail: format!("worker panicked inside round [{start}, {end}]"),
                        cycle: start,
                    },
                });
            }
        }
        ctl.done.wait();
    }
}

/// Contiguous chunk boundaries: shard `i` of `n` owns `[lo(i), lo(i+1))`.
fn chunk_lo(total: usize, n: usize, i: usize) -> usize {
    total * i / n
}

/// Move the Gpu's components and scheduling state into `n` shards.
/// The Gpu keeps the crossbar, the CTA queue/cursor, the counters and
/// the clock; everything per-SM / per-partition moves.
fn split_into_shards(gpu: &mut Gpu, n: usize) -> Vec<Mutex<Shard>> {
    let num_sms = gpu.cfg.num_sms;
    let num_parts = gpu.cfg.icnt.num_partitions;
    let mut sm_iter = std::mem::take(&mut gpu.sms).into_iter();
    let mut part_iter = std::mem::take(&mut gpu.parts).into_iter();
    let sleep = gpu.sm_sleep_enabled();
    let now = gpu.now;
    (0..n)
        .map(|i| {
            let (s_lo, s_hi) = (chunk_lo(num_sms, n, i), chunk_lo(num_sms, n, i + 1));
            let (p_lo, p_hi) = (chunk_lo(num_parts, n, i), chunk_lo(num_parts, n, i + 1));
            let sm_busy = gpu.sm_busy[s_lo..s_hi].to_vec();
            let part_busy = gpu.part_busy[p_lo..p_hi].to_vec();
            Mutex::new(Shard {
                sm0: s_lo,
                part0: p_lo,
                sms: sm_iter.by_ref().take(s_hi - s_lo).collect(),
                parts: part_iter.by_ref().take(p_hi - p_lo).collect(),
                busy_sms: sm_busy.iter().filter(|b| **b).count(),
                busy_parts: part_busy.iter().filter(|b| **b).count(),
                sm_busy,
                sm_next_ev: gpu.sm_next_ev[s_lo..s_hi].to_vec(),
                sm_last_cycled: gpu.sm_last_cycled[s_lo..s_hi].to_vec(),
                sm_asleep: gpu.sm_asleep[s_lo..s_hi].to_vec(),
                part_busy,
                fwd_inbox: (p_lo..p_hi).map(|_| VecDeque::new()).collect(),
                ret_inbox: (s_lo..s_hi).map(|_| VecDeque::new()).collect(),
                sends: Vec::new(),
                fwd_pops: (p_lo..p_hi).map(|_| Vec::new()).collect(),
                ret_pops: (s_lo..s_hi).map(|_| Vec::new()).collect(),
                round_insns: 0,
                round_fetches: 0,
                round_fwd_flits: 0,
                round_ret_flits: 0,
                round_replies: 0,
                stepped: 0,
                last_stepped: now,
                progress_cycle: None,
                error: None,
                sleep,
                num_partitions: num_parts,
            })
        })
        .collect()
}

/// Move everything back into the Gpu. Runs on every exit path so the
/// Gpu is always whole for stats collection, hang reports, post-run
/// introspection, or a misspeculation reset.
fn reassemble(gpu: &mut Gpu, shards: Vec<Mutex<Shard>>) {
    for m in shards {
        let mut g = match m.into_inner() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Defensive: every normal path restored the inboxes at the
        // merge; this is a no-op there and keeps the crossbar census
        // consistent on abort paths.
        g.restore_inboxes(&mut gpu.icnt);
        for (j, b) in g.sm_busy.iter().enumerate() {
            gpu.sm_busy[g.sm0 + j] = *b;
            gpu.sm_next_ev[g.sm0 + j] = g.sm_next_ev[j];
            gpu.sm_last_cycled[g.sm0 + j] = g.sm_last_cycled[j];
            gpu.sm_asleep[g.sm0 + j] = g.sm_asleep[j];
        }
        for (j, b) in g.part_busy.iter().enumerate() {
            gpu.part_busy[g.part0 + j] = *b;
        }
        gpu.sms.append(&mut g.sms);
        gpu.parts.append(&mut g.parts);
    }
    gpu.busy_sms = gpu.sm_busy.iter().filter(|b| **b).count();
    gpu.busy_parts = gpu.part_busy.iter().filter(|b| **b).count();
    gpu.leap_hint = LeapHint::None;
}

/// The barrier planner loop. Owns the shared clock `t` (mirrored into
/// `gpu.now` at every barrier) and decides, with all shard locks held:
/// first-error / finished / horizon / cycle-cap / watchdog / audit,
/// then plans the next round, launches pending CTAs, hands out the
/// ripe inboxes, and releases the workers.
fn drive(
    gpu: &mut Gpu,
    shards: &[Mutex<Shard>],
    until: Option<u64>,
    hop: u64,
    ctl: &Control,
) -> Outcome {
    let n_sms = gpu.cfg.num_sms;
    // (shard, local) locator per global SM, for the round-robin launch.
    let locator: Vec<(usize, usize)> = {
        let n = shards.len();
        (0..n)
            .flat_map(|i| {
                let lo = chunk_lo(n_sms, n, i);
                let hi = chunk_lo(n_sms, n, i + 1);
                (lo..hi).map(move |s| (i, s - lo))
            })
            .collect()
    };
    let mut t = gpu.now;
    let mut audited_up_to = gpu.now;
    let mut pending_round = false;

    loop {
        let mut guards: Vec<MutexGuard<'_, Shard>> = shards.iter().map(lock_shard).collect();

        if pending_round {
            let round_end = ctl.round_end.load(Ordering::Acquire);
            // Merge before anything else — including before the error
            // check: a misspeculation at cycle c invalidates the whole
            // optimistic history from c on, so it outranks any shard
            // error at a cycle ≥ c (and a shard error earlier than the
            // would-be misspeculation aborts the run before the
            // diverging cycle either way).
            if !merge_round(gpu, &mut guards) {
                return Outcome::Misspeculation;
            }
            gpu.shard_telemetry.rounds += 1;
            let mut max_stepped = 0;
            for (i, g) in guards.iter().enumerate() {
                if g.stepped == 0 {
                    gpu.shard_telemetry.barrier_stalls += 1;
                }
                gpu.shard_telemetry.per_shard_ticked[i] += g.stepped;
                max_stepped = max_stepped.max(g.stepped);
            }
            // Critical-path proxy: the round's wall time is its busiest
            // shard.
            gpu.ticked_cycles += max_stepped;
            let metric = gpu.counters.replies_delivered + gpu.total_warp_insns;
            if metric != gpu.last_progress {
                gpu.last_progress = metric;
                let mut lpc = gpu.last_progress_cycle;
                for g in guards.iter() {
                    if let Some(c) = g.progress_cycle {
                        lpc = lpc.max(c);
                    }
                }
                gpu.last_progress_cycle = lpc;
            }
            t = round_end;
            gpu.now = t;
        }

        // 1. First error across shards, in sequential phase order.
        if let Some(err) = take_first_error(&mut guards) {
            if let Some(c) = error_cycle(&err) {
                gpu.now = c;
            }
            return Outcome::Error(err);
        }

        // 2. Finished? (Mirrors `Gpu::finished` with the busy counts
        // distributed across the shards.)
        let busy: usize = guards.iter().map(|g| g.busy_sms + g.busy_parts).sum();
        if gpu.pending_ctas.is_empty() && gpu.icnt.in_flight() == 0 && busy == 0 {
            // The last event cycle, not the round horizon: `run` exits
            // with `now` at the step that drained the machine.
            gpu.now = guards.iter().map(|g| g.last_stepped).max().unwrap_or(t);
            return Outcome::Finished;
        }

        // 3. `run_for` horizon reached.
        if let Some(end) = until {
            if t >= end {
                gpu.now = end;
                return Outcome::Horizon;
            }
        }

        // 4. Cycle cap (`run` only: `run_for` ignores the cap, exactly
        // like the sequential loop).
        if until.is_none() && t >= gpu.cfg.max_cycles {
            gpu.now = t;
            return Outcome::CapExceeded;
        }

        // 5. Watchdog, checked at barriers: rounds are clamped to the
        // deadline, so a quiet machine reaches it exactly.
        let wd = gpu.cfg.watchdog_cycles;
        if wd > 0 && t - gpu.last_progress_cycle >= wd {
            gpu.now = t;
            return Outcome::Hang;
        }

        // 6. Scheduled audit. Barriers land on every audit multiple
        // (round ends are clamped below); the guard keeps a `run_for`
        // re-entry from double-auditing its entry cycle.
        let ai = gpu.cfg.audit_interval;
        if ai > 0 && t > audited_up_to && t % ai == 0 {
            audited_up_to = t;
            if let Err(e) = audit_at_barrier(gpu, &guards) {
                return Outcome::Error(e);
            }
        }

        // 7. Plan the next round.
        let mut start = global_next_event(gpu, &mut guards, t);
        if wd > 0 {
            start = start.min(gpu.last_progress_cycle + wd);
        }
        if ai > 0 {
            start = start.min((t + 1).next_multiple_of(ai));
        }
        if until.is_none() {
            start = start.min(gpu.cfg.max_cycles);
        }
        let start = start.max(t + 1);

        if let Some(end) = until {
            if start > end {
                // The whole remaining horizon is dead time; account for
                // the denied launch scans and stop at the horizon,
                // exactly where the sequential `run_for` leaps to.
                if !gpu.pending_ctas.is_empty() {
                    let slots = (n_sms as u128) * u128::from(end - t);
                    if let Err(e) = advance_cursor(&mut gpu.launch_cursor, slots, t) {
                        return Outcome::Error(e);
                    }
                }
                gpu.now = end;
                return Outcome::Horizon;
            }
        }

        // Leap the gap: every skipped cycle was a fully denied launch
        // scan (the event bound proves no SM freed a slot inside it).
        if start > t + 1 && !gpu.pending_ctas.is_empty() {
            let slots = (n_sms as u128) * u128::from(start - 1 - t);
            if let Err(e) = advance_cursor(&mut gpu.launch_cursor, slots, t) {
                return Outcome::Error(e);
            }
        }

        // Launch pending CTAs at the round's first cycle.
        if let Err(e) = launch_at_barrier(gpu, &mut guards, &locator, start) {
            gpu.now = start;
            return Outcome::Error(e);
        }

        // Round horizon: a full epoch, unless CTAs are still pending
        // (launches are barrier-only and a launched CTA can finish —
        // freeing slots — any cycle, so no lookahead is safe), or a
        // watchdog deadline / audit multiple / cap / horizon lands
        // first.
        let mut round_end = if gpu.pending_ctas.is_empty() { start + hop } else { start };
        if wd > 0 {
            round_end = round_end.min(gpu.last_progress_cycle + wd);
        }
        if ai > 0 {
            round_end = round_end.min(start.next_multiple_of(ai));
        }
        if until.is_none() {
            round_end = round_end.min(gpu.cfg.max_cycles);
        }
        if let Some(end) = until {
            round_end = round_end.min(end);
        }
        debug_assert!(round_end >= start, "round horizon precedes its start");

        for g in guards.iter_mut() {
            g.prepare_round(&mut gpu.icnt, round_end);
        }
        ctl.round_start.store(start, Ordering::Release);
        ctl.round_end.store(round_end, Ordering::Release);
        drop(guards);
        ctl.go.wait();
        ctl.done.wait();
        pending_round = true;
    }
}

/// Replay the round's deferred sends into the crossbar in canonical
/// order and fold the round's statistic deltas into the Gpu. Returns
/// `false` on misspeculation (a send the sequential machine would have
/// refused).
fn merge_round(gpu: &mut Gpu, guards: &mut [MutexGuard<'_, Shard>]) -> bool {
    // Leftovers go back first: they are part of the sequential queue
    // occupancy every merged send must be checked against.
    for g in guards.iter_mut() {
        g.restore_inboxes(&mut gpu.icnt);
    }

    // Pop ledgers per global port.
    let mut fwd_led: Vec<PopLedger> =
        (0..gpu.cfg.icnt.num_partitions).map(|_| PopLedger::default()).collect();
    let mut ret_led: Vec<PopLedger> = (0..gpu.cfg.icnt.num_sms).map(|_| PopLedger::default()).collect();
    for g in guards.iter_mut() {
        let (p0, s0) = (g.part0, g.sm0);
        for (j, pops) in g.fwd_pops.iter_mut().enumerate() {
            fwd_led[p0 + j].cycles.append(pops);
        }
        for (j, pops) in g.ret_pops.iter_mut().enumerate() {
            ret_led[s0 + j].cycles.append(pops);
        }
    }

    // K-way merge of the per-shard chronological send logs.
    let mut idx = vec![0usize; guards.len()];
    let mut ok = true;
    loop {
        let mut best: Option<((u64, u8, usize), SendEvt)> = None;
        for (si, g) in guards.iter().enumerate() {
            if let Some(evt) = g.sends.get(idx[si]) {
                let key = evt.key(si);
                let better = match &best {
                    None => true,
                    Some((bk, _)) => key < *bk,
                };
                if better {
                    best = Some((key, *evt));
                }
            }
        }
        let Some(((cycle, _, si), evt)) = best else { break };
        idx[si] += 1;
        let admitted = if evt.forward {
            gpu.icnt.merge_send_fwd(evt.dst, evt.pkt, cycle, &mut |q| fwd_led[q].slack_at(cycle))
        } else {
            gpu.icnt.merge_send_ret(evt.dst, evt.pkt, cycle, &mut |q| ret_led[q].slack_at(cycle))
        };
        if !admitted {
            ok = false;
            break;
        }
    }

    for g in guards.iter_mut() {
        g.sends.clear();
        for pops in g.fwd_pops.iter_mut() {
            pops.clear();
        }
        for pops in g.ret_pops.iter_mut() {
            pops.clear();
        }
        gpu.counters.fetches_sent += g.round_fetches;
        gpu.counters.fwd_flits_delivered += g.round_fwd_flits;
        gpu.counters.ret_flits_delivered += g.round_ret_flits;
        gpu.counters.replies_delivered += g.round_replies;
        gpu.total_warp_insns += g.round_insns;
        g.round_fetches = 0;
        g.round_fwd_flits = 0;
        g.round_ret_flits = 0;
        g.round_replies = 0;
        g.round_insns = 0;
    }
    ok
}

/// Take the globally first error across shards (sequential order).
fn take_first_error(guards: &mut [MutexGuard<'_, Shard>]) -> Option<SimError> {
    let winner = guards
        .iter()
        .enumerate()
        .filter_map(|(i, g)| g.error.as_ref().map(|e| (e.key(), i)))
        .min()?;
    guards[winner.1].error.take().map(|e| e.err)
}

/// The cycle an error names, for syncing `gpu.now` to the sequential
/// abort point.
fn error_cycle(err: &SimError) -> Option<u64> {
    match err {
        SimError::MshrViolation { cycle, .. }
        | SimError::PartitionFault { cycle, .. }
        | SimError::PacketMisrouted { cycle, .. }
        | SimError::WarpStateCorrupt { cycle, .. }
        | SimError::LaunchCursorOverflow { cycle, .. }
        | SimError::InvariantViolation { cycle, .. } => Some(*cycle),
        SimError::Hang(_) | SimError::CycleCapExceeded(_) => None,
    }
}

/// Earliest cycle after `t` at which anything in the machine can act:
/// a launchable CTA (next cycle), or any shard component / crossbar
/// queue event. `u64::MAX` degrades to `t + 1` (a dropped-packet
/// deadlock with the watchdog off creeps toward the cap, exactly as
/// the sequential loop ticks).
fn global_next_event(gpu: &Gpu, guards: &mut [MutexGuard<'_, Shard>], t: u64) -> u64 {
    if !gpu.pending_ctas.is_empty() {
        let wpc = gpu.kernel.grid().warps_per_cta;
        if guards.iter().any(|g| g.sms.iter().any(|sm| sm.can_accept_cta(wpc))) {
            return t + 1;
        }
    }
    let mut s = u64::MAX;
    for g in guards.iter_mut() {
        s = s.min(g.next_event_bound(t, &gpu.icnt));
    }
    if s == u64::MAX {
        t + 1
    } else {
        s
    }
}

/// The sequential round-robin CTA launch scan, executed at a barrier
/// against the sharded SMs via the `(shard, local)` locator.
fn launch_at_barrier(
    gpu: &mut Gpu,
    guards: &mut [MutexGuard<'_, Shard>],
    locator: &[(usize, usize)],
    now: u64,
) -> Result<(), SimError> {
    if gpu.pending_ctas.is_empty() {
        return Ok(());
    }
    let wpc = gpu.kernel.grid().warps_per_cta;
    let n = locator.len();
    let mut denied = 0;
    while denied < n && !gpu.pending_ctas.is_empty() {
        let (si, j) = locator[gpu.launch_cursor % n];
        let g = &mut guards[si];
        if g.sms[j].can_accept_cta(wpc) {
            let Some(cta) = gpu.pending_ctas.pop_front() else { break };
            let warps = (0..wpc).map(|w| gpu.kernel.warp_stream(cta, w)).collect();
            g.sms[j].launch_cta(cta, warps);
            // External input wakes the SM (mirrors `mark_sm_busy`).
            g.sm_next_ev[j] = 0;
            if !g.sm_busy[j] {
                g.sm_busy[j] = true;
                g.busy_sms += 1;
            }
            denied = 0;
        } else {
            denied += 1;
        }
        advance_cursor(&mut gpu.launch_cursor, 1, now)?;
    }
    Ok(())
}

/// Run the invariant audit against the sharded machine at a barrier:
/// the crossbar is authoritative (the round was merged) and the
/// components are collected from the shards in global order.
fn audit_at_barrier(gpu: &Gpu, guards: &[MutexGuard<'_, Shard>]) -> Result<(), SimError> {
    let sms: Vec<&Sm> = guards.iter().flat_map(|g| g.sms.iter()).collect();
    let parts: Vec<&MemoryPartition> = guards.iter().flat_map(|g| g.parts.iter()).collect();
    audit_machine(gpu.now, &gpu.counters, &gpu.icnt, &sms, &parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_ledger_slack_counts_pops_at_or_after_t() {
        let mut led = PopLedger { cycles: vec![10, 10, 12, 40], ptr: 0 };
        assert_eq!(led.slack_at(5), 4, "nothing popped yet at cycle 5");
        assert_eq!(led.slack_at(10), 4, "same-cycle pops still occupy the queue at send time");
        assert_eq!(led.slack_at(11), 2);
        assert_eq!(led.slack_at(41), 0);
    }

    #[test]
    fn chunking_is_contiguous_and_complete() {
        for total in [1usize, 2, 12, 16, 17] {
            for n in 1..=total {
                let mut seen = 0;
                for i in 0..n {
                    let (lo, hi) = (chunk_lo(total, n, i), chunk_lo(total, n, i + 1));
                    assert_eq!(lo, seen, "chunks must be contiguous");
                    assert!(hi >= lo);
                    seen = hi;
                }
                assert_eq!(seen, total, "chunks must cover every component");
            }
        }
    }

    #[test]
    fn send_key_orders_forward_before_return_within_a_cycle() {
        let pkt = Packet {
            kind: gpu_mem::packet::PacketKind::ReadReq,
            addr: 0,
            req: gpu_mem::packet::MemReq {
                id: 0,
                addr: 0,
                is_write: false,
                pc: 0,
                sm: 0,
                warp: 0,
                dst_reg: 0,
                born: 0,
            },
        };
        let fwd = SendEvt { cycle: 7, forward: true, dst: 0, pkt };
        let ret = SendEvt { cycle: 7, forward: false, dst: 0, pkt };
        assert!(fwd.key(3) < ret.key(0), "phase 3 (fwd) precedes phase 4 (ret) at equal cycles");
        assert!(fwd.key(0) < fwd.key(1), "shard order breaks ties within (cycle, dir)");
        assert!(ret.key(9) < SendEvt { cycle: 8, forward: true, dst: 0, pkt }.key(0));
    }
}
