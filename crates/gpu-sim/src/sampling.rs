//! SMARTS-style interval sampling configuration (§SMARTS; Wunderlich
//! et al.). The simulator alternates (warm-up, detailed-measurement,
//! functional-fast-forward) intervals: only the detailed windows pay
//! full timing cost, the gaps advance architectural *state* (PCs,
//! cache tags, VTA/PDPT protection structures) functionally.
//!
//! The environment-variable syntax `DLP_SAMPLING=<detail>:<skip>
//! [:warmup[:seed]]` is parsed here with typed errors; reading the
//! environment itself is the benchmark tier's job (D003 — the sim tier
//! never touches `std::env`).

use std::fmt;

/// Interval-sampling parameters, attached to
/// [`SimConfig`](crate::SimConfig) as `Option<SamplingConfig>`
/// (`None` = exact simulation, bit-identical to the pre-sampling code).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SamplingConfig {
    /// Detailed-measurement window length in core cycles. Each window
    /// contributes one sample to the per-metric estimators.
    pub detail: u64,
    /// Functionally fast-forwarded gap between detailed windows, in
    /// nominal core cycles (the clock advances by this much per gap).
    pub skip: u64,
    /// Detailed warm-up run before each measurement window; its
    /// counters are discarded so cold-start bias after a fast-forward
    /// does not pollute the sample.
    pub warmup: u64,
    /// Deterministic phase offset seed: the first gap is shortened by
    /// `seed % skip` cycles so window placement can be varied without
    /// perturbing anything else.
    pub seed: u64,
}

/// Why a `DLP_SAMPLING` string failed to parse. Typed per the E-rules:
/// the benchmark front-end reports these, nothing panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SamplingParseError {
    /// A field was not a decimal integer.
    BadNumber {
        /// Which field (0-based position in the colon-separated list).
        field: &'static str,
        /// The offending text.
        text: String,
    },
    /// `detail` or `skip` was zero — a zero-length window would divide
    /// the run into nothing or never fast-forward.
    ZeroWindow {
        /// Which window length was zero.
        field: &'static str,
    },
    /// More than four colon-separated fields.
    TooManyFields {
        /// How many fields were supplied.
        got: usize,
    },
    /// Empty string (set-but-empty environment variable).
    Empty,
}

impl fmt::Display for SamplingParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingParseError::BadNumber { field, text } => {
                write!(f, "DLP_SAMPLING: `{field}` is not a number: `{text}`")
            }
            SamplingParseError::ZeroWindow { field } => {
                write!(f, "DLP_SAMPLING: `{field}` must be nonzero")
            }
            SamplingParseError::TooManyFields { got } => {
                write!(
                    f,
                    "DLP_SAMPLING: expected <detail>:<skip>[:warmup[:seed]], got {got} fields"
                )
            }
            SamplingParseError::Empty => {
                write!(f, "DLP_SAMPLING: empty value (unset the variable for exact mode)")
            }
        }
    }
}

impl std::error::Error for SamplingParseError {}

impl SamplingConfig {
    /// Parse `<detail>:<skip>[:warmup[:seed]]`. `warmup` defaults to
    /// `detail / 2`, `seed` to 0.
    pub fn parse(s: &str) -> Result<SamplingConfig, SamplingParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SamplingParseError::Empty);
        }
        let fields: Vec<&str> = s.split(':').collect();
        if fields.len() > 4 {
            return Err(SamplingParseError::TooManyFields { got: fields.len() });
        }
        let num = |field: &'static str, text: Option<&&str>| -> Result<Option<u64>, SamplingParseError> {
            match text {
                None => Ok(None),
                Some(t) => t
                    .trim()
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| SamplingParseError::BadNumber { field, text: (*t).to_string() }),
            }
        };
        let detail = num("detail", fields.first())?
            .ok_or(SamplingParseError::Empty)?;
        let skip =
            num("skip", fields.get(1))?.ok_or(SamplingParseError::BadNumber {
                field: "skip",
                text: String::new(),
            })?;
        if detail == 0 {
            return Err(SamplingParseError::ZeroWindow { field: "detail" });
        }
        if skip == 0 {
            return Err(SamplingParseError::ZeroWindow { field: "skip" });
        }
        let warmup = num("warmup", fields.get(2))?.unwrap_or(detail / 2);
        let seed = num("seed", fields.get(3))?.unwrap_or(0);
        Ok(SamplingConfig { detail, skip, warmup, seed })
    }
}

/// Counter deltas measured over one detailed window. All integers
/// (F102): the floating-point estimator math lives in the benchmark
/// tier, which owns presentation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Detailed cycles actually simulated in the window (the last
    /// window may be cut short by kernel completion).
    pub cycles: u64,
    /// Warp instructions issued inside the window.
    pub warp_insns: u64,
    /// Thread instructions executed inside the window.
    pub thread_insns: u64,
    /// L1D accesses inside the window (summed over SMs).
    pub accesses: u64,
    /// L1D hits inside the window.
    pub hits: u64,
    /// Interconnect flits delivered (forward + return) in the window.
    pub flits: u64,
}

/// What the sampling controller did over a whole run, for the
/// benchmark tier's estimators.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SamplingReport {
    /// One entry per completed measurement window, in order.
    pub windows: Vec<WindowSample>,
    /// Cycles simulated in detail (warm-up + measurement).
    pub detailed_cycles: u64,
    /// Nominal cycles covered by functional fast-forward.
    pub ff_cycles: u64,
    /// Warp instructions executed functionally during fast-forward.
    pub ff_insns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_form() {
        let sc = SamplingConfig::parse("1000:9000").unwrap();
        assert_eq!(sc, SamplingConfig { detail: 1000, skip: 9000, warmup: 500, seed: 0 });
    }

    #[test]
    fn parses_full_form_with_whitespace() {
        let sc = SamplingConfig::parse(" 256 : 768 : 128 : 42 ").unwrap();
        assert_eq!(sc, SamplingConfig { detail: 256, skip: 768, warmup: 128, seed: 42 });
    }

    #[test]
    fn warmup_defaults_to_half_detail() {
        assert_eq!(SamplingConfig::parse("7:3").unwrap().warmup, 3);
    }

    #[test]
    fn rejects_zero_length_windows() {
        assert_eq!(
            SamplingConfig::parse("0:100"),
            Err(SamplingParseError::ZeroWindow { field: "detail" })
        );
        assert_eq!(
            SamplingConfig::parse("100:0"),
            Err(SamplingParseError::ZeroWindow { field: "skip" })
        );
        // Zero warmup and seed are fine.
        let sc = SamplingConfig::parse("100:100:0:0").unwrap();
        assert_eq!((sc.warmup, sc.seed), (0, 0));
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert_eq!(
            SamplingConfig::parse("10%:90"),
            Err(SamplingParseError::BadNumber { field: "detail", text: "10%".into() })
        );
        assert_eq!(
            SamplingConfig::parse("10:-5"),
            Err(SamplingParseError::BadNumber { field: "skip", text: "-5".into() })
        );
        assert_eq!(
            SamplingConfig::parse("10:20:x"),
            Err(SamplingParseError::BadNumber { field: "warmup", text: "x".into() })
        );
        assert_eq!(
            SamplingConfig::parse("10:20:30:1.5"),
            Err(SamplingParseError::BadNumber { field: "seed", text: "1.5".into() })
        );
    }

    #[test]
    fn rejects_missing_skip_and_empty() {
        assert_eq!(SamplingConfig::parse(""), Err(SamplingParseError::Empty));
        assert_eq!(SamplingConfig::parse("   "), Err(SamplingParseError::Empty));
        assert!(matches!(
            SamplingConfig::parse("1000"),
            Err(SamplingParseError::BadNumber { field: "skip", .. })
        ));
    }

    #[test]
    fn rejects_extra_fields() {
        assert_eq!(
            SamplingConfig::parse("1:2:3:4:5"),
            Err(SamplingParseError::TooManyFields { got: 5 })
        );
    }

    #[test]
    fn errors_render_as_messages() {
        for e in [
            SamplingConfig::parse("a:b").unwrap_err(),
            SamplingConfig::parse("0:1").unwrap_err(),
            SamplingConfig::parse("1:2:3:4:5").unwrap_err(),
            SamplingConfig::parse("").unwrap_err(),
        ] {
            assert!(e.to_string().contains("DLP_SAMPLING"));
        }
    }
}
