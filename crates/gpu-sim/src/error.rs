//! Typed simulation failures and the hang diagnostic they carry.
//!
//! A simulation that cannot make progress used to spin until the cycle
//! cap and return `completed: false` with no explanation. Failures are
//! now first-class: [`crate::Gpu::run`] returns `Result<RunStats,
//! SimError>`, and the hang-shaped variants carry a [`HangReport`] — a
//! snapshot of every queue and MSHR in the machine at the moment the
//! watchdog gave up, which is usually enough to localize a deadlock to
//! one component without re-running anything.

use gpu_mem::MemError;
use std::fmt;

/// Why a simulation was aborted.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The forward-progress watchdog saw no instruction retire and no
    /// memory reply arrive for the configured window.
    Hang(Box<HangReport>),
    /// The run was still making progress but exceeded `max_cycles`.
    CycleCapExceeded(Box<HangReport>),
    /// An SM's L1D hit a structural invariant violation (orphan fill,
    /// impossible packet kind).
    MshrViolation {
        /// The SM whose L1D failed.
        sm: usize,
        /// The underlying memory-hierarchy error.
        source: MemError,
        /// Core cycle of the failure.
        cycle: u64,
    },
    /// A memory partition hit a structural invariant violation.
    PartitionFault {
        /// The failing partition.
        partition: usize,
        /// The underlying memory-hierarchy error.
        source: MemError,
        /// Core cycle of the failure.
        cycle: u64,
    },
    /// A forward packet arrived at a partition that does not service its
    /// address — the interconnect (or a fault injector) misrouted it.
    PacketMisrouted {
        /// Port the packet arrived at.
        port: usize,
        /// Port its address maps to.
        expected: usize,
        /// The packet's byte address.
        addr: u64,
        /// Core cycle of the failure.
        cycle: u64,
    },
    /// An SM's warp bookkeeping was found corrupt: a memory response or
    /// scheduler pick named a warp slot that holds no live warp, or a
    /// retiring warp's CTA is not in the resident list.
    WarpStateCorrupt {
        /// The SM whose warp state failed.
        sm: usize,
        /// The warp slot involved.
        slot: usize,
        /// Which bookkeeping invariant broke.
        what: &'static str,
        /// Core cycle of the failure.
        cycle: u64,
    },
    /// A launch-cursor replay overflowed `usize`: the round-robin CTA
    /// launch cursor could not be advanced by `sms × skipped` scan
    /// slots without wrapping, which would silently corrupt the CTA
    /// launch order. Practically unreachable on 64-bit hosts, but a
    /// wrap must abort rather than desync the launch schedule.
    LaunchCursorOverflow {
        /// Core cycle at which the replay was attempted.
        cycle: u64,
        /// Denied launch-scan slots the replay tried to add.
        slots: u128,
    },
    /// The periodic invariant auditor found a conservation law broken.
    InvariantViolation {
        /// Which audit check failed.
        check: &'static str,
        /// Human-readable specifics (counts on each side of the law).
        detail: String,
        /// Core cycle of the audit.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hang(r) => write!(
                f,
                "no forward progress since cycle {} (watchdog fired at cycle {})",
                r.last_progress_cycle, r.cycle
            ),
            SimError::CycleCapExceeded(r) => {
                write!(f, "cycle cap exceeded at cycle {} with work still in flight", r.cycle)
            }
            SimError::MshrViolation { sm, source, cycle } => {
                write!(f, "SM {sm} L1D invariant violated at cycle {cycle}: {source}")
            }
            SimError::PartitionFault { partition, source, cycle } => {
                write!(f, "partition {partition} invariant violated at cycle {cycle}: {source}")
            }
            SimError::PacketMisrouted { port, expected, addr, cycle } => write!(
                f,
                "packet for address {addr:#x} (partition {expected}) arrived at partition {port} at cycle {cycle}"
            ),
            SimError::WarpStateCorrupt { sm, slot, what, cycle } => {
                write!(f, "SM {sm} warp slot {slot} corrupt at cycle {cycle}: {what}")
            }
            SimError::LaunchCursorOverflow { cycle, slots } => write!(
                f,
                "CTA launch cursor overflowed replaying {slots} denied scan slots at cycle {cycle}"
            ),
            SimError::InvariantViolation { check, detail, cycle } => {
                write!(f, "invariant '{check}' violated at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::MshrViolation { source, .. } | SimError::PartitionFault { source, .. } => {
                Some(source)
            }
            _ => None,
        }
    }
}

impl SimError {
    /// The attached machine snapshot, for the hang-shaped variants.
    pub fn hang_report(&self) -> Option<&HangReport> {
        match self {
            SimError::Hang(r) | SimError::CycleCapExceeded(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-SM state at failure time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmSnapshot {
    /// SM index.
    pub id: usize,
    /// Warps resident and not yet finished.
    pub active_warps: usize,
    /// Warp instructions issued so far.
    pub warp_insns: u64,
    /// Coalesced transactions waiting for the L1D.
    pub ldst_queue: usize,
    /// Outstanding L1D MSHR entries.
    pub mshr_occupancy: usize,
    /// L1D packets waiting to enter the crossbar.
    pub outgoing: usize,
    /// Is the L1D input blocked by a stalled access?
    pub input_blocked: bool,
}

/// Per-partition state at failure time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSnapshot {
    /// Partition index.
    pub id: usize,
    /// Packets waiting in the input queue.
    pub in_queue: usize,
    /// Outstanding L2 MSHR entries.
    pub l2_mshr: usize,
    /// Replies waiting for the crossbar.
    pub out_queue: usize,
    /// Is the DRAM channel idle?
    pub dram_idle: bool,
}

/// Machine-wide snapshot captured when a run is aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HangReport {
    /// Cycle the report was captured.
    pub cycle: u64,
    /// Last cycle at which any instruction retired or reply arrived.
    pub last_progress_cycle: u64,
    /// CTAs never launched.
    pub pending_ctas: usize,
    /// Reply-expecting packets sent into the crossbar so far.
    pub fetches_sent: u64,
    /// Replies delivered back to L1Ds so far.
    pub replies_delivered: u64,
    /// Packets somewhere in the crossbar.
    pub icnt_in_flight: usize,
    /// Forward-queue depth per partition port.
    pub icnt_fwd_depths: Vec<usize>,
    /// Return-queue depth per SM port.
    pub icnt_ret_depths: Vec<usize>,
    /// One entry per SM.
    pub sms: Vec<SmSnapshot>,
    /// One entry per memory partition.
    pub partitions: Vec<PartitionSnapshot>,
}

impl HangReport {
    /// Reply-expecting fetches that never came back.
    pub fn missing_replies(&self) -> u64 {
        self.fetches_sent.saturating_sub(self.replies_delivered)
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hang report at cycle {} (last progress: cycle {})",
            self.cycle, self.last_progress_cycle
        )?;
        writeln!(
            f,
            "  fetches sent {}, replies delivered {} ({} missing), {} packets in crossbar, {} CTAs unlaunched",
            self.fetches_sent,
            self.replies_delivered,
            self.missing_replies(),
            self.icnt_in_flight,
            self.pending_ctas
        )?;
        for sm in &self.sms {
            if sm.active_warps > 0 || sm.mshr_occupancy > 0 || sm.ldst_queue > 0 {
                writeln!(
                    f,
                    "  SM {:2}: {} active warps, {} insns issued, ldst queue {}, MSHR {}, outgoing {}{}",
                    sm.id,
                    sm.active_warps,
                    sm.warp_insns,
                    sm.ldst_queue,
                    sm.mshr_occupancy,
                    sm.outgoing,
                    if sm.input_blocked { ", input blocked" } else { "" }
                )?;
            }
        }
        for p in &self.partitions {
            if p.in_queue > 0 || p.l2_mshr > 0 || p.out_queue > 0 || !p.dram_idle {
                writeln!(
                    f,
                    "  partition {:2}: in {}, L2 MSHR {}, out {}, DRAM {}",
                    p.id,
                    p.in_queue,
                    p.l2_mshr,
                    p.out_queue,
                    if p.dram_idle { "idle" } else { "busy" }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> HangReport {
        HangReport {
            cycle: 5000,
            last_progress_cycle: 1000,
            pending_ctas: 2,
            fetches_sent: 10,
            replies_delivered: 9,
            icnt_in_flight: 0,
            icnt_fwd_depths: vec![0; 2],
            icnt_ret_depths: vec![0; 2],
            sms: vec![SmSnapshot {
                id: 0,
                active_warps: 3,
                warp_insns: 17,
                ldst_queue: 1,
                mshr_occupancy: 1,
                outgoing: 0,
                input_blocked: true,
            }],
            partitions: vec![PartitionSnapshot {
                id: 0,
                in_queue: 0,
                l2_mshr: 0,
                out_queue: 0,
                dram_idle: true,
            }],
        }
    }

    #[test]
    fn display_surfaces_the_stuck_components() {
        let text = SimError::Hang(Box::new(report())).to_string();
        assert!(text.contains("cycle 1000"));
        let body = report().to_string();
        assert!(body.contains("1 missing"));
        assert!(body.contains("SM  0"));
        assert!(body.contains("input blocked"));
    }

    #[test]
    fn missing_replies_counts_the_gap() {
        assert_eq!(report().missing_replies(), 1);
    }
}
