//! # gpu-sim — a cycle-level SIMT GPU model
//!
//! The execution substrate for the DLP reproduction: a from-scratch
//! model of a Fermi-class GPU (Tesla M2090, Table 1 of the paper) at the
//! granularity GPGPU-Sim simulates it:
//!
//! * 16 streaming multiprocessors, each running up to 48 warps of 32
//!   threads with two greedy-then-oldest (GTO) warp schedulers;
//! * a per-warp scoreboard enforcing register dependences, so loads
//!   overlap with independent instructions exactly as on hardware;
//! * an LD/ST unit that coalesces each memory instruction's 32 lane
//!   addresses into 128-byte-sector transactions and feeds them to the
//!   L1D one per cycle;
//! * the `gpu-mem` hierarchy behind it (L1D + MSHR per SM, crossbar,
//!   12 L2+DRAM partitions) with the DRAM clock domain at 924 MHz.
//!
//! Kernels are supplied through the [`Kernel`] trait as per-warp
//! instruction streams ([`stream::OpStream`] over [`isa::TraceOp`]);
//! the `gpu-workloads` crate provides models of the paper's 18
//! benchmarks. Run one with:
//!
//! ```
//! use gpu_sim::{Gpu, SimConfig, Kernel, GridDesc, isa::TraceOp};
//! use gpu_sim::stream::{OpStream, VecStream};
//! use dlp_core::PolicyKind;
//!
//! struct Tiny;
//! impl Kernel for Tiny {
//!     fn name(&self) -> &str { "tiny" }
//!     fn grid(&self) -> GridDesc { GridDesc { num_ctas: 2, warps_per_cta: 2 } }
//!     fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
//!         let base = (cta * 64 + warp * 32) as u64 * 4;
//!         Box::new(VecStream::new(vec![
//!             TraceOp::load(0, 1, (0..32).map(|l| base + l * 4).collect()),
//!             TraceOp::alu(1, 4).with_srcs([1]).with_dst(2),
//!         ]))
//!     }
//! }
//!
//! let mut gpu = Gpu::new(SimConfig::tesla_m2090(PolicyKind::Dlp), Box::new(Tiny));
//! let stats = gpu.run().expect("simulation is fault-free");
//! assert!(stats.completed);
//! assert!(stats.ipc() > 0.0);
//! ```
//!
//! [`Gpu::run`] returns `Result<RunStats, SimError>`: a forward-progress
//! watchdog and (optionally) a periodic invariant auditor convert
//! simulator hangs and conservation-law violations into typed errors
//! carrying a [`HangReport`] snapshot of the stuck machine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Unit tests exercise failure paths where unwrap/expect is the point;
// the unwrap_used/expect_used denies apply to shipping simulator code.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod coalescer;
pub mod config;
pub mod error;
pub mod gpu;
pub mod isa;
pub mod kernel;
pub mod sampling;
pub mod scheduler;
pub mod shard;
pub mod sm;
pub mod stats;
pub mod stream;
pub mod warp;

pub use config::SimConfig;
pub use error::{HangReport, SimError};
pub use gpu::Gpu;
pub use kernel::{GridDesc, Kernel};
pub use sampling::{SamplingConfig, SamplingParseError, SamplingReport, WindowSample};
pub use shard::ShardTelemetry;
pub use stats::RunStats;
pub use stream::{OpStream, VecStream};
