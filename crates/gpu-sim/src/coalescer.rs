//! Intra-warp memory coalescing.
//!
//! The LD/ST unit merges the (up to) 32 lane addresses of one memory
//! instruction into the minimal set of 128-byte-sector transactions, in
//! first-touch lane order — the standard Fermi coalescing rule. A fully
//! coalesced unit-stride access produces one transaction; a scatter
//! produces up to 32.

/// Coalesce lane byte-addresses into unique 128-byte-aligned sector
/// addresses, ordered by first touching lane.
pub fn coalesce(addrs: &[u64], sector_bytes: u64) -> Vec<u64> {
    let mut sectors = Vec::with_capacity(4);
    coalesce_into(addrs, sector_bytes, &mut sectors);
    sectors
}

/// [`coalesce`] into a caller-supplied buffer (cleared first), so the
/// SM's issue path can reuse one allocation across instructions.
pub fn coalesce_into(addrs: &[u64], sector_bytes: u64, sectors: &mut Vec<u64>) {
    debug_assert!(sector_bytes.is_power_of_two());
    let mask = !(sector_bytes - 1);
    sectors.clear();
    for &a in addrs {
        let s = a & mask;
        if !sectors.contains(&s) {
            sectors.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_to_one_sector() {
        let addrs: Vec<u64> = (0..32).map(|l| 0x1000 + l * 4).collect();
        assert_eq!(coalesce(&addrs, 128), vec![0x1000]);
    }

    #[test]
    fn stride_two_words_spans_two_sectors() {
        let addrs: Vec<u64> = (0..32).map(|l| 0x1000 + l * 8).collect();
        assert_eq!(coalesce(&addrs, 128), vec![0x1000, 0x1080]);
    }

    #[test]
    fn scatter_produces_one_sector_per_lane() {
        let addrs: Vec<u64> = (0..32).map(|l| l * 4096).collect();
        assert_eq!(coalesce(&addrs, 128).len(), 32);
    }

    #[test]
    fn order_is_first_touch() {
        let addrs = vec![0x200, 0x000, 0x210, 0x080];
        assert_eq!(coalesce(&addrs, 128), vec![0x200, 0x000, 0x080]);
    }

    #[test]
    fn unaligned_lanes_fold_into_their_sector() {
        let addrs = vec![127, 128, 255, 256];
        assert_eq!(coalesce(&addrs, 128), vec![0, 128, 256]);
    }
}
