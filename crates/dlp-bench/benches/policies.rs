//! Criterion micro-benchmarks of the policy machinery itself: the
//! per-access hooks the L1D drives on every transaction, and the
//! end-of-sample PD recomputation. These bound the simulation cost of
//! the schemes and document the (software-model) overhead ordering:
//! baseline LRU < Stall-Bypass < protection schemes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dlp_core::{
    build_policy, pd_adjustment, AccessCtx, CacheGeometry, MissDecision, PolicyKind,
    ReplacementPolicy, VictimTagArray, WayView,
};

fn ctx(insn: u8) -> AccessCtx {
    AccessCtx { insn_id: insn, is_write: false }
}

/// Drive one synthetic access (query + miss + decide + fill-or-evict)
/// through a policy.
fn one_access(p: &mut dyn ReplacementPolicy, i: u64, ways: &[WayView]) {
    let set = (i % 32) as usize;
    let insn = (i % 8) as u8;
    p.on_query(set);
    p.on_miss(set, 1000 + i % 256, &ctx(insn));
    match p.decide_replacement(set, ways, &ctx(insn)) {
        MissDecision::Allocate { way } => {
            p.on_evict(set, way, i % 256);
            p.on_fill(set, way, 1000 + i % 256, &ctx(insn));
        }
        MissDecision::Bypass | MissDecision::Stall => {}
    }
}

fn bench_policy_access_path(c: &mut Criterion) {
    let geom = CacheGeometry::fermi_l1d_16k();
    let ways: Vec<WayView> = (0..4).map(|w| WayView::valid(w as u64)).collect();
    let mut g = c.benchmark_group("policy_access_path");
    for kind in PolicyKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{kind:?}")), &kind, |b, &k| {
            let mut p = build_policy(k, geom);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                one_access(p.as_mut(), black_box(i), &ways);
            });
        });
    }
    g.finish();
}

fn bench_hit_path(c: &mut Criterion) {
    let geom = CacheGeometry::fermi_l1d_16k();
    let mut g = c.benchmark_group("policy_hit_path");
    for kind in PolicyKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{kind:?}")), &kind, |b, &k| {
            let mut p = build_policy(k, geom);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let set = (i % 32) as usize;
                p.on_query(set);
                p.on_hit(set, (i % 4) as usize, &ctx((i % 8) as u8));
            });
        });
    }
    g.finish();
}

fn bench_pd_adjustment(c: &mut Criterion) {
    c.bench_function("pd_adjustment_step_comparison", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(pd_adjustment(4, i % 512, (i / 3) % 256));
        });
    });
}

fn bench_vta(c: &mut Criterion) {
    c.bench_function("vta_insert_probe", |b| {
        let mut vta = VictimTagArray::new(32, 4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            vta.insert((i % 32) as usize, i % 4096, (i % 128) as u8);
            black_box(vta.probe_remove(((i + 1) % 32) as usize, (i + 1) % 4096));
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_policy_access_path, bench_hit_path, bench_pd_adjustment, bench_vta
);
criterion_main!(benches);
