//! Criterion micro-benchmarks of the simulator substrates: address
//! hashing, coalescing, tag lookup, MSHR bookkeeping, crossbar injection
//! and DRAM ticking. These are the per-cycle inner loops that bound how
//! many simulated cycles per second the full model achieves.
//!
//! The `next_event` / leap-catch-up group covers the cycle-leap event
//! core's own overhead: the conservative event-horizon probes run on
//! every step, so a regression there eats the cycles the leap saves.
//!
//! The fast-forward / estimator group covers interval sampling: the
//! functional-advance inner loops set the ceiling on how cheap a
//! skipped cycle can be, and `summarize` runs once per job so its cost
//! must stay negligible next to the simulation it summarizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlp_bench::summarize;
use dlp_core::{build_policy, CacheGeometry, PolicyKind};
use gpu_mem::dram::{Dram, DramCmd, DramConfig};
use gpu_mem::icnt::{IcntConfig, Interconnect};
use gpu_mem::l1d::{L1dCache, L1dConfig};
use gpu_mem::mshr::{Mshr, MshrLookup};
use gpu_mem::packet::{MemReq, Packet, PacketKind};
use gpu_mem::partition::{MemoryPartition, PartitionConfig};
use gpu_mem::tag_array::TagArray;
use gpu_sim::coalescer::coalesce;
use gpu_sim::config::SimConfig;
use gpu_sim::sm::Sm;
use gpu_sim::{SamplingReport, WindowSample};

fn req(i: u64) -> MemReq {
    MemReq {
        id: i,
        addr: i * 128,
        is_write: false,
        pc: (i % 16) as u32,
        sm: 0,
        warp: (i % 48) as u32,
        dst_reg: 1,
        born: 0,
    }
}

fn bench_geometry_hash(c: &mut Criterion) {
    let g = CacheGeometry::fermi_l1d_16k();
    c.bench_function("geometry_hash_index", |b| {
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(0x9e37);
            black_box(g.set_of_line(black_box(line)));
        });
    });
}

fn bench_coalescer(c: &mut Criterion) {
    let unit: Vec<u64> = (0..32).map(|l| 0x1000 + l * 4).collect();
    let scatter: Vec<u64> = (0..32).map(|l| l * 4096).collect();
    c.bench_function("coalesce_unit_stride", |b| {
        b.iter(|| black_box(coalesce(black_box(&unit), 128)));
    });
    c.bench_function("coalesce_full_scatter", |b| {
        b.iter(|| black_box(coalesce(black_box(&scatter), 128)));
    });
}

fn bench_tag_array(c: &mut Criterion) {
    let geom = CacheGeometry::fermi_l1d_16k();
    let mut tags = TagArray::new(geom);
    for set in 0..geom.num_sets {
        for way in 0..geom.assoc {
            tags.evict_and_reserve(set, way, (set * geom.assoc + way) as u64);
            tags.fill(set, way, false);
        }
    }
    c.bench_function("tag_array_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tags.lookup((i % 32) as usize, i % 200));
        });
    });
}

fn bench_mshr(c: &mut Criterion) {
    c.bench_function("mshr_probe_allocate_complete", |b| {
        let mut m = Mshr::new(128, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = i % 64;
            match m.probe(line) {
                MshrLookup::Absent => m.allocate(line, Some((0, 0)), req(i)),
                MshrLookup::Merged => m.merge(line, req(i)).unwrap(),
                _ => {
                    m.complete(line);
                }
            }
            if i % 8 == 0 {
                m.complete(line);
            }
        });
    });
}

fn bench_icnt(c: &mut Criterion) {
    c.bench_function("icnt_send_pop", |b| {
        let mut icnt = Interconnect::new(IcntConfig::fermi());
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            let pkt = Packet { kind: PacketKind::ReadReq, addr: now * 128, req: req(now) };
            let dst = icnt.partition_of(pkt.addr);
            if icnt.try_send_fwd(dst, pkt, now) {
                black_box(icnt.pop_fwd(dst, now + 100));
            }
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_tick_under_load", |b| {
        let mut d = Dram::new(DramConfig::gddr5());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if d.can_accept(i * 128) {
                d.enqueue(DramCmd { addr: i * 128, is_write: false, pkt: None });
            }
            d.tick();
            black_box(d.pop_completed());
        });
    });
}

fn bench_next_event(c: &mut Criterion) {
    // DRAM activity horizon under load — the innermost term of the
    // partition's event computation.
    c.bench_function("dram_next_activity", |b| {
        let mut d = Dram::new(DramConfig::gddr5());
        for i in 0..8u64 {
            if d.can_accept(i * 128) {
                d.enqueue(DramCmd { addr: i * 128, is_write: false, pkt: None });
            }
        }
        d.tick();
        b.iter(|| black_box(d.next_activity()));
    });

    // Partition event horizon: the idle fast path the leap scan hits on
    // most partitions most steps, and the loaded path that must replay
    // the L2 admission chain (`head_would_process`).
    c.bench_function("partition_next_event_idle", |b| {
        let mut p = MemoryPartition::new(PartitionConfig::fermi());
        b.iter(|| black_box(p.next_event(black_box(1_000))));
    });
    c.bench_function("partition_next_event_loaded", |b| {
        let mut p = MemoryPartition::new(PartitionConfig::fermi());
        for i in 0..8u64 {
            if p.can_accept() {
                p.enqueue(Packet { kind: PacketKind::ReadReq, addr: i * 4096, req: req(i) });
            }
        }
        let mut now = 0u64;
        for _ in 0..4 {
            now += 1;
            p.cycle(now).unwrap();
        }
        b.iter(|| black_box(p.next_event(black_box(now))));
    });

    // Idle SM: no resident warps, nothing outgoing — the cheapest probe
    // and the one the per-SM sleep gate replaces with an array read.
    c.bench_function("sm_next_event_idle", |b| {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline);
        let mut sm = Sm::new(0, &cfg);
        b.iter(|| black_box(sm.next_event(black_box(1_000))));
    });
}

/// An L1D whose pipeline register holds a stalled access (MSHR entries
/// exhausted by distinct-line misses) — the state the leap core must
/// classify before it may skip retry cycles.
fn stalled_l1d() -> L1dCache {
    let cfg = L1dConfig::fermi_baseline();
    let mut l1d = L1dCache::new(cfg, build_policy(PolicyKind::Baseline, cfg.geom));
    let mut i = 0u64;
    while !l1d.input_blocked() {
        i += 1;
        l1d.submit(req(i), i).unwrap();
    }
    l1d
}

fn bench_leap_catchup(c: &mut Criterion) {
    // Classify + arithmetic catch-up: what the cycle-leap core executes
    // instead of ticking a stalled L1D through dead cycles.
    c.bench_function("l1d_classify_stalled_retry", |b| {
        let mut l1d = stalled_l1d();
        b.iter(|| black_box(l1d.classify_stalled_retry()));
    });
    c.bench_function("l1d_leap_catchup_64", |b| {
        let mut l1d = stalled_l1d();
        b.iter(|| l1d.leap_catchup(black_box(64), false));
    });
}

fn bench_fast_forward(c: &mut Criterion) {
    // Functional L1D access: the per-request inner loop of a sampling
    // fast-forward gap. Tags, policy (VTA/PDPT) and hit/miss counters
    // advance; no MSHR, miss queue, or pipeline stall ever forms. A
    // 512-line footprint over the 128-line Fermi L1D exercises the
    // hit, evict-and-fill, and bypass arms together.
    c.bench_function("l1d_access_functional", |b| {
        let cfg = L1dConfig::fermi_baseline();
        let mut l1d = L1dCache::new(cfg, build_policy(PolicyKind::Baseline, cfg.geom));
        let mut effects = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            l1d.access_functional(req(i % 512), true, false, &mut effects);
            effects.clear();
        });
    });
    // Functional L2 touch: where each L1D fast-forward effect lands so
    // partition state stays warm across the gap.
    c.bench_function("partition_l2_touch_functional", |b| {
        let mut p = MemoryPartition::new(PartitionConfig::fermi());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.l2_touch_functional((i % 4096) * 128, false);
        });
    });
}

fn bench_streaming(c: &mut Criterion) {
    // Native generator stream vs the eager `VecStream` compatibility
    // adapter, drained end to end. The generator pays a per-op
    // synthesis cost but never allocates the whole trace; the adapter
    // front-loads one big materialization and then serves pointer
    // bumps. This pair quantifies the trade the streaming engine makes
    // to get O(1) resident memory — and guards against the generator
    // path regressing to where the adapter would be faster overall.
    use gpu_sim::stream::materialize;
    use gpu_sim::VecStream;
    use gpu_workloads::{build, Scale};

    let kernel = build("KM", Scale::Tiny);
    c.bench_function("warp_stream_native_drain", |b| {
        b.iter(|| {
            let mut s = kernel.warp_stream(0, 0);
            let mut n = 0u64;
            while s.next_op().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
    c.bench_function("warp_stream_adapter_drain", |b| {
        b.iter(|| {
            let mut s: Box<dyn gpu_sim::OpStream> =
                Box::new(VecStream::new(materialize(kernel.warp_stream(0, 0))));
            let mut n = 0u64;
            while s.next_op().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
    // Reset-and-replay: the restart path of the sharded engine. A
    // native stream must rewind without re-synthesizing its segment
    // source from scratch each op.
    c.bench_function("warp_stream_reset_replay", |b| {
        let mut s = kernel.warp_stream(0, 0);
        b.iter(|| {
            s.reset();
            let mut n = 0u64;
            while s.next_op().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
}

fn bench_estimator(c: &mut Criterion) {
    // Confidence-interval synthesis over a typical sampled run. Runs
    // once per job, so it only has to stay negligible — but the t-table
    // lookup and per-metric variance passes should still be measured.
    let report = SamplingReport {
        windows: (0..32u64)
            .map(|w| WindowSample {
                cycles: 2_000,
                warp_insns: 9_000 + 37 * w,
                thread_insns: (9_000 + 37 * w) * 32,
                accesses: 3_000 + 11 * w,
                hits: 2_400 + 7 * w,
                flits: 5_000 + 13 * w,
            })
            .collect(),
        detailed_cycles: 32 * 3_000,
        ff_cycles: 32 * 18_000,
        ff_insns: 32 * 80_000,
    };
    c.bench_function("estimator_summarize_32_windows", |b| {
        b.iter(|| black_box(summarize(black_box(&report))));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_geometry_hash, bench_coalescer, bench_tag_array, bench_mshr, bench_icnt,
        bench_dram, bench_next_event, bench_leap_catchup, bench_fast_forward, bench_streaming,
        bench_estimator
);
criterion_main!(benches);
