//! One Criterion bench per paper artifact: each target runs the same
//! computation the corresponding `figures <id>` subcommand performs, at
//! `Scale::Tiny` so `cargo bench` finishes in minutes. The full-scale
//! numbers in EXPERIMENTS.md come from `figures <id>` (release binary);
//! these benches keep every figure's pipeline exercised and timed.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dlp_bench::harness::{run_app, ExperimentConfig};
use dlp_core::{dlp_overhead, CacheGeometry, PolicyKind};
use gpu_workloads::{registry, Scale};

/// Figure 3 / 7: RD profiling of one representative app (BFS carries
/// the per-instruction story).
fn fig3_fig7_rdd(c: &mut Criterion) {
    c.bench_function("fig3_fig7_rdd_profile_BFS", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig {
                scale: Scale::Tiny,
                profile_rd: true,
                ..ExperimentConfig::baseline()
            };
            let run = run_app("BFS", cfg).unwrap();
            let sink = run.rdd.unwrap();
            let prof = sink.lock();
            black_box(prof.overall.shares());
        });
    });
}

/// Figures 4–5: the cache-size sweep on one CI app.
fn fig4_fig5_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_fig5_size_sweep_KM");
    for (label, geom) in [
        ("16KB", CacheGeometry::fermi_l1d_16k()),
        ("32KB", CacheGeometry::fermi_l1d_32k()),
        ("64KB", CacheGeometry::fermi_l1d_64k()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &geom, |b, &geom| {
            b.iter(|| {
                let cfg = ExperimentConfig {
                    scale: Scale::Tiny,
                    ..ExperimentConfig::baseline().with_geom(geom)
                };
                black_box(run_app("KM", cfg).unwrap().stats.ipc())
            });
        });
    }
    g.finish();
}

/// Figure 6 / Table 2: the static memory-access-ratio computation for
/// the whole suite.
fn fig6_tab2_ratios(c: &mut Criterion) {
    c.bench_function("fig6_tab2_static_ratios", |b| {
        b.iter(|| {
            for spec in registry() {
                let k = gpu_workloads::build(spec.abbr, Scale::Tiny);
                black_box(gpu_workloads::registry::static_mem_ratio(k.as_ref()));
            }
        });
    });
}

/// Figures 10–13: the four-scheme comparison on one CI app (all four
/// figures derive from the same runs).
fn fig10_to_13_policy_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_13_policy_comparison_SS");
    g.sample_size(10);
    for kind in PolicyKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{kind:?}")), &kind, |b, &k| {
            b.iter(|| {
                let cfg =
                    ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline().with_policy(k) };
                let run = run_app("SS", cfg).unwrap();
                black_box((
                    run.stats.ipc(),
                    run.stats.l1d.cache_traffic(),
                    run.stats.l1d.evictions,
                    run.stats.l1d.hit_rate(),
                    run.stats.icnt.total_flits(),
                ))
            });
        });
    }
    g.finish();
}

/// §4.3: the hardware-overhead computation.
fn overhead_model(c: &mut Criterion) {
    c.bench_function("overhead_section_4_3", |b| {
        let geom = CacheGeometry::fermi_l1d_16k();
        b.iter(|| black_box(dlp_overhead(geom, geom.num_lines() as u64).total_extra_bytes()));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        fig3_fig7_rdd,
        fig4_fig5_size_sweep,
        fig6_tab2_ratios,
        fig10_to_13_policy_comparison,
        overhead_model
);
criterion_main!(benches);
