//! Parallel experiment runners.
//!
//! Every job in a sweep runs under `catch_unwind` with a bounded retry
//! loop, so a single diverging configuration cannot take down a
//! multi-hour figure run: failures are classified retryable (panics,
//! deadline overruns — conditions a fresh attempt can clear) or fatal
//! (typed simulator errors, which are deterministic), only the former
//! are retried (with deterministic exponential backoff), and the
//! suites collect whatever remains into a digest the `figures` binary
//! prints at the end.
//!
//! Jobs are distributed over a work-stealing pool of scoped threads;
//! results are committed by input slot, so every statistic is
//! byte-identical at any worker count (pinned by the determinism
//! suite).

use crate::estimate::{summarize, SamplingSummary};
use crate::persist;
use crate::telemetry::{self, JobRecord, ShardRecord};
use dlp_core::{CacheGeometry, PolicyKind, ProtectionConfig};
use gpu_sim::{Gpu, RunStats, SamplingConfig, SamplingParseError, SimConfig};
use gpu_workloads::{build, registry, BenchSpec, Scale};
use parking_lot::Mutex;
use rd_tools::{RdProfiler, SharedRdd};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// What to simulate for one run.
///
/// `Eq`/`Hash` make the config usable as a run-cache key: two jobs
/// with equal configs are guaranteed identical statistics (the
/// simulator is deterministic), so a sweep only ever simulates each
/// distinct configuration once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExperimentConfig {
    /// L1D management scheme.
    pub policy: PolicyKind,
    /// L1D geometry (defaults to the 16 KB baseline).
    pub geom: CacheGeometry,
    /// Workload scale.
    pub scale: Scale,
    /// Attach reuse-distance profilers to every SM.
    pub profile_rd: bool,
    /// Protection-parameter override for ablation studies.
    pub protection: Option<ProtectionConfig>,
    /// Optional CCWS-style warp throttle (future-work ablation).
    pub warp_limit: Option<usize>,
    /// SMARTS-style interval sampling (`None` = exact simulation, the
    /// code path every golden digest pins). Part of the cache key:
    /// sampled and exact results for the same app are never conflated.
    pub sampling: Option<SamplingConfig>,
}

impl ExperimentConfig {
    /// Baseline LRU on the 16 KB cache at full scale.
    pub fn baseline() -> Self {
        ExperimentConfig {
            policy: PolicyKind::Baseline,
            geom: CacheGeometry::fermi_l1d_16k(),
            scale: Scale::Full,
            profile_rd: false,
            protection: None,
            warp_limit: None,
            sampling: sampling_override(),
        }
    }

    /// Same but with a different policy.
    pub fn with_policy(mut self, p: PolicyKind) -> Self {
        self.policy = p;
        self
    }

    /// Same but with a different L1D geometry.
    pub fn with_geom(mut self, g: CacheGeometry) -> Self {
        self.geom = g;
        self
    }

    fn geom_label(&self) -> String {
        format!("{}KB/{}-way", self.geom.capacity_bytes() / 1024, self.geom.assoc)
    }
}

/// One completed run.
#[derive(Clone)]
pub struct AppRun {
    /// Benchmark metadata.
    pub spec: BenchSpec,
    /// Simulation statistics.
    pub stats: RunStats,
    /// Cycles the simulator stepped one at a time; the rest of
    /// `stats.cycles` was leapt by the cycle-leap event core. Kept out
    /// of `RunStats` so the statistics stay byte-identical between the
    /// leap and reference paths (only this number legitimately differs).
    pub ticked_cycles: u64,
    /// RD profile, if requested.
    pub rdd: Option<SharedRdd>,
    /// Sampling estimates, for runs driven in sampled mode. `None` for
    /// exact runs — consumers must not invent zero-width intervals.
    pub sampling: Option<SamplingSummary>,
}

/// Whether a failed job is worth another attempt.
///
/// The split drives the retry loop: panics and deadline overruns can
/// be caused by transient host conditions (an unlucky scheduling
/// stall, memory pressure) and get retried with backoff; a typed
/// simulator error is deterministic — the identical configuration
/// will fail identically — so retrying only wastes the sweep's time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// A fresh attempt may succeed (panic, deadline overrun).
    Retryable,
    /// Deterministic failure; retrying cannot help (simulator error,
    /// incomplete run).
    Fatal,
}

impl FailureClass {
    /// Rendering used in failure digests.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::Retryable => "retryable",
            FailureClass::Fatal => "fatal",
        }
    }
}

/// One job that did not produce statistics: the simulator returned a
/// typed error (hang, invariant violation, cycle-cap overrun), the run
/// panicked, or it overran its deadline. Identifies the exact
/// configuration so a sweep's failure digest names what to re-run.
#[derive(Clone, Debug)]
pub struct RunFailure {
    /// Benchmark abbreviation.
    pub app: String,
    /// L1D management scheme of the failing run.
    pub policy: PolicyKind,
    /// Human-readable cache geometry ("16KB/4-way").
    pub geom: String,
    /// Workload scale.
    pub scale: Scale,
    /// What went wrong (a `SimError` rendering, a panic payload, or a
    /// deadline overrun).
    pub error: String,
    /// True when the job failed more than once before giving up.
    pub retried: bool,
    /// Retryable or fatal — the decision the retry loop recorded.
    pub class: FailureClass,
    /// Attempts made before giving up (1 = failed on first try).
    pub attempts: u32,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} @ {} {:?}, {}{}]: {}",
            self.app,
            self.policy.label(),
            self.geom,
            self.scale,
            self.class.label(),
            if self.retried {
                format!(", retried ({} attempts)", self.attempts)
            } else {
                String::new()
            },
            self.error
        )
    }
}

impl std::error::Error for RunFailure {}

/// Environment variable that forces the named app to panic inside the
/// harness — a hook for exercising the failure path of a full sweep
/// without corrupting the simulator itself.
pub const FORCE_FAIL_ENV: &str = "DLP_FORCE_FAIL";

/// The `DLP_FORCE_FAIL` target, read from the environment exactly once
/// per process: `run_app` sits on the hot path of every sweep job, and
/// `std::env::var` takes a global lock on some platforms.
fn force_fail_target() -> Option<&'static str> {
    static TARGET: OnceLock<Option<String>> = OnceLock::new();
    TARGET.get_or_init(|| std::env::var(FORCE_FAIL_ENV).ok()).as_deref()
}

/// Environment variable overriding the worker count of [`run_many`]
/// (the determinism acceptance runs sweep it over 1/4/8).
pub const WORKERS_ENV: &str = "DLP_WORKERS";

/// The `DLP_WORKERS` override, read once per process.
fn worker_override() -> Option<usize> {
    static WORKERS: OnceLock<Option<usize>> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var(WORKERS_ENV).ok().and_then(|v| v.parse().ok()).filter(|&w| w >= 1)
    })
}

/// Environment variable bounding the wall-clock time of one job, in
/// milliseconds. Unset = no deadline, and the simulation runs on the
/// exact code path the determinism suite pins; with a deadline the run
/// is driven in bounded increments so an overrun is detected between
/// chunks and reported as a retryable [`RunFailure`].
pub const JOB_DEADLINE_ENV: &str = "DLP_JOB_DEADLINE_MS";

/// The `DLP_JOB_DEADLINE_MS` value, read from the environment on
/// *every* call — deliberately not memoized. The deadline is per-job
/// policy, not process identity: the sweep daemon serves many requests
/// from one process, each carrying its own deadline in the request
/// frame, and a `OnceLock` here silently pinned every later job to
/// whatever the first request established (the bug this replaced).
/// The env read is nowhere near hot — a job simulates for milliseconds
/// to minutes. Contrast [`shards_override`], which *is* safe to cache:
/// the shard count never changes a statistic, so a stale value cannot
/// corrupt a result, only its wall-clock time.
fn env_deadline() -> Option<Duration> {
    std::env::var(JOB_DEADLINE_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Environment variable selecting the sharded lock-step engine's shard
/// count for every simulation job (unset or 1 = the classic sequential
/// engine). Statistics are byte-identical at any value — pinned by the
/// shard-equivalence suite — so this only trades wall-clock time.
pub const SHARDS_ENV: &str = "DLP_SHARDS";

/// The `DLP_SHARDS` override, read once per process. Caching is safe
/// here (unlike the per-job deadline above) because the shard count is
/// statistics-invariant: the worst a stale value can do is run at the
/// wrong speed.
fn shards_override() -> Option<usize> {
    static SHARDS: OnceLock<Option<usize>> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::env::var(SHARDS_ENV).ok().and_then(|v| v.parse().ok()).filter(|&s| s >= 1)
    })
}

/// Environment variable enabling SMARTS-style interval sampling for
/// every simulation job: `detail:skip[:warmup[:seed]]` in cycles
/// (e.g. `DLP_SAMPLING=2000:18000`). Unset = exact simulation, the
/// code path every golden digest pins. Sampled statistics are
/// *estimates* — deterministic for a fixed seed, but they carry a
/// confidence interval instead of matching the exact run bit for bit.
pub const SAMPLING_ENV: &str = "DLP_SAMPLING";

/// Parse the `DLP_SAMPLING` environment variable, surfacing malformed
/// values as the typed parse error — front doors (the `figures`
/// binary) call this once at startup so a typo fails loudly instead of
/// silently running the exact path for hours.
pub fn sampling_env() -> Result<Option<SamplingConfig>, SamplingParseError> {
    match std::env::var(SAMPLING_ENV) {
        Ok(v) => SamplingConfig::parse(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// The `DLP_SAMPLING` override, read once per process. Memoization is
/// safe for the same reason as [`shards_override`]'s: the parsed
/// config is part of every [`ExperimentConfig`] cache key, so a stale
/// value can never alias a sampled result to an exact one. Malformed
/// values degrade to `None` here; [`sampling_env`] is the validating
/// entry point.
fn sampling_override() -> Option<SamplingConfig> {
    static SAMPLING: OnceLock<Option<SamplingConfig>> = OnceLock::new();
    *SAMPLING.get_or_init(|| sampling_env().ok().flatten())
}

/// Environment variable selecting the workload scale factor for every
/// Full-scale job: `DLP_SCALE=10|100|1000` multiplies each app's
/// streamed work per warp (the grid shape stays the Full
/// configuration). Unset = the exact Full workloads every golden
/// digest pins; `DLP_SCALE=1` is trace-identical to Full but keyed
/// separately in the run cache and store. Streaming keeps resident
/// trace memory O(1) per warp at any factor, so the only cost of a
/// large factor is simulated cycles — pair it with `DLP_SAMPLING` to
/// keep wall time bounded.
pub const SCALE_ENV: &str = "DLP_SCALE";

/// Parse the `DLP_SCALE` environment variable, surfacing malformed
/// values as an error string — the `figures` front door calls this
/// once at startup so `DLP_SCALE=10x` fails loudly instead of silently
/// running the unscaled suite.
pub fn scale_env() -> Result<Option<u32>, String> {
    match std::env::var(SCALE_ENV) {
        Ok(v) => match v.parse::<u32>() {
            Ok(f) if f >= 1 => Ok(Some(f)),
            _ => Err(format!(
                "{SCALE_ENV}: invalid scale factor {v:?} (expected an integer >= 1, \
                 e.g. {SCALE_ENV}=100)"
            )),
        },
        Err(_) => Ok(None),
    }
}

/// Cycles simulated between deadline checks when a deadline is active.
/// Small enough to bound overshoot to well under a second of wall
/// time, large enough to keep the checking overhead negligible.
const DEADLINE_CHUNK_CYCLES: u64 = 65_536;

/// The chunk actually used for a given budget: the full
/// [`DEADLINE_CHUNK_CYCLES`] for second-scale deadlines, proportionally
/// fewer for sub-second ones — the overshoot past the deadline is at
/// most one chunk of wall time, and that must stay a small fraction of
/// the budget itself (a 5 ms budget checked only after a chunk costing
/// hundreds of ms would overshoot 100×).
fn deadline_chunk(deadline: Duration) -> u64 {
    let ms = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX).min(1_000);
    (DEADLINE_CHUNK_CYCLES * ms / 1_000).max(64)
}

/// Process-wide memo of completed runs keyed by the *full* experiment
/// configuration. The simulator is deterministic, so a cached result
/// is byte-identical to a re-run; `figures all` asks for several
/// configurations more than once (the size sweep's 16 KB/32 KB
/// baseline rows reappear in the policy sweep, profiled runs repeat
/// across figures) and only pays for each exactly once. Failures are
/// never cached — a transient host condition must stay retryable.
fn run_cache() -> &'static Mutex<HashMap<(String, ExperimentConfig), AppRun>> {
    static CACHE: OnceLock<Mutex<HashMap<(String, ExperimentConfig), AppRun>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of runs currently memoized (tests, progress reports).
pub fn run_cache_len() -> usize {
    run_cache().lock().len()
}

/// Simulate one application under one configuration.
///
/// Results are memoized per process and — when `DLP_STORE_DIR` is set
/// or [`persist::init_store`] was called — persisted through the
/// crash-safe `dlp-store` layer, so a killed sweep resumes serving
/// every job it had completed from disk.
pub fn run_app(abbr: &str, cfg: ExperimentConfig) -> Result<AppRun, RunFailure> {
    run_app_with_deadline(abbr, cfg, env_deadline())
}

/// [`run_app`] with the job deadline as an explicit argument instead
/// of the `DLP_JOB_DEADLINE_MS` fallback — the entry point for callers
/// that carry a deadline per request (the sweep daemon decodes one out
/// of every job frame). `None` = unlimited, the exact code path the
/// determinism suite pins.
pub fn run_app_with_deadline(
    abbr: &str,
    cfg: ExperimentConfig,
    deadline: Option<Duration>,
) -> Result<AppRun, RunFailure> {
    if force_fail_target() == Some(abbr) {
        panic!("{abbr}: forced failure ({FORCE_FAIL_ENV} is set)");
    }
    let start = Instant::now();
    let record = |cached: bool, store_hit: bool, run: Option<&AppRun>, shard: ShardRecord| {
        telemetry::record_job(JobRecord {
            app: abbr.to_string(),
            policy: cfg.policy.label().to_string(),
            geom: cfg.geom_label(),
            scale: format!("{:?}", cfg.scale),
            cached,
            store_hit,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            sim_cycles: run.map_or(0, |r| r.stats.cycles),
            ticked_cycles: run.map_or(0, |r| r.ticked_cycles),
            // Exact runs are 100% detailed with nothing estimated:
            // fraction 1, zero windows, zero CI width.
            windows: run.and_then(|r| r.sampling).map_or(0, |s| s.windows),
            sampled_fraction: run
                .and_then(|r| r.sampling)
                .map_or(1.0, |s| s.sampled_fraction()),
            ci_rel_width: run.and_then(|r| r.sampling).map_or(0.0, |s| s.ci_rel_width()),
            insn_id_wraps: run.map_or(0, |r| r.stats.insn_id_wraps),
            pdpt_evict_pressure: run.map_or(0, |r| r.stats.pdpt_evict_pressure),
            peak_warp_trace_bytes: run.map_or(0, |r| r.stats.peak_warp_trace_bytes),
            shard,
        });
    };
    let key = (abbr.to_string(), cfg);
    if let Some(hit) = run_cache().lock().get(&key).cloned() {
        // Cache and store hits never instantiated an engine in this
        // call, so their shard telemetry is honestly all-zero.
        record(true, false, Some(&hit), ShardRecord::default());
        return Ok(hit);
    }
    if let Some(run) = persist::load(abbr, &cfg) {
        record(true, true, Some(&run), ShardRecord::default());
        run_cache().lock().insert(key, run.clone());
        return Ok(run);
    }
    match run_app_uncached(abbr, cfg, deadline, None) {
        Ok((run, shard)) => {
            record(false, false, Some(&run), shard);
            run_cache().lock().insert(key, run.clone());
            persist::save(abbr, &cfg, &run);
            Ok(run)
        }
        Err(f) => {
            record(false, false, None, ShardRecord::default());
            Err(f)
        }
    }
}

/// Test-only window past the memo layers: simulate unconditionally,
/// with an explicit deadline and (optionally) an explicit chunk size
/// for the deadline arm's `run_for` driving. The determinism suite
/// uses this to prove chunked driving is byte-identical to the
/// unlimited path — through `run_app` the second arm would be served
/// from the cache and the comparison would be vacuous.
#[doc(hidden)]
pub fn run_app_uncached_for_tests(
    abbr: &str,
    cfg: ExperimentConfig,
    deadline: Option<Duration>,
    chunk_override: Option<u64>,
) -> Result<AppRun, RunFailure> {
    run_app_uncached(abbr, cfg, deadline, chunk_override).map(|(run, _)| run)
}

/// The actual simulation behind [`run_app`]'s memo layer. Returns the
/// run plus the sharded engine's telemetry for the job record.
fn run_app_uncached(
    abbr: &str,
    cfg: ExperimentConfig,
    deadline: Option<Duration>,
    chunk_override: Option<u64>,
) -> Result<(AppRun, ShardRecord), RunFailure> {
    let fail = |error: String, class: FailureClass| RunFailure {
        app: abbr.to_string(),
        policy: cfg.policy,
        geom: cfg.geom_label(),
        scale: cfg.scale,
        error,
        retried: false,
        class,
        attempts: 1,
    };
    let spec = gpu_workloads::registry::spec(abbr);
    let kernel = build(abbr, cfg.scale);
    // Profiled jobs force a single shard explicitly: an attached L1D
    // observer disables both the leap and shard engines anyway (the
    // observer sees every access in sequential order), so asking for
    // more would only mislead the telemetry.
    let shards = if cfg.profile_rd { 1 } else { shards_override().unwrap_or(1) };
    // Profiled jobs also force exact simulation: the fast-forward path
    // executes accesses functionally, which would punch unprofiled
    // holes into the reuse-distance histograms.
    let sampling = if cfg.profile_rd { None } else { cfg.sampling };
    let mut sim_cfg =
        SimConfig::tesla_m2090(cfg.policy).with_l1_geometry(cfg.geom).with_shards(shards);
    sim_cfg.protection_override = cfg.protection;
    sim_cfg.warp_limit = cfg.warp_limit;
    sim_cfg.sampling = sampling;
    // The hang-guard cycle cap is calibrated for the Full workloads; a
    // scaled run legitimately needs proportionally more cycles, so the
    // cap grows with the factor (the per-cycle watchdog still catches
    // genuine no-progress hangs long before the cap).
    if let Scale::Scaled(f) = cfg.scale {
        sim_cfg.max_cycles = sim_cfg.max_cycles.saturating_mul(u64::from(f));
    }
    let mut gpu = Gpu::new(sim_cfg, kernel);
    let rdd = if cfg.profile_rd {
        let sink = RdProfiler::new_sink();
        for sm in 0..sim_cfg.num_sms {
            gpu.set_l1d_observer(sm, Box::new(RdProfiler::new(cfg.geom.num_sets, sink.clone())));
        }
        Some(sink)
    } else {
        None
    };
    let stats = match deadline {
        // No deadline: the exact code path the determinism suite pins.
        None => gpu.run().map_err(|e| fail(e.to_string(), FailureClass::Fatal))?,
        // Sampled runs are driven whole even under a deadline: the
        // sampling controller owns the run loop (`run_for` does not
        // dispatch it), and sampling exists precisely to make jobs
        // short — the deadline keeps protecting the sweep through the
        // cycle cap and the retry layer.
        Some(_) if sampling.is_some() => {
            gpu.run().map_err(|e| fail(e.to_string(), FailureClass::Fatal))?
        }
        Some(deadline) => {
            let t0 = Instant::now();
            let chunk = chunk_override.unwrap_or_else(|| deadline_chunk(deadline));
            loop {
                let s = gpu
                    .run_for(chunk)
                    .map_err(|e| fail(e.to_string(), FailureClass::Fatal))?;
                if s.completed {
                    break s;
                }
                if t0.elapsed() >= deadline {
                    return Err(fail(
                        format!(
                            "deadline: exceeded {} ms ({JOB_DEADLINE_ENV}) at cycle {}",
                            deadline.as_millis(),
                            s.cycles
                        ),
                        FailureClass::Retryable,
                    ));
                }
            }
        }
    };
    let ticked_cycles = gpu.ticked_cycles();
    if !stats.completed {
        return Err(fail("run stopped before kernel completion".to_string(), FailureClass::Fatal));
    }
    let tel = gpu.shard_telemetry();
    let shard = ShardRecord {
        shards: shards as u64,
        epoch_cycles: tel.epoch_cycles,
        rounds: tel.rounds,
        barrier_stalls: tel.barrier_stalls,
        restarts: tel.restarts,
        per_shard_ticked: tel.per_shard_ticked.clone(),
    };
    let sampling = gpu.sampling_report().map(summarize);
    Ok((AppRun { spec, stats, ticked_cycles, rdd, sampling }, shard))
}

/// `run_app` behind `catch_unwind`, so a panicking job becomes a
/// `RunFailure` instead of poisoning the whole sweep.
fn run_app_caught(
    abbr: &str,
    cfg: ExperimentConfig,
    deadline: Option<Duration>,
) -> Result<AppRun, RunFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_app_with_deadline(abbr, cfg, deadline))) {
        Ok(res) => res,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panicked with a non-string payload".to_string());
            Err(RunFailure {
                app: abbr.to_string(),
                policy: cfg.policy,
                geom: cfg.geom_label(),
                scale: cfg.scale,
                error: format!("panic: {msg}"),
                retried: false,
                class: FailureClass::Retryable,
                attempts: 1,
            })
        }
    }
}

/// Ceiling on attempts for a retryable failure.
const MAX_ATTEMPTS: u32 = 3;
/// First backoff delay; doubles per retry (deterministic — no jitter,
/// so a retrying sweep behaves identically run to run).
const BACKOFF_BASE_MS: u64 = 25;
/// Backoff ceiling.
const BACKOFF_CAP_MS: u64 = 200;

/// The deterministic bounded exponential backoff before retry number
/// `attempt + 1` (25 ms, 50 ms, 100 ms, …, capped at 200 ms).
fn backoff(attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(8);
    Duration::from_millis((BACKOFF_BASE_MS << exp).min(BACKOFF_CAP_MS))
}

/// One job with the retry policy applied: retryable failures (panics,
/// deadline overruns — see [`FailureClass`]) get up to
/// [`MAX_ATTEMPTS`] attempts with deterministic exponential backoff in
/// between; fatal failures (typed simulator errors) are reported
/// immediately, because the simulator is deterministic and would fail
/// identically. The returned failure records the class and attempt
/// count, so the sweep's failure digest shows the decision.
///
/// This is the hardened single-job entry point (panic-catching,
/// retrying); `run_many` applies it per job, and the sweep daemon uses
/// it directly so a panicking job becomes a typed wire error.
pub fn run_app_with_retry(abbr: &str, cfg: ExperimentConfig) -> Result<AppRun, RunFailure> {
    run_app_with_retry_deadline(abbr, cfg, env_deadline())
}

/// [`run_app_with_retry`] with the deadline as an explicit argument
/// (see [`run_app_with_deadline`]); the sweep daemon passes each
/// request frame's own deadline here.
pub fn run_app_with_retry_deadline(
    abbr: &str,
    cfg: ExperimentConfig,
    deadline: Option<Duration>,
) -> Result<AppRun, RunFailure> {
    let mut attempt = 1;
    loop {
        match run_app_caught(abbr, cfg, deadline) {
            Ok(run) => return Ok(run),
            Err(mut f) => {
                f.attempts = attempt;
                f.retried = attempt > 1;
                if f.class == FailureClass::Fatal || attempt >= MAX_ATTEMPTS {
                    return Err(f);
                }
                std::thread::sleep(backoff(attempt));
                attempt += 1;
            }
        }
    }
}

/// Run `jobs` of (app, config) pairs in parallel, preserving input
/// order in the result. Each job yields `Ok(run)` or a `RunFailure`
/// naming the app, policy and geometry that failed; one bad job never
/// aborts the others. `DLP_WORKERS` overrides the worker count.
pub fn run_many(jobs: &[(String, ExperimentConfig)]) -> Vec<Result<AppRun, RunFailure>> {
    let workers = worker_override()
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8))
        .min(jobs.len().max(1));
    run_many_with_workers(jobs, workers)
}

/// `run_many` with an explicit worker count (1 = fully serial).
///
/// The pool is work-stealing: the job list is split into one
/// contiguous chunk per worker, each worker drains its own chunk from
/// the front and, when empty, steals from the *back* of another
/// worker's chunk (back-stealing minimizes contention on the victim's
/// front end). Results are committed into a slot indexed by the job's
/// input position, so the returned vector — and every statistic in it
/// — is byte-identical at any worker count and under any stealing
/// interleaving; the determinism suite pins this for 1, 4 and 8
/// workers.
pub fn run_many_with_workers(
    jobs: &[(String, ExperimentConfig)],
    workers: usize,
) -> Vec<Result<AppRun, RunFailure>> {
    assert!(workers >= 1);
    let workers = workers.min(jobs.len().max(1));
    let results: Vec<Mutex<Option<Result<AppRun, RunFailure>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    // One contiguous slice of job indices per worker. Contiguity keeps
    // the common no-stealing case cache-friendly: neighbouring jobs
    // usually share an app whose kernel build state is warm.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = jobs.len() * w / workers;
            let hi = jobs.len() * (w + 1) / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    std::thread::scope(|s| {
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            s.spawn(move || loop {
                // Own queue first; then sweep the others for work to
                // steal. Every index is handed out exactly once: pops
                // happen under the owning queue's lock.
                let claimed = queues[w].lock().pop_front().or_else(|| {
                    (1..workers).find_map(|d| queues[(w + d) % workers].lock().pop_back())
                });
                let Some(i) = claimed else { break };
                let (abbr, cfg) = &jobs[i];
                *results[i].lock() = Some(run_app_with_retry(abbr, *cfg));
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner().unwrap_or_else(|| {
                // A worker died between claiming the slot and storing a
                // result (it cannot panic past catch_unwind, but be
                // defensive rather than poison the whole sweep).
                let (abbr, cfg) = &jobs[i];
                Err(RunFailure {
                    app: abbr.clone(),
                    policy: cfg.policy,
                    geom: cfg.geom_label(),
                    scale: cfg.scale,
                    error: "worker produced no result".to_string(),
                    retried: false,
                    class: FailureClass::Fatal,
                    attempts: 0,
                })
            })
        })
        .collect()
}

/// Render a sweep's failures as a short report, one line per job.
/// Empty string when everything succeeded.
pub fn failure_digest(failures: &[RunFailure]) -> String {
    if failures.is_empty() {
        return String::new();
    }
    let mut out = format!("{} job(s) failed:\n", failures.len());
    for f in failures {
        out.push_str(&format!("  - {f}\n"));
    }
    out
}

/// Figure 10–13 data: every app under the four schemes (16 KB) plus the
/// 32 KB baseline-policy configuration.
pub struct PolicySuite {
    /// app → (scheme label → run). Failed jobs are absent.
    pub runs: HashMap<String, HashMap<&'static str, AppRun>>,
    /// Row order (Table 2 order).
    pub apps: Vec<BenchSpec>,
    /// Jobs that produced no statistics.
    pub failures: Vec<RunFailure>,
    /// app → (scheme label → failure) for the same jobs, so renderers
    /// can degrade gracefully: a partial sweep still prints every row,
    /// with an explicit `FAILED(reason)` cell where a run is missing.
    pub failed: HashMap<String, HashMap<&'static str, RunFailure>>,
}

impl PolicySuite {
    /// One-line-per-failure report (empty when the sweep was clean).
    pub fn failure_digest(&self) -> String {
        failure_digest(&self.failures)
    }
}

/// Label used for the 32 KB configuration column.
pub const LABEL_32K: &str = "32KB";

/// Run the full policy comparison at the given scale.
pub fn run_policy_suite(scale: Scale) -> PolicySuite {
    telemetry::sweep("policy_suite", || run_policy_suite_inner(scale))
}

fn run_policy_suite_inner(scale: Scale) -> PolicySuite {
    let apps = registry();
    let mut jobs = Vec::new();
    for spec in &apps {
        for kind in PolicyKind::ALL {
            let cfg = ExperimentConfig { scale, ..ExperimentConfig::baseline().with_policy(kind) };
            jobs.push((spec.abbr.to_string(), cfg));
        }
        let cfg32 = ExperimentConfig {
            scale,
            ..ExperimentConfig::baseline().with_geom(CacheGeometry::fermi_l1d_32k())
        };
        jobs.push((spec.abbr.to_string(), cfg32));
    }
    let mut results = run_many(&jobs).into_iter();
    let mut runs: HashMap<String, HashMap<&'static str, AppRun>> = HashMap::new();
    let mut failed: HashMap<String, HashMap<&'static str, RunFailure>> = HashMap::new();
    let mut failures = Vec::new();
    for spec in &apps {
        // Every app gets a row, even if all of its jobs failed: callers
        // index `runs[abbr]` and read an empty map, not a missing key.
        runs.entry(spec.abbr.to_string()).or_default();
        let mut take = |label: &'static str| match results.next().expect("one result per job") {
            Ok(run) => {
                runs.entry(spec.abbr.to_string()).or_default().insert(label, run);
            }
            Err(f) => {
                failed.entry(spec.abbr.to_string()).or_default().insert(label, f.clone());
                failures.push(f);
            }
        };
        for kind in PolicyKind::ALL {
            take(kind.label());
        }
        take(LABEL_32K);
    }
    PolicySuite { runs, apps, failures, failed }
}

/// Figure 4–5 data: every app at 16/32/64 KB under baseline LRU.
pub struct SizeSuite {
    /// app → (capacity label → run). Failed jobs are absent.
    pub runs: HashMap<String, HashMap<&'static str, AppRun>>,
    /// Row order.
    pub apps: Vec<BenchSpec>,
    /// Jobs that produced no statistics.
    pub failures: Vec<RunFailure>,
    /// app → (capacity label → failure), for `FAILED(reason)` cells.
    pub failed: HashMap<String, HashMap<&'static str, RunFailure>>,
}

impl SizeSuite {
    /// One-line-per-failure report (empty when the sweep was clean).
    pub fn failure_digest(&self) -> String {
        failure_digest(&self.failures)
    }
}

/// Capacity labels for the size sweep.
pub const SIZE_LABELS: [&str; 3] = ["16KB", "32KB", "64KB"];

/// Run the cache-size sweep of Figures 4 and 5.
pub fn run_size_suite(scale: Scale) -> SizeSuite {
    telemetry::sweep("size_suite", || run_size_suite_inner(scale))
}

fn run_size_suite_inner(scale: Scale) -> SizeSuite {
    let geoms = [
        CacheGeometry::fermi_l1d_16k(),
        CacheGeometry::fermi_l1d_32k(),
        CacheGeometry::fermi_l1d_64k(),
    ];
    let apps = registry();
    let mut jobs = Vec::new();
    for spec in &apps {
        for g in geoms {
            let cfg = ExperimentConfig { scale, ..ExperimentConfig::baseline().with_geom(g) };
            jobs.push((spec.abbr.to_string(), cfg));
        }
    }
    let mut results = run_many(&jobs).into_iter();
    let mut runs: HashMap<String, HashMap<&'static str, AppRun>> = HashMap::new();
    let mut failed: HashMap<String, HashMap<&'static str, RunFailure>> = HashMap::new();
    let mut failures = Vec::new();
    for spec in &apps {
        runs.entry(spec.abbr.to_string()).or_default();
        for label in SIZE_LABELS {
            match results.next().expect("one result per job") {
                Ok(run) => {
                    runs.entry(spec.abbr.to_string()).or_default().insert(label, run);
                }
                Err(f) => {
                    failed.entry(spec.abbr.to_string()).or_default().insert(label, f.clone());
                    failures.push(f);
                }
            }
        }
    }
    SizeSuite { runs, apps, failures, failed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_app_completes_at_tiny_scale() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
        let run = run_app("KM", cfg).unwrap();
        assert!(run.stats.completed);
        assert!(run.stats.thread_insns > 0);
    }

    #[test]
    fn rd_profiling_collects_data() {
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            profile_rd: true,
            ..ExperimentConfig::baseline()
        };
        let run = run_app("SS", cfg).unwrap();
        let sink = run.rdd.expect("profile requested");
        let prof = sink.lock();
        assert!(prof.overall.total() + prof.overall.compulsory > 0);
    }

    #[test]
    fn run_many_preserves_order() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
        let jobs = vec![("KM".to_string(), cfg), ("MM".to_string(), cfg), ("SS".to_string(), cfg)];
        let out = run_many(&jobs);
        assert_eq!(out[0].as_ref().unwrap().spec.abbr, "KM");
        assert_eq!(out[1].as_ref().unwrap().spec.abbr, "MM");
        assert_eq!(out[2].as_ref().unwrap().spec.abbr, "SS");
    }

    #[test]
    fn repeated_configs_hit_the_run_cache() {
        // StallBypass is used by no other test in this binary, so the
        // (app, config) key is owned by this test even though the
        // process-wide cache is shared.
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            ..ExperimentConfig::baseline().with_policy(PolicyKind::StallBypass)
        };
        let first = run_app("MM", cfg).unwrap();
        let second = run_app("MM", cfg).unwrap();
        assert_eq!(first.stats.cycles, second.stats.cycles);
        assert_eq!(first.stats.l1d, second.stats.l1d);
        assert!(run_cache_len() >= 1);
        let jobs: Vec<_> = telemetry::jobs_snapshot()
            .into_iter()
            .filter(|j| j.app == "MM" && j.policy == PolicyKind::StallBypass.label())
            .collect();
        assert!(jobs.iter().any(|j| !j.cached), "first run simulates");
        assert!(jobs.iter().any(|j| j.cached), "repeat is served from the cache");
        let hit = jobs.iter().find(|j| j.cached).unwrap();
        assert_eq!(hit.sim_cycles, first.stats.cycles);
    }

    #[test]
    fn failure_digest_names_the_failing_configuration() {
        let f = RunFailure {
            app: "KM".to_string(),
            policy: PolicyKind::Dlp,
            geom: "16KB/4-way".to_string(),
            scale: Scale::Tiny,
            error: "hang: no forward progress".to_string(),
            retried: true,
            class: FailureClass::Retryable,
            attempts: 3,
        };
        let digest = failure_digest(&[f]);
        assert!(digest.contains("KM"), "{digest}");
        assert!(digest.contains("DLP"), "{digest}");
        assert!(digest.contains("16KB/4-way"), "{digest}");
        assert!(digest.contains("retried (3 attempts)"), "{digest}");
        assert!(digest.contains("retryable"), "{digest}");
        assert!(failure_digest(&[]).is_empty());

        let fatal = RunFailure {
            error: "invariant violated".to_string(),
            retried: false,
            class: FailureClass::Fatal,
            attempts: 1,
            ..failure_digest_sample()
        };
        let digest = failure_digest(&[fatal]);
        assert!(digest.contains("fatal"), "{digest}");
        assert!(!digest.contains("retried"), "fatal failures are not retried: {digest}");
    }

    fn failure_digest_sample() -> RunFailure {
        RunFailure {
            app: "KM".to_string(),
            policy: PolicyKind::Dlp,
            geom: "16KB/4-way".to_string(),
            scale: Scale::Tiny,
            error: String::new(),
            retried: false,
            class: FailureClass::Fatal,
            attempts: 1,
        }
    }

    #[test]
    fn deadline_chunk_scales_with_the_budget() {
        assert_eq!(deadline_chunk(Duration::from_secs(3600)), DEADLINE_CHUNK_CYCLES);
        assert_eq!(deadline_chunk(Duration::from_secs(1)), DEADLINE_CHUNK_CYCLES);
        assert_eq!(deadline_chunk(Duration::from_millis(500)), DEADLINE_CHUNK_CYCLES / 2);
        // Millisecond budgets are checked every few dozen cycles, so
        // the overshoot stays proportionate; the floor keeps the chunk
        // from degenerating to single-cycle stepping.
        assert_eq!(deadline_chunk(Duration::from_millis(1)), 65);
        assert_eq!(deadline_chunk(Duration::from_millis(0)), 64);
    }

    #[test]
    fn tiny_deadline_fails_retryably_and_an_unlimited_rerun_succeeds() {
        // Per-call deadlines: the same process runs the same job under
        // a 1 ms budget (must overrun — the proportional chunk makes
        // even a Tiny job check its budget mid-run) and then with no
        // budget at all. Under the old process-cached deadline the
        // second call would have inherited the first call's budget.
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            ..ExperimentConfig::baseline().with_policy(PolicyKind::GlobalProtection)
        };
        let Err(failed) =
            run_app_uncached_for_tests("CFD", cfg, Some(Duration::from_millis(1)), None)
        else {
            panic!("a 1 ms budget cannot cover a CFD simulation");
        };
        assert_eq!(failed.class, FailureClass::Retryable);
        assert!(failed.error.contains("deadline"), "{}", failed.error);
        let ok = run_app_uncached_for_tests("CFD", cfg, None, None).unwrap();
        assert!(ok.stats.completed);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        assert_eq!(backoff(1), Duration::from_millis(25));
        assert_eq!(backoff(2), Duration::from_millis(50));
        assert_eq!(backoff(3), Duration::from_millis(100));
        assert_eq!(backoff(4), Duration::from_millis(200));
        assert_eq!(backoff(40), Duration::from_millis(200), "cap holds far out");
    }
}
