//! Parallel experiment runners.
//!
//! Every job in a sweep runs under `catch_unwind` with one retry, so a
//! single diverging configuration cannot take down a multi-hour figure
//! run: the harness returns per-job `Result`s and the suites collect
//! the failures into a digest the `figures` binary prints at the end.

use crate::telemetry::{self, JobRecord};
use dlp_core::{CacheGeometry, PolicyKind, ProtectionConfig};
use gpu_sim::{Gpu, RunStats, SimConfig};
use gpu_workloads::{build, registry, BenchSpec, Scale};
use parking_lot::Mutex;
use rd_tools::{RdProfiler, SharedRdd};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Instant;

/// What to simulate for one run.
///
/// `Eq`/`Hash` make the config usable as a run-cache key: two jobs
/// with equal configs are guaranteed identical statistics (the
/// simulator is deterministic), so a sweep only ever simulates each
/// distinct configuration once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExperimentConfig {
    /// L1D management scheme.
    pub policy: PolicyKind,
    /// L1D geometry (defaults to the 16 KB baseline).
    pub geom: CacheGeometry,
    /// Workload scale.
    pub scale: Scale,
    /// Attach reuse-distance profilers to every SM.
    pub profile_rd: bool,
    /// Protection-parameter override for ablation studies.
    pub protection: Option<ProtectionConfig>,
    /// Optional CCWS-style warp throttle (future-work ablation).
    pub warp_limit: Option<usize>,
}

impl ExperimentConfig {
    /// Baseline LRU on the 16 KB cache at full scale.
    pub fn baseline() -> Self {
        ExperimentConfig {
            policy: PolicyKind::Baseline,
            geom: CacheGeometry::fermi_l1d_16k(),
            scale: Scale::Full,
            profile_rd: false,
            protection: None,
            warp_limit: None,
        }
    }

    /// Same but with a different policy.
    pub fn with_policy(mut self, p: PolicyKind) -> Self {
        self.policy = p;
        self
    }

    /// Same but with a different L1D geometry.
    pub fn with_geom(mut self, g: CacheGeometry) -> Self {
        self.geom = g;
        self
    }

    fn geom_label(&self) -> String {
        format!("{}KB/{}-way", self.geom.capacity_bytes() / 1024, self.geom.assoc)
    }
}

/// One completed run.
#[derive(Clone)]
pub struct AppRun {
    /// Benchmark metadata.
    pub spec: BenchSpec,
    /// Simulation statistics.
    pub stats: RunStats,
    /// Cycles the simulator stepped one at a time; the rest of
    /// `stats.cycles` was leapt by the cycle-leap event core. Kept out
    /// of `RunStats` so the statistics stay byte-identical between the
    /// leap and reference paths (only this number legitimately differs).
    pub ticked_cycles: u64,
    /// RD profile, if requested.
    pub rdd: Option<SharedRdd>,
}

/// One job that did not produce statistics: the simulator returned a
/// typed error (hang, invariant violation, cycle-cap overrun) or the
/// run panicked. Identifies the exact configuration so a sweep's
/// failure digest names what to re-run.
#[derive(Clone, Debug)]
pub struct RunFailure {
    /// Benchmark abbreviation.
    pub app: String,
    /// L1D management scheme of the failing run.
    pub policy: PolicyKind,
    /// Human-readable cache geometry ("16KB/4-way").
    pub geom: String,
    /// Workload scale.
    pub scale: Scale,
    /// What went wrong (a `SimError` rendering or a panic payload).
    pub error: String,
    /// True when the job failed twice (it is retried once).
    pub retried: bool,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} @ {} {:?}{}]: {}",
            self.app,
            self.policy.label(),
            self.geom,
            self.scale,
            if self.retried { ", retried" } else { "" },
            self.error
        )
    }
}

impl std::error::Error for RunFailure {}

/// Environment variable that forces the named app to panic inside the
/// harness — a hook for exercising the failure path of a full sweep
/// without corrupting the simulator itself.
pub const FORCE_FAIL_ENV: &str = "DLP_FORCE_FAIL";

/// The `DLP_FORCE_FAIL` target, read from the environment exactly once
/// per process: `run_app` sits on the hot path of every sweep job, and
/// `std::env::var` takes a global lock on some platforms.
fn force_fail_target() -> Option<&'static str> {
    static TARGET: OnceLock<Option<String>> = OnceLock::new();
    TARGET.get_or_init(|| std::env::var(FORCE_FAIL_ENV).ok()).as_deref()
}

/// Process-wide memo of completed runs keyed by the *full* experiment
/// configuration. The simulator is deterministic, so a cached result
/// is byte-identical to a re-run; `figures all` asks for several
/// configurations more than once (the size sweep's 16 KB/32 KB
/// baseline rows reappear in the policy sweep, profiled runs repeat
/// across figures) and only pays for each exactly once. Failures are
/// never cached — a transient host condition must stay retryable.
fn run_cache() -> &'static Mutex<HashMap<(String, ExperimentConfig), AppRun>> {
    static CACHE: OnceLock<Mutex<HashMap<(String, ExperimentConfig), AppRun>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of runs currently memoized (tests, progress reports).
pub fn run_cache_len() -> usize {
    run_cache().lock().len()
}

/// Simulate one application under one configuration.
///
/// Results are memoized per process: repeating a configuration returns
/// the cached statistics without re-simulating.
pub fn run_app(abbr: &str, cfg: ExperimentConfig) -> Result<AppRun, RunFailure> {
    if force_fail_target() == Some(abbr) {
        panic!("{abbr}: forced failure ({FORCE_FAIL_ENV} is set)");
    }
    let start = Instant::now();
    let record = |cached: bool, sim_cycles: u64, ticked_cycles: u64| {
        telemetry::record_job(JobRecord {
            app: abbr.to_string(),
            policy: cfg.policy.label().to_string(),
            geom: cfg.geom_label(),
            scale: format!("{:?}", cfg.scale),
            cached,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            sim_cycles,
            ticked_cycles,
        });
    };
    let key = (abbr.to_string(), cfg);
    if let Some(hit) = run_cache().lock().get(&key).cloned() {
        record(true, hit.stats.cycles, hit.ticked_cycles);
        return Ok(hit);
    }
    let run = run_app_uncached(abbr, cfg);
    match &run {
        Ok(r) => {
            record(false, r.stats.cycles, r.ticked_cycles);
            run_cache().lock().insert(key, r.clone());
        }
        Err(_) => record(false, 0, 0),
    }
    run
}

/// The actual simulation behind [`run_app`]'s memo layer.
fn run_app_uncached(abbr: &str, cfg: ExperimentConfig) -> Result<AppRun, RunFailure> {
    let fail = |error: String| RunFailure {
        app: abbr.to_string(),
        policy: cfg.policy,
        geom: cfg.geom_label(),
        scale: cfg.scale,
        error,
        retried: false,
    };
    let spec = gpu_workloads::registry::spec(abbr);
    let kernel = build(abbr, cfg.scale);
    let mut sim_cfg = SimConfig::tesla_m2090(cfg.policy).with_l1_geometry(cfg.geom);
    sim_cfg.protection_override = cfg.protection;
    sim_cfg.warp_limit = cfg.warp_limit;
    let mut gpu = Gpu::new(sim_cfg, kernel);
    let rdd = if cfg.profile_rd {
        let sink = RdProfiler::new_sink();
        for sm in 0..sim_cfg.num_sms {
            gpu.set_l1d_observer(sm, Box::new(RdProfiler::new(cfg.geom.num_sets, sink.clone())));
        }
        Some(sink)
    } else {
        None
    };
    let stats = gpu.run().map_err(|e| fail(e.to_string()))?;
    let ticked_cycles = gpu.ticked_cycles();
    if !stats.completed {
        return Err(fail("run stopped before kernel completion".to_string()));
    }
    Ok(AppRun { spec, stats, ticked_cycles, rdd })
}

/// `run_app` behind `catch_unwind`, so a panicking job becomes a
/// `RunFailure` instead of poisoning the whole sweep.
fn run_app_caught(abbr: &str, cfg: ExperimentConfig) -> Result<AppRun, RunFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_app(abbr, cfg))) {
        Ok(res) => res,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panicked with a non-string payload".to_string());
            Err(RunFailure {
                app: abbr.to_string(),
                policy: cfg.policy,
                geom: cfg.geom_label(),
                scale: cfg.scale,
                error: format!("panic: {msg}"),
                retried: false,
            })
        }
    }
}

/// One job with the retry policy applied: a failing run is retried
/// once (transient host conditions — OOM kills of a worker thread,
/// for example — are worth one more attempt; deterministic simulator
/// errors simply fail again and are reported with `retried` set).
fn run_app_with_retry(abbr: &str, cfg: ExperimentConfig) -> Result<AppRun, RunFailure> {
    run_app_caught(abbr, cfg).or_else(|_first| {
        run_app_caught(abbr, cfg).map_err(|mut f| {
            f.retried = true;
            f
        })
    })
}

/// Run `jobs` of (app, config) pairs in parallel, preserving input
/// order in the result. Each job yields `Ok(run)` or a `RunFailure`
/// naming the app, policy and geometry that failed; one bad job never
/// aborts the others.
pub fn run_many(jobs: &[(String, ExperimentConfig)]) -> Vec<Result<AppRun, RunFailure>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .min(jobs.len().max(1));
    run_many_with_workers(jobs, workers)
}

/// `run_many` with an explicit worker count (1 = fully serial). Job
/// results are independent of `workers` — the determinism suite checks
/// that a 1-thread and an N-thread sweep produce identical statistics.
pub fn run_many_with_workers(
    jobs: &[(String, ExperimentConfig)],
    workers: usize,
) -> Vec<Result<AppRun, RunFailure>> {
    assert!(workers >= 1);
    let results: Vec<Mutex<Option<Result<AppRun, RunFailure>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(jobs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (abbr, cfg) = &jobs[i];
                *results[i].lock() = Some(run_app_with_retry(abbr, *cfg));
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner().unwrap_or_else(|| {
                // A worker died between claiming the slot and storing a
                // result (it cannot panic past catch_unwind, but be
                // defensive rather than poison the whole sweep).
                let (abbr, cfg) = &jobs[i];
                Err(RunFailure {
                    app: abbr.clone(),
                    policy: cfg.policy,
                    geom: cfg.geom_label(),
                    scale: cfg.scale,
                    error: "worker produced no result".to_string(),
                    retried: false,
                })
            })
        })
        .collect()
}

/// Render a sweep's failures as a short report, one line per job.
/// Empty string when everything succeeded.
pub fn failure_digest(failures: &[RunFailure]) -> String {
    if failures.is_empty() {
        return String::new();
    }
    let mut out = format!("{} job(s) failed:\n", failures.len());
    for f in failures {
        out.push_str(&format!("  - {f}\n"));
    }
    out
}

/// Figure 10–13 data: every app under the four schemes (16 KB) plus the
/// 32 KB baseline-policy configuration.
pub struct PolicySuite {
    /// app → (scheme label → run). Failed jobs are absent.
    pub runs: HashMap<String, HashMap<&'static str, AppRun>>,
    /// Row order (Table 2 order).
    pub apps: Vec<BenchSpec>,
    /// Jobs that produced no statistics.
    pub failures: Vec<RunFailure>,
}

impl PolicySuite {
    /// One-line-per-failure report (empty when the sweep was clean).
    pub fn failure_digest(&self) -> String {
        failure_digest(&self.failures)
    }
}

/// Label used for the 32 KB configuration column.
pub const LABEL_32K: &str = "32KB";

/// Run the full policy comparison at the given scale.
pub fn run_policy_suite(scale: Scale) -> PolicySuite {
    telemetry::sweep("policy_suite", || run_policy_suite_inner(scale))
}

fn run_policy_suite_inner(scale: Scale) -> PolicySuite {
    let apps = registry();
    let mut jobs = Vec::new();
    for spec in &apps {
        for kind in PolicyKind::ALL {
            let cfg = ExperimentConfig { scale, ..ExperimentConfig::baseline().with_policy(kind) };
            jobs.push((spec.abbr.to_string(), cfg));
        }
        let cfg32 = ExperimentConfig {
            scale,
            ..ExperimentConfig::baseline().with_geom(CacheGeometry::fermi_l1d_32k())
        };
        jobs.push((spec.abbr.to_string(), cfg32));
    }
    let mut results = run_many(&jobs).into_iter();
    let mut runs: HashMap<String, HashMap<&'static str, AppRun>> = HashMap::new();
    let mut failures = Vec::new();
    let mut take = |entry: &mut HashMap<&'static str, AppRun>, label: &'static str| {
        match results.next().expect("one result per job") {
            Ok(run) => {
                entry.insert(label, run);
            }
            Err(f) => failures.push(f),
        }
    };
    for spec in &apps {
        let entry = runs.entry(spec.abbr.to_string()).or_default();
        for kind in PolicyKind::ALL {
            take(entry, kind.label());
        }
        take(entry, LABEL_32K);
    }
    PolicySuite { runs, apps, failures }
}

/// Figure 4–5 data: every app at 16/32/64 KB under baseline LRU.
pub struct SizeSuite {
    /// app → (capacity label → run). Failed jobs are absent.
    pub runs: HashMap<String, HashMap<&'static str, AppRun>>,
    /// Row order.
    pub apps: Vec<BenchSpec>,
    /// Jobs that produced no statistics.
    pub failures: Vec<RunFailure>,
}

impl SizeSuite {
    /// One-line-per-failure report (empty when the sweep was clean).
    pub fn failure_digest(&self) -> String {
        failure_digest(&self.failures)
    }
}

/// Capacity labels for the size sweep.
pub const SIZE_LABELS: [&str; 3] = ["16KB", "32KB", "64KB"];

/// Run the cache-size sweep of Figures 4 and 5.
pub fn run_size_suite(scale: Scale) -> SizeSuite {
    telemetry::sweep("size_suite", || run_size_suite_inner(scale))
}

fn run_size_suite_inner(scale: Scale) -> SizeSuite {
    let geoms = [
        CacheGeometry::fermi_l1d_16k(),
        CacheGeometry::fermi_l1d_32k(),
        CacheGeometry::fermi_l1d_64k(),
    ];
    let apps = registry();
    let mut jobs = Vec::new();
    for spec in &apps {
        for g in geoms {
            let cfg = ExperimentConfig { scale, ..ExperimentConfig::baseline().with_geom(g) };
            jobs.push((spec.abbr.to_string(), cfg));
        }
    }
    let mut results = run_many(&jobs).into_iter();
    let mut runs: HashMap<String, HashMap<&'static str, AppRun>> = HashMap::new();
    let mut failures = Vec::new();
    for spec in &apps {
        let entry = runs.entry(spec.abbr.to_string()).or_default();
        for label in SIZE_LABELS {
            match results.next().expect("one result per job") {
                Ok(run) => {
                    entry.insert(label, run);
                }
                Err(f) => failures.push(f),
            }
        }
    }
    SizeSuite { runs, apps, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_app_completes_at_tiny_scale() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
        let run = run_app("KM", cfg).unwrap();
        assert!(run.stats.completed);
        assert!(run.stats.thread_insns > 0);
    }

    #[test]
    fn rd_profiling_collects_data() {
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            profile_rd: true,
            ..ExperimentConfig::baseline()
        };
        let run = run_app("SS", cfg).unwrap();
        let sink = run.rdd.expect("profile requested");
        let prof = sink.lock();
        assert!(prof.overall.total() + prof.overall.compulsory > 0);
    }

    #[test]
    fn run_many_preserves_order() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
        let jobs = vec![("KM".to_string(), cfg), ("MM".to_string(), cfg), ("SS".to_string(), cfg)];
        let out = run_many(&jobs);
        assert_eq!(out[0].as_ref().unwrap().spec.abbr, "KM");
        assert_eq!(out[1].as_ref().unwrap().spec.abbr, "MM");
        assert_eq!(out[2].as_ref().unwrap().spec.abbr, "SS");
    }

    #[test]
    fn repeated_configs_hit_the_run_cache() {
        // StallBypass is used by no other test in this binary, so the
        // (app, config) key is owned by this test even though the
        // process-wide cache is shared.
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            ..ExperimentConfig::baseline().with_policy(PolicyKind::StallBypass)
        };
        let first = run_app("MM", cfg).unwrap();
        let second = run_app("MM", cfg).unwrap();
        assert_eq!(first.stats.cycles, second.stats.cycles);
        assert_eq!(first.stats.l1d, second.stats.l1d);
        assert!(run_cache_len() >= 1);
        let jobs: Vec<_> = telemetry::jobs_snapshot()
            .into_iter()
            .filter(|j| j.app == "MM" && j.policy == PolicyKind::StallBypass.label())
            .collect();
        assert!(jobs.iter().any(|j| !j.cached), "first run simulates");
        assert!(jobs.iter().any(|j| j.cached), "repeat is served from the cache");
        let hit = jobs.iter().find(|j| j.cached).unwrap();
        assert_eq!(hit.sim_cycles, first.stats.cycles);
    }

    #[test]
    fn failure_digest_names_the_failing_configuration() {
        let f = RunFailure {
            app: "KM".to_string(),
            policy: PolicyKind::Dlp,
            geom: "16KB/4-way".to_string(),
            scale: Scale::Tiny,
            error: "hang: no forward progress".to_string(),
            retried: true,
        };
        let digest = failure_digest(&[f]);
        assert!(digest.contains("KM"), "{digest}");
        assert!(digest.contains("DLP"), "{digest}");
        assert!(digest.contains("16KB/4-way"), "{digest}");
        assert!(digest.contains("retried"), "{digest}");
        assert!(failure_digest(&[]).is_empty());
    }
}
