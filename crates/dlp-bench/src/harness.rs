//! Parallel experiment runners.

use dlp_core::{CacheGeometry, PolicyKind, ProtectionConfig};
use gpu_sim::{Gpu, RunStats, SimConfig};
use gpu_workloads::{build, registry, BenchSpec, Scale};
use parking_lot::Mutex;
use rd_tools::{RdProfiler, SharedRdd};
use std::collections::HashMap;

/// What to simulate for one run.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// L1D management scheme.
    pub policy: PolicyKind,
    /// L1D geometry (defaults to the 16 KB baseline).
    pub geom: CacheGeometry,
    /// Workload scale.
    pub scale: Scale,
    /// Attach reuse-distance profilers to every SM.
    pub profile_rd: bool,
    /// Protection-parameter override for ablation studies.
    pub protection: Option<ProtectionConfig>,
    /// Optional CCWS-style warp throttle (future-work ablation).
    pub warp_limit: Option<usize>,
}

impl ExperimentConfig {
    /// Baseline LRU on the 16 KB cache at full scale.
    pub fn baseline() -> Self {
        ExperimentConfig {
            policy: PolicyKind::Baseline,
            geom: CacheGeometry::fermi_l1d_16k(),
            scale: Scale::Full,
            profile_rd: false,
            protection: None,
            warp_limit: None,
        }
    }

    /// Same but with a different policy.
    pub fn with_policy(mut self, p: PolicyKind) -> Self {
        self.policy = p;
        self
    }

    /// Same but with a different L1D geometry.
    pub fn with_geom(mut self, g: CacheGeometry) -> Self {
        self.geom = g;
        self
    }
}

/// One completed run.
pub struct AppRun {
    /// Benchmark metadata.
    pub spec: BenchSpec,
    /// Simulation statistics.
    pub stats: RunStats,
    /// RD profile, if requested.
    pub rdd: Option<SharedRdd>,
}

/// Simulate one application under one configuration.
pub fn run_app(abbr: &str, cfg: ExperimentConfig) -> AppRun {
    let spec = gpu_workloads::registry::spec(abbr);
    let kernel = build(abbr, cfg.scale);
    let mut sim_cfg = SimConfig::tesla_m2090(cfg.policy).with_l1_geometry(cfg.geom);
    sim_cfg.protection_override = cfg.protection;
    sim_cfg.warp_limit = cfg.warp_limit;
    let mut gpu = Gpu::new(sim_cfg, kernel);
    let rdd = if cfg.profile_rd {
        let sink = RdProfiler::new_sink();
        for sm in 0..sim_cfg.num_sms {
            gpu.set_l1d_observer(sm, Box::new(RdProfiler::new(cfg.geom.num_sets, sink.clone())));
        }
        Some(sink)
    } else {
        None
    };
    let stats = gpu.run();
    assert!(
        stats.completed,
        "{abbr} did not complete within the cycle cap under {:?}",
        cfg.policy
    );
    AppRun { spec, stats, rdd }
}

/// Run `jobs` of (app, config) pairs in parallel, preserving input
/// order in the result.
pub fn run_many(jobs: &[(String, ExperimentConfig)]) -> Vec<AppRun> {
    let results: Vec<Mutex<Option<AppRun>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8).min(jobs.len().max(1));
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (abbr, cfg) = &jobs[i];
                *results[i].lock() = Some(run_app(abbr, *cfg));
            });
        }
    })
    .expect("experiment worker panicked");
    results.into_iter().map(|m| m.into_inner().expect("job completed")).collect()
}

/// Figure 10–13 data: every app under the four schemes (16 KB) plus the
/// 32 KB baseline-policy configuration.
pub struct PolicySuite {
    /// app → (scheme label → run).
    pub runs: HashMap<String, HashMap<&'static str, AppRun>>,
    /// Row order (Table 2 order).
    pub apps: Vec<BenchSpec>,
}

/// Label used for the 32 KB configuration column.
pub const LABEL_32K: &str = "32KB";

/// Run the full policy comparison at the given scale.
pub fn run_policy_suite(scale: Scale) -> PolicySuite {
    let apps = registry();
    let mut jobs = Vec::new();
    for spec in &apps {
        for kind in PolicyKind::ALL {
            let cfg = ExperimentConfig { scale, ..ExperimentConfig::baseline().with_policy(kind) };
            jobs.push((spec.abbr.to_string(), cfg));
        }
        let cfg32 = ExperimentConfig {
            scale,
            ..ExperimentConfig::baseline().with_geom(CacheGeometry::fermi_l1d_32k())
        };
        jobs.push((spec.abbr.to_string(), cfg32));
    }
    let mut results = run_many(&jobs).into_iter();
    let mut runs: HashMap<String, HashMap<&'static str, AppRun>> = HashMap::new();
    for spec in &apps {
        let entry = runs.entry(spec.abbr.to_string()).or_default();
        for kind in PolicyKind::ALL {
            entry.insert(kind.label(), results.next().unwrap());
        }
        entry.insert(LABEL_32K, results.next().unwrap());
    }
    PolicySuite { runs, apps }
}

/// Figure 4–5 data: every app at 16/32/64 KB under baseline LRU.
pub struct SizeSuite {
    /// app → (capacity label → run).
    pub runs: HashMap<String, HashMap<&'static str, AppRun>>,
    /// Row order.
    pub apps: Vec<BenchSpec>,
}

/// Capacity labels for the size sweep.
pub const SIZE_LABELS: [&str; 3] = ["16KB", "32KB", "64KB"];

/// Run the cache-size sweep of Figures 4 and 5.
pub fn run_size_suite(scale: Scale) -> SizeSuite {
    let geoms = [
        CacheGeometry::fermi_l1d_16k(),
        CacheGeometry::fermi_l1d_32k(),
        CacheGeometry::fermi_l1d_64k(),
    ];
    let apps = registry();
    let mut jobs = Vec::new();
    for spec in &apps {
        for g in geoms {
            let cfg = ExperimentConfig { scale, ..ExperimentConfig::baseline().with_geom(g) };
            jobs.push((spec.abbr.to_string(), cfg));
        }
    }
    let mut results = run_many(&jobs).into_iter();
    let mut runs: HashMap<String, HashMap<&'static str, AppRun>> = HashMap::new();
    for spec in &apps {
        let entry = runs.entry(spec.abbr.to_string()).or_default();
        for label in SIZE_LABELS {
            entry.insert(label, results.next().unwrap());
        }
    }
    SizeSuite { runs, apps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_app_completes_at_tiny_scale() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
        let run = run_app("KM", cfg);
        assert!(run.stats.completed);
        assert!(run.stats.thread_insns > 0);
    }

    #[test]
    fn rd_profiling_collects_data() {
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            profile_rd: true,
            ..ExperimentConfig::baseline()
        };
        let run = run_app("SS", cfg);
        let sink = run.rdd.expect("profile requested");
        let prof = sink.lock();
        assert!(prof.overall.total() + prof.overall.compulsory > 0);
    }

    #[test]
    fn run_many_preserves_order() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
        let jobs = vec![("KM".to_string(), cfg), ("MM".to_string(), cfg), ("SS".to_string(), cfg)];
        let out = run_many(&jobs);
        assert_eq!(out[0].spec.abbr, "KM");
        assert_eq!(out[1].spec.abbr, "MM");
        assert_eq!(out[2].spec.abbr, "SS");
    }
}
