//! SMARTS confidence-interval estimators for sampled runs.
//!
//! A sampled run ([`gpu_sim::SamplingReport`]) yields one
//! [`gpu_sim::WindowSample`] per detailed measurement window. Each
//! per-window ratio (IPC, MPKI, hit rate, flits/kinsn) is a sample of
//! the run-wide metric; [`summarize`] turns the window population into
//! point estimates with 95% t-intervals, the same construction SMARTS
//! (Wunderlich et al., ISCA'03) uses to bound sampling error. Floats
//! live only here — the simulator reports integer counters and this
//! module is the single place they become statistics.

use gpu_sim::{SamplingReport, WindowSample};

/// Two-sided 95% critical values of Student's t for small degrees of
/// freedom; beyond 30 the normal approximation (1.96) is within 2%.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% critical value of Student's t for `df` degrees of freedom.
pub fn t95(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.96
    }
}

/// A point estimate with a symmetric 95% confidence half-width.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Sample mean over the detailed windows.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub half: f64,
}

impl Estimate {
    /// Relative CI width `half / |mean|`; infinite for a zero mean with
    /// nonzero half-width, zero when both are zero.
    pub fn rel_width(&self) -> f64 {
        if self.mean != 0.0 {
            self.half / self.mean.abs()
        } else if self.half == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    }

    /// Whether `value` lies inside the interval `mean ± half`.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half
    }
}

/// Mean and 95% t-interval over per-window ratios `num(w) / den(w)`.
///
/// Windows with a zero denominator carry no information about the
/// ratio and are skipped. `None` when no window qualifies; a single
/// window gives a degenerate interval `mean ± |mean|` (one sample says
/// nothing about variance — report full uncertainty, not false
/// precision).
fn ratio_estimate(
    windows: &[WindowSample],
    num: impl Fn(&WindowSample) -> f64,
    den: impl Fn(&WindowSample) -> f64,
) -> Option<Estimate> {
    let samples: Vec<f64> = windows
        .iter()
        .filter(|w| den(w) > 0.0)
        .map(|w| num(w) / den(w))
        .collect();
    let n = samples.len();
    if n == 0 {
        return None;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(Estimate { mean, half: mean.abs() });
    }
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
    let half = t95(n - 1) * (var / n as f64).sqrt();
    Some(Estimate { mean, half })
}

/// The metrics a sampled run estimates, with the bookkeeping needed to
/// report how much of the run was actually simulated in detail.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingSummary {
    /// Number of detailed measurement windows.
    pub windows: u64,
    /// Cycles spent in detailed (timed) simulation, warm-up included.
    pub detailed_cycles: u64,
    /// Cycles covered by functional fast-forward.
    pub ff_cycles: u64,
    /// Warp instructions executed functionally during fast-forward.
    pub ff_insns: u64,
    /// Warp instructions per cycle.
    pub ipc: Option<Estimate>,
    /// L1D misses per kilo-(warp)-instruction.
    pub mpki: Option<Estimate>,
    /// L1D hit rate in [0, 1].
    pub hit_rate: Option<Estimate>,
    /// Interconnect flits per kilo-(warp)-instruction.
    pub flits_per_kinsn: Option<Estimate>,
}

impl SamplingSummary {
    /// Fraction of the run's cycles simulated in detail (timed), in
    /// [0, 1]; 1.0 for a degenerate run that never fast-forwarded.
    pub fn sampled_fraction(&self) -> f64 {
        let total = self.detailed_cycles + self.ff_cycles;
        if total == 0 {
            1.0
        } else {
            self.detailed_cycles as f64 / total as f64
        }
    }

    /// The widest relative CI across the estimated metrics — the
    /// honest "how uncertain is this run" number for telemetry.
    pub fn ci_rel_width(&self) -> f64 {
        [self.ipc, self.mpki, self.hit_rate, self.flits_per_kinsn]
            .iter()
            .flatten()
            .map(Estimate::rel_width)
            .fold(0.0, f64::max)
    }
}

/// Reduce a [`SamplingReport`] to per-metric estimates.
pub fn summarize(report: &SamplingReport) -> SamplingSummary {
    let w = &report.windows;
    let insns = |s: &WindowSample| s.warp_insns as f64;
    SamplingSummary {
        windows: w.len() as u64,
        detailed_cycles: report.detailed_cycles,
        ff_cycles: report.ff_cycles,
        ff_insns: report.ff_insns,
        ipc: ratio_estimate(w, insns, |s| s.cycles as f64),
        mpki: ratio_estimate(w, |s| 1000.0 * (s.accesses - s.hits) as f64, insns),
        hit_rate: ratio_estimate(w, |s| s.hits as f64, |s| s.accesses as f64),
        flits_per_kinsn: ratio_estimate(w, |s| 1000.0 * s.flits as f64, insns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(cycles: u64, warp_insns: u64, accesses: u64, hits: u64, flits: u64) -> WindowSample {
        WindowSample { cycles, warp_insns, thread_insns: warp_insns * 32, accesses, hits, flits }
    }

    #[test]
    fn t95_matches_the_table_and_tail() {
        assert!(t95(0).is_infinite());
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!((t95(30) - 2.042).abs() < 1e-9);
        assert!((t95(31) - 1.96).abs() < 1e-9);
        assert!((t95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn identical_windows_give_a_zero_width_interval() {
        let report = SamplingReport {
            windows: vec![win(100, 200, 50, 40, 30); 4],
            detailed_cycles: 400,
            ff_cycles: 1200,
            ff_insns: 2400,
        };
        let s = summarize(&report);
        let ipc = s.ipc.unwrap();
        assert!((ipc.mean - 2.0).abs() < 1e-12);
        assert!(ipc.half < 1e-12);
        assert!((s.hit_rate.unwrap().mean - 0.8).abs() < 1e-12);
        assert!((s.mpki.unwrap().mean - 50.0).abs() < 1e-12);
        assert!(s.ci_rel_width() < 1e-12);
        assert!((s.sampled_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_window_reports_full_uncertainty() {
        let report = SamplingReport {
            windows: vec![win(100, 150, 10, 5, 8)],
            detailed_cycles: 100,
            ff_cycles: 0,
            ff_insns: 0,
        };
        let s = summarize(&report);
        let ipc = s.ipc.unwrap();
        assert!((ipc.half - ipc.mean.abs()).abs() < 1e-12, "one sample -> half == |mean|");
        assert!((s.ci_rel_width() - 1.0).abs() < 1e-12);
        assert!((s.sampled_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_windows_are_skipped() {
        // Second window saw no L1D accesses: it cannot inform the hit
        // rate, but still counts for IPC.
        let report = SamplingReport {
            windows: vec![win(100, 200, 50, 40, 30), win(100, 200, 0, 0, 30)],
            detailed_cycles: 200,
            ff_cycles: 0,
            ff_insns: 0,
        };
        let s = summarize(&report);
        assert!((s.hit_rate.unwrap().mean - 0.8).abs() < 1e-12);
        assert!((s.ipc.unwrap().mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_windows_means_no_estimates() {
        let s = summarize(&SamplingReport::default());
        assert!(s.ipc.is_none() && s.mpki.is_none());
        assert_eq!(s.ci_rel_width(), 0.0);
    }

    #[test]
    fn interval_contains_the_truth_for_a_noisy_population() {
        let windows: Vec<WindowSample> =
            (0..8).map(|i| win(100 + i * 3, 200 + i * 5, 50, 40 + i % 3, 30)).collect();
        let report =
            SamplingReport { windows, detailed_cycles: 800, ff_cycles: 0, ff_insns: 0 };
        let s = summarize(&report);
        let ipc = s.ipc.unwrap();
        assert!(ipc.half > 0.0);
        assert!(ipc.contains(ipc.mean));
        assert!(!ipc.contains(ipc.mean + 2.0 * ipc.half + 1e-9));
        assert!(ipc.rel_width() > 0.0 && ipc.rel_width() < 1.0);
    }
}
