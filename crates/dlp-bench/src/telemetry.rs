//! Machine-readable performance telemetry for figure regeneration.
//!
//! Every simulation job the harness executes (or satisfies from the
//! run cache) appends one record to a process-wide collector; named
//! sweeps add aggregate records. [`write_json`] renders the collected
//! data as `BENCH_figures.json` so CI and the experiment docs can track
//! simulator throughput (wall time, simulated cycles per second, cache
//! hit counts) across revisions without scraping stdout.
//!
//! The JSON is hand-rolled: the workspace's vendored serde stack has no
//! `serde_json`, and the schema is flat enough that an escaper plus two
//! array writers keep the format honest.

use parking_lot::Mutex;
use std::time::Instant;

/// One simulation job, timed.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Benchmark abbreviation ("BFS").
    pub app: String,
    /// Scheme label ("DLP").
    pub policy: String,
    /// Cache geometry label ("16KB/4-way").
    pub geom: String,
    /// Workload scale ("Tiny" / "Full").
    pub scale: String,
    /// True when the run cache supplied the result without simulating.
    pub cached: bool,
    /// True when the result came from the persistent on-disk store
    /// (implies `cached`; a hit from the in-memory run cache has
    /// `cached` set and `store_hit` clear).
    pub store_hit: bool,
    /// Wall-clock milliseconds spent producing the result.
    pub wall_ms: f64,
    /// Simulated core cycles of the result (0 for failed jobs).
    pub sim_cycles: u64,
    /// Cycles the simulator actually stepped through one at a time;
    /// `sim_cycles - ticked_cycles` is what the cycle-leap event core
    /// skipped. Equals `sim_cycles` in reference (tick-every-cycle)
    /// mode, 0 for failed jobs.
    pub ticked_cycles: u64,
    /// Detailed measurement windows of a sampled run (schema v5);
    /// 0 for exact runs.
    pub windows: u64,
    /// Fraction of the run's cycles simulated in detail; 1.0 for exact
    /// runs (everything was detailed).
    pub sampled_fraction: f64,
    /// Widest relative 95% CI across the run's estimated metrics;
    /// 0.0 for exact runs (nothing was estimated).
    pub ci_rel_width: f64,
    /// Times a 7-bit instruction-ID hash wrapped (schema v6): distinct
    /// PCs aliasing to one PDPT/VTA slot. 0 for the built-in apps
    /// (their mem PCs fit 7 bits); nonzero under trace ingestion.
    pub insn_id_wraps: u64,
    /// PDPT replacement evictions under DLP (schema v6) — pressure on
    /// the 64-entry table, the scale axis's aliasing signal.
    pub pdpt_evict_pressure: u64,
    /// High-water mark of trace bytes resident in any single warp's
    /// stream (schema v6). O(1) per warp under streaming regardless of
    /// scale factor — the bound the scale-smoke CI job asserts.
    pub peak_warp_trace_bytes: u64,
    /// Sharded-engine telemetry (schema v4).
    pub shard: ShardRecord,
}

/// Per-job telemetry from the sharded lock-step engine (schema v4).
/// All-zero/empty when the job ran on the classic sequential engine,
/// was served from a cache, or failed — no engine ran, so there is
/// nothing to report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardRecord {
    /// Shard count the job was configured with (`DLP_SHARDS`, forced
    /// to 1 for profiled jobs). The engine may still have run
    /// sequentially — `per_shard_ticked` is empty in that case.
    pub shards: u64,
    /// Epoch (barrier round) length upper bound in core cycles.
    pub epoch_cycles: u64,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Shard-rounds in which a shard had no event to step — it paid
    /// the barrier without doing work (the load-imbalance signal).
    pub barrier_stalls: u64,
    /// Misspeculation restarts (rounds re-run sequentially).
    pub restarts: u64,
    /// Cycles each shard stepped one at a time (index = shard).
    pub per_shard_ticked: Vec<u64>,
}

impl JobRecord {
    /// Simulated cycles per wall-clock second (0 when no time elapsed,
    /// e.g. a cache hit).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / (self.wall_ms / 1000.0)
        }
    }

    /// Fraction of simulated cycles the cycle-leap event core skipped
    /// (0.0 when nothing was skipped or nothing was simulated).
    pub fn leap_efficiency(&self) -> f64 {
        if self.sim_cycles == 0 {
            0.0
        } else {
            1.0 - self.ticked_cycles as f64 / self.sim_cycles as f64
        }
    }
}

/// Aggregate record for one named sweep (a `run_policy_suite` call, a
/// whole `figures all` invocation, ...).
#[derive(Clone, Debug)]
pub struct SweepRecord {
    /// Sweep name ("policy_suite", "figures all", ...).
    pub name: String,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
    /// Jobs the sweep asked for.
    pub jobs: usize,
    /// Jobs satisfied by the run cache.
    pub cached: usize,
    /// Subset of `cached` served from the persistent on-disk store.
    pub store_hits: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Total simulated cycles across the sweep's jobs.
    pub sim_cycles: u64,
    /// Total cycles actually stepped (see [`JobRecord::ticked_cycles`]).
    pub ticked_cycles: u64,
}

/// Snapshot of the persistent store's health counters, recorded once
/// per process before rendering (a plain-u64 mirror of
/// `dlp_store::StoreCounters`, kept local so telemetry stays
/// decoupled from the store crate's types).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreRecord {
    /// Entries served after verification.
    pub hits: u64,
    /// Lookups with no usable entry.
    pub misses: u64,
    /// Entries written.
    pub puts: u64,
    /// Corrupt entries detected, moved to quarantine and recomputed.
    pub quarantined: u64,
    /// Unjournaled entries adopted at open.
    pub adopted: u64,
    /// Write-path faults injected by an active `DLP_STORE_FAULT`
    /// campaign.
    pub faults_injected: u64,
}

#[derive(Default)]
struct Collector {
    jobs: Vec<JobRecord>,
    sweeps: Vec<SweepRecord>,
    store: Option<StoreRecord>,
}

fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> R {
    static COLLECTOR: std::sync::OnceLock<Mutex<Collector>> = std::sync::OnceLock::new();
    let mut guard = COLLECTOR.get_or_init(|| Mutex::new(Collector::default())).lock();
    f(&mut guard)
}

/// Append one job record.
pub fn record_job(job: JobRecord) {
    with_collector(|c| c.jobs.push(job));
}

/// Append one sweep record.
pub fn record_sweep(sweep: SweepRecord) {
    with_collector(|c| c.sweeps.push(sweep));
}

/// Record (or update) the store-health snapshot rendered in the JSON.
pub fn record_store(store: StoreRecord) {
    with_collector(|c| c.store = Some(store));
}

/// Time `f` as a named sweep, aggregating the job records it produces.
pub fn sweep<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let before = with_collector(|c| c.jobs.len());
    let start = Instant::now();
    let out = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let (jobs, cached, store_hits, failed, sim_cycles, ticked_cycles) = with_collector(|c| {
        let new = &c.jobs[before..];
        (
            new.len(),
            new.iter().filter(|j| j.cached).count(),
            new.iter().filter(|j| j.store_hit).count(),
            new.iter().filter(|j| !j.cached && j.sim_cycles == 0).count(),
            new.iter().map(|j| j.sim_cycles).sum(),
            new.iter().map(|j| j.ticked_cycles).sum(),
        )
    });
    record_sweep(SweepRecord {
        name: name.to_string(),
        wall_ms,
        jobs,
        cached,
        store_hits,
        failed,
        sim_cycles,
        ticked_cycles,
    });
    out
}

/// Number of job records collected so far (tests, progress reports).
pub fn jobs_recorded() -> usize {
    with_collector(|c| c.jobs.len())
}

/// Copy of every job record collected so far.
pub fn jobs_snapshot() -> Vec<JobRecord> {
    with_collector(|c| c.jobs.clone())
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Fixed-point float rendering: JSON numbers must not come out as
/// `inf`/`NaN`, and 3 decimals is plenty for milliseconds.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Render everything collected so far as a JSON document.
pub fn render_json() -> String {
    with_collector(|c| {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"dlp-bench/figures-telemetry/v6\",\n");
        let total_ms: f64 = c.sweeps.iter().map(|s| s.wall_ms).sum();
        let total_cycles: u64 = c.jobs.iter().map(|j| j.sim_cycles).sum();
        let total_ticked: u64 = c.jobs.iter().map(|j| j.ticked_cycles).sum();
        let efficiency = if total_cycles == 0 {
            0.0
        } else {
            1.0 - total_ticked as f64 / total_cycles as f64
        };
        out.push_str(&format!("  \"total_sweep_wall_ms\": {},\n", num(total_ms)));
        out.push_str(&format!("  \"total_sim_cycles\": {total_cycles},\n"));
        out.push_str(&format!("  \"total_ticked_cycles\": {total_ticked},\n"));
        out.push_str(&format!("  \"leap_efficiency\": {},\n", num(efficiency)));
        // Schema-stable store section: a run without a persistent
        // store renders the same shape with zeroed counters, so JSON
        // consumers never need a null branch.
        let store = c.store.unwrap_or_default();
        out.push_str(&format!(
            "  \"store\": {{\"hits\": {}, \"misses\": {}, \"puts\": {}, \"quarantined\": {}, \"adopted\": {}, \"faults_injected\": {}}},\n",
            store.hits,
            store.misses,
            store.puts,
            store.quarantined,
            store.adopted,
            store.faults_injected,
        ));
        out.push_str("  \"sweeps\": [\n");
        for (i, s) in c.sweeps.iter().enumerate() {
            let cps = if s.wall_ms > 0.0 { s.sim_cycles as f64 / (s.wall_ms / 1000.0) } else { 0.0 };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {}, \"jobs\": {}, \"cached\": {}, \"store_hits\": {}, \"failed\": {}, \"sim_cycles\": {}, \"ticked_cycles\": {}, \"cycles_per_sec\": {}}}{}\n",
                esc(&s.name),
                num(s.wall_ms),
                s.jobs,
                s.cached,
                s.store_hits,
                s.failed,
                s.sim_cycles,
                s.ticked_cycles,
                num(cps),
                if i + 1 < c.sweeps.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"jobs\": [\n");
        for (i, j) in c.jobs.iter().enumerate() {
            let ticked_list = j
                .shard
                .per_shard_ticked
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"app\": \"{}\", \"policy\": \"{}\", \"geom\": \"{}\", \"scale\": \"{}\", \"cached\": {}, \"store_hit\": {}, \"wall_ms\": {}, \"sim_cycles\": {}, \"ticked_cycles\": {}, \"cycles_per_sec\": {}, \"leap_efficiency\": {}, \"windows\": {}, \"sampled_fraction\": {}, \"ci_rel_width\": {}, \"insn_id_wraps\": {}, \"pdpt_evict_pressure\": {}, \"peak_warp_trace_bytes\": {}, \"shards\": {}, \"epoch_cycles\": {}, \"rounds\": {}, \"barrier_stalls\": {}, \"restarts\": {}, \"per_shard_ticked\": [{}]}}{}\n",
                esc(&j.app),
                esc(&j.policy),
                esc(&j.geom),
                esc(&j.scale),
                j.cached,
                j.store_hit,
                num(j.wall_ms),
                j.sim_cycles,
                j.ticked_cycles,
                num(j.cycles_per_sec()),
                num(j.leap_efficiency()),
                j.windows,
                num(j.sampled_fraction),
                num(j.ci_rel_width),
                j.insn_id_wraps,
                j.pdpt_evict_pressure,
                j.peak_warp_trace_bytes,
                j.shard.shards,
                j.shard.epoch_cycles,
                j.shard.rounds,
                j.shard.barrier_stalls,
                j.shard.restarts,
                ticked_list,
                if i + 1 < c.jobs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    })
}

/// Write the collected telemetry to `path`.
pub fn write_json(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_record_computes_throughput() {
        let j = JobRecord {
            app: "KM".into(),
            policy: "DLP".into(),
            geom: "16KB/4-way".into(),
            scale: "Tiny".into(),
            cached: false,
            store_hit: false,
            wall_ms: 500.0,
            sim_cycles: 1_000_000,
            ticked_cycles: 250_000,
            windows: 0,
            sampled_fraction: 1.0,
            ci_rel_width: 0.0,
            insn_id_wraps: 0,
            pdpt_evict_pressure: 0,
            peak_warp_trace_bytes: 0,
            shard: ShardRecord::default(),
        };
        assert!((j.cycles_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert!((j.leap_efficiency() - 0.75).abs() < 1e-9, "3/4 of the cycles were leapt");
        let cached = JobRecord { cached: true, wall_ms: 0.0, ..j.clone() };
        assert_eq!(cached.cycles_per_sec(), 0.0);
        let failed = JobRecord { sim_cycles: 0, ticked_cycles: 0, ..cached };
        assert_eq!(failed.leap_efficiency(), 0.0, "no cycles -> no efficiency claim");
    }

    #[test]
    fn render_escapes_and_structures() {
        record_job(JobRecord {
            app: "A\"pp".into(),
            policy: "base\\line".into(),
            geom: "16KB/4-way".into(),
            scale: "Tiny".into(),
            cached: true,
            store_hit: true,
            wall_ms: 1.25,
            sim_cycles: 42,
            ticked_cycles: 7,
            windows: 5,
            sampled_fraction: 0.125,
            ci_rel_width: 0.0175,
            insn_id_wraps: 3,
            pdpt_evict_pressure: 17,
            peak_warp_trace_bytes: 4096,
            shard: ShardRecord {
                shards: 4,
                epoch_cycles: 41,
                rounds: 9,
                barrier_stalls: 2,
                restarts: 0,
                per_shard_ticked: vec![3, 1, 2, 1],
            },
        });
        let out = sweep("test_sweep", render_json);
        assert!(out.contains("\\\"pp"), "{out}");
        assert!(out.contains("base\\\\line"), "{out}");
        assert!(out.contains("\"schema\": \"dlp-bench/figures-telemetry/v6\""));
        assert!(out.contains("\"ticked_cycles\": 7"), "{out}");
        assert!(out.contains("\"store_hit\": true"), "{out}");
        assert!(out.contains("\"windows\": 5"), "{out}");
        assert!(out.contains("\"insn_id_wraps\": 3"), "{out}");
        assert!(out.contains("\"pdpt_evict_pressure\": 17"), "{out}");
        assert!(out.contains("\"peak_warp_trace_bytes\": 4096"), "{out}");
        assert!(out.contains("\"sampled_fraction\": 0.125"), "{out}");
        assert!(out.contains("\"ci_rel_width\": 0.018"), "3 decimals: {out}");
        assert!(!out.contains("\"store\": null"), "store section is always an object: {out}");
        assert!(out.contains("\"store\": {\"hits\": "), "{out}");
        assert!(out.contains("\"shards\": 4"), "{out}");
        assert!(out.contains("\"epoch_cycles\": 41"), "{out}");
        assert!(out.contains("\"barrier_stalls\": 2"), "{out}");
        assert!(out.contains("\"per_shard_ticked\": [3, 1, 2, 1]"), "{out}");
        let out2 = render_json();
        assert!(out2.contains("\"name\": \"test_sweep\""), "{out2}");
        assert!(out2.contains("\"store_hits\":"), "sweep rows carry the field: {out2}");
    }

    #[test]
    fn store_record_renders_when_present() {
        // The collector is process-wide; without a record the store
        // section is a zeroed object, after one it carries the counts.
        record_store(StoreRecord { hits: 3, puts: 2, quarantined: 1, ..Default::default() });
        let out = render_json();
        assert!(out.contains("\"store\": {\"hits\": 3"), "{out}");
        assert!(out.contains("\"quarantined\": 1"), "{out}");
    }
}
