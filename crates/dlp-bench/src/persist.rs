//! Persistence of completed runs: the bridge between the in-memory
//! run cache and the `dlp-store` crash-safe on-disk store.
//!
//! The store is keyed by `(config digest, code digest)`:
//!
//! * the **config digest** fingerprints the full `(app, ExperimentConfig)`
//!   pair — two equal digests mean the simulator would produce
//!   byte-identical statistics (it is deterministic);
//! * the **code digest** ties every entry to the fidelity generation
//!   that produced it: the golden statistics digest the determinism
//!   suite pins, XORed with this module's codec version. A fidelity
//!   change or a codec change silently invalidates the whole store —
//!   stale entries simply stop matching and are recomputed.
//!
//! The payload codec is hand-rolled little-endian (the vendored serde
//! stack has no real serialization): every field of [`AppRun`] worth
//! keeping is written explicitly, and `decode_run` re-validates as it
//! reads. A decode failure is treated as a miss, never an error — the
//! simulator is always able to recompute.
//!
//! Env hooks (read once per process, like `DLP_FORCE_FAIL`):
//!
//! * `DLP_STORE_DIR` — root directory of the store; unset = no
//!   persistence (the in-memory cache still works).
//! * `DLP_STORE_FAULT` — seeded write-path fault campaign,
//!   `<kind>[:<seed>[:<rate_ppm>[:<max_faults>]]]` (see
//!   [`StoreFaultConfig::parse`]).

use crate::estimate::{Estimate, SamplingSummary};
use crate::harness::{AppRun, ExperimentConfig};
use dlp_core::geometry::IndexFunction;
use dlp_core::{CacheGeometry, PolicyKind, ProtectionConfig};
use dlp_store::{fnv1a, Store, StoreCounters, StoreFaultConfig, StoreKey};
use gpu_sim::{RunStats, SamplingConfig};
use gpu_workloads::Scale;
use parking_lot::Mutex;
use rd_tools::{RdProfiler, RddHistogram};
use std::path::Path;
use std::sync::OnceLock;

/// Environment variable naming the store's root directory.
pub const STORE_DIR_ENV: &str = "DLP_STORE_DIR";
/// Environment variable enabling write-path fault injection.
pub const STORE_FAULT_ENV: &str = "DLP_STORE_FAULT";

/// Version of the payload codec below. Bump on any layout change —
/// the bump rolls [`code_digest`] and orphans every existing entry.
/// v2: sampling config in configs, sampling summary in runs.
/// v3: `Scale::Scaled` config tag; observability stats (insn-id wraps,
/// PDPT evict pressure, peak warp-trace residency) in runs.
const CODEC_VERSION: u64 = 3;

/// The golden fidelity digest pinned by
/// `tests/determinism.rs::fig10_policy_suite_digest_is_golden`. Any
/// simulator change that moves the statistics moves this constant (the
/// test forces the update), which in turn retires all stored results
/// computed by the previous generation.
const FIDELITY_DIGEST: u64 = 0x4e25_bd31_86d4_d866;

/// The code half of every [`StoreKey`] this build writes.
pub fn code_digest() -> u64 {
    FIDELITY_DIGEST ^ CODEC_VERSION
}

/// The config half of the key: FNV-1a over the app abbreviation and
/// the `Debug` rendering of the full configuration (which covers every
/// field, including protection overrides and warp limits).
pub fn config_digest(abbr: &str, cfg: &ExperimentConfig) -> u64 {
    fnv1a(format!("{abbr}|{cfg:?}").as_bytes())
}

/// The store key for one job.
pub fn store_key(abbr: &str, cfg: &ExperimentConfig) -> StoreKey {
    StoreKey { config: config_digest(abbr, cfg), code: code_digest() }
}

enum StoreState {
    /// No store configured: persistence is a no-op.
    Off,
    On(Mutex<Store>),
    /// The store directory was configured but could not be opened (or a
    /// fault spec failed to parse). Remembered so the daemon can answer
    /// "store poisoned" instead of limping along without persistence.
    Poisoned(String),
}

fn store_cell() -> &'static OnceLock<StoreState> {
    static STORE: OnceLock<StoreState> = OnceLock::new();
    &STORE
}

fn open_store(dir: &Path, fault_spec: Option<&str>) -> StoreState {
    let fault = match fault_spec {
        None => None,
        Some(spec) => match StoreFaultConfig::parse(spec) {
            Ok(cfg) => Some(cfg),
            Err(e) => return StoreState::Poisoned(format!("{STORE_FAULT_ENV}: {e}")),
        },
    };
    match Store::open_with_faults(dir, fault) {
        Ok(s) => StoreState::On(Mutex::new(s)),
        Err(e) => StoreState::Poisoned(e.to_string()),
    }
}

/// Explicitly initialize the store (the daemon does this at startup so
/// an unopenable store is a startup-visible condition, not a silent
/// fallback). Returns an error if persistence was already initialized
/// — the store binding is process-wide and permanent.
pub fn init_store(dir: &Path, fault_spec: Option<&str>) -> Result<(), String> {
    let mut called = false;
    let state = store_cell().get_or_init(|| {
        called = true;
        open_store(dir, fault_spec)
    });
    if !called {
        return Err("persistence already initialized for this process".to_string());
    }
    match state {
        StoreState::Poisoned(e) => Err(e.clone()),
        _ => Ok(()),
    }
}

/// The lazily-initialized store state: explicit [`init_store`] wins,
/// otherwise `DLP_STORE_DIR` / `DLP_STORE_FAULT` are read once.
fn store_state() -> &'static StoreState {
    store_cell().get_or_init(|| match std::env::var(STORE_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => {
            let fault = std::env::var(STORE_FAULT_ENV).ok();
            open_store(Path::new(&dir), fault.as_deref())
        }
        _ => StoreState::Off,
    })
}

/// Is a store active for this process?
pub fn store_active() -> bool {
    matches!(store_state(), StoreState::On(_))
}

/// The poison message, if the configured store failed to open.
pub fn store_poisoned() -> Option<String> {
    match store_state() {
        StoreState::Poisoned(e) => Some(e.clone()),
        _ => None,
    }
}

/// Health counters of the active store, if any.
pub fn store_counters() -> Option<StoreCounters> {
    match store_state() {
        StoreState::On(s) => Some(s.lock().counters()),
        _ => None,
    }
}

/// Fetch a completed run from the store. `None` on: no store, miss,
/// quarantined corruption, decode failure, or store IO error (reads
/// must never make a recomputable job fail).
pub fn load(abbr: &str, cfg: &ExperimentConfig) -> Option<AppRun> {
    let StoreState::On(store) = store_state() else { return None };
    let bytes = match store.lock().get(&store_key(abbr, cfg)) {
        Ok(b) => b?,
        Err(e) => {
            eprintln!("warning: {e}");
            return None;
        }
    };
    decode_run(abbr, &bytes)
}

/// Persist a completed run. Failures are reported but never propagated:
/// a job that simulated successfully has succeeded, whatever the disk
/// thinks.
pub fn save(abbr: &str, cfg: &ExperimentConfig, run: &AppRun) {
    let StoreState::On(store) = store_state() else { return };
    let payload = encode_run(abbr, run);
    if let Err(e) = store.lock().put(&store_key(abbr, cfg), &payload) {
        eprintln!("warning: {e}");
    }
}

// ---------------------------------------------------------------------
// Codec. Little-endian u64s throughout; strings as length + UTF-8.
// ---------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over an encoded payload; every read is bounds-checked so a
/// truncated or foreign payload decodes to `None`, never panics.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u64(&mut self) -> Option<u64> {
        let end = self.at.checked_add(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(self.bytes.get(self.at..end)?);
        self.at = end;
        Some(u64::from_le_bytes(b))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn flag(&mut self) -> Option<bool> {
        match self.u64()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        let end = self.at.checked_add(len)?;
        let s = std::str::from_utf8(self.bytes.get(self.at..end)?).ok()?;
        self.at = end;
        Some(s.to_string())
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn encode_geometry(out: &mut Vec<u8>, g: &CacheGeometry) {
    push_u64(out, g.line_bytes);
    push_u64(out, g.num_sets as u64);
    push_u64(out, g.assoc as u64);
    push_u64(out, match g.index_fn {
        IndexFunction::Linear => 0,
        IndexFunction::Hash => 1,
    });
}

fn decode_geometry(c: &mut Cursor) -> Option<CacheGeometry> {
    Some(CacheGeometry {
        line_bytes: c.u64()?,
        num_sets: c.usize()?,
        assoc: c.usize()?,
        index_fn: match c.u64()? {
            0 => IndexFunction::Linear,
            1 => IndexFunction::Hash,
            _ => return None,
        },
    })
}

fn policy_tag(p: PolicyKind) -> u64 {
    match p {
        PolicyKind::Baseline => 0,
        PolicyKind::StallBypass => 1,
        PolicyKind::GlobalProtection => 2,
        PolicyKind::Dlp => 3,
    }
}

fn policy_from_tag(t: u64) -> Option<PolicyKind> {
    Some(match t {
        0 => PolicyKind::Baseline,
        1 => PolicyKind::StallBypass,
        2 => PolicyKind::GlobalProtection,
        3 => PolicyKind::Dlp,
        _ => return None,
    })
}

/// Encode a full experiment configuration (the `dlp-sweepd` wire form;
/// the store key uses [`config_digest`] instead).
pub fn encode_config(cfg: &ExperimentConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 * 8);
    push_u64(&mut out, policy_tag(cfg.policy));
    encode_geometry(&mut out, &cfg.geom);
    match cfg.scale {
        Scale::Tiny => push_u64(&mut out, 0),
        Scale::Full => push_u64(&mut out, 1),
        Scale::Scaled(f) => {
            push_u64(&mut out, 2);
            push_u64(&mut out, f as u64);
        }
    }
    push_u64(&mut out, cfg.profile_rd as u64);
    match &cfg.protection {
        None => push_u64(&mut out, 0),
        Some(p) => {
            push_u64(&mut out, 1);
            encode_geometry(&mut out, &p.geom);
            push_u64(&mut out, p.vta_assoc as u64);
            push_u64(&mut out, p.sample_period as u64);
            push_u64(&mut out, p.max_pd as u64);
            push_u64(&mut out, p.step_comparison as u64);
            push_u64(&mut out, p.decrease_step as u64);
        }
    }
    match cfg.warp_limit {
        None => push_u64(&mut out, 0),
        Some(w) => {
            push_u64(&mut out, 1);
            push_u64(&mut out, w as u64);
        }
    }
    match cfg.sampling {
        None => push_u64(&mut out, 0),
        Some(sc) => {
            push_u64(&mut out, 1);
            push_u64(&mut out, sc.detail);
            push_u64(&mut out, sc.skip);
            push_u64(&mut out, sc.warmup);
            push_u64(&mut out, sc.seed);
        }
    }
    out
}

/// Decode [`encode_config`]'s output (`None` on any malformation).
pub fn decode_config(bytes: &[u8]) -> Option<ExperimentConfig> {
    let mut c = Cursor { bytes, at: 0 };
    let cfg = decode_config_at(&mut c)?;
    c.done().then_some(cfg)
}

fn decode_config_at(c: &mut Cursor) -> Option<ExperimentConfig> {
    let policy = policy_from_tag(c.u64()?)?;
    let geom = decode_geometry(c)?;
    let scale = match c.u64()? {
        0 => Scale::Tiny,
        1 => Scale::Full,
        2 => Scale::Scaled(u32::try_from(c.u64()?).ok()?),
        _ => return None,
    };
    let profile_rd = c.flag()?;
    let protection = if c.flag()? {
        Some(ProtectionConfig {
            geom: decode_geometry(c)?,
            vta_assoc: c.usize()?,
            sample_period: u32::try_from(c.u64()?).ok()?,
            max_pd: u8::try_from(c.u64()?).ok()?,
            step_comparison: c.flag()?,
            decrease_step: u8::try_from(c.u64()?).ok()?,
        })
    } else {
        None
    };
    let warp_limit = if c.flag()? { Some(c.usize()?) } else { None };
    let sampling = if c.flag()? {
        Some(SamplingConfig {
            detail: c.u64()?,
            skip: c.u64()?,
            warmup: c.u64()?,
            seed: c.u64()?,
        })
    } else {
        None
    };
    Some(ExperimentConfig { policy, geom, scale, profile_rd, protection, warp_limit, sampling })
}

fn encode_stats(out: &mut Vec<u8>, s: &RunStats) {
    push_u64(out, s.cycles);
    push_u64(out, s.thread_insns);
    push_u64(out, s.warp_insns);
    push_u64(out, s.mem_transactions);
    push_u64(out, s.completed as u64);
    for cache in [&s.l1d, &s.l2] {
        push_u64(out, cache.accesses);
        push_u64(out, cache.hits);
        push_u64(out, cache.misses_allocated);
        push_u64(out, cache.mshr_merges);
        push_u64(out, cache.bypassed_loads);
        push_u64(out, cache.bypass_fetches);
        push_u64(out, cache.bypassed_stores);
        push_u64(out, cache.evictions);
        push_u64(out, cache.dirty_evictions);
        push_u64(out, cache.compulsory_misses);
        push_u64(out, cache.stall_cycles);
        push_u64(out, cache.rejected_submits);
        push_u64(out, cache.stall_merge_full);
        push_u64(out, cache.stall_mshr_full);
        push_u64(out, cache.stall_miss_queue);
        push_u64(out, cache.stall_all_reserved);
        push_u64(out, cache.load_latency_sum);
        push_u64(out, cache.load_count);
    }
    push_u64(out, s.policy.queries);
    push_u64(out, s.policy.protected_bypasses);
    push_u64(out, s.policy.vta_hits);
    push_u64(out, s.policy.vta_insertions);
    push_u64(out, s.policy.vta_reinserted);
    push_u64(out, s.policy.samples);
    push_u64(out, s.policy.pd_increases);
    push_u64(out, s.policy.pd_decreases);
    push_u64(out, s.policy.mean_pd_milli_sum);
    push_u64(out, s.icnt.fwd_flits);
    push_u64(out, s.icnt.ret_flits);
    push_u64(out, s.icnt.rejects);
    push_u64(out, s.dram.reads);
    push_u64(out, s.dram.writes);
    push_u64(out, s.dram.row_hits);
    push_u64(out, s.dram.row_misses);
    push_u64(out, s.insn_id_wraps);
    push_u64(out, s.pdpt_evict_pressure);
    push_u64(out, s.peak_warp_trace_bytes);
}

fn decode_stats(c: &mut Cursor) -> Option<RunStats> {
    let mut s = RunStats {
        cycles: c.u64()?,
        thread_insns: c.u64()?,
        warp_insns: c.u64()?,
        mem_transactions: c.u64()?,
        completed: c.flag()?,
        ..Default::default()
    };
    for cache in [&mut s.l1d, &mut s.l2] {
        cache.accesses = c.u64()?;
        cache.hits = c.u64()?;
        cache.misses_allocated = c.u64()?;
        cache.mshr_merges = c.u64()?;
        cache.bypassed_loads = c.u64()?;
        cache.bypass_fetches = c.u64()?;
        cache.bypassed_stores = c.u64()?;
        cache.evictions = c.u64()?;
        cache.dirty_evictions = c.u64()?;
        cache.compulsory_misses = c.u64()?;
        cache.stall_cycles = c.u64()?;
        cache.rejected_submits = c.u64()?;
        cache.stall_merge_full = c.u64()?;
        cache.stall_mshr_full = c.u64()?;
        cache.stall_miss_queue = c.u64()?;
        cache.stall_all_reserved = c.u64()?;
        cache.load_latency_sum = c.u64()?;
        cache.load_count = c.u64()?;
    }
    s.policy.queries = c.u64()?;
    s.policy.protected_bypasses = c.u64()?;
    s.policy.vta_hits = c.u64()?;
    s.policy.vta_insertions = c.u64()?;
    s.policy.vta_reinserted = c.u64()?;
    s.policy.samples = c.u64()?;
    s.policy.pd_increases = c.u64()?;
    s.policy.pd_decreases = c.u64()?;
    s.policy.mean_pd_milli_sum = c.u64()?;
    s.icnt.fwd_flits = c.u64()?;
    s.icnt.ret_flits = c.u64()?;
    s.icnt.rejects = c.u64()?;
    s.dram.reads = c.u64()?;
    s.dram.writes = c.u64()?;
    s.dram.row_hits = c.u64()?;
    s.dram.row_misses = c.u64()?;
    s.insn_id_wraps = c.u64()?;
    s.pdpt_evict_pressure = c.u64()?;
    s.peak_warp_trace_bytes = c.u64()?;
    Some(s)
}

/// Floats travel as their IEEE-754 bit pattern: `to_bits`/`from_bits`
/// is exact and byte-deterministic, unlike any decimal rendering.
fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_estimate(out: &mut Vec<u8>, e: &Option<Estimate>) {
    match e {
        None => push_u64(out, 0),
        Some(e) => {
            push_u64(out, 1);
            push_f64(out, e.mean);
            push_f64(out, e.half);
        }
    }
}

fn decode_estimate(c: &mut Cursor) -> Option<Option<Estimate>> {
    if c.flag()? {
        Some(Some(Estimate { mean: f64::from_bits(c.u64()?), half: f64::from_bits(c.u64()?) }))
    } else {
        Some(None)
    }
}

fn push_sampling_summary(out: &mut Vec<u8>, s: &SamplingSummary) {
    push_u64(out, s.windows);
    push_u64(out, s.detailed_cycles);
    push_u64(out, s.ff_cycles);
    push_u64(out, s.ff_insns);
    for e in [&s.ipc, &s.mpki, &s.hit_rate, &s.flits_per_kinsn] {
        push_estimate(out, e);
    }
}

fn decode_sampling_summary(c: &mut Cursor) -> Option<SamplingSummary> {
    Some(SamplingSummary {
        windows: c.u64()?,
        detailed_cycles: c.u64()?,
        ff_cycles: c.u64()?,
        ff_insns: c.u64()?,
        ipc: decode_estimate(c)?,
        mpki: decode_estimate(c)?,
        hit_rate: decode_estimate(c)?,
        flits_per_kinsn: decode_estimate(c)?,
    })
}

fn push_histogram(out: &mut Vec<u8>, h: &RddHistogram) {
    for v in h.counts() {
        push_u64(out, v);
    }
    push_u64(out, h.compulsory);
}

fn decode_histogram(c: &mut Cursor) -> Option<RddHistogram> {
    let counts = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
    Some(RddHistogram::from_parts(counts, c.u64()?))
}

/// Encode one completed run (the store payload / wire result form).
pub fn encode_run(abbr: &str, run: &AppRun) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    push_str(&mut out, abbr);
    encode_stats(&mut out, &run.stats);
    push_u64(&mut out, run.ticked_cycles);
    match &run.rdd {
        None => push_u64(&mut out, 0),
        Some(sink) => {
            push_u64(&mut out, 1);
            let prof = sink.lock();
            push_histogram(&mut out, &prof.overall);
            // Deterministic bytes: per-PC entries in sorted PC order.
            let mut pcs: Vec<u32> = prof.per_pc.keys().copied().collect();
            pcs.sort_unstable();
            push_u64(&mut out, pcs.len() as u64);
            for pc in pcs {
                push_u64(&mut out, pc as u64);
                push_histogram(&mut out, &prof.per_pc[&pc]);
            }
        }
    }
    match &run.sampling {
        None => push_u64(&mut out, 0),
        Some(s) => {
            push_u64(&mut out, 1);
            push_sampling_summary(&mut out, s);
        }
    }
    out
}

/// True if `abbr` names a registered workload — the gate callers use
/// before harness entry points whose registry lookup panics.
pub fn known_app(abbr: &str) -> bool {
    gpu_workloads::registry().into_iter().any(|s| s.abbr == abbr)
}

/// Decode [`encode_run`]'s output, re-deriving the benchmark spec from
/// the registry. `None` on malformation or if the payload's app does
/// not match `abbr` (a misfiled entry must read as a miss).
pub fn decode_run(abbr: &str, bytes: &[u8]) -> Option<AppRun> {
    let mut c = Cursor { bytes, at: 0 };
    if c.str()? != abbr {
        return None;
    }
    let spec = gpu_workloads::registry().into_iter().find(|s| s.abbr == abbr)?;
    let stats = decode_stats(&mut c)?;
    let ticked_cycles = c.u64()?;
    let rdd = if c.flag()? {
        let sink = RdProfiler::new_sink();
        {
            let mut prof = sink.lock();
            prof.overall = decode_histogram(&mut c)?;
            let n = c.usize()?;
            for _ in 0..n {
                let pc = u32::try_from(c.u64()?).ok()?;
                prof.per_pc.insert(pc, decode_histogram(&mut c)?);
            }
        }
        Some(sink)
    } else {
        None
    };
    let sampling = if c.flag()? { Some(decode_sampling_summary(&mut c)?) } else { None };
    c.done().then_some(AppRun { spec, stats, ticked_cycles, rdd, sampling })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;

    fn sample_cfg() -> ExperimentConfig {
        ExperimentConfig {
            scale: Scale::Tiny,
            profile_rd: true,
            ..ExperimentConfig::baseline().with_policy(PolicyKind::Dlp)
        }
    }

    #[test]
    fn config_roundtrips_through_codec() {
        let cfgs = [
            ExperimentConfig::baseline(),
            sample_cfg(),
            ExperimentConfig {
                protection: Some(ProtectionConfig::paper_default(CacheGeometry::fermi_l1d_16k())),
                warp_limit: Some(12),
                ..ExperimentConfig::baseline()
            },
            ExperimentConfig {
                sampling: Some(SamplingConfig {
                    detail: 2000,
                    skip: 18_000,
                    warmup: 1000,
                    seed: 42,
                }),
                ..ExperimentConfig::baseline()
            },
        ];
        for cfg in cfgs {
            let enc = encode_config(&cfg);
            assert_eq!(decode_config(&enc), Some(cfg));
        }
        assert_eq!(decode_config(&[1, 2, 3]), None, "truncated input is rejected");
    }

    #[test]
    fn run_roundtrips_through_codec() {
        let cfg = sample_cfg();
        let run = run_app("SS", cfg).unwrap();
        let enc = encode_run("SS", &run);
        let dec = decode_run("SS", &enc).expect("decodes");
        assert_eq!(dec.stats, run.stats);
        assert_eq!(dec.ticked_cycles, run.ticked_cycles);
        assert_eq!(dec.spec.abbr, "SS");
        let (a, b) = (run.rdd.unwrap(), dec.rdd.unwrap());
        let (a, b) = (a.lock(), b.lock());
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.per_pc.len(), b.per_pc.len());
        for (pc, h) in &a.per_pc {
            assert_eq!(b.per_pc.get(pc), Some(h));
        }
    }

    #[test]
    fn sampled_run_roundtrips_through_codec() {
        let cfg = ExperimentConfig {
            scale: Scale::Tiny,
            sampling: Some(SamplingConfig { detail: 256, skip: 768, warmup: 128, seed: 1 }),
            ..ExperimentConfig::baseline()
        };
        let run = run_app("KM", cfg).unwrap();
        let summary = run.sampling.expect("sampled run carries estimates");
        let enc = encode_run("KM", &run);
        let dec = decode_run("KM", &enc).expect("decodes");
        assert_eq!(dec.sampling, Some(summary));
        assert_eq!(dec.stats, run.stats);
    }

    #[test]
    fn decode_rejects_mismatched_app_and_mutations() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
        let run = run_app("KM", cfg).unwrap();
        let enc = encode_run("KM", &run);
        assert!(decode_run("MM", &enc).is_none(), "wrong app must not decode");
        assert!(decode_run("KM", &enc[..enc.len() - 1]).is_none(), "truncation");
        let mut extended = enc.clone();
        extended.push(0);
        assert!(decode_run("KM", &extended).is_none(), "trailing garbage");
    }

    #[test]
    fn encoded_run_bytes_are_deterministic() {
        let cfg = sample_cfg();
        let run = run_app("MM", cfg).unwrap();
        assert_eq!(encode_run("MM", &run), encode_run("MM", &run));
    }

    #[test]
    fn digests_separate_configs_and_generations() {
        let base = ExperimentConfig::baseline();
        let other = ExperimentConfig::baseline().with_policy(PolicyKind::Dlp);
        assert_ne!(config_digest("KM", &base), config_digest("KM", &other));
        assert_ne!(config_digest("KM", &base), config_digest("MM", &base));
        assert_eq!(store_key("KM", &base).code, code_digest());
    }
}
