//! # dlp-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation from
//! the simulator stack. The `figures` binary prints one artifact per
//! subcommand (`fig3` … `fig13`, `tab1`, `tab2`, `overhead`,
//! `ablation`, or `all`); the library exposes the runners so
//! integration tests and Criterion benches reuse them.
//!
//! All experiment runs are deterministic; the per-(app, configuration)
//! simulations are independent and executed in parallel with scoped
//! threads. Each job runs under `catch_unwind` with one retry and
//! reports failures as [`harness::RunFailure`] values, so one bad
//! configuration cannot abort a sweep.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimate;
pub mod harness;
pub mod persist;
pub mod report;
pub mod telemetry;

pub use estimate::{summarize, Estimate, SamplingSummary};
pub use harness::{
    run_app, run_policy_suite, run_size_suite, AppRun, ExperimentConfig, FailureClass, PolicySuite,
    RunFailure, SizeSuite,
};
pub use report::{geomean, geomean_cell, normalize, Table};
