//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures <artifact> [--tiny]
//!   artifact: tab1 tab2 fig3 fig4 fig5 fig6 fig7 fig10 fig11 fig12
//!             fig13 overhead ablation all
//!             calib           (CI tuning table: hit%, bypass%, stalls, PD)
//!             inspect <APP>   (raw per-scheme statistics dump)
//!             pdpt <APP>      (DLP's learned per-instruction PDs vs RDDs)
//!             scale           (scale-axis suite: DLP_SCALE x workloads,
//!                              streamed with O(1) warp-trace memory)
//!             trace <FILE>    (replay an external trace file; malformed
//!                              traces exit 2)
//!   --tiny:   run the Tiny workload scale (smoke test)
//!
//! DLP_SCALE=10|100|1000 multiplies every Full-scale workload's
//! streamed work per warp (all artifacts; invalid values exit 2).
//! ```

use dlp_bench::harness::{
    failure_digest, run_app, run_many, run_policy_suite, run_size_suite, AppRun, ExperimentConfig,
    PolicySuite, RunFailure, SizeSuite, LABEL_32K, SIZE_LABELS,
};
use dlp_bench::report::{geomean_cell, normalize, Table};
use dlp_core::{dlp_overhead, CacheGeometry, PolicyKind, ProtectionConfig};
use gpu_workloads::{registry, AppClass, Scale};
use std::collections::HashMap;

/// The four policy columns in figure order.
const POLICY_LABELS: [&str; 4] =
    ["16KB(Baseline)", "Stall-Bypass", "Global-Protection", "DLP"];

/// Print a sweep's failure digest (if any) to stderr, so partial
/// figures come with an explanation of what is missing.
fn report_failures(digest: &str) {
    if !digest.is_empty() {
        eprintln!("-- some runs failed; affected cells are marked FAILED(reason) --");
        eprint!("{digest}");
    }
}

/// Per-(app, column) failures of a suite — what the `FAILED(reason)`
/// cells are rendered from.
type FailedMap = HashMap<String, HashMap<&'static str, RunFailure>>;

/// A compact reason for a table cell: the classifying head of the
/// error ("panic", "deadline", "hang", ...), truncated so tables stay
/// readable; the full rendering is in the stderr digest.
fn short_reason(f: &RunFailure) -> String {
    let head = f.error.split(':').next().unwrap_or("error").trim();
    let mut s: String = head.chars().take(12).collect();
    if s.is_empty() {
        s.push_str("error");
    }
    s
}

/// The cell printed where a run should have been: a sweep with
/// failures still renders every row, each missing value explicit.
fn failed_cell(failed: &FailedMap, app: &str, label: &str) -> String {
    let reason = failed
        .get(app)
        .and_then(|m| m.get(label))
        .map(short_reason)
        .unwrap_or_else(|| "missing".to_string());
    format!("FAILED({reason})")
}

/// Unwrap a single must-have run, exiting with the failure description
/// (app, policy, geometry) instead of a panic backtrace.
fn must_run(res: Result<AppRun, RunFailure>) -> AppRun {
    res.unwrap_or_else(|f| {
        eprintln!("run failed: {f}");
        std::process::exit(1);
    })
}

/// Where the telemetry JSON goes: `DLP_TELEMETRY_PATH` if set, else
/// `BENCH_figures.json` in the working directory (the repo root when
/// invoked through `cargo run`).
fn telemetry_path() -> std::path::PathBuf {
    std::env::var_os("DLP_TELEMETRY_PATH")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_figures.json"))
}

fn main() {
    // A malformed DLP_SAMPLING must fail loudly before any sweep
    // starts — silently falling back to exact simulation would turn a
    // typo into hours of unintended work.
    if let Err(e) = dlp_bench::harness::sampling_env() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    // Same discipline for the scale axis: a malformed DLP_SCALE exits 2
    // before any sweep starts.
    let scale_factor = match dlp_bench::harness::scale_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--tiny") {
        Scale::Tiny
    } else {
        match scale_factor {
            Some(f) => Scale::Scaled(f),
            None => Scale::Full,
        }
    };
    let what = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");

    dlp_bench::telemetry::sweep(&format!("figures {what}"), || run_artifact(what, scale, &args));

    // One-line observability warning: 7-bit instruction-ID wraps alias
    // distinct PCs onto shared PDPT/VTA slots. The built-in apps never
    // wrap; replayed external traces can. Stderr, so exact-mode stdout
    // stays byte-identical.
    let wraps: u64 =
        dlp_bench::telemetry::jobs_snapshot().iter().map(|j| j.insn_id_wraps).sum();
    if wraps > 0 {
        eprintln!(
            "warning: {wraps} instruction-id wrap(s) across this run's jobs — distinct PCs \
             alias in the 7-bit PDPT/VTA index; per-instruction statistics are conflated"
        );
    }

    if let Some(e) = dlp_bench::persist::store_poisoned() {
        eprintln!("store: disabled for this run: {e}");
    }
    if let Some(c) = dlp_bench::persist::store_counters() {
        dlp_bench::telemetry::record_store(dlp_bench::telemetry::StoreRecord {
            hits: c.hits,
            misses: c.misses,
            puts: c.puts,
            quarantined: c.quarantined,
            adopted: c.adopted,
            faults_injected: c.faults_injected,
        });
    }

    let path = telemetry_path();
    match dlp_bench::telemetry::write_json(&path) {
        Ok(()) => eprintln!("telemetry: {}", path.display()),
        Err(e) => eprintln!("telemetry: failed to write {}: {e}", path.display()),
    }
}

fn run_artifact(what: &str, scale: Scale, args: &[String]) {
    match what {
        "tab1" => tab1(),
        "tab2" => tab2(scale),
        "fig3" => fig3(scale),
        "fig4" => {
            let s = run_size_suite(scale);
            fig4(&s);
            report_failures(&s.failure_digest());
        }
        "fig5" => {
            let s = run_size_suite(scale);
            fig5(&s);
            report_failures(&s.failure_digest());
        }
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig10" => {
            let s = run_policy_suite(scale);
            fig10(&s);
            report_failures(&s.failure_digest());
        }
        "fig11" => {
            let s = run_policy_suite(scale);
            fig11(&s);
            report_failures(&s.failure_digest());
        }
        "fig12" => {
            let s = run_policy_suite(scale);
            fig12(&s);
            report_failures(&s.failure_digest());
        }
        "fig13" => {
            let s = run_policy_suite(scale);
            fig13(&s);
            report_failures(&s.failure_digest());
        }
        "overhead" => overhead(),
        "ablation" => ablation(scale),
        "all" => {
            tab1();
            tab2(scale);
            fig3(scale);
            fig6(scale);
            fig7(scale);
            let sizes = run_size_suite(scale);
            fig4(&sizes);
            fig5(&sizes);
            let suite = run_policy_suite(scale);
            fig10(&suite);
            fig11(&suite);
            fig12(&suite);
            fig13(&suite);
            overhead();
            report_failures(&sizes.failure_digest());
            report_failures(&suite.failure_digest());
        }
        "calib" => calib(scale),
        "pdpt" => {
            let app = args
                .iter()
                .filter(|a| !a.starts_with("--"))
                .nth(1)
                .expect("usage: figures pdpt <APP>");
            pdpt_report(app, scale);
        }
        "inspect" => {
            // figures inspect <APP> — dump raw stats for all schemes.
            let app = args
                .iter()
                .filter(|a| !a.starts_with("--"))
                .nth(1)
                .expect("usage: figures inspect <APP>");
            inspect(app, scale);
        }
        "scale" => {
            // figures scale — the streaming-engine scale axis. The
            // factor comes from DLP_SCALE (already folded into `scale`
            // by main); an unset variable defaults to 10× so the suite
            // is still meaningful standalone.
            let factor = match scale {
                Scale::Scaled(f) => f,
                _ => 10,
            };
            scale_suite(factor);
        }
        "trace" => {
            // figures trace <FILE> — replay an externally recorded
            // trace through the simulator.
            let path = args
                .iter()
                .filter(|a| !a.starts_with("--"))
                .nth(1)
                .expect("usage: figures trace <FILE>");
            trace_report(path);
        }
        other => {
            eprintln!("unknown artifact {other:?}");
            std::process::exit(2);
        }
    }
}

/// The scale-axis suite: a subset of apps at `factor`× work per warp,
/// under the two schemes the paper contrasts. The point of the table
/// is the last three columns — resident-trace memory stays O(1) per
/// warp no matter the factor (`PeakTraceB` is the high-water mark the
/// scale-smoke CI job asserts a bound on), and the wrap/eviction
/// counters surface aliasing pressure that only appears at scale.
fn scale_suite(factor: u32) {
    println!("== Scale suite: {factor}x work per warp, O(1)-memory streaming ==");
    const SCALE_APPS: [&str; 3] = ["KM", "BFS", "STR"];
    const SCHEMES: [PolicyKind; 2] = [PolicyKind::Baseline, PolicyKind::Dlp];
    let jobs: Vec<_> = SCALE_APPS
        .iter()
        .flat_map(|app| {
            SCHEMES.iter().map(move |&kind| {
                let cfg = ExperimentConfig {
                    scale: Scale::Scaled(factor),
                    ..ExperimentConfig::baseline().with_policy(kind)
                };
                (app.to_string(), cfg)
            })
        })
        .collect();
    let results = run_many(&jobs);

    let mut t = Table::new(vec![
        "App", "Scheme", "Cycles", "IPC", "Hit%", "PeakTraceB", "IdWraps", "PdptEvict",
    ]);
    let mut failures: Vec<RunFailure> = Vec::new();
    for ((app, cfg), res) in jobs.iter().zip(results) {
        match res {
            Ok(run) => {
                let s = &run.stats;
                let ipc_ci = run
                    .sampling
                    .and_then(|sm| sm.ipc)
                    .map(|e| format!("±{:.2}", e.half))
                    .unwrap_or_default();
                t.row(vec![
                    app.clone(),
                    format!("{:?}", cfg.policy),
                    s.cycles.to_string(),
                    format!("{:.2}{ipc_ci}", s.ipc()),
                    format!("{:.1}%{}", s.l1d.hit_rate() * 100.0, hit_rate_ci_suffix(&run)),
                    s.peak_warp_trace_bytes.to_string(),
                    s.insn_id_wraps.to_string(),
                    s.pdpt_evict_pressure.to_string(),
                ]);
            }
            Err(f) => {
                let mut cells = vec![
                    app.clone(),
                    format!("{:?}", cfg.policy),
                    format!("FAILED({})", short_reason(&f)),
                ];
                cells.extend(std::iter::repeat_n("-".to_string(), 5));
                t.row(cells);
                failures.push(f);
            }
        }
    }
    println!("{}", t.render());
    report_failures(&failure_digest(&failures));
}

/// Replay an externally recorded trace file (text or binary format,
/// see `gpu_workloads::trace`) under the baseline and DLP schemes. A
/// malformed or unreadable trace exits 2 before any simulation starts.
fn trace_report(path: &str) {
    use gpu_sim::{Gpu, SimConfig};
    let kernel = match gpu_workloads::TraceKernel::open(std::path::Path::new(path)) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("figures trace: {path}: {e}");
            std::process::exit(2);
        }
    };
    let grid = gpu_sim::Kernel::grid(&kernel);
    println!(
        "== Trace replay: {path} ({} recorded warp(s), grid {}x{}) ==",
        kernel.recorded_warps(),
        grid.num_ctas,
        grid.warps_per_cta,
    );
    let mut t = Table::new(vec!["Scheme", "Cycles", "IPC", "Hit%", "IdWraps", "PeakTraceB"]);
    for kind in [PolicyKind::Baseline, PolicyKind::Dlp] {
        let cfg = SimConfig::tesla_m2090(kind);
        let mut gpu = Gpu::new(cfg, Box::new(kernel.clone()));
        let stats = gpu.run().unwrap_or_else(|e| {
            eprintln!("{path} ({kind:?}) failed: {e}");
            std::process::exit(1);
        });
        if stats.insn_id_wraps > 0 {
            eprintln!(
                "warning: {path} ({kind:?}): {} instruction-id wrap(s) — distinct PCs alias \
                 in the 7-bit PDPT/VTA index; per-instruction statistics are conflated",
                stats.insn_id_wraps
            );
        }
        t.row(vec![
            format!("{kind:?}"),
            stats.cycles.to_string(),
            format!("{:.2}", stats.ipc()),
            format!("{:.1}%", stats.l1d.hit_rate() * 100.0),
            stats.insn_id_wraps.to_string(),
            stats.peak_warp_trace_bytes.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn tab1() {
    println!("== Table 1: GPU configuration ==");
    let cfg = gpu_sim::SimConfig::tesla_m2090(PolicyKind::Baseline);
    let mut t = Table::new(vec!["Parameter", "Value"]);
    t.row(vec!["Number of Cores".to_string(), cfg.num_sms.to_string()]);
    t.row(vec!["Warp Size".to_string(), cfg.warp_size.to_string()]);
    t.row(vec!["Max # of warps per core".to_string(), cfg.max_warps_per_sm.to_string()]);
    t.row(vec![
        "Warp schedulers per core".to_string(),
        format!("{}, GTO scheduling policy", cfg.schedulers_per_sm),
    ]);
    t.row(vec![
        "L1D cache".to_string(),
        format!(
            "{}KB, {}sets, {}-ways, Hash index",
            cfg.l1d.geom.capacity_bytes() / 1024,
            cfg.l1d.geom.num_sets,
            cfg.l1d.geom.assoc
        ),
    ]);
    t.row(vec!["# of memory partition".to_string(), cfg.icnt.num_partitions.to_string()]);
    t.row(vec![
        "L2 cache".to_string(),
        format!(
            "{}KB, {}sets, {}-ways, Linear index",
            cfg.partition.l2_geom.capacity_bytes() * cfg.icnt.num_partitions as u64 / 1024,
            cfg.partition.l2_geom.num_sets,
            cfg.partition.l2_geom.assoc
        ),
    ]);
    t.row(vec![
        "DRAM".to_string(),
        format!(
            "32bits bus width/partition, {} banks/partition, GDDR5 timing",
            cfg.partition.dram.num_banks
        ),
    ]);
    println!("{}", t.render());
}

fn tab2(scale: Scale) {
    println!("== Table 2: benchmark applications ==");
    let mut t = Table::new(vec!["Abbr", "Name", "Suite", "Type", "Input", "MeasuredRatio"]);
    for s in registry() {
        let k = gpu_workloads::build(s.abbr, scale);
        let ratio = gpu_workloads::registry::static_mem_ratio(k.as_ref());
        t.row(vec![
            s.abbr.to_string(),
            s.name.to_string(),
            s.suite.to_string(),
            format!("{:?}", s.class),
            s.input.to_string(),
            format!("{:.2}%", ratio * 100.0),
        ]);
    }
    println!("{}", t.render());
}

fn fig3(scale: Scale) {
    println!("== Figure 3: Reuse Distance Distribution per application ==");
    let mut t = Table::new(vec!["App", "RD 1~4", "RD 5~8", "RD 9~64", "RD >64", "Compulsory%"]);
    for spec in registry() {
        let cfg = ExperimentConfig { scale, profile_rd: true, ..ExperimentConfig::baseline() };
        let run = match run_app(spec.abbr, cfg) {
            Ok(r) => r,
            Err(f) => {
                eprintln!("row failed: {f}");
                let mut cells = vec![spec.abbr.to_string(), format!("FAILED({})", short_reason(&f))];
                cells.extend(std::iter::repeat_n("-".to_string(), 4));
                t.row(cells);
                continue;
            }
        };
        let sink = run.rdd.unwrap();
        let prof = sink.lock();
        let sh = prof.overall.shares();
        let total = prof.overall.total() + prof.overall.compulsory;
        let comp = if total == 0 { 0.0 } else { prof.overall.compulsory as f64 / total as f64 };
        t.row(vec![
            spec.abbr.to_string(),
            format!("{:.1}%", sh[0] * 100.0),
            format!("{:.1}%", sh[1] * 100.0),
            format!("{:.1}%", sh[2] * 100.0),
            format!("{:.1}%", sh[3] * 100.0),
            format!("{:.1}%", comp * 100.0),
        ]);
    }
    println!("{}", t.render());
}

fn fig4(s: &SizeSuite) {
    println!("== Figure 4: reuse-data miss rate vs cache size (compulsory excluded) ==");
    let mut t = Table::new(vec!["App", "16KB", "32KB", "64KB"]);
    for spec in &s.apps {
        let row = s.runs.get(spec.abbr);
        let mut cells = vec![spec.abbr.to_string()];
        for l in SIZE_LABELS {
            cells.push(match row.and_then(|r| r.get(l)) {
                Some(run) => format!("{:.1}%", run.stats.l1d.reuse_miss_rate() * 100.0),
                None => failed_cell(&s.failed, spec.abbr, l),
            });
        }
        t.row(cells);
    }
    println!("{}", t.render());
}

fn fig5(s: &SizeSuite) {
    println!("== Figure 5: IPC vs cache size, normalized to 16KB ==");
    let mut t = Table::new(vec!["App", "16KB", "32KB", "64KB"]);
    for spec in &s.apps {
        let row = s.runs.get(spec.abbr);
        let base = row.and_then(|r| r.get("16KB")).map(|run| run.stats.ipc());
        let mut cells = vec![
            spec.abbr.to_string(),
            if base.is_some() {
                "1.00".to_string()
            } else {
                failed_cell(&s.failed, spec.abbr, "16KB")
            },
        ];
        for l in ["32KB", "64KB"] {
            cells.push(match (row.and_then(|r| r.get(l)), base) {
                (Some(run), Some(b)) => format!("{:.2}", normalize(run.stats.ipc(), b)),
                (Some(_), None) => "n/a".to_string(),
                (None, _) => failed_cell(&s.failed, spec.abbr, l),
            });
        }
        t.row(cells);
    }
    println!("{}", t.render());
}

fn fig6(scale: Scale) {
    println!("== Figure 6: memory access ratio (sorted; CS/CI split at 1%) ==");
    let mut rows: Vec<(String, f64, AppClass)> = registry()
        .into_iter()
        .map(|s| {
            let k = gpu_workloads::build(s.abbr, scale);
            (s.abbr.to_string(), gpu_workloads::registry::static_mem_ratio(k.as_ref()), s.class)
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut t = Table::new(vec!["App", "Ratio", "Class"]);
    for (abbr, ratio, class) in rows {
        t.row(vec![abbr, format!("{:.2}%", ratio * 100.0), format!("{class:?}")]);
    }
    println!("{}", t.render());
}

fn fig7(scale: Scale) {
    println!("== Figure 7: RDD per memory instruction, BFS ==");
    let cfg = ExperimentConfig { scale, profile_rd: true, ..ExperimentConfig::baseline() };
    let run = must_run(run_app("BFS", cfg));
    let sink = run.rdd.unwrap();
    let prof = sink.lock();
    let mut pcs: Vec<u32> = prof.per_pc.keys().copied().collect();
    pcs.sort_unstable();
    let mut t = Table::new(vec!["Insn", "RD 1~4", "RD 5~8", "RD 9~64", "RD >64", "Samples"]);
    for pc in pcs {
        let h = &prof.per_pc[&pc];
        if h.total() == 0 {
            continue;
        }
        let sh = h.shares();
        t.row(vec![
            format!("insn{pc}"),
            format!("{:.1}%", sh[0] * 100.0),
            format!("{:.1}%", sh[1] * 100.0),
            format!("{:.1}%", sh[2] * 100.0),
            format!("{:.1}%", sh[3] * 100.0),
            h.total().to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// `±` suffix for a normalized-IPC cell of a sampled run: a ratio of
/// two estimates carries both relative CI widths (first-order, they
/// add). Empty for exact runs — exact-mode stdout stays byte-identical
/// to builds without sampling.
fn ipc_ci_suffix(run: &AppRun, base: &AppRun, v: f64) -> String {
    let rw = |r: &AppRun| r.sampling.and_then(|s| s.ipc).map(|e| e.rel_width());
    match (rw(run), rw(base)) {
        (None, None) => String::new(),
        (a, b) => format!("±{:.2}", v * (a.unwrap_or(0.0) + b.unwrap_or(0.0))),
    }
}

/// `±` suffix for an absolute hit-rate cell: the estimate's own CI
/// half-width. Empty for exact runs.
fn hit_rate_ci_suffix(run: &AppRun) -> String {
    match run.sampling.and_then(|s| s.hit_rate) {
        Some(e) => format!("±{:.3}", e.half),
        None => String::new(),
    }
}

fn class_rows<'a>(
    suite: &'a PolicySuite,
    class: AppClass,
) -> impl Iterator<Item = &'a gpu_workloads::BenchSpec> + 'a {
    suite.apps.iter().filter(move |s| s.class == class)
}

fn fig10(suite: &PolicySuite) {
    println!("== Figure 10: IPC normalized to the 16KB baseline ==");
    let mut t = Table::new(vec!["App", "Base", "Stall-Bypass", "Global-Prot", "DLP", "32KB"]);
    for class in [AppClass::CS, AppClass::CI] {
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); 5];
        let all_labels =
            [POLICY_LABELS[0], POLICY_LABELS[1], POLICY_LABELS[2], POLICY_LABELS[3], LABEL_32K];
        for spec in class_rows(suite, class) {
            let row = suite.runs.get(spec.abbr);
            let base_run = row.and_then(|r| r.get(POLICY_LABELS[0]));
            let base = base_run.map(|run| run.stats.ipc());
            let mut cells = vec![spec.abbr.to_string()];
            for (i, label) in all_labels.iter().enumerate() {
                cells.push(match (row.and_then(|r| r.get(label)), base_run, base) {
                    (Some(run), Some(br), Some(b)) => {
                        let v = normalize(run.stats.ipc(), b);
                        per_scheme[i].push(v);
                        format!("{v:.2}{}", ipc_ci_suffix(run, br, v))
                    }
                    (Some(_), _, _) => "n/a".to_string(),
                    (None, _, _) => failed_cell(&suite.failed, spec.abbr, label),
                });
            }
            t.row(cells);
        }
        let mut gm = vec![format!("G.MEANS({class:?})")];
        for vals in &per_scheme {
            gm.push(geomean_cell(vals, 2));
        }
        t.row(gm);
    }
    println!("{}", t.render());
}

fn fig11(suite: &PolicySuite) {
    println!("== Figure 11a: L1D traffic normalized to baseline ==");
    print_normalized(suite, |r| r.stats.l1d.cache_traffic() as f64);
    println!("== Figure 11b: L1D evictions normalized to baseline ==");
    print_normalized(suite, |r| r.stats.l1d.evictions as f64);
}

fn fig12(suite: &PolicySuite) {
    println!("== Figure 12a: L1D hit rate ==");
    let mut t = Table::new(vec!["App", "Base", "Stall-Bypass", "Global-Prot", "DLP"]);
    for class in [AppClass::CS, AppClass::CI] {
        for spec in class_rows(suite, class) {
            let row = suite.runs.get(spec.abbr);
            let mut cells = vec![spec.abbr.to_string()];
            for label in POLICY_LABELS {
                cells.push(match row.and_then(|r| r.get(label)) {
                    Some(run) => {
                        format!("{:.3}{}", run.stats.l1d.hit_rate(), hit_rate_ci_suffix(run))
                    }
                    None => failed_cell(&suite.failed, spec.abbr, label),
                });
            }
            t.row(cells);
        }
    }
    println!("{}", t.render());
    println!("== Figure 12b: number of L1D hits normalized to baseline ==");
    print_normalized(suite, |r| r.stats.l1d.hits as f64);
}

fn fig13(suite: &PolicySuite) {
    println!("== Figure 13: interconnect traffic normalized to baseline ==");
    print_normalized(suite, |r| r.stats.icnt.total_flits() as f64);
}

fn print_normalized(suite: &PolicySuite, metric: impl Fn(&dlp_bench::AppRun) -> f64) {
    let mut t = Table::new(vec!["App", "Base", "Stall-Bypass", "Global-Prot", "DLP"]);
    for class in [AppClass::CS, AppClass::CI] {
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for spec in class_rows(suite, class) {
            let row = suite.runs.get(spec.abbr);
            // A zero base (e.g. a zero-hit app) has nothing to
            // normalize against: render n/a, exclude from the means.
            let base = row
                .and_then(|r| r.get(POLICY_LABELS[0]))
                .map(&metric)
                .filter(|b| *b != 0.0);
            let mut cells = vec![spec.abbr.to_string()];
            for (i, label) in POLICY_LABELS.iter().enumerate() {
                cells.push(match (row.and_then(|r| r.get(label)), base) {
                    (Some(run), Some(b)) => {
                        let v = normalize(metric(run), b);
                        per_scheme[i].push(v.max(1e-9));
                        format!("{v:.2}")
                    }
                    (Some(_), None) => "n/a".to_string(),
                    (None, _) => failed_cell(&suite.failed, spec.abbr, label),
                });
            }
            t.row(cells);
        }
        let mut gm = vec![format!("G.MEANS({class:?})")];
        for vals in &per_scheme {
            gm.push(geomean_cell(vals, 2));
        }
        t.row(gm);
    }
    println!("{}", t.render());
}

/// What DLP learned: the per-instruction protection distances of SM 0
/// after a full run, next to each instruction's measured RDD — the
/// paper's §3.3 argument made observable.
fn pdpt_report(app: &str, scale: Scale) {
    use gpu_sim::{Gpu, SimConfig};
    // Profiled baseline run for the per-PC RDDs.
    let prof_run = must_run(run_app(
        app,
        ExperimentConfig { scale, profile_rd: true, ..ExperimentConfig::baseline() },
    ));
    let sink = prof_run.rdd.unwrap();
    let prof = sink.lock();

    // DLP run; inspect SM 0's PDPT afterwards.
    let cfg = SimConfig::tesla_m2090(PolicyKind::Dlp);
    let mut gpu = Gpu::new(cfg, gpu_workloads::build(app, scale));
    let stats = gpu.run().unwrap_or_else(|e| {
        eprintln!("{app} (DLP) failed: {e}");
        std::process::exit(1);
    });
    assert!(stats.completed);
    let snapshot = gpu
        .l1d(0)
        .policy()
        .pd_snapshot()
        .expect("DLP keeps per-instruction PDs");

    println!("== {app}: learned protection distances (SM 0) vs measured RDDs ==");
    let mut t = Table::new(vec!["Insn", "final PD", "RD 1~4", "RD 5~8", "RD 9~64", "RD >64"]);
    for (insn, pd) in snapshot {
        let pc = insn as u32; // workload PCs are < 64, so the 7-bit hash is the identity
        let (s0, s1, s2, s3) = match prof.per_pc.get(&pc) {
            Some(h) if h.total() > 0 => {
                let s = h.shares();
                (s[0], s[1], s[2], s[3])
            }
            _ => (0.0, 0.0, 0.0, 0.0),
        };
        t.row(vec![
            format!("insn{insn}"),
            pd.to_string(),
            format!("{:.0}%", s0 * 100.0),
            format!("{:.0}%", s1 * 100.0),
            format!("{:.0}%", s2 * 100.0),
            format!("{:.0}%", s3 * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "mean PD over samples: {:.2}; increases {}, decreases {}",
        stats.policy.avg_pd(),
        stats.policy.pd_increases,
        stats.policy.pd_decreases
    );
}

fn inspect(app: &str, scale: Scale) {
    // Optional protection overrides for quick experiments.
    let decrease_step: Option<u8> =
        std::env::var("DLP_DECREASE_STEP").ok().and_then(|v| v.parse().ok());
    let sample_period: Option<u32> =
        std::env::var("DLP_SAMPLE_PERIOD").ok().and_then(|v| v.parse().ok());
    for kind in PolicyKind::ALL {
        let mut pc = ProtectionConfig::paper_default(CacheGeometry::fermi_l1d_16k());
        if let Some(d) = decrease_step {
            pc.decrease_step = d;
        }
        if let Some(p) = sample_period {
            pc.sample_period = p;
        }
        let protection =
            (decrease_step.is_some() || sample_period.is_some()).then_some(pc);
        let run = must_run(run_app(
            app,
            ExperimentConfig { scale, protection, ..ExperimentConfig::baseline().with_policy(kind) },
        ));
        let s = &run.stats;
        println!("--- {app} {:?} ---", kind);
        println!(
            "cycles {} ipc {:.2} thread_insns {} txns {}",
            s.cycles,
            s.ipc(),
            s.thread_insns,
            s.mem_transactions
        );
        println!(
            "L1D: acc {} hits {} ({:.1}%) alloc_miss {} merges {} byp_ld {} byp_st {} evic {} (dirty {}) compulsory {} stall_cyc {} rejects {}",
            s.l1d.accesses,
            s.l1d.hits,
            s.l1d.hit_rate() * 100.0,
            s.l1d.misses_allocated,
            s.l1d.mshr_merges,
            s.l1d.bypassed_loads,
            s.l1d.bypassed_stores,
            s.l1d.evictions,
            s.l1d.dirty_evictions,
            s.l1d.compulsory_misses,
            s.l1d.stall_cycles,
            s.l1d.rejected_submits,
        );
        println!(
            "stall causes: merge_full {} mshr_full {} miss_q {} all_resv {} | avg load latency {:.0}",
            s.l1d.stall_merge_full, s.l1d.stall_mshr_full, s.l1d.stall_miss_queue, s.l1d.stall_all_reserved,
            s.l1d.avg_load_latency(),
        );
        println!(
            "policy: queries {} prot_byp {} vta_hits {} vta_ins {} samples {} incr {} decr {} avg_pd {:.2}",
            s.policy.queries,
            s.policy.protected_bypasses,
            s.policy.vta_hits,
            s.policy.vta_insertions,
            s.policy.samples,
            s.policy.pd_increases,
            s.policy.pd_decreases,
            s.policy.avg_pd(),
        );
        println!(
            "icnt: fwd {} ret {} rejects {} | L2: acc {} hits {} | DRAM: rd {} wr {} rowhit {:.0}%",
            s.icnt.fwd_flits,
            s.icnt.ret_flits,
            s.icnt.rejects,
            s.l2.accesses,
            s.l2.hits,
            s.dram.reads,
            s.dram.writes,
            100.0 * s.dram.row_hits as f64 / (s.dram.row_hits + s.dram.row_misses).max(1) as f64,
        );
    }
    let run32 = must_run(run_app(
        app,
        ExperimentConfig { scale, ..ExperimentConfig::baseline().with_geom(CacheGeometry::fermi_l1d_32k()) },
    ));
    let s = &run32.stats;
    println!("--- {app} 32KB ---");
    println!(
        "cycles {} ipc {:.2} L1D hits {} ({:.1}%) alloc_miss {} merges {} stall_cyc {}",
        s.cycles,
        s.ipc(),
        s.l1d.hits,
        s.l1d.hit_rate() * 100.0,
        s.l1d.misses_allocated,
        s.l1d.mshr_merges,
        s.l1d.stall_cycles
    );
    println!(
        "stall causes: merge_full {} mshr_full {} miss_q {} all_resv {} | avg load latency {:.0} | icnt rejects {}",
        s.l1d.stall_merge_full,
        s.l1d.stall_mshr_full,
        s.l1d.stall_miss_queue,
        s.l1d.stall_all_reserved,
        s.l1d.avg_load_latency(),
        s.icnt.rejects,
    );
}

/// Compact calibration table: every CI app under the four schemes plus
/// 32 KB, with the metrics that drive tuning decisions.
fn calib(scale: Scale) {
    let suite = run_policy_suite(scale);
    let mut t = Table::new(vec![
        "App", "Scheme", "IPCx", "Hit%", "Byp%", "Stall/SMcyc", "AllResv", "AvgPD",
    ]);
    let labels = ["16KB(Baseline)", "Stall-Bypass", "Global-Protection", "DLP", "32KB"];
    for spec in suite.apps.iter().filter(|s| s.class == AppClass::CI) {
        let row = suite.runs.get(spec.abbr);
        let base_ipc =
            row.and_then(|r| r.get("16KB(Baseline)")).map(|run| run.stats.ipc());
        for label in labels {
            let Some(run) = row.and_then(|r| r.get(label)) else {
                let mut cells =
                    vec![spec.abbr.to_string(), label.to_string(), failed_cell(&suite.failed, spec.abbr, label)];
                cells.extend(std::iter::repeat_n("-".to_string(), 5));
                t.row(cells);
                continue;
            };
            let s = &run.stats;
            t.row(vec![
                spec.abbr.to_string(),
                label.to_string(),
                match base_ipc {
                    Some(b) => format!("{:.2}", normalize(s.ipc(), b)),
                    None => "n/a".to_string(),
                },
                format!("{:.0}%", s.l1d.hit_rate() * 100.0),
                format!(
                    "{:.0}%",
                    100.0 * (s.l1d.bypassed_loads + s.l1d.bypassed_stores) as f64
                        / s.l1d.accesses.max(1) as f64
                ),
                format!("{:.2}", s.l1d.stall_cycles as f64 / (s.cycles * 16).max(1) as f64),
                format!("{}", s.l1d.stall_all_reserved),
                format!("{:.1}", s.policy.avg_pd()),
            ]);
        }
    }
    println!("{}", t.render());
    report_failures(&suite.failure_digest());
}

fn overhead() {
    println!("== §4.3: DLP hardware overhead ==");
    let geom = CacheGeometry::fermi_l1d_16k();
    let r = dlp_overhead(geom, geom.num_lines() as u64);
    let mut t = Table::new(vec!["Component", "Bytes"]);
    t.row(vec!["TDA extra (insn id + PL)".to_string(), r.tda_extra_bytes.to_string()]);
    t.row(vec!["VTA (tags + insn id)".to_string(), r.vta_bytes.to_string()]);
    t.row(vec!["PDPT".to_string(), r.pdpt_bytes.to_string()]);
    t.row(vec!["Total extra".to_string(), r.total_extra_bytes().to_string()]);
    t.row(vec!["Baseline cache".to_string(), r.baseline_bytes.to_string()]);
    t.row(vec![
        "Overhead".to_string(),
        format!("{:.2}%", r.fraction_of_baseline() * 100.0),
    ]);
    println!("{}", t.render());
    let _ = ProtectionConfig::paper_default(geom);
}

/// Per-app normalized IPCs for an ablation variant; pairs where either
/// the baseline or the variant failed are reported and excluded.
fn norm_vs_base(runs: Vec<Result<AppRun, RunFailure>>, base: &[Option<f64>]) -> Vec<f64> {
    runs.into_iter()
        .zip(base)
        .filter_map(|(r, b)| match (r, b) {
            (Ok(run), Some(b)) => Some(normalize(run.stats.ipc(), *b)),
            (Err(f), _) => {
                eprintln!("skipping: {f}");
                None
            }
            _ => None,
        })
        .collect()
}

fn ablation(scale: Scale) {
    println!("== Ablations: DLP design choices (CI geomean IPC vs 16KB baseline) ==");
    let ci: Vec<_> = registry().into_iter().filter(|s| s.class == AppClass::CI).collect();

    // Baseline reference IPCs, computed once in parallel.
    let base_jobs: Vec<_> = ci
        .iter()
        .map(|s| (s.abbr.to_string(), ExperimentConfig { scale, ..ExperimentConfig::baseline() }))
        .collect();
    let base: Vec<Option<f64>> = dlp_bench::harness::run_many(&base_jobs)
        .into_iter()
        .map(|r| match r {
            Ok(run) => Some(run.stats.ipc()),
            Err(f) => {
                eprintln!("baseline run failed: {f}");
                None
            }
        })
        .collect();

    let geom = CacheGeometry::fermi_l1d_16k();
    let mut variants: Vec<(String, ProtectionConfig)> = Vec::new();
    let paper = ProtectionConfig::paper_default(geom);
    variants.push(("DLP paper (sample 200, step-cmp, dec 4, VTA 4w)".into(), paper));
    for period in [50u32, 100, 400, 800] {
        variants.push((format!("sampling period {period}"), ProtectionConfig { sample_period: period, ..paper }));
    }
    variants.push(("exact division instead of step comparison".into(),
        ProtectionConfig { step_comparison: false, ..paper }));
    for dec in [1u8, 2, 8] {
        variants.push((format!("PD decrease step {dec}"), ProtectionConfig { decrease_step: dec, ..paper }));
    }
    for vta in [2usize, 8] {
        variants.push((format!("VTA associativity {vta}"), ProtectionConfig { vta_assoc: vta, ..paper }));
    }

    let mut t = Table::new(vec!["Variant", "CI geomean IPC"]);
    for (label, pc) in variants {
        let jobs: Vec<_> = ci
            .iter()
            .map(|s| {
                (
                    s.abbr.to_string(),
                    ExperimentConfig {
                        scale,
                        protection: Some(pc),
                        ..ExperimentConfig::baseline().with_policy(PolicyKind::Dlp)
                    },
                )
            })
            .collect();
        let norm = norm_vs_base(dlp_bench::harness::run_many(&jobs), &base);
        t.row(vec![label, geomean_cell(&norm, 3)]);
    }

    // Future-work extension (§8): DLP combined with CCWS-style warp
    // throttling.
    for limit in [24usize, 12] {
        let jobs: Vec<_> = ci
            .iter()
            .map(|s| {
                (
                    s.abbr.to_string(),
                    ExperimentConfig {
                        scale,
                        warp_limit: Some(limit),
                        ..ExperimentConfig::baseline().with_policy(PolicyKind::Dlp)
                    },
                )
            })
            .collect();
        let norm = norm_vs_base(dlp_bench::harness::run_many(&jobs), &base);
        t.row(vec![format!("DLP + warp throttle ({limit}/48 warps)"), geomean_cell(&norm, 3)]);
    }

    // Global-Protection reference (the per-instruction-vs-global ablation).
    let jobs: Vec<_> = ci
        .iter()
        .map(|s| {
            (
                s.abbr.to_string(),
                ExperimentConfig {
                    scale,
                    ..ExperimentConfig::baseline().with_policy(PolicyKind::GlobalProtection)
                },
            )
        })
        .collect();
    let norm = norm_vs_base(dlp_bench::harness::run_many(&jobs), &base);
    t.row(vec!["single global PD (Global-Protection)".to_string(), geomean_cell(&norm, 3)]);
    println!("{}", t.render());
}
