//! Text-table rendering for the figure regenerators.

/// Geometric mean of positive values (the paper's G.MEANS rows).
///
/// `None` when no values survived — an empty input used to render as
/// `0.00`, which in a partial sweep reads as "every app degraded to
/// zero" instead of "nothing to average". Callers render it with
/// [`geomean_cell`] and must exclude it from any normalization.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Render a G.MEANS cell with `decimals` places, or `N/A` when the
/// mean does not exist (every contributing job failed).
pub fn geomean_cell(values: &[f64], decimals: usize) -> String {
    match geomean(values) {
        Some(g) => format!("{g:.decimals$}"),
        None => "N/A".to_string(),
    }
}

/// `value / baseline` with a zero-safe denominator.
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// A simple fixed-width text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None, "no values -> no mean, not 0.0");
    }

    #[test]
    fn geomean_cell_degrades_to_na_not_zero() {
        // The degradation path: a class whose every job failed must
        // render N/A, never a fake `0.00` that looks like a measured
        // total collapse.
        assert_eq!(geomean_cell(&[], 2), "N/A");
        assert_eq!(geomean_cell(&[], 3), "N/A");
        assert_eq!(geomean_cell(&[2.0, 2.0], 2), "2.00");
        assert_eq!(geomean_cell(&[1.0, 4.0], 3), "2.000");
    }

    #[test]
    fn normalize_zero_baseline() {
        assert_eq!(normalize(5.0, 0.0), 0.0);
        assert!((normalize(3.0, 2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["App", "IPC"]);
        t.row(vec!["KM", "1.43"]);
        t.row(vec!["LONGNAME", "0.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[2].ends_with("1.43"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
