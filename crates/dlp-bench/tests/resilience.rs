//! Crash/fault resilience of the persistent sweep pipeline, end to end
//! through the `figures` binary:
//!
//! * SIGKILL mid-sweep, then resume against the same store — stdout is
//!   byte-identical to an uninterrupted run and no completed job is
//!   recomputed (every pre-kill entry is served as a store hit).
//! * A warm store serves every job of a repeat sweep (zero misses,
//!   zero puts).
//! * Injected write-path corruption is quarantined and recomputed on
//!   the next sweep — never silently served — and the figures output
//!   still matches the clean reference.
//!
//! Each scenario runs the real binary in a child process so the store
//! is exercised across process boundaries, exactly like an operator's
//! interrupted sweep.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const FIGURES: &str = env!("CARGO_BIN_EXE_figures");

fn test_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlp-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `figures fig10 --tiny` invocation with a controlled environment:
/// the DLP_* hooks are pinned (or removed) so nothing leaks in from
/// the surrounding test runner.
fn figures_cmd(store: Option<&Path>, telemetry: &Path, fault: Option<&str>) -> Command {
    let mut cmd = Command::new(FIGURES);
    cmd.args(["fig10", "--tiny"])
        .env_remove("DLP_STORE_DIR")
        .env_remove("DLP_STORE_FAULT")
        .env_remove("DLP_FORCE_FAIL")
        .env_remove("DLP_JOB_DEADLINE_MS")
        .env("DLP_WORKERS", "1")
        .env("DLP_TELEMETRY_PATH", telemetry)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(s) = store {
        cmd.env("DLP_STORE_DIR", s);
    }
    if let Some(f) = fault {
        cmd.env("DLP_STORE_FAULT", f);
    }
    cmd
}

fn run_to_completion(store: Option<&Path>, telemetry: &Path, fault: Option<&str>) -> Output {
    let out = figures_cmd(store, telemetry, fault).output().unwrap();
    assert!(out.status.success(), "figures failed: {}", String::from_utf8_lossy(&out.stderr));
    out
}

/// The `"store": {...}` object of a telemetry file, as (key, value)
/// pairs — enough structure to assert on counters without a JSON
/// parser in the dev-dependency set.
fn store_counters(telemetry: &Path) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(telemetry).unwrap();
    let start = text.find("\"store\": {").expect("telemetry has a store section") + 10;
    let end = start + text[start..].find('}').unwrap();
    text[start..end]
        .split(',')
        .filter_map(|kv| {
            let (k, v) = kv.split_once(':')?;
            Some((k.trim().trim_matches('"').to_string(), v.trim().parse().ok()?))
        })
        .collect()
}

fn counter(counters: &[(String, u64)], key: &str) -> u64 {
    counters
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("telemetry store section has no {key:?}: {counters:?}"))
        .1
}

fn entry_files(store: &Path) -> Vec<(String, Vec<u8>)> {
    let entries = store.join("entries");
    let mut out = Vec::new();
    let Ok(rd) = std::fs::read_dir(&entries) else { return out };
    for e in rd.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.ends_with(".bin") {
            out.push((name, std::fs::read(e.path()).unwrap()));
        }
    }
    out.sort();
    out
}

#[test]
fn sigkill_mid_sweep_then_resume_is_lossless() {
    let root = test_root("kill");
    let reference = run_to_completion(None, &root.join("t_ref.json"), None);

    // Start a sweep against a fresh store and SIGKILL it as soon as at
    // least one job has been committed. A Tiny fig10 sweep on one
    // worker takes long enough that the kill lands mid-run; if the
    // child wins the race anyway, retry with a fresh store.
    let mut store = root.join("store0");
    let mut killed = false;
    for attempt in 0..5 {
        store = root.join(format!("store{attempt}"));
        let mut child =
            figures_cmd(Some(&store), &root.join("t_victim.json"), None).spawn().unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if !entry_files(&store).is_empty() {
                // kill() delivers SIGKILL on unix: no destructors, no
                // flush — the hard variant of a crash.
                child.kill().unwrap();
                child.wait().unwrap();
                killed = true;
                break;
            }
            if child.try_wait().unwrap().is_some() {
                break; // finished before we could kill it; retry
            }
            assert!(Instant::now() < deadline, "no store entry appeared within 120s");
            std::thread::sleep(Duration::from_millis(1));
        }
        if killed {
            break;
        }
    }
    assert!(killed, "child completed before the kill in every attempt");

    let before = entry_files(&store);
    assert!(!before.is_empty());

    // Resume: same store, same sweep.
    let resumed = run_to_completion(Some(&store), &root.join("t_resume.json"), None);
    assert_eq!(
        resumed.stdout,
        reference.stdout,
        "resumed sweep diverged from the uninterrupted reference"
    );

    // Zero recomputed completed jobs: every entry that survived the
    // kill was served as a store hit, and its bytes were not rewritten.
    let counters = store_counters(&root.join("t_resume.json"));
    assert!(
        counter(&counters, "hits") >= before.len() as u64,
        "expected >= {} store hits, got {counters:?}",
        before.len()
    );
    let after = entry_files(&store);
    for (name, bytes) in &before {
        let kept = after.iter().find(|(n, _)| n == name);
        assert_eq!(
            kept.map(|(_, b)| b),
            Some(bytes),
            "entry {name} was rewritten or lost by the resume"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn warm_store_serves_every_job() {
    let root = test_root("warm");
    let store = root.join("store");

    let cold = run_to_completion(Some(&store), &root.join("t1.json"), None);
    let c1 = store_counters(&root.join("t1.json"));
    assert!(counter(&c1, "puts") > 0, "cold sweep persisted nothing: {c1:?}");

    let warm = run_to_completion(Some(&store), &root.join("t2.json"), None);
    assert_eq!(warm.stdout, cold.stdout, "warm store changed the figures output");
    let c2 = store_counters(&root.join("t2.json"));
    assert_eq!(counter(&c2, "misses"), 0, "warm sweep missed: {c2:?}");
    assert_eq!(counter(&c2, "puts"), 0, "warm sweep recomputed: {c2:?}");
    assert_eq!(counter(&c2, "hits"), counter(&c1, "puts"), "hit count mismatch: {c1:?} {c2:?}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_corruption_is_quarantined_and_recomputed() {
    let root = test_root("fault");
    let store = root.join("store");
    let reference = run_to_completion(None, &root.join("t_ref.json"), None);

    // Every write corrupted (rate 1_000_000 ppm): the sweep itself is
    // unaffected — faults poison only the persisted copies.
    let faulty =
        run_to_completion(Some(&store), &root.join("t_fault.json"), Some("checksum-flip:7:1000000"));
    assert_eq!(faulty.stdout, reference.stdout, "write faults must not affect results");
    let cf = store_counters(&root.join("t_fault.json"));
    assert!(counter(&cf, "faults_injected") > 0, "fault campaign never fired: {cf:?}");

    // Next sweep, faults off: every corrupted entry must be detected,
    // quarantined and recomputed — and the output still matches.
    let healed = run_to_completion(Some(&store), &root.join("t_heal.json"), None);
    assert_eq!(healed.stdout, reference.stdout, "corruption leaked into the figures output");
    let ch = store_counters(&root.join("t_heal.json"));
    assert!(counter(&ch, "quarantined") > 0, "nothing was quarantined: {ch:?}");
    assert!(counter(&ch, "puts") > 0, "corrupted entries were not recomputed: {ch:?}");
    let quarantine = store.join("quarantine");
    assert!(
        std::fs::read_dir(&quarantine).map(|d| d.count() > 0).unwrap_or(false),
        "quarantine directory is empty"
    );

    // The healed store now serves cleanly.
    let warm = run_to_completion(Some(&store), &root.join("t_warm.json"), None);
    assert_eq!(warm.stdout, reference.stdout);
    let cw = store_counters(&root.join("t_warm.json"));
    assert_eq!(counter(&cw, "misses"), 0, "healed store still missing: {cw:?}");

    let _ = std::fs::remove_dir_all(&root);
}
