//! Diagnostics: finding type, text/JSON rendering, and the baseline.
//!
//! JSON is rendered *and parsed* by hand, mirroring the
//! `dlp-bench/src/telemetry.rs` approach — the workspace's vendored
//! serde stub has no JSON backend, and the two schemas involved
//! (`dlp-lint/diagnostics/v1`, `dlp-lint/baseline/v1`) are small and
//! flat enough that a ~100-line recursive-descent parser is the
//! simplest dependency-free option.

use crate::rules::rule_by_id;

/// Schema tag embedded in diagnostics JSON output. v2 adds the
/// per-finding `family` (rule-group tag) and `reachable_from`
/// (root-to-finding call chain, or null) fields.
pub const DIAG_SCHEMA: &str = "dlp-lint/diagnostics/v2";
/// Schema tag expected at the top of a baseline file.
pub const BASELINE_SCHEMA: &str = "dlp-lint/baseline/v1";

/// The placeholder reason older `--write-baseline` runs emitted. A
/// baseline is a ledger of *justified* debt, so entries still carrying
/// this marker are rejected at parse time — the writer now requires a
/// real `--reason`, and stale markers must be filled in, not shipped.
pub const TODO_REASON_MARKER: &str = "TODO: justify or fix";

/// One confirmed finding (post-suppression), ready for reporting.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule ID (`E201`, …).
    pub rule: &'static str,
    /// Workspace-relative file path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Offending token, used for baseline matching.
    pub token: String,
    /// Human-readable message.
    pub message: String,
    /// For call-graph findings: the chain from a hot/probe/parallel
    /// root to the function containing the finding.
    pub reachable_from: Option<String>,
    /// True if an entry in the baseline file covers this finding.
    pub baselined: bool,
}

impl Finding {
    /// Rule name, hint, and family tag from the rule table.
    fn rule_meta(&self) -> (&'static str, &'static str, &'static str) {
        match rule_by_id(self.rule) {
            Some(r) => (r.name, r.hint, r.group.family()),
            None => ("unknown", "", "unknown"),
        }
    }
}

/// Escape a string for JSON output (same contract as telemetry.rs).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as line-oriented human text.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let (name, hint, _) = f.rule_meta();
        let tag = if f.baselined { " [baselined]" } else { "" };
        out.push_str(&format!(
            "{}:{}:{}: {} {}: {}{}\n",
            f.file, f.line, f.col, f.rule, name, f.message, tag
        ));
        if let Some(chain) = &f.reachable_from {
            out.push_str(&format!("  reachable from: {chain}\n"));
        }
        if !f.baselined && !hint.is_empty() {
            out.push_str(&format!("  hint: {hint}\n"));
        }
    }
    let new = findings.iter().filter(|f| !f.baselined).count();
    let baselined = findings.len() - new;
    out.push_str(&format!(
        "dlp-lint: {files_scanned} files scanned, {} finding(s) ({baselined} baselined, {new} new)\n",
        findings.len()
    ));
    out
}

/// Render findings as machine-readable JSON (`dlp-lint/diagnostics/v2`).
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{DIAG_SCHEMA}\",\n"));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    let new = findings.iter().filter(|f| !f.baselined).count();
    out.push_str(&format!("  \"new_findings\": {new},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let (name, hint, family) = f.rule_meta();
        if i > 0 {
            out.push(',');
        }
        let reachable = match &f.reachable_from {
            Some(chain) => format!("\"{}\"", esc(chain)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"name\": \"{}\", \"family\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"col\": {}, \"token\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\", \
             \"reachable_from\": {}, \"baselined\": {}}}",
            f.rule,
            name,
            family,
            esc(&f.file),
            f.line,
            f.col,
            esc(&f.token),
            esc(&f.message),
            esc(hint),
            reachable,
            f.baselined
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// One baseline entry: permits up to `count` findings matching
/// (rule, file, token), with a required human reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule ID the entry covers.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Offending token the entry covers.
    pub token: String,
    /// How many matching findings are accepted.
    pub count: usize,
    /// Why the findings are accepted.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Accepted-finding entries.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parse a `dlp-lint/baseline/v1` JSON document.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let value = json::parse(src)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let schema = obj
            .iter()
            .find(|(k, _)| k == "schema")
            .and_then(|(_, v)| v.as_str())
            .ok_or("baseline missing \"schema\" field")?;
        if schema != BASELINE_SCHEMA {
            return Err(format!("unsupported baseline schema `{schema}`"));
        }
        let findings = obj
            .iter()
            .find(|(k, _)| k == "findings")
            .and_then(|(_, v)| v.as_array())
            .ok_or("baseline missing \"findings\" array")?;
        let mut entries = Vec::new();
        for f in findings {
            let fo = f.as_object().ok_or("baseline finding must be an object")?;
            let get_str = |key: &str| {
                fo.iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or(format!("baseline finding missing \"{key}\""))
            };
            let count = fo
                .iter()
                .find(|(k, _)| k == "count")
                .and_then(|(_, v)| v.as_usize())
                .unwrap_or(1);
            let entry = BaselineEntry {
                rule: get_str("rule")?,
                file: get_str("file")?,
                token: get_str("token")?,
                count,
                reason: get_str("reason")?,
            };
            if rule_by_id(&entry.rule).is_none() {
                return Err(format!("baseline references unknown rule `{}`", entry.rule));
            }
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "baseline entry for {} in {} has an empty reason",
                    entry.rule, entry.file
                ));
            }
            if entry.reason.contains(TODO_REASON_MARKER) {
                return Err(format!(
                    "baseline entry for {} in {} still carries the \"{TODO_REASON_MARKER}\" \
                     placeholder — write a real justification",
                    entry.rule, entry.file
                ));
            }
            entries.push(entry);
        }
        Ok(Baseline { entries })
    }

    /// Render findings as a fresh baseline document (`--write-baseline`).
    /// Identical (rule, file, token) findings collapse into one entry
    /// with a count; every entry carries `reason` — the caller-supplied
    /// justification (`--reason` on the CLI), which replaced the old
    /// `TODO: justify or fix` placeholder that shipped unreviewed debt.
    /// Entries are sorted by (rule, file, token) so the output is
    /// deterministic regardless of scan order.
    pub fn render(findings: &[Finding], reason: &str) -> String {
        let mut groups: Vec<(&'static str, &str, &str, usize)> = Vec::new();
        for f in findings {
            if let Some(g) =
                groups.iter_mut().find(|g| g.0 == f.rule && g.1 == f.file && g.2 == f.token)
            {
                g.3 += 1;
            } else {
                groups.push((f.rule, &f.file, &f.token, 1));
            }
        }
        groups.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
        out.push_str("  \"findings\": [");
        for (i, (rule, file, token, count)) in groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{rule}\", \"file\": \"{}\", \"token\": \"{}\", \
                 \"count\": {count}, \"reason\": \"{}\"}}",
                esc(file),
                esc(token),
                esc(reason)
            ));
        }
        if !groups.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Mark findings covered by this baseline. Findings arrive in
    /// walk/scan order (sorted file, then position), so within a
    /// (rule, file, token) group the first `count` instances are the
    /// accepted ones. Returns the number of *stale* baseline slots —
    /// accepted findings that no longer occur (worth pruning).
    pub fn apply(&self, findings: &mut [Finding]) -> usize {
        let mut remaining: Vec<usize> = self.entries.iter().map(|e| e.count).collect();
        for f in findings.iter_mut() {
            if let Some(idx) = self.entries.iter().position(|e| {
                e.rule == f.rule && e.file == f.file && e.token == f.token
            }) {
                if remaining[idx] > 0 {
                    remaining[idx] -= 1;
                    f.baselined = true;
                }
            }
        }
        remaining.iter().sum()
    }
}

/// Minimal recursive-descent JSON parser — just enough for the flat
/// baseline and diagnostics schemas (objects, arrays, strings,
/// non-negative integers, booleans, null). Public so the self-check
/// integration tests can consume `dlp-lint`'s own JSON output without
/// an external JSON dependency.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug)]
    pub enum Value {
        /// Object as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
        /// Array.
        Arr(Vec<Value>),
        /// String.
        Str(String),
        /// Number (stored as f64; baseline counts are small integers).
        Num(f64),
        /// Boolean.
        Bool(bool),
        /// Null.
        Null,
    }

    impl Value {
        /// Object key/value pairs, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
        /// Array elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        /// String content, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// Non-negative integral number, if this is one.
        pub fn as_usize(&self) -> Option<usize> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
                _ => None,
            }
        }
        /// Boolean, if this is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(src: &str) -> Result<Value, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut pos = 0usize;
        let v = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("trailing content at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(chars: &[char], pos: &mut usize) {
        while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
            *pos += 1;
        }
    }

    fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
        skip_ws(chars, pos);
        if chars.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {pos}", pos = *pos))
        }
    }

    fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some('{') => parse_object(chars, pos),
            Some('[') => parse_array(chars, pos),
            Some('"') => Ok(Value::Str(parse_string(chars, pos)?)),
            Some(c) if c.is_ascii_digit() || *c == '-' => parse_number(chars, pos),
            Some('t') => parse_lit(chars, pos, "true", Value::Bool(true)),
            Some('f') => parse_lit(chars, pos, "false", Value::Bool(false)),
            Some('n') => parse_lit(chars, pos, "null", Value::Null),
            _ => Err(format!("unexpected character at offset {pos}", pos = *pos)),
        }
    }

    fn parse_lit(
        chars: &[char],
        pos: &mut usize,
        lit: &str,
        value: Value,
    ) -> Result<Value, String> {
        for c in lit.chars() {
            if chars.get(*pos) != Some(&c) {
                return Err(format!("bad literal at offset {pos}", pos = *pos));
            }
            *pos += 1;
        }
        Ok(value)
    }

    fn parse_object(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        expect(chars, pos, '{')?;
        let mut out = Vec::new();
        skip_ws(chars, pos);
        if chars.get(*pos) == Some(&'}') {
            *pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            skip_ws(chars, pos);
            let key = parse_string(chars, pos)?;
            expect(chars, pos, ':')?;
            let value = parse_value(chars, pos)?;
            out.push((key, value));
            skip_ws(chars, pos);
            match chars.get(*pos) {
                Some(',') => *pos += 1,
                Some('}') => {
                    *pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
            }
        }
    }

    fn parse_array(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        expect(chars, pos, '[')?;
        let mut out = Vec::new();
        skip_ws(chars, pos);
        if chars.get(*pos) == Some(&']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(parse_value(chars, pos)?);
            skip_ws(chars, pos);
            match chars.get(*pos) {
                Some(',') => *pos += 1,
                Some(']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
            }
        }
    }

    fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
        if chars.get(*pos) != Some(&'"') {
            return Err(format!("expected string at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = chars.get(*pos) {
            *pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = chars.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = chars
                                    .get(*pos)
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                *pos += 1;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unsupported escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(chars: &[char], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if chars.get(*pos) == Some(&'-') {
            *pos += 1;
        }
        while chars
            .get(*pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            *pos += 1;
        }
        let text: String = chars[start..*pos].iter().collect();
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, token: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            col: 1,
            token: token.into(),
            message: "m".into(),
            reachable_from: None,
            baselined: false,
        }
    }

    #[test]
    fn baseline_render_is_sorted_by_rule_file_token() {
        let findings = [
            finding("P301", "crates/z.rs", "Box"),
            finding("D004", "crates/a.rs", "m"),
            finding("P301", "crates/a.rs", "Vec"),
        ];
        let rendered = Baseline::render(&findings, "accepted for the test");
        let parsed = Baseline::parse(&rendered).unwrap();
        let order: Vec<(String, String)> =
            parsed.entries.iter().map(|e| (e.rule.clone(), e.file.clone())).collect();
        assert_eq!(
            order,
            [
                ("D004".to_string(), "crates/a.rs".to_string()),
                ("P301".to_string(), "crates/a.rs".to_string()),
                ("P301".to_string(), "crates/z.rs".to_string()),
            ]
        );
    }

    #[test]
    fn v2_json_carries_family_and_reachable_from() {
        let mut f = finding("P301", "crates/gpu-sim/src/gpu.rs", "Box");
        f.reachable_from = Some("Gpu::step -> hang_report".into());
        let out = render_json(&[f, finding("D004", "a.rs", "m")], 2);
        let v = super::json::parse(&out).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj
            .iter()
            .any(|(k, v)| k == "schema" && v.as_str() == Some("dlp-lint/diagnostics/v2")));
        let findings = obj.iter().find(|(k, _)| k == "findings").unwrap().1.as_array().unwrap();
        let first = findings[0].as_object().unwrap();
        assert!(first.iter().any(|(k, v)| k == "family" && v.as_str() == Some("perf")));
        assert!(first.iter().any(
            |(k, v)| k == "reachable_from" && v.as_str() == Some("Gpu::step -> hang_report")
        ));
        let second = findings[1].as_object().unwrap();
        assert!(second
            .iter()
            .any(|(k, v)| k == "reachable_from" && matches!(v, super::json::Value::Null)));
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let findings =
            [finding("E201", "crates/gpu-mem/src/l1d.rs", "unwrap"), finding("D004", "a.rs", "m")];
        let rendered = Baseline::render(&findings, "vendored code, upstream idiom");
        let parsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        // Render sorts by (rule, file, token), so D004 leads.
        assert_eq!(parsed.entries[0].rule, "D004");
        assert_eq!(parsed.entries[1].rule, "E201");
        assert_eq!(parsed.entries[1].count, 1);
        assert_eq!(parsed.entries[0].reason, "vendored code, upstream idiom");
    }

    #[test]
    fn baseline_rejects_the_todo_placeholder_reason() {
        let findings = [finding("E201", "f.rs", "unwrap")];
        let rendered = Baseline::render(&findings, TODO_REASON_MARKER);
        let err = Baseline::parse(&rendered).unwrap_err();
        assert!(err.contains("placeholder"), "{err}");
        // A reason that merely mentions real context still passes.
        let ok = Baseline::render(&findings, "unwrap is test-only scaffolding");
        assert!(Baseline::parse(&ok).is_ok());
    }

    #[test]
    fn baseline_apply_marks_counts_and_reports_stale() {
        let base = Baseline::parse(
            r#"{"schema": "dlp-lint/baseline/v1", "findings": [
                {"rule": "E201", "file": "f.rs", "token": "unwrap", "count": 2, "reason": "r"},
                {"rule": "D004", "file": "g.rs", "token": "m", "reason": "gone"}
            ]}"#,
        )
        .unwrap();
        let mut findings = vec![
            finding("E201", "f.rs", "unwrap"),
            finding("E201", "f.rs", "unwrap"),
            finding("E201", "f.rs", "unwrap"),
        ];
        let stale = base.apply(&mut findings);
        assert_eq!(findings.iter().filter(|f| f.baselined).count(), 2);
        assert!(!findings[2].baselined);
        assert_eq!(stale, 1); // the D004 entry no longer matches anything
    }

    #[test]
    fn baseline_rejects_unknown_rule_and_empty_reason() {
        let bad_rule = r#"{"schema": "dlp-lint/baseline/v1", "findings": [
            {"rule": "Z999", "file": "f.rs", "token": "x", "reason": "r"}]}"#;
        assert!(Baseline::parse(bad_rule).is_err());
        let bad_reason = r#"{"schema": "dlp-lint/baseline/v1", "findings": [
            {"rule": "E201", "file": "f.rs", "token": "x", "reason": "  "}]}"#;
        assert!(Baseline::parse(bad_reason).is_err());
    }

    #[test]
    fn json_output_is_parseable_by_own_parser_and_escapes() {
        let mut f = finding("E201", "weird\"path\\x.rs", "unwrap");
        f.message = "line1\nline2".into();
        let out = render_json(&[f], 3);
        // Self-consistency: the diagnostics JSON must parse with the
        // same minimal parser used for baselines.
        let v = super::json::parse(&out).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.iter().any(|(k, v)| k == "schema"
            && v.as_str() == Some(super::DIAG_SCHEMA)));
    }
}
