//! A minimal item-level recursive-descent parser over the token
//! stream from [`crate::lexer`].
//!
//! The semantic rule families (S5xx shard-safety, L6xx leap-contract,
//! transitive P301/F103) need more than tokens: which functions exist,
//! which type each method belongs to, what each body calls, and which
//! fields it assigns. That is *all* they need — so this parser builds
//! exactly that and nothing more: no expression trees, no types, no
//! lifetimes. It is deliberately lenient (unknown constructs are
//! skipped token-by-token) because it runs on code `rustc` already
//! accepted; the only hard failure is structural — an unbalanced brace
//! or an unterminated signature — which surfaces as a [`ParseError`]
//! and becomes an `X003` finding (a hard CI error, since every
//! downstream mask and call-graph edge would be suspect).

use crate::lexer::{Token, TokenKind};

/// Everything the semantic pass needs from one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Every function definition, including trait declarations
    /// (bodyless) and functions nested inside other bodies.
    pub fns: Vec<FnDef>,
    /// Token-index ranges (inclusive) covered by `#[cfg(test)]`-style
    /// attributes — including `cfg(all(test, …))` / `cfg(any(test, …))`
    /// — and by `#[test]` functions.
    pub test_ranges: Vec<(usize, usize)>,
    /// Structural failures; any entry poisons the file's analysis.
    pub errors: Vec<ParseError>,
}

impl FileAst {
    /// Per-token mask of the ranges in [`Self::test_ranges`].
    pub fn test_mask(&self, len: usize) -> Vec<bool> {
        let mut mask = vec![false; len];
        for &(start, end) in &self.test_ranges {
            for m in mask.iter_mut().take(end.min(len.saturating_sub(1)) + 1).skip(start) {
                *m = true;
            }
        }
        mask
    }
}

/// One function definition (or bodyless trait declaration).
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type (last path segment), if any. `None` for
    /// free functions, trait declarations, and nested functions.
    pub self_ty: Option<String>,
    /// Inside a `#[cfg(test)]` item or carrying `#[test]`.
    pub is_test: bool,
    /// Carries `#[cold]`: declared off the hot path, so transitive
    /// hot-path propagation stops here.
    pub is_cold: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Parameters, in order (`self` appears as a parameter named `self`).
    pub params: Vec<Param>,
    /// The body, or `None` for a bodyless declaration.
    pub body: Option<FnBody>,
}

impl FnDef {
    /// `Type::name` or bare `name` for diagnostics.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parameter: its binding name and the identifiers appearing in
/// its type (enough to spot an `Interconnect`-typed argument).
#[derive(Debug)]
pub struct Param {
    /// Binding name (first identifier of the pattern; `self` for the
    /// receiver).
    pub name: String,
    /// Identifiers occurring in the type annotation.
    pub ty: Vec<String>,
}

/// A function body: its token extent plus the calls and field
/// assignments found inside it (excluding nested `fn` items, which
/// get their own [`FnDef`]).
#[derive(Debug)]
pub struct FnBody {
    /// Inclusive token-index range from the opening `{` to the
    /// matching `}`.
    pub range: (usize, usize),
    /// Call sites, in source order.
    pub calls: Vec<Call>,
    /// `self.field… = / += / …` assignments, in source order.
    pub writes: Vec<FieldWrite>,
}

/// One call site.
#[derive(Debug)]
pub struct Call {
    /// Callee name (the identifier before the argument list).
    pub name: String,
    /// True for `recv.name(…)` method-call syntax.
    pub method: bool,
    /// For method calls: the dotted receiver chain, outermost first
    /// (`self.icnt.try_send_fwd(…)` → `["self", "icnt"]`). Empty when
    /// the receiver is not a plain field chain (e.g. a call result).
    pub recv: Vec<String>,
    /// For path calls `Qual::name(…)`: the segment before the final
    /// `::` (`Vec`, `Self`, a module name, …).
    pub qual: Option<String>,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// One `self.…` field assignment (plain or compound).
#[derive(Debug)]
pub struct FieldWrite {
    /// The dotted path, starting with `self`.
    pub path: Vec<String>,
    /// 1-based line of the `self` token.
    pub line: u32,
    /// 1-based column of the `self` token.
    pub col: u32,
}

/// A structural parse failure.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line nearest the failure.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

/// Attribute facts gathered ahead of an item.
#[derive(Debug, Default, Clone, Copy)]
struct Attrs {
    /// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[cfg(any(test, …))]`
    /// — but not `#[cfg(not(test))]`.
    test: bool,
    /// `#[test]` (the item is a test function).
    test_fn: bool,
    /// `#[cold]`.
    cold: bool,
    /// Token index of the first attribute's `#`, for range marking.
    start: Option<usize>,
}

/// Item-parsing context threaded through nesting.
#[derive(Clone)]
struct Ctx {
    self_ty: Option<String>,
    in_test: bool,
}

/// Parse one file's token stream into its [`FileAst`].
pub fn parse(tokens: &[Token]) -> FileAst {
    let mut p = Parser { t: tokens, out: FileAst::default() };
    let ctx = Ctx { self_ty: None, in_test: false };
    p.items(0, tokens.len(), &ctx);
    p.out
}

struct Parser<'a> {
    t: &'a [Token],
    out: FileAst,
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "let", "else", "fn",
    "unsafe", "ref", "mut", "box", "break", "continue", "where", "impl", "dyn",
];

impl Parser<'_> {
    fn p(&self, i: usize, c: char) -> bool {
        self.t
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.t.get(i).and_then(|t| (t.kind == TokenKind::Ident).then_some(t.text.as_str()))
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.ident(i) == Some(kw)
    }

    fn line_of(&self, i: usize) -> u32 {
        self.t.get(i.min(self.t.len().saturating_sub(1))).map_or(0, |t| t.line)
    }

    fn err(&mut self, i: usize, msg: &str) {
        let line = self.line_of(i);
        self.out.errors.push(ParseError { line, msg: msg.to_string() });
    }

    /// Index just past the `]` of the attribute starting at `i` (`#`),
    /// or `i + 1` if it is not an attribute after all.
    fn attr_end(&self, i: usize) -> usize {
        let open = if self.p(i + 1, '[') {
            i + 1
        } else if self.p(i + 1, '!') && self.p(i + 2, '[') {
            i + 2
        } else {
            return i + 1;
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < self.t.len() {
            if self.p(j, '[') {
                depth += 1;
            } else if self.p(j, ']') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.t.len()
    }

    /// Collect consecutive attributes starting at `i`; returns the
    /// gathered facts and the index of the first non-attribute token.
    fn attrs(&mut self, mut i: usize, end: usize) -> (Attrs, usize) {
        let mut a = Attrs::default();
        while i < end && self.p(i, '#') {
            let after = self.attr_end(i);
            if after == i + 1 {
                break; // stray `#`, not an attribute
            }
            if a.start.is_none() {
                a.start = Some(i);
            }
            let inner_start = if self.p(i + 1, '!') { i + 3 } else { i + 2 };
            let inner = &self.t[inner_start..after.saturating_sub(1).max(inner_start)];
            match inner.first().map(|t| t.text.as_str()) {
                Some("cfg") => a.test |= cfg_marks_test(inner),
                Some("test") if inner.len() == 1 => a.test_fn = true,
                Some("cold") if inner.len() == 1 => a.cold = true,
                _ => {}
            }
            i = after;
        }
        (a, i)
    }

    /// Index of the `}` matching the `{` at `i`, or an error.
    fn brace_match(&mut self, i: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.t.len() {
            if self.p(j, '{') {
                depth += 1;
            } else if self.p(j, '}') {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            j += 1;
        }
        self.err(i, "unbalanced braces: `{` with no matching `}`");
        None
    }

    /// Skip a balanced `<…>` generic group starting at `i` (`<`).
    /// Returns the index just past the matching `>`. Arrow tokens
    /// (`->`) inside (e.g. `F: Fn(u64) -> u64`) do not count as
    /// closing angles.
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.t.len() {
            if self.p(j, '-') && self.p(j + 1, '>') {
                j += 2;
                continue;
            }
            if self.p(j, '<') {
                depth += 1;
            } else if self.p(j, '>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.t.len()
    }

    /// Parse the items in `self.t[i..end]`.
    fn items(&mut self, mut i: usize, end: usize, ctx: &Ctx) {
        while i < end {
            let (attrs, j) = self.attrs(i, end);
            let mut j = j;
            // Visibility and qualifiers ahead of the item keyword.
            loop {
                if self.is_kw(j, "pub") {
                    j += 1;
                    if self.p(j, '(') {
                        let mut depth = 0usize;
                        while j < end {
                            if self.p(j, '(') {
                                depth += 1;
                            } else if self.p(j, ')') {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                } else if self.is_kw(j, "unsafe") || self.is_kw(j, "async") {
                    j += 1;
                } else if self.is_kw(j, "const") && self.is_kw(j + 1, "fn") {
                    j += 1; // `const fn`
                } else if self.is_kw(j, "extern")
                    && self.t.get(j + 1).is_some_and(|t| t.kind == TokenKind::Str)
                    && self.is_kw(j + 2, "fn")
                {
                    j += 2;
                } else {
                    break;
                }
            }
            let item_end = match self.ident(j) {
                Some("mod") if self.ident(j + 1).is_some() => {
                    if self.p(j + 2, '{') {
                        let Some(close) = self.brace_match(j + 2) else { return };
                        let inner =
                            Ctx { self_ty: None, in_test: ctx.in_test || attrs.test };
                        self.items(j + 3, close, &inner);
                        close + 1
                    } else {
                        j + 3 // `mod name;`
                    }
                }
                Some("impl") => self.item_impl(j, end, ctx, attrs),
                Some("trait") => {
                    // Scan to the trait's `{` at angle depth 0; the
                    // bounds list may hold `Fn(..) -> ..` arrows.
                    let mut k = j + 1;
                    let mut angles = 0usize;
                    while k < end && !(angles == 0 && self.p(k, '{')) && !self.p(k, ';') {
                        if self.p(k, '-') && self.p(k + 1, '>') {
                            k += 2;
                            continue;
                        }
                        if self.p(k, '<') {
                            angles += 1;
                        } else if self.p(k, '>') {
                            angles = angles.saturating_sub(1);
                        }
                        k += 1;
                    }
                    if k < end && self.p(k, '{') {
                        let Some(close) = self.brace_match(k) else { return };
                        let inner =
                            Ctx { self_ty: None, in_test: ctx.in_test || attrs.test };
                        self.items(k + 1, close, &inner);
                        close + 1
                    } else {
                        k + 1
                    }
                }
                Some("fn") => self.item_fn(j, attrs, ctx),
                Some("struct") | Some("enum") | Some("union") | Some("static")
                | Some("type") | Some("use") | Some("const") => self.skip_item(j + 1),
                Some("macro_rules") if self.p(j + 1, '!') => {
                    // `macro_rules! name { … }`
                    let mut k = j + 2;
                    while k < self.t.len() && !self.p(k, '{') {
                        k += 1;
                    }
                    match self.brace_match(k) {
                        Some(close) => close + 1,
                        None => return,
                    }
                }
                _ => j + 1,
            };
            if attrs.test || attrs.test_fn {
                let start = attrs.start.unwrap_or(i);
                self.out.test_ranges.push((start, item_end.saturating_sub(1).max(start)));
            }
            i = item_end.max(i + 1);
        }
    }

    /// Parse an `impl` item; `j` sits on the `impl` keyword. Returns
    /// the index just past the item.
    fn item_impl(&mut self, j: usize, end: usize, ctx: &Ctx, attrs: Attrs) -> usize {
        let mut k = j + 1;
        if self.p(k, '<') {
            k = self.skip_angles(k);
        }
        // Walk the header up to `{`; the self type is the last
        // angle-depth-0 path segment (after `for`, if present).
        let mut self_ty: Option<String> = None;
        let mut angles = 0usize;
        let mut saw_where = false;
        while k < end && !(angles == 0 && self.p(k, '{')) && !self.p(k, ';') {
            if self.p(k, '-') && self.p(k + 1, '>') {
                k += 2;
                continue;
            }
            if self.p(k, '<') {
                angles += 1;
            } else if self.p(k, '>') {
                angles = angles.saturating_sub(1);
            } else if angles == 0 {
                if let Some(name) = self.ident(k) {
                    if name == "where" {
                        saw_where = true;
                    } else if name == "for" {
                        self_ty = None; // restart: the type follows `for`
                    } else if !saw_where {
                        self_ty = Some(name.to_string());
                    }
                }
            }
            k += 1;
        }
        if k >= end || self.p(k, ';') {
            return k + 1;
        }
        let Some(close) = self.brace_match(k) else {
            return self.t.len();
        };
        let inner = Ctx { self_ty, in_test: ctx.in_test || attrs.test };
        self.items(k + 1, close, &inner);
        close + 1
    }

    /// Parse a `fn` item; `j` sits on the `fn` keyword. Returns the
    /// index just past the item (past `;` or the body's `}`).
    fn item_fn(&mut self, j: usize, attrs: Attrs, ctx: &Ctx) -> usize {
        let Some(name) = self.ident(j + 1).map(str::to_string) else {
            return j + 2; // `fn(..)` pointer type or malformed input
        };
        let (fn_line, fn_col) = (self.t[j].line, self.t[j].col);
        let mut k = j + 2;
        if self.p(k, '<') {
            k = self.skip_angles(k);
        }
        let mut params = Vec::new();
        if self.p(k, '(') {
            let (parsed, after) = self.params(k);
            params = parsed;
            k = after;
        }
        // Scan past return type and where clause to the body or `;`.
        let mut angles = 0usize;
        while k < self.t.len() && !(angles == 0 && (self.p(k, '{') || self.p(k, ';'))) {
            if self.p(k, '-') && self.p(k + 1, '>') {
                k += 2;
                continue;
            }
            if self.p(k, '<') {
                angles += 1;
            } else if self.p(k, '>') {
                angles = angles.saturating_sub(1);
            }
            k += 1;
        }
        if k >= self.t.len() {
            self.err(j, &format!("unterminated signature of `fn {name}`"));
            return self.t.len();
        }
        let is_test = ctx.in_test || attrs.test || attrs.test_fn;
        if self.p(k, ';') {
            self.out.fns.push(FnDef {
                name,
                self_ty: ctx.self_ty.clone(),
                is_test,
                is_cold: attrs.cold,
                line: fn_line,
                col: fn_col,
                params,
                body: None,
            });
            return k + 1;
        }
        let Some(close) = self.brace_match(k) else {
            return self.t.len();
        };
        let body = self.body(k, close, ctx, is_test);
        self.out.fns.push(FnDef {
            name,
            self_ty: ctx.self_ty.clone(),
            is_test,
            is_cold: attrs.cold,
            line: fn_line,
            col: fn_col,
            params,
            body: Some(body),
        });
        close + 1
    }

    /// Parse a parenthesised parameter list; `k` sits on `(`. Returns
    /// the parameters and the index just past the closing `)`.
    fn params(&mut self, k: usize) -> (Vec<Param>, usize) {
        let mut params = Vec::new();
        let mut depth = 0usize;
        let mut angles = 0usize;
        let mut j = k;
        let mut seg: Vec<usize> = Vec::new(); // token indices of the segment
        let mut close = self.t.len();
        while j < self.t.len() {
            if self.p(j, '(') {
                depth += 1;
                if depth > 1 {
                    seg.push(j);
                }
            } else if self.p(j, ')') {
                depth -= 1;
                if depth == 0 {
                    if !seg.is_empty() {
                        if let Some(p) = self.param_from(&seg) {
                            params.push(p);
                        }
                    }
                    close = j;
                    break;
                }
                seg.push(j);
            } else if self.p(j, '<') {
                angles += 1;
                seg.push(j);
            } else if self.p(j, '>') && !self.p(j.wrapping_sub(1), '-') {
                angles = angles.saturating_sub(1);
                seg.push(j);
            } else if self.p(j, ',') && depth == 1 && angles == 0 {
                if let Some(p) = self.param_from(&seg) {
                    params.push(p);
                }
                seg.clear();
            } else {
                seg.push(j);
            }
            j += 1;
        }
        (params, close + 1)
    }

    /// Build a [`Param`] from the token indices of one comma-separated
    /// parameter segment.
    fn param_from(&self, seg: &[usize]) -> Option<Param> {
        let colon = seg.iter().position(|&i| {
            self.p(i, ':') && !self.p(i + 1, ':') && !seg.contains(&(i.wrapping_sub(1)))
                || self.p(i, ':') && !self.p(i + 1, ':') && !self.p(i.wrapping_sub(1), ':')
        });
        let name_part = match colon {
            Some(c) => &seg[..c],
            None => seg,
        };
        let name = name_part.iter().find_map(|&i| {
            let id = self.ident(i)?;
            (id != "mut").then(|| id.to_string())
        })?;
        let ty = match colon {
            Some(c) => seg[c + 1..]
                .iter()
                .filter_map(|&i| self.ident(i).map(str::to_string))
                .collect(),
            None => Vec::new(),
        };
        Some(Param { name, ty })
    }

    /// Scan a body's tokens (`open`/`close` are the brace indices) for
    /// calls, field writes, and nested functions.
    fn body(&mut self, open: usize, close: usize, ctx: &Ctx, is_test: bool) -> FnBody {
        let mut calls = Vec::new();
        let mut writes = Vec::new();
        let mut j = open + 1;
        while j < close {
            // Nested `fn` item: parse it as its own FnDef and skip it.
            if self.is_kw(j, "fn") && self.ident(j + 1).is_some() {
                let nested_ctx = Ctx { self_ty: None, in_test: ctx.in_test || is_test };
                let after = self.item_fn(j, Attrs::default(), &nested_ctx);
                if is_test {
                    if let Some(f) = self.out.fns.last_mut() {
                        f.is_test = true;
                    }
                }
                j = after.max(j + 1);
                continue;
            }
            // `self.a.b = / += / …` field writes.
            if self.is_kw(j, "self") && self.p(j + 1, '.') && self.ident(j + 2).is_some() {
                let mut path = vec!["self".to_string()];
                let mut k = j + 1;
                while self.p(k, '.') && self.ident(k + 1).is_some() {
                    path.push(self.t[k + 1].text.clone());
                    k += 2;
                }
                if self.is_assign(k) {
                    writes.push(FieldWrite {
                        path,
                        line: self.t[j].line,
                        col: self.t[j].col,
                    });
                }
                // Fall through: a trailing `.call(` on the same chain
                // is picked up by the call scan below.
            }
            // Calls: `name(…)`, `name::<…>(…)` preceded by `.` / `::` / nothing.
            if let Some(name) = self.ident(j) {
                if !KEYWORDS_NOT_CALLS.contains(&name) {
                    let mut after = j + 1;
                    if self.p(after, ':') && self.p(after + 1, ':') && self.p(after + 2, '<') {
                        after = self.skip_angles(after + 2);
                    }
                    if self.p(after, '(') && !self.p(j + 1, '!') {
                        let call = self.classify_call(j, name);
                        calls.push(call);
                    }
                }
            }
            j += 1;
        }
        FnBody { range: (open, close), calls, writes }
    }

    /// Is the token at `k` the start of an assignment operator
    /// (`=`, `+=`, `<<=`, …) rather than a comparison?
    fn is_assign(&self, k: usize) -> bool {
        if self.p(k, '=') {
            return !self.p(k + 1, '=');
        }
        let compound = ['+', '-', '*', '/', '%', '&', '|', '^'];
        if compound.iter().any(|&c| self.p(k, c)) && self.p(k + 1, '=') && !self.p(k + 2, '=') {
            return true;
        }
        // `<<=` / `>>=`
        (self.p(k, '<') && self.p(k + 1, '<') && self.p(k + 2, '='))
            || (self.p(k, '>') && self.p(k + 1, '>') && self.p(k + 2, '='))
    }

    /// Classify the call whose name identifier is at `j`.
    fn classify_call(&self, j: usize, name: &str) -> Call {
        let (line, col) = (self.t[j].line, self.t[j].col);
        if self.p(j.wrapping_sub(1), '.') {
            // Method call: walk the dotted receiver chain backwards.
            let mut recv = Vec::new();
            let mut k = j - 1; // the `.`
            while k > 0 {
                let Some(id) = self.ident(k - 1) else { break };
                recv.push(id.to_string());
                k -= 1;
                if k > 0 && self.p(k - 1, '.') {
                    k -= 1;
                } else {
                    break;
                }
            }
            recv.reverse();
            return Call { name: name.to_string(), method: true, recv, qual: None, line, col };
        }
        if j >= 2 && self.p(j - 1, ':') && self.p(j - 2, ':') {
            let qual = self.ident(j.wrapping_sub(3)).map(str::to_string).or_else(|| {
                // `Foo::<T>::new` — the qualifier sits before a
                // turbofish; walk back over one balanced angle group.
                if self.p(j.wrapping_sub(3), '>') {
                    let mut depth = 0usize;
                    let mut k = j - 3;
                    loop {
                        if self.p(k, '>') {
                            depth += 1;
                        } else if self.p(k, '<') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    self.ident(k.wrapping_sub(1)).map(str::to_string)
                } else {
                    None
                }
            });
            return Call { name: name.to_string(), method: false, recv: Vec::new(), qual, line, col };
        }
        Call { name: name.to_string(), method: false, recv: Vec::new(), qual: None, line, col }
    }

    /// Skip a non-fn item starting just past its keyword: to a `;` at
    /// brace depth 0, or past the first depth-0 brace block (whichever
    /// ends the item). Returns the index just past the item.
    fn skip_item(&mut self, mut j: usize) -> usize {
        let mut depth = 0usize;
        while j < self.t.len() {
            if self.p(j, '{') {
                depth += 1;
            } else if self.p(j, '}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    // `struct S { … }` ends here; `= Foo { … };` has a
                    // trailing `;` which the `;`-check below would also
                    // accept — stopping at the brace is right for both
                    // (the stray `;` is skipped as an empty item).
                    return j + 1;
                }
            } else if self.p(j, ';') && depth == 0 {
                return j + 1;
            }
            j += 1;
        }
        j
    }
}

/// Does a `cfg(…)` attribute body (tokens inside `[…]`, starting with
/// the `cfg` identifier) mark the item as test-only? `test` counts
/// under `cfg(...)`, `all(...)`, `any(...)` — but never under
/// `not(...)`.
fn cfg_marks_test(s: &[Token]) -> bool {
    let mut stack: Vec<&str> = Vec::new();
    let mut j = 0usize;
    while j < s.len() {
        let t = &s[j];
        if t.kind == TokenKind::Ident {
            let next_is_open = s
                .get(j + 1)
                .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
            if next_is_open {
                stack.push(t.text.as_str());
                j += 2;
                continue;
            }
            if t.text == "test"
                && stack.first() == Some(&"cfg")
                && !stack.contains(&"not")
            {
                return true;
            }
        } else if t.kind == TokenKind::Punct && t.text == ")" {
            stack.pop();
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast(src: &str) -> FileAst {
        parse(&lex(src).tokens)
    }

    #[test]
    fn fns_in_impls_carry_their_self_type() {
        let a = ast("impl Sm { fn cycle(&mut self, now: u64) -> u64 { now } }\n\
                     impl fmt::Display for Gpu { fn fmt(&self) {} }\n\
                     fn free() {}");
        let names: Vec<_> = a.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(names, ["Sm::cycle", "Gpu::fmt", "free"]);
        assert!(a.errors.is_empty());
    }

    #[test]
    fn trait_decls_are_bodyless_and_default_methods_parse() {
        let a = ast("trait Clocked { fn cycle(&mut self, now: u64); fn idle(&self) -> bool { true } }");
        assert_eq!(a.fns.len(), 2);
        assert!(a.fns[0].body.is_none());
        assert!(a.fns[1].body.is_some());
    }

    #[test]
    fn calls_classify_method_path_and_free() {
        let a = ast(
            "fn f(&mut self) { self.icnt.try_send_fwd(0); Vec::new(); helper(1); \
             x.iter().collect::<Vec<_>>(); }",
        );
        let b = a.fns[0].body.as_ref().unwrap();
        let get = |n: &str| b.calls.iter().find(|c| c.name == n).unwrap();
        let send = get("try_send_fwd");
        assert!(send.method);
        assert_eq!(send.recv, ["self", "icnt"]);
        assert_eq!(get("new").qual.as_deref(), Some("Vec"));
        assert!(!get("helper").method);
        assert!(get("helper").qual.is_none());
        assert!(b.calls.iter().any(|c| c.name == "collect"), "turbofish call missed");
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let a = ast("fn f() { vec![1]; panic!(\"x\"); if (a) {} while (b) {} match (c) {} }");
        let b = a.fns[0].body.as_ref().unwrap();
        assert!(b.calls.is_empty(), "{:?}", b.calls);
    }

    #[test]
    fn field_writes_catch_plain_and_compound_assignments() {
        let a = ast(
            "fn f(&mut self) { self.stats.hits += 1; self.last = Some(3); \
             if self.stats.hits == 2 {} self.mask <<= 1; let x = self.stats.misses; }",
        );
        let b = a.fns[0].body.as_ref().unwrap();
        let paths: Vec<String> = b.writes.iter().map(|w| w.path.join(".")).collect();
        assert_eq!(paths, ["self.stats.hits", "self.last", "self.mask"]);
    }

    #[test]
    fn cfg_test_variants_mark_ranges_and_not_test_does_not() {
        for attr in ["#[cfg(test)]", "#[cfg(all(test, feature = \"x\"))]", "#[cfg(any(test, doc))]"] {
            let a = ast(&format!("{attr}\nmod tests {{ fn helper() {{}} }}\nfn live() {{}}"));
            assert_eq!(a.test_ranges.len(), 1, "{attr}");
            assert!(a.fns.iter().find(|f| f.name == "helper").unwrap().is_test, "{attr}");
            assert!(!a.fns.iter().find(|f| f.name == "live").unwrap().is_test, "{attr}");
        }
        let a = ast("#[cfg(not(test))]\nmod live { fn helper() {} }");
        assert!(a.test_ranges.is_empty());
        assert!(!a.fns[0].is_test);
    }

    #[test]
    fn test_attr_marks_a_single_fn() {
        let a = ast("#[test]\nfn check() { assert!(true); }\nfn live() {}");
        assert!(a.fns.iter().find(|f| f.name == "check").unwrap().is_test);
        assert!(!a.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert_eq!(a.test_ranges.len(), 1);
    }

    #[test]
    fn cold_attr_and_params_are_recorded() {
        let a = ast("#[cold]\nfn slow(report: &HangReport, n: u64) {}");
        let f = &a.fns[0];
        assert!(f.is_cold);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "report");
        assert!(f.params[0].ty.iter().any(|t| t == "HangReport"));
    }

    #[test]
    fn generic_arrows_do_not_derail_the_signature_scan() {
        let a = ast("fn apply<F: Fn(u64) -> u64>(&self, f: F) -> u64 { f(3) }\nfn after() {}");
        assert_eq!(a.fns.len(), 2);
        assert!(a.fns[0].body.is_some());
        assert_eq!(a.fns[1].name, "after");
    }

    #[test]
    fn nested_fns_are_split_out_of_the_parent_body() {
        let a = ast("fn outer() { fn inner() { alloc(); } inner(); }");
        assert_eq!(a.fns.len(), 2);
        let inner = a.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner.body.as_ref().unwrap().calls.iter().any(|c| c.name == "alloc"));
        let outer = a.fns.iter().find(|f| f.name == "outer").unwrap();
        let outer_calls: Vec<_> =
            outer.body.as_ref().unwrap().calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_calls, ["inner"], "parent keeps only its own calls");
    }

    #[test]
    fn unbalanced_braces_surface_as_parse_errors() {
        let a = ast("fn broken() { if x { }");
        assert!(!a.errors.is_empty());
    }

    #[test]
    fn struct_and_static_items_are_skipped_whole() {
        let a = ast(
            "struct S { entries: HashMap<u64, u32> }\n\
             static X: Foo = Foo { a: 1 };\n\
             enum E { A, B(u64) }\n\
             fn live() {}",
        );
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "live");
        assert!(a.errors.is_empty());
    }
}
