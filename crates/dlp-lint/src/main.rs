//! `dlp-lint` CLI: lint the workspace against the D/F/E invariant
//! rules and diff the result against an optional baseline.
//!
//! ```text
//! dlp-lint [--root <dir>] [--format text|json] [--baseline <file>]
//!          [--write-baseline <file>] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new
//! findings, `2` usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dlp_lint::{lint_workspace, render_json, render_text, Baseline, RULES};

struct Options {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> String {
    "usage: dlp-lint [--root <dir>] [--format text|json] [--baseline <file>] \
     [--write-baseline <file>] [--list-rules]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match arg.as_str() {
            "--root" => opts.root = Some(PathBuf::from(value("--root")?)),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`\n{}", usage())),
                }
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Ascend from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        for r in RULES {
            println!("{} {:<18} {}", r.id, r.name, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found (run inside the repo or pass --root)")?
        }
    };

    let report = lint_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = report.findings;

    if let Some(path) = &opts.write_baseline {
        let rendered = Baseline::render(&findings);
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("dlp-lint: wrote {} entries to {}", findings.len(), path.display());
    }

    let mut stale = 0usize;
    if let Some(path) = &opts.baseline {
        // A baseline path that does not exist is treated as empty so
        // CI can pass the flag unconditionally.
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let baseline =
                Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            stale = baseline.apply(&mut findings);
        }
    }

    match opts.format {
        Format::Text => print!("{}", render_text(&findings, report.files_scanned)),
        Format::Json => print!("{}", render_json(&findings, report.files_scanned)),
    }
    if stale > 0 {
        eprintln!("dlp-lint: note: {stale} stale baseline slot(s) no longer match — prune them");
    }

    let new = findings.iter().filter(|f| !f.baselined).count();
    Ok(if new == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dlp-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
