//! `dlp-lint` CLI: lint the workspace against the D/F/E invariant
//! rules and diff the result against an optional baseline.
//!
//! ```text
//! dlp-lint [--root <dir>] [--format text|json] [--baseline <file>]
//!          [--write-baseline <file> --reason <text>] [--list-rules]
//!          [--validate-diagnostics <file>]
//! ```
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new
//! findings, `2` usage or I/O error — including X003 parse failures
//! of the semantic pass, which are hard errors, not findings a
//! baseline may absorb.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dlp_lint::{
    json, lint_workspace, render_json, render_text, rule_by_id, Baseline, DIAG_SCHEMA, RULES,
    TODO_REASON_MARKER,
};

struct Options {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    reason: Option<String>,
    list_rules: bool,
    validate_diagnostics: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> String {
    "usage: dlp-lint [--root <dir>] [--format text|json] [--baseline <file>] \
     [--write-baseline <file> --reason <text>] [--list-rules] \
     [--validate-diagnostics <file>]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        reason: None,
        list_rules: false,
        validate_diagnostics: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match arg.as_str() {
            "--root" => opts.root = Some(PathBuf::from(value("--root")?)),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`\n{}", usage())),
                }
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--reason" => opts.reason = Some(value("--reason")?),
            "--list-rules" => opts.list_rules = true,
            "--validate-diagnostics" => {
                opts.validate_diagnostics =
                    Some(PathBuf::from(value("--validate-diagnostics")?))
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    // A baseline is a ledger of justified debt: the writer refuses to
    // run without a real justification (the old behaviour emitted a
    // "TODO: justify or fix" placeholder that parse now rejects).
    match (&opts.write_baseline, &opts.reason) {
        (Some(_), None) => {
            return Err(format!("--write-baseline requires --reason <text>\n{}", usage()))
        }
        (Some(_), Some(r)) if r.trim().is_empty() || r.contains(TODO_REASON_MARKER) => {
            return Err("--reason must be a real justification, not empty or a TODO placeholder"
                .to_string())
        }
        (None, Some(_)) => {
            return Err(format!("--reason only applies with --write-baseline\n{}", usage()))
        }
        _ => {}
    }
    Ok(opts)
}

/// Ascend from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        for r in RULES {
            println!("{} {:<24} {}", r.id, r.name, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = &opts.validate_diagnostics {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        validate_diagnostics(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("dlp-lint: {} is valid {DIAG_SCHEMA}", path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found (run inside the repo or pass --root)")?
        }
    };

    let report = lint_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = report.findings;

    // X003 means the semantic pass is blind to part of the tree; that
    // is a hard error (exit 2), never a finding a baseline can absorb.
    let parse_failures: Vec<String> = findings
        .iter()
        .filter(|f| f.rule == "X003")
        .map(|f| format!("{}:{}: {}", f.file, f.line, f.message))
        .collect();
    if !parse_failures.is_empty() {
        return Err(format!("semantic pass failed to parse:\n{}", parse_failures.join("\n")));
    }

    if let Some(path) = &opts.write_baseline {
        let reason = opts.reason.as_deref().unwrap_or_default();
        let rendered = Baseline::render(&findings, reason);
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("dlp-lint: wrote {} entries to {}", findings.len(), path.display());
    }

    let mut stale = 0usize;
    if let Some(path) = &opts.baseline {
        // A baseline path that does not exist is treated as empty so
        // CI can pass the flag unconditionally.
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let baseline =
                Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            stale = baseline.apply(&mut findings);
        }
    }

    match opts.format {
        Format::Text => print!("{}", render_text(&findings, report.files_scanned)),
        Format::Json => print!("{}", render_json(&findings, report.files_scanned)),
    }
    if stale > 0 {
        eprintln!("dlp-lint: note: {stale} stale baseline slot(s) no longer match — prune them");
    }

    let new = findings.iter().filter(|f| !f.baselined).count();
    Ok(if new == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// Validate a diagnostics document against the `dlp-lint/diagnostics/v2`
/// schema: tag, top-level counters, and the exact per-finding field
/// set with the right types (including `family` and the
/// string-or-null `reachable_from`).
fn validate_diagnostics(text: &str) -> Result<(), String> {
    let v = json::parse(text)?;
    let obj = v.as_object().ok_or("root must be an object")?;
    let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let schema = get("schema").and_then(|v| v.as_str()).ok_or("missing \"schema\"")?;
    if schema != DIAG_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{DIAG_SCHEMA}`"));
    }
    get("files_scanned")
        .and_then(|v| v.as_usize())
        .ok_or("missing numeric \"files_scanned\"")?;
    let declared_new =
        get("new_findings").and_then(|v| v.as_usize()).ok_or("missing numeric \"new_findings\"")?;
    let findings = get("findings").and_then(|v| v.as_array()).ok_or("missing \"findings\" array")?;
    let mut counted_new = 0usize;
    for (i, f) in findings.iter().enumerate() {
        let fo = f.as_object().ok_or(format!("finding {i} is not an object"))?;
        let field = |key: &str| {
            fo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or(format!("finding {i} missing \"{key}\""))
        };
        let rule = field("rule")?.as_str().ok_or(format!("finding {i}: \"rule\" not a string"))?;
        let rule_meta =
            rule_by_id(rule).ok_or(format!("finding {i}: unknown rule `{rule}`"))?;
        let family =
            field("family")?.as_str().ok_or(format!("finding {i}: \"family\" not a string"))?;
        if family != rule_meta.group.family() {
            return Err(format!(
                "finding {i}: family `{family}` does not match rule {rule}'s `{}`",
                rule_meta.group.family()
            ));
        }
        for key in ["name", "file", "token", "message", "hint"] {
            field(key)?.as_str().ok_or(format!("finding {i}: \"{key}\" not a string"))?;
        }
        for key in ["line", "col"] {
            field(key)?.as_usize().ok_or(format!("finding {i}: \"{key}\" not a number"))?;
        }
        let reachable = field("reachable_from")?;
        if reachable.as_str().is_none() && !matches!(reachable, json::Value::Null) {
            return Err(format!("finding {i}: \"reachable_from\" must be a string or null"));
        }
        let baselined =
            field("baselined")?.as_bool().ok_or(format!("finding {i}: \"baselined\" not a bool"))?;
        if !baselined {
            counted_new += 1;
        }
    }
    if counted_new != declared_new {
        return Err(format!(
            "new_findings says {declared_new} but {counted_new} findings are unbaselined"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dlp-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
