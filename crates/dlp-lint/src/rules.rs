//! The rule set: what each rule protects and how it is detected.
//!
//! Rules are grouped by the invariant class they guard (see
//! DESIGN.md "Determinism & fidelity invariants"):
//!
//! * **D — determinism.** The fig10/fig11 sweeps are validated by an
//!   FNV-1a golden digest and a byte-identical-across-worker-counts
//!   test; any wall-clock read, ambient randomness, unsanctioned env
//!   read, or std hash-container iteration in simulator state can
//!   silently break both.
//! * **F — fidelity.** Addresses, tags, and cycle counts are `u64` by
//!   contract; a truncating `as` cast or float accumulation in stats
//!   state distorts the paper mechanisms (7-bit insn-ID hash, 4-bit PL
//!   saturation, sampling-period deltas) without failing any test.
//! * **E — error handling.** PR 1 hardened the L1D/L2/icnt/DRAM reply
//!   paths to typed `MemError`/`SimError`; a new `unwrap()` on those
//!   paths re-introduces abort-on-corruption instead of a diagnosable
//!   failure.
//! * **P — performance.** The access path is zero-alloc by design
//!   (PR 2) and the cycle-leap event core probes `next_event` millions
//!   of times per run; a heap allocation inside a per-cycle function
//!   body (`fn cycle`/`fn step`/`fn tick`) silently costs throughput
//!   on every simulated cycle.
//!
//! Detection is token-based (see [`crate::lexer`]): deliberately
//! simple, tuned to this workspace's idioms, with explicit
//! `// dlp-lint: allow(<rule>) -- <reason>` escape hatches where a
//! heuristic is too blunt.

use crate::lexer::{Token, TokenKind};

/// Invariant class a rule belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    /// Reproducibility of simulation results.
    Determinism,
    /// Numeric faithfulness of the modelled mechanisms.
    Fidelity,
    /// Typed-error discipline on memory-system paths.
    ErrorHandling,
    /// Per-cycle hot-path performance discipline.
    Perf,
    /// Crash-safety discipline in the persistence tier.
    Robustness,
    /// Concurrency containment in the sharded epoch engine.
    ShardSafety,
    /// The cycle-leap catch-up contract between `next_event` probes
    /// and the skipped-cycle accounting.
    LeapContract,
    /// Telemetry JSON schema stability.
    Telemetry,
    /// Lint-infrastructure hygiene (directive syntax).
    Meta,
}

impl Group {
    /// Stable kebab-case family tag, emitted per finding in the
    /// `dlp-lint/diagnostics/v2` JSON schema.
    pub fn family(self) -> &'static str {
        match self {
            Group::Determinism => "determinism",
            Group::Fidelity => "fidelity",
            Group::ErrorHandling => "error-handling",
            Group::Perf => "perf",
            Group::Robustness => "robustness",
            Group::ShardSafety => "shard-safety",
            Group::LeapContract => "leap-contract",
            Group::Telemetry => "telemetry",
            Group::Meta => "meta",
        }
    }
}

/// Static description of one rule.
#[derive(Debug)]
pub struct Rule {
    /// Stable identifier (`D001` …), used in directives and baselines.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Invariant class.
    pub group: Group,
    /// One-line description of what the rule protects.
    pub summary: &'static str,
    /// Fix hint attached to every finding.
    pub hint: &'static str,
}

/// All rules, in ID order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D001",
        name: "wall-clock",
        group: Group::Determinism,
        summary: "wall-clock time source (Instant/SystemTime) in simulator code",
        hint: "derive timing from the simulated cycle counter; wall-clock reads belong in \
               dlp-bench telemetry only",
    },
    Rule {
        id: "D002",
        name: "ambient-randomness",
        group: Group::Determinism,
        summary: "ambient randomness (thread_rng/from_entropy/RandomState) in simulator code",
        hint: "thread all randomness from an explicitly seeded generator owned by the config",
    },
    Rule {
        id: "D003",
        name: "env-read",
        group: Group::Determinism,
        summary: "process-environment read inside a simulator crate",
        hint: "route configuration through SimConfig/ExperimentConfig; env access lives behind \
               the OnceLock shims in dlp-bench",
    },
    Rule {
        id: "D004",
        name: "hash-iteration",
        group: Group::Determinism,
        summary: "iteration over a std HashMap/HashSet (nondeterministic order)",
        hint: "iterate sorted keys (collect + sort) or switch to BTreeMap; for provably \
               order-independent reductions add an allow directive stating why",
    },
    Rule {
        id: "F101",
        name: "truncating-cast",
        group: Group::Fidelity,
        summary: "truncating `as` cast of an address/cycle-typed value",
        hint: "keep addresses and cycles u64 end-to-end; mask explicitly before narrowing \
               (e.g. `(x & mask) as usize`) so the truncation is intentional and visible",
    },
    Rule {
        id: "F102",
        name: "float-state",
        group: Group::Fidelity,
        summary: "float-typed field or parameter in simulator state",
        hint: "accumulate statistics in integers (counts, sums); compute ratios as f64 only \
               at report/figure-rendering time",
    },
    Rule {
        id: "F103",
        name: "wrapping-arithmetic",
        group: Group::Fidelity,
        summary: "wrapping integer arithmetic (.wrapping_add/_sub/_mul) in simulator code",
        hint: "use checked_* and propagate a typed error — a silent wraparound corrupts \
               addresses, cycle counts, and cursors without failing any test; for deliberate \
               modular arithmetic (FNV hashes, PRNG mixers) add an allow directive stating why",
    },
    Rule {
        id: "E201",
        name: "unwrap-in-sim",
        group: Group::ErrorHandling,
        summary: "`.unwrap()` in simulator code",
        hint: "propagate a typed MemError/SimError (or restructure with let-else) so memory \
               corruption is diagnosable instead of aborting",
    },
    Rule {
        id: "E202",
        name: "expect-in-sim",
        group: Group::ErrorHandling,
        summary: "`.expect()` in simulator code",
        hint: "propagate a typed MemError/SimError carrying the same context the expect \
               message had",
    },
    Rule {
        id: "E203",
        name: "panic-in-sim",
        group: Group::ErrorHandling,
        summary: "panicking macro (panic!/unreachable!/todo!/unimplemented!) in simulator code",
        hint: "return a typed error for reachable states; use debug_assert! for genuine \
               internal invariants",
    },
    Rule {
        id: "P301",
        name: "hot-path-alloc",
        group: Group::Perf,
        summary: "heap allocation inside a per-cycle hot function (fn cycle / fn step / \
                  fn tick / fn step_local / fn run_round)",
        hint: "preallocate in the constructor and reuse the buffer (clear + extend), or move \
               the allocation off the per-cycle path; for cold error/report arms add an allow \
               directive stating why the allocation cannot run per cycle",
    },
    Rule {
        id: "P302",
        name: "eager-trace-materialization",
        group: Group::Perf,
        summary: "function returns a fully materialized `Vec<TraceOp>` warp trace",
        hint: "warp traces are streamed (OpStream/GenStream) so resident memory stays O(1) \
               per warp; return a `Box<dyn OpStream>` (or take `&mut Vec<TraceOp>` to fill a \
               reused segment buffer) — full materialization belongs only to the \
               compatibility adapter in gpu-sim/src/stream.rs and to test code",
    },
    Rule {
        id: "R401",
        name: "non-atomic-store-write",
        group: Group::Robustness,
        summary: "raw filesystem mutation in the store tier (bypasses the atomic \
                  write/fsync/rename discipline)",
        hint: "mutate store state only through dlp_store::atomic (atomic_write, append_line, \
               move_into, truncate, remove_file) so a crash at any instruction leaves either \
               the old bytes or the new bytes, never a torn file",
    },
    Rule {
        id: "S501",
        name: "concurrency-outside-shard",
        group: Group::ShardSafety,
        summary: "concurrency primitive (Mutex/RwLock/atomics/thread/channel) in sim-tier \
                  code outside gpu-sim/src/shard.rs",
        hint: "all threading lives in the sharded epoch engine (gpu-sim/src/shard.rs); \
               simulator state itself must stay single-threaded-deterministic — move the \
               coordination into shard.rs or model it as simulated state",
    },
    Rule {
        id: "S502",
        name: "relaxed-ordering",
        group: Group::ShardSafety,
        summary: "`Ordering::Relaxed` atomic access in sim-tier code",
        hint: "use Release for stores and Acquire for loads — the barrier rendezvous makes \
               the stronger orderings free on x86/aarch64, and Relaxed invites silent \
               reordering bugs the shard-determinism CI job cannot reliably catch",
    },
    Rule {
        id: "S503",
        name: "crossbar-in-shard-parallel",
        group: Group::ShardSafety,
        summary: "direct interconnect/crossbar access from a function reachable inside the \
                  shard-parallel region (run_round/step_local/worker)",
        hint: "cross-shard traffic must go through the deferred-send log (Shard::sends, \
               drained by the coordinator between rounds); touching the shared Interconnect \
               from inside a round races with the other shards",
    },
    Rule {
        id: "L601",
        name: "missing-catchup",
        group: Group::LeapContract,
        summary: "type implements `next_event` but defines no catch-up method \
                  (advance_quiet/leap_catchup/catch_up)",
        hint: "a next_event probe licenses the driver to leap over quiet cycles, so the type \
               must also define how it catches up on the skipped span; add an \
               advance_quiet/leap_catchup method (even if trivial) so the contract is explicit",
    },
    Rule {
        id: "L602",
        name: "stats-write-in-probe",
        group: Group::LeapContract,
        summary: "function reachable from a `next_event` probe mutates a stats counter \
                  without a cycle-delta parameter",
        hint: "next_event probes run a variable number of times per simulated cycle (the \
               leap loop re-probes), so any counter they touch drifts with scheduling; \
               either make the probe read-only or pass the skipped-cycle delta explicitly \
               (a parameter named skipped/delta/ticks/cycles/…)",
    },
    Rule {
        id: "T701",
        name: "telemetry-key-drift",
        group: Group::Telemetry,
        summary: "telemetry JSON keys differ from the schema manifest in EXPERIMENTS.md",
        hint: "consumers parse BENCH_figures.json by key; bump the figures-telemetry \
               version in telemetry.rs AND update the dlp-lint:telemetry-schema manifest \
               in EXPERIMENTS.md in the same change",
    },
    Rule {
        id: "T702",
        name: "telemetry-version-skew",
        group: Group::Telemetry,
        summary: "figures-telemetry schema version in telemetry.rs does not match the \
                  manifest in EXPERIMENTS.md",
        hint: "keep the `dlp-bench/figures-telemetry/vN` tag and the EXPERIMENTS.md \
               manifest's `version:` line in lock-step",
    },
    Rule {
        id: "X001",
        name: "bad-directive",
        group: Group::Meta,
        summary: "malformed dlp-lint suppression directive",
        hint: "directives must read `// dlp-lint: allow(<RULE>[, <RULE>…]) -- <reason>` with a \
               known rule ID and a non-empty reason",
    },
    Rule {
        id: "X002",
        name: "unused-suppression",
        group: Group::Meta,
        summary: "`dlp-lint: allow(...)` directive that matches no finding",
        hint: "the code this directive excused has changed; delete the directive (or fix \
               its placement — it covers its own line and the next) so allows cannot rot",
    },
    Rule {
        id: "X003",
        name: "parse-error",
        group: Group::Meta,
        summary: "the semantic pass could not parse this file",
        hint: "dlp-lint's item parser failed structurally (unbalanced braces or an \
               unterminated signature), so call-graph rules are blind here; this is a hard \
               CI error — simplify the construct or fix the parser",
    },
];

/// Look up a rule by ID.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// A rule hit before suppression/baseline filtering.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// Rule ID (`D004`, …).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending token (identifier/macro name), used for baseline matching.
    pub token: String,
    /// Human-readable message.
    pub message: String,
    /// Call chain from a hot/probe/parallel root to the enclosing
    /// function, for call-graph findings (`"Gpu::step -> hang_report"`).
    pub reachable: Option<String>,
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
    "extract_if",
];

/// Identifiers that carry address or cycle semantics in this
/// workspace; narrowing one with a bare `as` cast is almost always a
/// fidelity bug.
const ADDR_CYCLE_IDENTS: &[&str] = &[
    "addr",
    "wb_addr",
    "line",
    "line_addr",
    "tag",
    "cycle",
    "now",
    "ready",
    "done",
    "born",
    "pc",
    "deadline",
];

/// Narrow integer types that lose bits from a u64.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "usize"];

fn is_punct(t: Option<&Token>, p: char) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(p))
}

fn is_ident(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
}

fn ident_in(t: Option<&Token>, set: &[&str]) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && set.contains(&t.text.as_str()))
}

/// Identifiers that mean "this code is doing host-side concurrency".
/// Any of them in sim-tier code outside the sharded epoch engine is an
/// S501 finding (imports included — an unused import still invites use).
const CONCURRENCY_IDENTS: &[&str] =
    &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc", "JoinHandle", "MutexGuard", "RwLockGuard"];

/// Run every token-level rule over a file. `is_test[i]` marks tokens
/// inside `#[cfg(test)]`-style items, which are exempt from all
/// groups; `in_hot[i]` marks tokens inside bodies of functions in the
/// *transitive* hot set (reachable from `fn cycle`/`step`/`tick`/
/// `step_local`/`run_round`/`next_event`), where P301 applies.
/// `allow_concurrency` exempts the one sim-tier file licensed to hold
/// threading primitives (`gpu-sim/src/shard.rs`) from S501 — never
/// from S502.
pub fn scan(
    tokens: &[Token],
    is_test: &[bool],
    in_hot: &[bool],
    allow_concurrency: bool,
) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let hash_names = collect_hash_container_names(tokens);

    for (i, tok) in tokens.iter().enumerate() {
        if is_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        let at = |rule, token: &str, message: String| RawFinding {
            rule,
            line: tok.line,
            col: tok.col,
            token: token.to_string(),
            message,
            reachable: None,
        };
        let name = tok.text.as_str();

        // D001: wall-clock types.
        if name == "Instant" || name == "SystemTime" {
            out.push(at("D001", name, format!("wall-clock type `{name}` in simulator code")));
        }

        // D002: ambient randomness.
        if matches!(name, "thread_rng" | "from_entropy" | "RandomState") {
            out.push(at("D002", name, format!("ambient randomness via `{name}`")));
        }

        // D003: environment reads (`env::var` and friends).
        if name == "env"
            && is_punct(tokens.get(i + 1), ':')
            && is_punct(tokens.get(i + 2), ':')
            && ident_in(
                tokens.get(i + 3),
                &["var", "var_os", "vars", "vars_os", "set_var", "remove_var"],
            )
        {
            let call = &tokens[i + 3].text;
            out.push(at("D003", call, format!("environment access `env::{call}`")));
        }

        // D004: iteration over a known hash container.
        if hash_names.contains(&tok.text) {
            let method_iter = is_punct(tokens.get(i + 1), '.')
                && ident_in(tokens.get(i + 2), HASH_ITER_METHODS)
                && is_punct(tokens.get(i + 3), '(');
            if method_iter || is_for_loop_subject(tokens, i) {
                out.push(at(
                    "D004",
                    name,
                    format!("iteration over std hash container `{name}` has nondeterministic order"),
                ));
            }
        }

        // F101: truncating casts of address/cycle values.
        if name == "as" && ident_in(tokens.get(i + 1), NARROW_TYPES) {
            if let Some(w) = truncated_watched_ident(tokens, i) {
                let ty = &tokens[i + 1].text;
                out.push(at(
                    "F101",
                    &w,
                    format!("truncating cast of address/cycle value `{w}` to `{ty}`"),
                ));
            }
        }

        // F102: float-typed fields/params in simulator state.
        if (name == "f32" || name == "f64")
            && is_punct(tokens.get(i.wrapping_sub(1)), ':')
            && !is_punct(tokens.get(i.wrapping_sub(2)), ':')
            && tokens.get(i + 1).is_some_and(|t| {
                t.kind == TokenKind::Punct && matches!(t.text.as_str(), "," | ")" | "}" | "=" | ";")
            })
        {
            out.push(at("F102", name, format!("float-typed state (`{name}`) in simulator code")));
        }

        // F103: wrapping arithmetic. Method-call form only — the
        // free-standing `u64::wrapping_add(a, b)` path form is not
        // used in this workspace.
        if matches!(name, "wrapping_add" | "wrapping_sub" | "wrapping_mul")
            && is_punct(tokens.get(i.wrapping_sub(1)), '.')
            && is_punct(tokens.get(i + 1), '(')
        {
            out.push(at(
                "F103",
                name,
                format!("wrapping arithmetic `.{name}()` silently discards overflow"),
            ));
        }

        // E201/E202: .unwrap() / .expect(...).
        if (name == "unwrap" || name == "expect")
            && is_punct(tokens.get(i.wrapping_sub(1)), '.')
            && is_punct(tokens.get(i + 1), '(')
        {
            let (rule, msg) = if name == "unwrap" {
                ("E201", "`.unwrap()` aborts on corrupted simulator state")
            } else {
                ("E202", "`.expect()` aborts on corrupted simulator state")
            };
            out.push(at(rule, name, msg.to_string()));
        }

        // E203: panicking macros.
        if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && is_punct(tokens.get(i + 1), '!')
        {
            out.push(at("E203", name, format!("panicking macro `{name}!` in simulator code")));
        }

        // S501: concurrency primitives outside the sharded epoch engine.
        if !allow_concurrency {
            if CONCURRENCY_IDENTS.contains(&name)
                || (name.starts_with("Atomic") && name.len() > "Atomic".len())
            {
                out.push(at(
                    "S501",
                    name,
                    format!("concurrency primitive `{name}` outside gpu-sim/src/shard.rs"),
                ));
            }
            if name == "thread"
                && is_punct(tokens.get(i + 1), ':')
                && is_punct(tokens.get(i + 2), ':')
            {
                out.push(at(
                    "S501",
                    name,
                    "host-thread access (`thread::…`) outside gpu-sim/src/shard.rs".to_string(),
                ));
            }
        }

        // S502: Ordering::Relaxed — banned everywhere in the sim tier,
        // shard.rs included. (`cmp::Ordering` has no `Relaxed` variant,
        // so the path pattern cannot cross-match it.)
        if name == "Ordering"
            && is_punct(tokens.get(i + 1), ':')
            && is_punct(tokens.get(i + 2), ':')
            && is_ident(tokens.get(i + 3), "Relaxed")
        {
            out.push(at(
                "S502",
                "Relaxed",
                "`Ordering::Relaxed` atomic access in the sim tier".to_string(),
            ));
        }

        // P301: heap allocation inside a per-cycle hot function body.
        if in_hot.get(i).copied().unwrap_or(false) {
            let alloc = match name {
                "Vec" | "Box"
                    if is_punct(tokens.get(i + 1), ':')
                        && is_punct(tokens.get(i + 2), ':')
                        && is_ident(tokens.get(i + 3), "new") =>
                {
                    Some(format!("{name}::new"))
                }
                "vec" if is_punct(tokens.get(i + 1), '!') => Some("vec!".to_string()),
                // `.to_vec()` / `.collect()` / `.collect::<..>()`.
                "to_vec" | "collect"
                    if is_punct(tokens.get(i.wrapping_sub(1)), '.')
                        && (is_punct(tokens.get(i + 1), '(')
                            || is_punct(tokens.get(i + 1), ':')) =>
                {
                    Some(format!(".{name}()"))
                }
                _ => None,
            };
            if let Some(what) = alloc {
                out.push(at(
                    "P301",
                    name,
                    format!("heap allocation `{what}` inside a per-cycle hot function"),
                ));
            }
        }
    }

    out.sort_by_key(|f| (f.line, f.col, f.rule));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.col == b.col);
    out
}

/// Run the trace-tier rule (P302) over a file: a `-> Vec<TraceOp>`
/// return type means the function builds a whole warp's trace in
/// memory, which is exactly the O(warp-length) residency the streaming
/// engine (PR 10) eliminated. Applies to the sim tier and to
/// gpu-workloads; the compatibility adapter (`gpu-sim/src/stream.rs`)
/// is tier-exempt in the engine, and test code is masked here.
pub fn scan_p302(tokens: &[Token], is_test: &[bool]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if is_test[i] || tok.kind != TokenKind::Ident || tok.text != "Vec" {
            continue;
        }
        // `- > Vec < TraceOp >` — the return-type position only; a
        // `&mut Vec<TraceOp>` out-parameter (the segment-buffer idiom)
        // has no `->` before it.
        if is_punct(tokens.get(i.wrapping_sub(1)), '>')
            && is_punct(tokens.get(i.wrapping_sub(2)), '-')
            && is_punct(tokens.get(i + 1), '<')
            && is_ident(tokens.get(i + 2), "TraceOp")
            && is_punct(tokens.get(i + 3), '>')
        {
            out.push(RawFinding {
                rule: "P302",
                line: tok.line,
                col: tok.col,
                token: "Vec<TraceOp>".to_string(),
                message: "returning `Vec<TraceOp>` materializes a whole warp trace eagerly"
                    .to_string(),
                reachable: None,
            });
        }
    }
    out
}

/// Filesystem functions that mutate files in place; calling one in the
/// store tier bypasses the temp+fsync+rename discipline. Reads
/// (`read`, `read_dir`, `read_to_string`, `File::open`) and idempotent
/// directory creation (`create_dir_all`) are fine.
const FS_MUTATORS: &[&str] =
    &["write", "rename", "remove_file", "remove_dir", "remove_dir_all", "copy", "hard_link"];

/// Run the store-tier rule set (R401) over a file: any raw filesystem
/// mutation — `fs::write`-style free functions, `File::create`, or an
/// `OpenOptions` builder — must instead go through the audited helpers
/// in `dlp_store::atomic`, which is the one module exempt from this
/// rule.
pub fn scan_store(tokens: &[Token], is_test: &[bool]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if is_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        let at = |token: &str, message: String| RawFinding {
            rule: "R401",
            line: tok.line,
            col: tok.col,
            token: token.to_string(),
            message,
            reachable: None,
        };
        let path_call = |set: &[&str]| {
            (is_punct(tokens.get(i + 1), ':')
                && is_punct(tokens.get(i + 2), ':')
                && ident_in(tokens.get(i + 3), set))
            .then(|| tokens[i + 3].text.clone())
        };
        match tok.text.as_str() {
            "fs" => {
                if let Some(call) = path_call(FS_MUTATORS) {
                    out.push(at(&call, format!("raw file mutation `fs::{call}` in store tier")));
                }
            }
            "File" => {
                if let Some(call) = path_call(&["create", "create_new", "options"]) {
                    out.push(at(&call, format!("raw file mutation `File::{call}` in store tier")));
                }
            }
            "OpenOptions" if path_call(&["new"]).is_some() => {
                out.push(at("OpenOptions", "raw `OpenOptions` builder in store tier".to_string()));
            }
            _ => {}
        }
    }
    out.sort_by_key(|f| (f.line, f.col, f.rule));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.col == b.col);
    out
}

/// Names declared (anywhere in the file) with a `HashMap`/`HashSet`
/// type annotation or initialised from one of its constructors. A
/// per-file name set is deliberately coarse — shadowing across
/// functions can over-match, which the allow directive handles.
fn collect_hash_container_names(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || (tok.text != "HashMap" && tok.text != "HashSet") {
            continue;
        }
        // Walk backward over a `::`-separated path (`std::collections::HashMap`).
        let mut j = i;
        while j >= 3
            && is_punct(tokens.get(j - 1), ':')
            && is_punct(tokens.get(j - 2), ':')
            && tokens.get(j - 3).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            j -= 3;
        }
        // `name: HashMap<..>` (field/param/let-annotation/struct-literal)
        // or `name = HashMap::new()`.
        let binder = if j >= 2
            && (is_punct(tokens.get(j - 1), ':') || is_punct(tokens.get(j - 1), '='))
            && !is_punct(tokens.get(j - 2), ':')
        {
            tokens.get(j - 2)
        } else {
            None
        };
        if let Some(b) = binder {
            if b.kind == TokenKind::Ident && !names.contains(&b.text) {
                names.push(b.text.clone());
            }
        }
    }
    names
}

/// Is token `i` the subject of a `for … in [&][mut] [self.]name` loop?
fn is_for_loop_subject(tokens: &[Token], i: usize) -> bool {
    // Skip backward over borrow/deref/path noise directly before the name.
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        let skip = (t.kind == TokenKind::Punct && matches!(t.text.as_str(), "&" | "." | "*"))
            || (t.kind == TokenKind::Ident && matches!(t.text.as_str(), "mut" | "self"));
        if skip {
            j -= 1;
        } else {
            break;
        }
    }
    if j == 0 || !is_ident(tokens.get(j - 1), "in") {
        return false;
    }
    // `for <pattern> in` — the pattern is short; look a few tokens back.
    let lo = j.saturating_sub(10);
    tokens[lo..j - 1].iter().any(|t| t.kind == TokenKind::Ident && t.text == "for")
}

/// For an `as` token at `i` (followed by a narrow type), return the
/// watched identifier being truncated, if the cast is unmasked.
fn truncated_watched_ident(tokens: &[Token], i: usize) -> Option<String> {
    if i == 0 {
        return None;
    }
    let prev = &tokens[i - 1];
    if prev.kind == TokenKind::Ident && ADDR_CYCLE_IDENTS.contains(&prev.text.as_str()) {
        return Some(prev.text.clone());
    }
    if !is_punct(Some(prev), ')') {
        return None;
    }
    // `( … ) as uN` — scan the parenthesised expression. A masking or
    // bounding operation inside makes the narrowing intentional.
    let mut depth = 1usize;
    let mut j = i - 1;
    let mut watched: Option<String> = None;
    let mut bounded = false;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "&" | "%" | ">" => bounded = true,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident {
            if matches!(t.text.as_str(), "min" | "rem_euclid" | "clamp") {
                bounded = true;
            }
            if watched.is_none() && ADDR_CYCLE_IDENTS.contains(&t.text.as_str()) {
                watched = Some(t.text.clone());
            }
        }
    }
    if bounded {
        None
    } else {
        watched
    }
}
