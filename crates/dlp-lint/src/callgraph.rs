//! Call graph over the sim-tier symbol table, plus the reachability
//! sweeps the semantic rules run on it.
//!
//! Edge resolution (no type inference — see [`crate::symbols`]):
//!
//! * `Qual::name(…)` path calls resolve only to workspace methods whose
//!   self type is `Qual` (with `Self` mapped to the caller's type). A
//!   qualifier no workspace impl knows (`Vec`, `Box`, `u64`, module
//!   names, …) produces **no** edge — external code is not ours to lint,
//!   and by-name fallback here would wire `Vec::new` to every `fn new`.
//! * `self.name(…)` prefers a method on the caller's own type, falling
//!   back to all same-named workspace methods.
//! * Other method calls resolve by name to workspace *methods* whose
//!   self type has **receiver affinity** with the call's receiver path:
//!   the last receiver segment equals the lowercased type name, is a
//!   ≥3-char substring of it, or contains it (`self.l1d.cycle()` →
//!   `L1dCache::cycle`, `part.cycle()` → `MemoryPartition::cycle`).
//!   Without affinity there is no edge — this is what keeps an iterator
//!   `.collect()` from resolving to `Gpu::collect` and a binheap
//!   `.pop()` from resolving to `Interconnect::pop`.
//! * Free calls resolve by name to every workspace function with that
//!   name (sound over-approximation; free-fn names are near-unique).
//! * `#[cold]` functions take no outgoing edges during a sweep: marking
//!   a function cold both documents and enforces "off the hot path",
//!   and doubles as a codegen hint.
//! * Test functions are outside the graph entirely.

use crate::parser::FnDef;
use crate::symbols::{FnId, Symbols};
use std::collections::HashMap;

/// The workspace call graph: adjacency from caller to callee ids.
pub struct CallGraph {
    edges: HashMap<FnId, Vec<FnId>>,
}

/// Result of a reachability sweep: every function reachable from the
/// roots, with a parent pointer for rendering "how did this get hot".
pub struct Reach {
    parent: HashMap<FnId, Option<FnId>>,
}

impl CallGraph {
    /// Build the graph over the whole symbol table.
    pub fn build(syms: &Symbols<'_>) -> Self {
        let mut edges: HashMap<FnId, Vec<FnId>> = HashMap::new();
        for id in syms.all() {
            let caller = syms.def(id);
            if caller.is_test {
                continue;
            }
            let Some(body) = &caller.body else { continue };
            let mut out: Vec<FnId> = Vec::new();
            for call in &body.calls {
                resolve(syms, caller, call.qual.as_deref(), &call.recv, call.method, &call.name, &mut out);
            }
            out.sort_unstable();
            out.dedup();
            out.retain(|&callee| callee != id); // self-recursion adds nothing
            edges.insert(id, out);
        }
        CallGraph { edges }
    }

    /// Callees of `id`.
    pub fn callees(&self, id: FnId) -> &[FnId] {
        self.edges.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Breadth-first reachability from `roots`. `#[cold]` functions are
    /// never entered (they are the declared escape hatch).
    pub fn reach(&self, syms: &Symbols<'_>, roots: &[FnId]) -> Reach {
        let mut parent: HashMap<FnId, Option<FnId>> = HashMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &callee in self.callees(id) {
                if syms.def(callee).is_cold || syms.def(callee).body.is_none() {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(Some(id));
                    queue.push_back(callee);
                }
            }
        }
        Reach { parent }
    }
}

/// Resolve one call site into zero or more workspace callees.
fn resolve(
    syms: &Symbols<'_>,
    caller: &FnDef,
    qual: Option<&str>,
    recv: &[String],
    method: bool,
    name: &str,
    out: &mut Vec<FnId>,
) {
    if let Some(q) = qual {
        let ty = if q == "Self" { caller.self_ty.as_deref().unwrap_or(q) } else { q };
        if syms.knows_type(ty) {
            out.extend_from_slice(syms.by_ty_name(ty, name));
        }
        // Unknown qualifier: external type or module path — no edge.
        return;
    }
    if method && recv.first().map(String::as_str) == Some("self") && recv.len() == 1 {
        if let Some(ty) = caller.self_ty.as_deref() {
            let own = syms.by_ty_name(ty, name);
            if !own.is_empty() {
                out.extend_from_slice(own);
                return;
            }
        }
        // `self.m()` with no own-type match: trait-dispatched — any
        // workspace method with the name could be the target.
        out.extend(syms.by_name(name).iter().filter(|&&c| syms.def(c).self_ty.is_some()));
        return;
    }
    if method {
        // Non-self receiver: a method call can only land on a method,
        // and only one whose self type plausibly matches the receiver
        // path. No affinity → no edge (see module docs).
        let Some(seg) = recv.iter().rev().find(|s| *s != "self") else { return };
        out.extend(syms.by_name(name).iter().filter(|&&c| {
            syms.def(c).self_ty.as_deref().is_some_and(|ty| recv_matches(seg, ty))
        }));
        return;
    }
    out.extend_from_slice(syms.by_name(name));
}

/// Does a receiver path segment plausibly name a value of type `ty`?
/// Lowercased: exact match, a ≥3-char substring of the type (`l1d` →
/// `L1dCache`, `part` → `MemoryPartition`), or containing the type
/// (`shard_gpu` → `Gpu`). Short segments (`w`, `sm`) only match
/// exactly, so `w.finished()` never reaches `Gpu::finished`.
fn recv_matches(seg: &str, ty: &str) -> bool {
    let seg = seg.trim_start_matches('_').to_ascii_lowercase();
    let ty = ty.to_ascii_lowercase();
    !seg.is_empty()
        && (seg == ty || (seg.len() >= 3 && ty.contains(&seg)) || seg.contains(&ty))
}

impl Reach {
    /// Is `id` in the reachable set?
    pub fn contains(&self, id: FnId) -> bool {
        self.parent.contains_key(&id)
    }

    /// Render the root-to-`id` call chain as `"Root::fn -> helper"`,
    /// or `None` if `id` is unreachable. A root alone renders as its
    /// own name.
    pub fn chain(&self, syms: &Symbols<'_>, id: FnId) -> Option<String> {
        if !self.contains(id) {
            return None;
        }
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            names.push(syms.def(c).qual_name());
            cur = *self.parent.get(&c)?;
        }
        names.reverse();
        Some(names.join(" -> "))
    }

    /// Iterate the reachable set (unordered).
    pub fn iter(&self) -> impl Iterator<Item = FnId> + '_ {
        self.parent.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{parse, FileAst};

    fn graph_fixture(srcs: &[(&str, &str)]) -> (Vec<FileAst>, Vec<String>) {
        let asts: Vec<FileAst> = srcs.iter().map(|(_, s)| parse(&lex(s).tokens)).collect();
        let rels: Vec<String> = srcs.iter().map(|(r, _)| r.to_string()).collect();
        (asts, rels)
    }

    #[test]
    fn hot_propagates_through_named_calls_but_not_cold_or_external() {
        let (asts, rels) = graph_fixture(&[
            (
                "crates/gpu-sim/src/a.rs",
                "impl Sm { fn cycle(&mut self) { self.helper(); Vec::new(); self.abort(); } \
                 fn helper(&mut self) { shared(); } \
                 #[cold] fn abort(&self) { boxed(); } }",
            ),
            (
                "crates/gpu-mem/src/b.rs",
                "fn shared() { leaf(); } fn leaf() {} fn boxed() {} fn unrelated() {}",
            ),
        ]);
        let pairs: Vec<(&str, &FileAst)> =
            rels.iter().map(String::as_str).zip(asts.iter()).collect();
        let syms = Symbols::build(&pairs);
        let graph = CallGraph::build(&syms);
        let hot = graph.reach(&syms, &syms.roots_named(&["cycle"]));
        let hot_names: Vec<String> = {
            let mut v: Vec<String> =
                hot.iter().map(|id| syms.def(id).qual_name()).collect();
            v.sort();
            v
        };
        assert_eq!(hot_names, ["Sm::cycle", "Sm::helper", "leaf", "shared"]);
        let leaf_id = syms.by_name("leaf")[0];
        assert_eq!(
            hot.chain(&syms, leaf_id).as_deref(),
            Some("Sm::cycle -> Sm::helper -> shared -> leaf")
        );
    }

    #[test]
    fn self_calls_prefer_the_callers_own_type() {
        let (asts, rels) = graph_fixture(&[(
            "crates/gpu-sim/src/a.rs",
            "impl A { fn tick(&mut self) { self.poke(); } fn poke(&mut self) { a_leaf(); } } \
             impl B { fn poke(&mut self) { b_leaf(); } } \
             fn a_leaf() {} fn b_leaf() {}",
        )]);
        let pairs: Vec<(&str, &FileAst)> =
            rels.iter().map(String::as_str).zip(asts.iter()).collect();
        let syms = Symbols::build(&pairs);
        let graph = CallGraph::build(&syms);
        let hot = graph.reach(&syms, &syms.roots_named(&["tick"]));
        assert!(hot.contains(syms.by_name("a_leaf")[0]));
        assert!(!hot.contains(syms.by_name("b_leaf")[0]), "B::poke must not be pulled in");
    }
}
