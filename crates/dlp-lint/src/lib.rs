//! # dlp-lint — static invariants for the DLP simulator workspace
//!
//! A self-contained static analysis pass (hand-rolled lexer, no
//! `syn`, no network dependencies) that enforces the determinism,
//! fidelity, and error-handling invariants the reproduction's
//! headline results rest on — at CI time, before a violation can
//! corrupt a run:
//!
//! * **D rules** — no wall clock, ambient randomness, env reads, or
//!   std hash-container iteration in `dlp-core`/`gpu-mem`/`gpu-sim`
//!   (protects the FNV-1a golden digest and byte-identical parallel
//!   sweeps).
//! * **F rules** — no truncating casts of address/cycle values, no
//!   float-typed simulator state (protects the 7-bit insn-ID hash,
//!   4-bit PL saturation, and sampling-period statistics).
//! * **E rules** — no `unwrap()`/`expect()`/`panic!` in simulator
//!   code (steers to the typed `MemError`/`SimError` paths from the
//!   PR 1 integrity layer).
//! * **R rules** — no raw filesystem mutation in the store tier
//!   (`dlp-store`/`dlp-sweepd`); every write goes through the atomic
//!   temp+fsync+rename helpers so a crash never tears an entry.
//! * **S rules** — shard-safety: concurrency primitives live only in
//!   the sharded epoch engine (`gpu-sim/src/shard.rs`),
//!   `Ordering::Relaxed` is banned, and nothing reachable inside the
//!   shard-parallel region touches the shared interconnect.
//! * **L rules** — leap-contract: every `next_event` implementor
//!   defines a catch-up method, and probe-reachable code never
//!   mutates stats counters without an explicit cycle delta.
//! * **T rules** — the telemetry JSON keys emitted by
//!   `dlp-bench/src/telemetry.rs` stay in lock-step with the schema
//!   manifest (and version) documented in EXPERIMENTS.md.
//!
//! Since PR 8 the engine is a two-pass semantic analyzer: a
//! hand-rolled item-level parser ([`parser`]) feeds a workspace symbol
//! table ([`symbols`]) and call graph ([`callgraph`]), so the hot-path
//! rules (P301/F103) propagate *transitively* through callees of the
//! per-cycle roots instead of matching only the textual body.
//!
//! Findings can be suppressed inline
//! (`// dlp-lint: allow(<rule>) -- <reason>`) or accepted via a
//! checked-in baseline file; CI fails only on *new* findings, and a
//! directive that matches nothing is itself a finding (X002). See the
//! `dlp-lint` binary (`cargo dlp-lint`) and the "Determinism &
//! fidelity invariants" section of DESIGN.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

pub use callgraph::{CallGraph, Reach};
pub use diag::{
    json, render_json, render_text, Baseline, Finding, BASELINE_SCHEMA, DIAG_SCHEMA,
    TODO_REASON_MARKER,
};
pub use engine::{
    check_telemetry, is_sim_tier, is_store_tier, is_trace_tier, lint_source, lint_sources,
    lint_workspace, Report, EXPERIMENTS_REL, TELEMETRY_REL,
};
pub use parser::{parse, FileAst, FnDef};
pub use rules::{rule_by_id, Group, Rule, RULES};
pub use symbols::Symbols;
