//! The analysis engine: ties lexer + rules + suppressions together
//! and scopes them to the simulator tier of the workspace.

use std::path::Path;

use crate::diag::Finding;
use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::rules::{rule_by_id, scan, scan_store, RawFinding};

/// Crates whose `src/` trees carry the full D/F/E rule set. Harness,
/// figure-rendering, and tooling crates (dlp-bench, rd-tools, …) are
/// exempt: wall-clock telemetry, float rendering, and env shims are
/// *supposed* to live there.
const SIM_CRATES: &[&str] = &["dlp-core", "gpu-mem", "gpu-sim"];

/// Crates whose `src/` trees carry the store-tier rule set (R401):
/// everything that persists or serves sweep results. The sim rules do
/// NOT apply here — the store legitimately does I/O, reads env-shimmed
/// config, and reports typed `StoreError`s of its own.
const STORE_CRATES: &[&str] = &["dlp-store", "dlp-sweepd"];

/// The one store-tier file allowed to touch the filesystem raw: it
/// *implements* the atomic write/fsync/rename discipline R401 steers
/// everyone else to.
const STORE_ATOMIC_IMPL: &str = "crates/dlp-store/src/atomic.rs";

/// Does the full simulator rule set apply to this workspace-relative path?
pub fn is_sim_tier(rel: &str) -> bool {
    SIM_CRATES
        .iter()
        .any(|c| rel.strip_prefix(&format!("crates/{c}/src/")).is_some_and(|rest| !rest.is_empty()))
}

/// Does the store-tier rule set (R401) apply to this path?
pub fn is_store_tier(rel: &str) -> bool {
    rel != STORE_ATOMIC_IMPL
        && STORE_CRATES.iter().any(|c| {
            rel.strip_prefix(&format!("crates/{c}/src/")).is_some_and(|rest| !rest.is_empty())
        })
}

/// Lint one source file given its workspace-relative path. Returns an
/// empty list for files outside the simulator and store tiers.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let sim = is_sim_tier(rel);
    let store = is_store_tier(rel);
    if !sim && !store {
        return Vec::new();
    }
    let lexed = lex(src);
    let is_test = test_token_mask(&lexed.tokens);
    let in_hot = hot_fn_token_mask(&lexed.tokens);
    let mut raw = if sim { scan(&lexed.tokens, &is_test, &in_hot) } else { Vec::new() };
    if store {
        raw.extend(scan_store(&lexed.tokens, &is_test));
    }
    let (suppressions, mut directive_findings) = parse_directives(&lexed.comments);
    raw.retain(|f| {
        !suppressions.iter().any(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line))
    });
    raw.append(&mut directive_findings);
    raw.sort_by_key(|f| (f.line, f.col, f.rule));
    raw.into_iter()
        .map(|f| Finding {
            rule: f.rule,
            file: rel.to_string(),
            line: f.line,
            col: f.col,
            token: f.token,
            message: f.message,
            baselined: false,
        })
        .collect()
}

/// Result of linting a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of files lexed and scanned (sim tier only).
    pub files_scanned: usize,
}

/// Walk `root` and lint every simulator-tier source file.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for file in rd_tools::walk::walk_rust_sources(root)? {
        if !is_sim_tier(&file.rel) && !is_store_tier(&file.rel) {
            continue;
        }
        let src = std::fs::read_to_string(&file.abs)?;
        report.files_scanned += 1;
        report.findings.extend(lint_source(&file.rel, &src));
    }
    // Walk order is sorted by rel path and per-file findings are
    // position-sorted, so the report is already deterministic.
    Ok(report)
}

/// Mark every token inside a `#[cfg(test)]` item. Test modules are
/// exempt from all rule groups: unwraps and ad-hoc iteration are fine
/// in assertions, and clippy's `unwrap_used` restriction is likewise
/// relaxed there via `cfg_attr`.
fn test_token_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_attr = p(&tokens[i], '#')
            && p(&tokens[i + 1], '[')
            && id(&tokens[i + 2], "cfg")
            && p(&tokens[i + 3], '(')
            && id(&tokens[i + 4], "test")
            && p(&tokens[i + 5], ')')
            && p(&tokens[i + 6], ']');
        if !is_attr {
            i += 1;
            continue;
        }
        // Mark from the attribute through the end of the annotated
        // item: to the matching `}` of its first brace block, or to a
        // `;` if one comes first (e.g. `#[cfg(test)] use …;`).
        let start = i;
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut entered = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ";" if !entered => break,
                    "{" => {
                        depth += 1;
                        entered = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let end = j.min(tokens.len() - 1);
        for m in &mut mask[start..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Mark every token inside the body of a per-cycle hot function —
/// `fn cycle`, `fn step`, or `fn tick` — where P301 flags heap
/// allocation. The mask covers the brace-matched body only; the
/// signature and the rest of the file stay unmasked. A trait method
/// declaration (`fn cycle(…) -> …;`) has no body and marks nothing.
fn hot_fn_token_mask(tokens: &[Token]) -> Vec<bool> {
    // `step_local` and `run_round` are the sharded epoch engine's
    // per-cycle bodies (crates/gpu-sim/src/shard.rs) — the parallel
    // hot path is held to the same zero-alloc discipline as the
    // sequential one.
    const HOT_FNS: &[&str] = &["cycle", "step", "tick", "step_local", "run_round"];
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        let is_hot_fn = id(&tokens[i], "fn")
            && tokens[i + 1].kind == TokenKind::Ident
            && HOT_FNS.contains(&tokens[i + 1].text.as_str());
        if !is_hot_fn {
            i += 1;
            continue;
        }
        // Walk to the body's opening brace. A `;` first means a
        // bodyless declaration. Signatures hold no braces in this
        // workspace (no brace-typed const generics or defaults).
        let mut j = i + 2;
        while j < tokens.len() && !p(&tokens[j], '{') && !p(&tokens[j], ';') {
            j += 1;
        }
        if j >= tokens.len() || p(&tokens[j], ';') {
            i = j + 1;
            continue;
        }
        let start = j;
        let mut depth = 0usize;
        while j < tokens.len() {
            if p(&tokens[j], '{') {
                depth += 1;
            } else if p(&tokens[j], '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end = j.min(tokens.len() - 1);
        for m in &mut mask[start..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// A parsed `// dlp-lint: allow(<rule>) -- <reason>` directive.
struct Suppression {
    rule: &'static str,
    /// Line the directive sits on; it suppresses findings on this
    /// line (trailing style) and the next (preceding style).
    line: u32,
}

/// Parse suppression directives out of the comment stream. Malformed
/// directives become X001 findings so typos fail loudly instead of
/// silently not suppressing.
fn parse_directives(comments: &[Comment]) -> (Vec<Suppression>, Vec<RawFinding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("dlp-lint:") else {
            continue;
        };
        let mut fail = |why: &str| {
            bad.push(RawFinding {
                rule: "X001",
                line: c.line,
                col: 1,
                token: "dlp-lint".to_string(),
                message: format!("malformed dlp-lint directive: {why}"),
            });
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail("expected `allow(<rule>)` after `dlp-lint:`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("unclosed `allow(` rule list");
            continue;
        };
        let (rule_list, tail) = rest.split_at(close);
        let tail = &tail[1..]; // drop `)`
        let Some(reason) = tail.trim_start().strip_prefix("--") else {
            fail("missing ` -- <reason>` after the rule list");
            continue;
        };
        if reason.trim().is_empty() {
            fail("empty reason after `--`");
            continue;
        }
        let mut ok = true;
        for raw_rule in rule_list.split(',') {
            let rid = raw_rule.trim();
            match rule_by_id(rid) {
                Some(rule) => sups.push(Suppression { rule: rule.id, line: c.line }),
                None => {
                    fail(&format!("unknown rule `{rid}`"));
                    ok = false;
                }
            }
        }
        let _ = ok;
    }
    (sups, bad)
}

fn p(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
}

fn id(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}
