//! The analysis engine: ties lexer + parser + symbol table + call
//! graph + rules together and scopes them to the workspace tiers.
//!
//! Two passes (DESIGN.md §13):
//!
//! 1. **Build.** Every tier file is lexed and parsed into a
//!    [`FileAst`]; the sim-tier ASTs feed one workspace [`Symbols`]
//!    table and [`CallGraph`], from which three reachability sweeps
//!    are computed: the *hot* set (transitive callees of the per-cycle
//!    roots — `cycle`/`step`/`tick`/`step_local`/`run_round`/
//!    `next_event`), the *probe* set (callees of `next_event`), and
//!    the *shard-parallel* set (callees of `run_round`/`step_local`/
//!    `worker`).
//! 2. **Scan.** Token rules run per file with AST-derived test and
//!    hot masks; the semantic rules (S503, L601, L602) run off the
//!    sweeps; suppression directives are applied with per-rule usage
//!    tracking so stale allows surface as X002.

use std::path::Path;

use crate::callgraph::{CallGraph, Reach};
use crate::diag::Finding;
use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use crate::parser::{parse, FileAst};
use crate::rules::{rule_by_id, scan, scan_p302, scan_store, RawFinding};
use crate::symbols::Symbols;

/// Crates whose `src/` trees carry the full D/F/E/P/S/L rule set.
/// Harness, figure-rendering, and tooling crates (dlp-bench, rd-tools,
/// …) are exempt: wall-clock telemetry, float rendering, and env shims
/// are *supposed* to live there.
const SIM_CRATES: &[&str] = &["dlp-core", "gpu-mem", "gpu-sim"];

/// Crates whose `src/` trees carry the store-tier rule set (R401):
/// everything that persists or serves sweep results. The sim rules do
/// NOT apply here — the store legitimately does I/O, reads env-shimmed
/// config, and reports typed `StoreError`s of its own.
const STORE_CRATES: &[&str] = &["dlp-store", "dlp-sweepd"];

/// The one store-tier file allowed to touch the filesystem raw: it
/// *implements* the atomic write/fsync/rename discipline R401 steers
/// everyone else to.
const STORE_ATOMIC_IMPL: &str = "crates/dlp-store/src/atomic.rs";

/// The one sim-tier file allowed to hold concurrency primitives: it
/// *implements* the sharded epoch engine S501 steers everyone else
/// away from.
const SHARD_IMPL: &str = "crates/gpu-sim/src/shard.rs";

/// Crates whose `src/` trees carry only the trace-streaming rule
/// (P302) on top of whatever other tier they belong to. The workload
/// generators are harness-adjacent (seeded RNG, Vec-built segments are
/// all fine there) but must never regress to eager whole-trace
/// materialization.
const TRACE_CRATES: &[&str] = &["gpu-workloads"];

/// The one file allowed to return `Vec<TraceOp>`: the streaming
/// compatibility adapter (`VecStream` + `materialize`) P302 steers
/// everyone else to.
const STREAM_IMPL: &str = "crates/gpu-sim/src/stream.rs";

/// Method names that satisfy the leap-contract catch-up requirement
/// (L601) for a type implementing `next_event`.
const CATCHUP_METHODS: &[&str] = &["advance_quiet", "leap_catchup", "catch_up"];

/// Parameter names that mark a function as explicitly cycle-delta
/// aware, exempting its stats writes from L602.
const DELTA_PARAMS: &[&str] =
    &["skipped", "delta", "ticks", "cycles", "dt", "elapsed", "quiet", "behind"];

/// Root names of the transitive hot set (P301/F103 v2).
const HOT_ROOTS: &[&str] = &["cycle", "step", "tick", "step_local", "run_round", "next_event"];

/// Root names of the shard-parallel set (S503).
const PAR_ROOTS: &[&str] = &["run_round", "step_local", "worker"];

/// Does the full simulator rule set apply to this workspace-relative path?
pub fn is_sim_tier(rel: &str) -> bool {
    SIM_CRATES
        .iter()
        .any(|c| rel.strip_prefix(&format!("crates/{c}/src/")).is_some_and(|rest| !rest.is_empty()))
}

/// Does the trace-streaming rule (P302) apply to this path? True for
/// the workload-generator crates and the whole sim tier, except the
/// compatibility adapter that *implements* materialization.
pub fn is_trace_tier(rel: &str) -> bool {
    rel != STREAM_IMPL
        && (is_sim_tier(rel)
            || TRACE_CRATES.iter().any(|c| {
                rel.strip_prefix(&format!("crates/{c}/src/")).is_some_and(|rest| !rest.is_empty())
            }))
}

/// Does the store-tier rule set (R401) apply to this path?
pub fn is_store_tier(rel: &str) -> bool {
    rel != STORE_ATOMIC_IMPL
        && STORE_CRATES.iter().any(|c| {
            rel.strip_prefix(&format!("crates/{c}/src/")).is_some_and(|rest| !rest.is_empty())
        })
}

/// Lint one source file given its workspace-relative path. Returns an
/// empty list for files outside the simulator and store tiers. The
/// call graph is built over just this file, so cross-file rules (L601
/// catch-up lookups, transitive hot propagation) see only what the
/// file itself defines — which is exactly right for fixtures.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel, src)])
}

/// Lint a set of `(workspace-relative path, source)` files as one
/// workspace: the symbol table, call graph, and reachability sweeps
/// span all sim-tier files in the set.
pub fn lint_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    struct Unit<'a> {
        rel: &'a str,
        sim: bool,
        trace: bool,
        lexed: Lexed,
        ast: FileAst,
        /// Index into the symbol table's file list (sim units only).
        sim_index: usize,
    }
    let mut units: Vec<Unit> = Vec::new();
    let mut sim_count = 0usize;
    for (rel, src) in files {
        let sim = is_sim_tier(rel);
        let trace = is_trace_tier(rel);
        if !sim && !trace && !is_store_tier(rel) {
            continue;
        }
        let lexed = lex(src);
        let ast = parse(&lexed.tokens);
        let sim_index = if sim {
            sim_count += 1;
            sim_count - 1
        } else {
            usize::MAX
        };
        units.push(Unit { rel, sim, trace, lexed, ast, sim_index });
    }

    let sim_pairs: Vec<(&str, &FileAst)> =
        units.iter().filter(|u| u.sim).map(|u| (u.rel, &u.ast)).collect();
    let syms = Symbols::build(&sim_pairs);
    let graph = CallGraph::build(&syms);
    let hot = graph.reach(&syms, &syms.roots_named(HOT_ROOTS));
    let probe = graph.reach(&syms, &syms.roots_named(&["next_event"]));
    let par = graph.reach(&syms, &syms.roots_named(PAR_ROOTS));

    let mut out: Vec<Finding> = Vec::new();
    for u in &units {
        let tokens = &u.lexed.tokens;
        let is_test = u.ast.test_mask(tokens.len());
        let mut raw: Vec<RawFinding> = Vec::new();

        // X003: a structural parse failure blinds every mask and graph
        // edge below, so it is reported (and treated as a hard error by
        // the CLI) rather than silently degrading the analysis.
        for e in &u.ast.errors {
            raw.push(RawFinding {
                rule: "X003",
                line: e.line,
                col: 1,
                token: "parse".to_string(),
                message: format!("semantic pass cannot parse this file: {}", e.msg),
                reachable: None,
            });
        }

        if u.sim {
            let fi = u.sim_index;
            let owner = owner_map(&u.ast, tokens.len());
            let in_hot: Vec<bool> =
                owner.iter().map(|o| o.is_some_and(|ni| hot.contains((fi, ni)))).collect();
            raw.extend(scan(tokens, &is_test, &in_hot, u.rel == SHARD_IMPL));
            // Attach the root-to-here call chain to hot-set findings.
            for f in raw.iter_mut() {
                if f.rule != "P301" && f.rule != "F103" {
                    continue;
                }
                if let Some(ni) = owner_at(tokens, &owner, f.line, f.col) {
                    f.reachable = hot.chain(&syms, (fi, ni));
                }
            }
            semantic_scan(fi, &u.ast, &syms, &probe, &par, &mut raw);
        } else if is_store_tier(u.rel) {
            raw.extend(scan_store(tokens, &is_test));
        }
        if u.trace {
            raw.extend(scan_p302(tokens, &is_test));
        }

        // Suppressions, with per-rule usage tracking for X002.
        let (sups, mut directive_findings) = parse_directives(&u.lexed.comments);
        let mut used = vec![false; sups.len()];
        raw.retain(|f| {
            if f.rule == "X003" {
                return true; // parse failures are not suppressible
            }
            let mut hit = false;
            for (si, s) in sups.iter().enumerate() {
                if s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line) {
                    used[si] = true;
                    hit = true;
                }
            }
            !hit
        });
        let test_spans: Vec<(u32, u32)> = u
            .ast
            .test_ranges
            .iter()
            .filter_map(|&(s, e)| {
                let a = tokens.get(s)?.line;
                let b = tokens.get(e.min(tokens.len().saturating_sub(1)))?.line;
                Some((a, b))
            })
            .collect();
        for (si, s) in sups.iter().enumerate() {
            // A directive inside a test item can never match (test code
            // produces no findings), so it is noise-exempt rather than
            // X002.
            if used[si] || test_spans.iter().any(|&(a, b)| s.line >= a && s.line <= b) {
                continue;
            }
            raw.push(RawFinding {
                rule: "X002",
                line: s.line,
                col: 1,
                token: s.rule.to_string(),
                message: format!(
                    "suppression `allow({})` matches no finding on this or the next line",
                    s.rule
                ),
                reachable: None,
            });
        }
        raw.append(&mut directive_findings);
        raw.sort_by_key(|f| (f.line, f.col, f.rule));
        raw.dedup_by(|a, b| {
            a.rule == b.rule && a.line == b.line && a.col == b.col && a.token == b.token
        });
        out.extend(raw.into_iter().map(|f| Finding {
            rule: f.rule,
            file: u.rel.to_string(),
            line: f.line,
            col: f.col,
            token: f.token,
            message: f.message,
            reachable_from: f.reachable,
            baselined: false,
        }));
    }
    out
}

/// The semantic (AST + call-graph) rules for one sim-tier file.
fn semantic_scan(
    fi: usize,
    ast: &FileAst,
    syms: &Symbols<'_>,
    probe: &Reach,
    par: &Reach,
    raw: &mut Vec<RawFinding>,
) {
    for (ni, f) in ast.fns.iter().enumerate() {
        let id = (fi, ni);

        // L601: a `next_event` implementor must define how to catch up.
        if f.name == "next_event" && f.body.is_some() && !f.is_test {
            if let Some(ty) = &f.self_ty {
                let has_catchup =
                    CATCHUP_METHODS.iter().any(|m| !syms.by_ty_name(ty, m).is_empty());
                if !has_catchup {
                    raw.push(RawFinding {
                        rule: "L601",
                        line: f.line,
                        col: f.col,
                        token: ty.clone(),
                        message: format!(
                            "`{ty}` implements `next_event` but defines no catch-up method \
                             ({})",
                            CATCHUP_METHODS.join("/")
                        ),
                        reachable: None,
                    });
                }
            }
        }

        // L602: probe-reachable functions must not mutate stats
        // counters unless they take an explicit cycle-delta parameter.
        if probe.contains(id)
            && !f.params.iter().any(|p| DELTA_PARAMS.contains(&p.name.as_str()))
        {
            if let Some(body) = &f.body {
                for w in &body.writes {
                    let path = w.path.join(".");
                    let statsy = w
                        .path
                        .iter()
                        .skip(1)
                        .any(|seg| seg.contains("stat") || seg.contains("counter"));
                    if statsy {
                        raw.push(RawFinding {
                            rule: "L602",
                            line: w.line,
                            col: w.col,
                            token: path.clone(),
                            message: format!(
                                "`{}` mutates `{path}` while reachable from a `next_event` \
                                 probe (probes re-run per leap iteration)",
                                f.qual_name()
                            ),
                            reachable: probe.chain(syms, id),
                        });
                    }
                }
            }
        }

        // S503: no shared-interconnect access inside the shard-parallel
        // region — cross-shard traffic goes through the deferred-send log.
        if par.contains(id) {
            if let Some(body) = &f.body {
                for c in &body.calls {
                    // Receiver-path evidence only: matching the method
                    // name against `Interconnect`'s method set would
                    // flag every binheap `.pop()` and stats `.stats()`
                    // in the tier.
                    let recv_hit = c.method
                        && c.recv.iter().any(|r| {
                            r.contains("icnt") || r.contains("interconnect") || r.contains("crossbar")
                        });
                    if recv_hit {
                        raw.push(RawFinding {
                            rule: "S503",
                            line: c.line,
                            col: c.col,
                            token: c.name.clone(),
                            message: format!(
                                "`{}` touches the shared interconnect (`.{}()`) inside the \
                                 shard-parallel region",
                                f.qual_name(),
                                c.name
                            ),
                            reachable: par.chain(syms, id),
                        });
                    }
                }
            }
            if f.params.iter().any(|p| p.ty.iter().any(|t| t == "Interconnect")) {
                raw.push(RawFinding {
                    rule: "S503",
                    line: f.line,
                    col: f.col,
                    token: "Interconnect".to_string(),
                    message: format!(
                        "`{}` takes the shared Interconnect while reachable in the \
                         shard-parallel region",
                        f.qual_name()
                    ),
                    reachable: par.chain(syms, id),
                });
            }
        }
    }
}

/// Innermost function body covering each token, as an index into
/// `ast.fns` — "innermost" so a nested non-hot `fn` inside a hot body
/// is not swept into the hot mask.
fn owner_map(ast: &FileAst, len: usize) -> Vec<Option<usize>> {
    let mut owner: Vec<Option<usize>> = vec![None; len];
    let mut size: Vec<usize> = vec![usize::MAX; len];
    for (ni, f) in ast.fns.iter().enumerate() {
        let Some(body) = &f.body else { continue };
        let (s, e) = body.range;
        let span = e.saturating_sub(s);
        for t in s..=e.min(len.saturating_sub(1)) {
            if span < size[t] {
                size[t] = span;
                owner[t] = Some(ni);
            }
        }
    }
    owner
}

/// Owner of the token at a (line, col) position.
fn owner_at(tokens: &[Token], owner: &[Option<usize>], line: u32, col: u32) -> Option<usize> {
    let idx = tokens.binary_search_by(|t| (t.line, t.col).cmp(&(line, col))).ok()?;
    owner.get(idx).copied().flatten()
}

/// Result of linting a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col) within each tier file,
    /// with workspace-level telemetry findings appended last.
    pub findings: Vec<Finding>,
    /// Number of tier files lexed and scanned.
    pub files_scanned: usize,
}

/// Walk `root` and lint every simulator- and store-tier source file as
/// one workspace, then run the telemetry-schema check (T7xx) against
/// `crates/dlp-bench/src/telemetry.rs` and the manifest in
/// `EXPERIMENTS.md`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<(String, String)> = Vec::new();
    for file in rd_tools::walk::walk_rust_sources(root)? {
        if !is_sim_tier(&file.rel) && !is_trace_tier(&file.rel) && !is_store_tier(&file.rel) {
            continue;
        }
        files.push((file.rel, std::fs::read_to_string(&file.abs)?));
    }
    let files_scanned = files.len();
    let pairs: Vec<(&str, &str)> = files.iter().map(|(r, s)| (r.as_str(), s.as_str())).collect();
    let mut findings = lint_sources(&pairs);

    let telemetry = root.join("crates").join("dlp-bench").join("src").join("telemetry.rs");
    let experiments = root.join("EXPERIMENTS.md");
    if telemetry.is_file() && experiments.is_file() {
        findings.extend(check_telemetry(
            &std::fs::read_to_string(&telemetry)?,
            &std::fs::read_to_string(&experiments)?,
        ));
    }
    // Walk order is sorted by rel path and per-file findings are
    // position-sorted, so the report is already deterministic.
    Ok(Report { findings, files_scanned })
}

/// Workspace-relative path of the telemetry emitter (T7xx findings on
/// the code side anchor here).
pub const TELEMETRY_REL: &str = "crates/dlp-bench/src/telemetry.rs";
/// Path the manifest side of T7xx findings anchors to.
pub const EXPERIMENTS_REL: &str = "EXPERIMENTS.md";

/// T7xx: diff the JSON keys and schema version emitted by
/// `telemetry.rs` against the `dlp-lint:telemetry-schema` manifest in
/// EXPERIMENTS.md. Key drift with versions in agreement is T701;
/// version skew (or a missing version/manifest) is T702/T701 at the
/// offending side.
pub fn check_telemetry(telemetry_src: &str, experiments_src: &str) -> Vec<Finding> {
    use std::collections::BTreeMap;

    let lexed = lex(telemetry_src);
    let ast = parse(&lexed.tokens);
    let is_test = ast.test_mask(lexed.tokens.len());

    const VERSION_PREFIX: &str = "dlp-bench/figures-telemetry/v";
    let mut keys: BTreeMap<String, u32> = BTreeMap::new();
    let mut code_version: Option<(u64, u32)> = None;
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokenKind::Str || is_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Strip escape backslashes: the emitter writes format strings
        // like `\"key\": {}` whose lexed text keeps the backslashes.
        let text: String = t.text.chars().filter(|&c| c != '\\').collect();
        if let Some(pos) = text.find(VERSION_PREFIX) {
            let digits: String = text[pos + VERSION_PREFIX.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(v) = digits.parse::<u64>() {
                code_version.get_or_insert((v, t.line));
            }
        }
        for key in extract_json_keys(&text) {
            keys.entry(key).or_insert(t.line);
        }
    }

    let mut manifest_version: Option<(u64, u32)> = None;
    let mut manifest_keys: BTreeMap<String, u32> = BTreeMap::new();
    let mut manifest_line: Option<u32> = None;
    let mut in_manifest = false;
    for (ln0, line) in experiments_src.lines().enumerate() {
        let ln = ln0 as u32 + 1;
        let t = line.trim();
        if t.starts_with("<!-- dlp-lint:telemetry-schema") {
            in_manifest = true;
            manifest_line = Some(ln);
            continue;
        }
        if !in_manifest {
            continue;
        }
        if t.starts_with("-->") {
            in_manifest = false;
        } else if let Some(v) = t.strip_prefix("version:") {
            if let Ok(n) = v.trim().parse::<u64>() {
                manifest_version = Some((n, ln));
            }
        } else if let Some(k) = t.strip_prefix("keys:") {
            for key in k.split_whitespace() {
                manifest_keys.entry(key.to_string()).or_insert(ln);
            }
        }
    }

    let finding = |rule: &'static str, file: &str, line: u32, token: &str, message: String| Finding {
        rule,
        file: file.to_string(),
        line,
        col: 1,
        token: token.to_string(),
        message,
        reachable_from: None,
        baselined: false,
    };

    let mut out = Vec::new();
    let Some(manifest_line) = manifest_line else {
        out.push(finding(
            "T701",
            EXPERIMENTS_REL,
            1,
            "telemetry-schema",
            "EXPERIMENTS.md has no `<!-- dlp-lint:telemetry-schema` manifest documenting the \
             telemetry JSON keys"
                .to_string(),
        ));
        return out;
    };
    let Some((code_v, code_v_line)) = code_version else {
        out.push(finding(
            "T702",
            TELEMETRY_REL,
            1,
            "version",
            format!("telemetry.rs emits no `{VERSION_PREFIX}N` schema tag"),
        ));
        return out;
    };
    let Some((manifest_v, manifest_v_line)) = manifest_version else {
        out.push(finding(
            "T702",
            EXPERIMENTS_REL,
            manifest_line,
            "version",
            "telemetry-schema manifest has no `version:` line".to_string(),
        ));
        return out;
    };
    if code_v != manifest_v {
        out.push(finding(
            "T702",
            EXPERIMENTS_REL,
            manifest_v_line,
            "version",
            format!(
                "telemetry-schema manifest documents v{manifest_v} but telemetry.rs (line \
                 {code_v_line}) emits v{code_v} — update the manifest alongside the bump"
            ),
        ));
        return out;
    }
    for (key, line) in &keys {
        if !manifest_keys.contains_key(key) {
            out.push(finding(
                "T701",
                TELEMETRY_REL,
                *line,
                key,
                format!(
                    "telemetry key \"{key}\" is not in the EXPERIMENTS.md schema manifest — \
                     bump the figures-telemetry version and document it"
                ),
            ));
        }
    }
    for (key, line) in &manifest_keys {
        if !keys.contains_key(key) {
            out.push(finding(
                "T701",
                EXPERIMENTS_REL,
                *line,
                key,
                format!(
                    "documented telemetry key \"{key}\" is no longer emitted by telemetry.rs — \
                     bump the figures-telemetry version and prune it"
                ),
            ));
        }
    }
    out
}

/// `"ident":` occurrences in (escape-stripped) string-literal text.
fn extract_json_keys(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if j > i + 1 && j < chars.len() && chars[j] == '"' {
                let mut k = j + 1;
                while k < chars.len() && chars[k] == ' ' {
                    k += 1;
                }
                if k < chars.len() && chars[k] == ':' {
                    out.push(chars[i + 1..j].iter().collect());
                    i = k + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// A parsed `// dlp-lint: allow(<rule>) -- <reason>` directive.
struct Suppression {
    rule: &'static str,
    /// Line the directive sits on; it suppresses findings on this
    /// line (trailing style) and the next (preceding style).
    line: u32,
}

/// Parse suppression directives out of the comment stream. Malformed
/// directives become X001 findings so typos fail loudly instead of
/// silently not suppressing.
fn parse_directives(comments: &[Comment]) -> (Vec<Suppression>, Vec<RawFinding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("dlp-lint:") else {
            continue;
        };
        let mut fail = |why: &str| {
            bad.push(RawFinding {
                rule: "X001",
                line: c.line,
                col: 1,
                token: "dlp-lint".to_string(),
                message: format!("malformed dlp-lint directive: {why}"),
                reachable: None,
            });
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail("expected `allow(<rule>)` after `dlp-lint:`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("unclosed `allow(` rule list");
            continue;
        };
        let (rule_list, tail) = rest.split_at(close);
        let tail = &tail[1..]; // drop `)`
        let Some(reason) = tail.trim_start().strip_prefix("--") else {
            fail("missing ` -- <reason>` after the rule list");
            continue;
        };
        if reason.trim().is_empty() {
            fail("empty reason after `--`");
            continue;
        }
        for raw_rule in rule_list.split(',') {
            let rid = raw_rule.trim();
            match rule_by_id(rid) {
                Some(rule) => sups.push(Suppression { rule: rule.id, line: c.line }),
                None => fail(&format!("unknown rule `{rid}`")),
            }
        }
    }
    (sups, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(src: &str) -> Vec<Finding> {
        lint_source("crates/gpu-mem/src/fixture.rs", src)
    }

    #[test]
    fn cfg_all_and_any_forms_mask_like_plain_cfg_test() {
        for attr in
            ["#[cfg(test)]", "#[cfg(all(test, feature = \"slow\"))]", "#[cfg(any(test, doc))]"]
        {
            let src = format!("{attr}\nmod tests {{ fn f(x: Option<u32>) -> u32 {{ x.unwrap() }} }}");
            assert!(sim(&src).is_empty(), "{attr} must mask the unwrap");
        }
        let src = "#[cfg(not(test))]\nmod live { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert_eq!(sim(src).len(), 1, "cfg(not(test)) is live code");
        assert_eq!(sim(src)[0].rule, "E201");
    }

    #[test]
    fn nested_test_modules_are_masked_through_every_level() {
        let src = "\
            mod outer {\n\
                fn live(x: Option<u32>) -> u32 { x.unwrap() }\n\
                #[cfg(test)]\n\
                mod tests {\n\
                    mod deeper {\n\
                        fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n\
                    }\n\
                    fn also(x: Option<u32>) -> u32 { x.unwrap() }\n\
                }\n\
            }\n";
        let f = sim(src);
        assert_eq!(f.len(), 1, "only the live unwrap counts: {f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn parse_errors_become_x003() {
        let f = sim("fn broken() { if x { }");
        assert!(f.iter().any(|f| f.rule == "X003"), "{f:?}");
    }

    #[test]
    fn telemetry_check_accepts_matching_keys_and_version() {
        let telem = r#"fn emit() { let s = format!("\"hits\": {}, \"misses\": {}", 1, 2);
            let tag = "dlp-bench/figures-telemetry/v4"; }"#;
        let manifest = "intro\n<!-- dlp-lint:telemetry-schema\nversion: 4\nkeys: hits misses\n-->\n";
        assert!(check_telemetry(telem, manifest).is_empty());
    }

    #[test]
    fn telemetry_key_added_without_bump_is_t701() {
        let telem = r#"fn emit() { let s = format!("\"hits\": {}, \"stalls\": {}", 1, 2);
            let tag = "dlp-bench/figures-telemetry/v4"; }"#;
        let manifest = "<!-- dlp-lint:telemetry-schema\nversion: 4\nkeys: hits\n-->\n";
        let f = check_telemetry(telem, manifest);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "T701");
        assert_eq!(f[0].token, "stalls");
        assert_eq!(f[0].file, TELEMETRY_REL);
    }

    #[test]
    fn telemetry_version_skew_is_t702_and_masks_key_diff() {
        let telem = r#"fn emit() { let s = format!("\"hits\": {}, \"stalls\": {}", 1, 2);
            let tag = "dlp-bench/figures-telemetry/v5"; }"#;
        let manifest = "<!-- dlp-lint:telemetry-schema\nversion: 4\nkeys: hits\n-->\n";
        let f = check_telemetry(telem, manifest);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "T702");
    }

    #[test]
    fn telemetry_keys_in_test_modules_are_ignored() {
        let telem = "fn emit() { let tag = \"dlp-bench/figures-telemetry/v4\"; }\n\
                     #[cfg(test)]\nmod tests { fn f() { let s = \"\\\"phantom\\\": 1\"; } }";
        let manifest = "<!-- dlp-lint:telemetry-schema\nversion: 4\nkeys:\n-->\n";
        assert!(check_telemetry(telem, manifest).is_empty());
    }
}
