//! Workspace symbol table: every function the parser found in the sim
//! tier, indexed for the call-graph's resolution queries.
//!
//! Resolution here is *name-based*, not type-based — the linter has no
//! type inference. That is sound for this workspace because the sim
//! tier's method names are near-unique (verified by the workspace
//! self-check staying clean); where a name is ambiguous the graph
//! simply over-approximates, which for lint purposes errs on the side
//! of reporting.

use crate::parser::{FileAst, FnDef};
use std::collections::HashMap;

/// A function's location in the workspace: `(file index, fn index)`
/// into [`Symbols::files`] / [`FileAst::fns`].
pub type FnId = (usize, usize);

/// The symbol table over a set of parsed files.
pub struct Symbols<'a> {
    /// The parsed files, parallel to the `rel` paths in [`Self::rels`].
    pub files: Vec<&'a FileAst>,
    /// Workspace-relative path of each file.
    pub rels: Vec<&'a str>,
    by_name: HashMap<&'a str, Vec<FnId>>,
    by_ty_name: HashMap<(&'a str, &'a str), Vec<FnId>>,
}

impl<'a> Symbols<'a> {
    /// Build the table over `(rel_path, ast)` pairs.
    pub fn build(files: &[(&'a str, &'a FileAst)]) -> Self {
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut by_ty_name: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        for (fi, (_, ast)) in files.iter().enumerate() {
            for (ni, f) in ast.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                by_name.entry(f.name.as_str()).or_default().push((fi, ni));
                if let Some(ty) = &f.self_ty {
                    by_ty_name.entry((ty.as_str(), f.name.as_str())).or_default().push((fi, ni));
                }
            }
        }
        Symbols {
            files: files.iter().map(|(_, a)| *a).collect(),
            rels: files.iter().map(|(r, _)| *r).collect(),
            by_name,
            by_ty_name,
        }
    }

    /// The [`FnDef`] behind an id.
    pub fn def(&self, id: FnId) -> &'a FnDef {
        &self.files[id.0].fns[id.1]
    }

    /// All non-test functions with this name, any self type.
    pub fn by_name(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// All non-test methods `ty::name`.
    pub fn by_ty_name(&self, ty: &str, name: &str) -> &[FnId] {
        // Tuple keys of `&'a str` cannot borrow-match a shorter-lived
        // probe; the table is small enough that a scan is free.
        self.by_ty_name
            .iter()
            .find(|((t, n), _)| *t == ty && *n == name)
            .map_or(&[], |(_, v)| v.as_slice())
    }

    /// Does any workspace type carry a method with this self type?
    /// (Used to tell `Vec::new` — external — from `Shard::new`.)
    pub fn knows_type(&self, ty: &str) -> bool {
        self.by_ty_name.keys().any(|(t, _)| *t == ty)
    }

    /// Ids of every non-test, non-cold function with a body whose name
    /// is in `names` — the roots for a reachability sweep.
    pub fn roots_named(&self, names: &[&str]) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, ast) in self.files.iter().enumerate() {
            for (ni, f) in ast.fns.iter().enumerate() {
                if !f.is_test && !f.is_cold && f.body.is_some() && names.contains(&f.name.as_str())
                {
                    out.push((fi, ni));
                }
            }
        }
        out
    }

    /// Iterate every function id in file order.
    pub fn all(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, ast)| (0..ast.fns.len()).map(move |ni| (fi, ni)))
    }
}
