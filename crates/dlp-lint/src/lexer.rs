//! A minimal, self-contained Rust token scanner.
//!
//! The lint rules only need a *token-level* view of a source file:
//! identifiers, punctuation, literals, and line comments — each with a
//! line/column position. Crucially the scanner must never mistake the
//! contents of a string, raw string, char literal, or comment for
//! code, and must tell a lifetime (`'a`) apart from a char literal
//! (`'a'`). That is the entire job; no parsing, no `syn`, no external
//! dependencies (consistent with the workspace's vendored-offline
//! policy).

/// Classification of a scanned token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`line_addr`, `for`, `as`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `!`, …).
    Punct,
    /// String literal, including raw and byte strings (text excludes quotes).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`0x4e25`, `1_000`, `3.5f64`).
    Num,
    /// Lifetime (`'a`, `'static`), without the leading quote.
    Lifetime,
}

/// One scanned token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (see [`TokenKind`] for what is included).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

/// A comment, kept separately from the code token stream so rules can
/// scan for `dlp-lint:` suppression directives.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan `src` into tokens and comments. Never fails: unterminated
/// literals simply consume to end of file, which is good enough for a
/// linter that runs on code `rustc` already accepted.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner { chars: src.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();

    while let Some(c) = s.peek(0) {
        let (line, col) = (s.line, s.col);
        if c.is_whitespace() {
            s.bump();
        } else if c == '/' && s.peek(1) == Some('/') {
            out.comments.push(Comment { text: scan_line_comment(&mut s), line });
        } else if c == '/' && s.peek(1) == Some('*') {
            out.comments.push(Comment { text: scan_block_comment(&mut s), line });
        } else if c == 'r' && matches!(s.peek(1), Some('"') | Some('#')) {
            scan_r_prefixed(&mut s, &mut out, line, col);
        } else if c == 'b' && matches!(s.peek(1), Some('"') | Some('\'')) {
            s.bump(); // consume `b`, then scan the plain literal
            match s.peek(0) {
                Some('"') => {
                    let text = scan_string(&mut s);
                    out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
                }
                _ => {
                    let text = scan_char(&mut s);
                    out.tokens.push(Token { kind: TokenKind::Char, text, line, col });
                }
            }
        } else if c == 'b' && s.peek(1) == Some('r') && matches!(s.peek(2), Some('"') | Some('#'))
        {
            s.bump(); // consume `b`; `r…` handled like a raw string
            scan_r_prefixed(&mut s, &mut out, line, col);
        } else if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = s.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    s.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token { kind: TokenKind::Ident, text, line, col });
        } else if c.is_ascii_digit() {
            let text = scan_number(&mut s);
            out.tokens.push(Token { kind: TokenKind::Num, text, line, col });
        } else if c == '"' {
            let text = scan_string(&mut s);
            out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
        } else if c == '\'' {
            scan_quote(&mut s, &mut out, line, col);
        } else {
            s.bump();
            out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
        }
    }
    out
}

/// `r"…"`, `r#"…"#`, or a raw identifier `r#ident`. The scanner sits
/// on the `r`.
fn scan_r_prefixed(s: &mut Scanner, out: &mut Lexed, line: u32, col: u32) {
    s.bump(); // `r`
    let mut hashes = 0usize;
    while s.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if s.peek(hashes) == Some('"') {
        for _ in 0..hashes {
            s.bump();
        }
        let text = scan_raw_string(s, hashes);
        out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
    } else if hashes == 1 && s.peek(1).is_some_and(is_ident_start) {
        s.bump(); // `#`
        let mut text = String::new();
        while let Some(c) = s.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                s.bump();
            } else {
                break;
            }
        }
        out.tokens.push(Token { kind: TokenKind::Ident, text, line, col });
    } else {
        // Bare `r` identifier followed by `#` punctuation (e.g. `r#`
        // in macro-ish code) — treat `r` as an ident and move on.
        out.tokens.push(Token { kind: TokenKind::Ident, text: "r".into(), line, col });
    }
}

/// `'a` lifetime vs `'x'` char literal. The scanner sits on the `'`.
fn scan_quote(s: &mut Scanner, out: &mut Lexed, line: u32, col: u32) {
    // Lifetime: quote, ident-start, and the char after the ident run
    // is NOT another quote (`'a'` is a char, `'a,` is a lifetime).
    if s.peek(1).is_some_and(is_ident_start) {
        let mut len = 1;
        while s.peek(1 + len).is_some_and(is_ident_continue) {
            len += 1;
        }
        if s.peek(1 + len) != Some('\'') {
            s.bump(); // quote
            let mut text = String::new();
            for _ in 0..len {
                text.push(s.bump().unwrap_or('_'));
            }
            out.tokens.push(Token { kind: TokenKind::Lifetime, text, line, col });
            return;
        }
    }
    let text = scan_char(s);
    out.tokens.push(Token { kind: TokenKind::Char, text, line, col });
}

fn scan_line_comment(s: &mut Scanner) -> String {
    let mut text = String::new();
    s.bump();
    s.bump(); // `//`
    while let Some(c) = s.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        s.bump();
    }
    text
}

fn scan_block_comment(s: &mut Scanner) -> String {
    let mut text = String::new();
    s.bump();
    s.bump(); // `/*`
    let mut depth = 1usize;
    while let Some(c) = s.peek(0) {
        if c == '/' && s.peek(1) == Some('*') {
            depth += 1;
            s.bump();
            s.bump();
            text.push_str("/*");
        } else if c == '*' && s.peek(1) == Some('/') {
            depth -= 1;
            s.bump();
            s.bump();
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            s.bump();
        }
    }
    text
}

fn scan_string(s: &mut Scanner) -> String {
    let mut text = String::new();
    s.bump(); // opening quote
    while let Some(c) = s.peek(0) {
        if c == '\\' {
            s.bump();
            if let Some(esc) = s.bump() {
                text.push('\\');
                text.push(esc);
            }
        } else if c == '"' {
            s.bump();
            break;
        } else {
            text.push(c);
            s.bump();
        }
    }
    text
}

fn scan_raw_string(s: &mut Scanner, hashes: usize) -> String {
    let mut text = String::new();
    s.bump(); // opening quote
    while let Some(c) = s.peek(0) {
        if c == '"' {
            let mut matched = true;
            for i in 0..hashes {
                if s.peek(1 + i) != Some('#') {
                    matched = false;
                    break;
                }
            }
            if matched {
                for _ in 0..=hashes {
                    s.bump();
                }
                break;
            }
        }
        text.push(c);
        s.bump();
    }
    text
}

fn scan_char(s: &mut Scanner) -> String {
    let mut text = String::new();
    s.bump(); // opening quote
    while let Some(c) = s.peek(0) {
        if c == '\\' {
            s.bump();
            if let Some(esc) = s.bump() {
                text.push('\\');
                text.push(esc);
            }
        } else if c == '\'' {
            s.bump();
            break;
        } else if c == '\n' {
            break; // malformed; don't eat the rest of the file
        } else {
            text.push(c);
            s.bump();
        }
    }
    text
}

fn scan_number(s: &mut Scanner) -> String {
    let mut text = String::new();
    while let Some(c) = s.peek(0) {
        // A `.` continues the number only before a digit, and only once
        // (so `1.2.3` and range expressions like `0..n` split correctly).
        let fraction_dot =
            c == '.' && s.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.');
        if c.is_alphanumeric() || c == '_' || fraction_dot {
            text.push(c);
            s.bump();
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            let s = "x.unwrap()"; // call .unwrap() here?
            /* .unwrap() in /* nested */ block */
            let r = r#"also .unwrap()"#;
        "##;
        assert!(!idents(src).iter().any(|i| i == "unwrap"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("call .unwrap() here?"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "b");
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("a\n  bc");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn raw_idents_and_numbers() {
        let lexed = lex("let r#type = 0x4e25_bd31 + 1.5f64;");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "type"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Num && t.text == "0x4e25_bd31"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Num && t.text == "1.5f64"));
    }

    #[test]
    fn method_call_on_number_is_not_swallowed() {
        let lexed = lex("0.max(x)");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "max"));
    }
}
