//! Fixture-based tests: one positive and one negative case per rule,
//! plus suppression-directive and baseline behaviour over real
//! `lint_source` runs. Fixtures are linted under a simulator-tier path
//! (`crates/gpu-mem/src/…`) so the full rule set applies.

use dlp_lint::{is_sim_tier, lint_source, Baseline, Finding};

/// Lint a fixture as if it lived in the simulator tier.
fn lint(src: &str) -> Vec<Finding> {
    lint_source("crates/gpu-mem/src/fixture.rs", src)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// Tier scoping
// ---------------------------------------------------------------------------

#[test]
fn sim_tier_covers_exactly_the_three_simulator_crates() {
    assert!(is_sim_tier("crates/dlp-core/src/vta.rs"));
    assert!(is_sim_tier("crates/gpu-mem/src/deep/nested.rs"));
    assert!(is_sim_tier("crates/gpu-sim/src/sm.rs"));
    // Harness, tooling, tests and examples are exempt.
    assert!(!is_sim_tier("crates/dlp-bench/src/telemetry.rs"));
    assert!(!is_sim_tier("crates/rd-tools/src/walk.rs"));
    assert!(!is_sim_tier("crates/gpu-mem/tests/l1d_properties.rs"));
    assert!(!is_sim_tier("examples/quickstart.rs"));
    assert!(!is_sim_tier("crates/gpu-mem/src/"));
}

#[test]
fn non_sim_tier_files_produce_no_findings() {
    let src = "fn f() { let t = Instant::now(); t.elapsed().unwrap(); }";
    assert!(lint_source("crates/dlp-bench/src/perf.rs", src).is_empty());
    assert!(!lint_source("crates/gpu-mem/src/perf.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// D — determinism
// ---------------------------------------------------------------------------

#[test]
fn d001_flags_wall_clock_types() {
    let f = lint("fn f() { let t0 = std::time::Instant::now(); }");
    assert_eq!(rules_of(&f), ["D001"]);
    assert_eq!(f[0].token, "Instant");
    let f = lint("fn f() -> SystemTime { SystemTime::now() }");
    assert!(f.iter().all(|f| f.rule == "D001"));
    // Simulated time is the cycle counter — not a wall clock.
    assert!(lint("fn f(now: u64) -> u64 { now + 4 }").is_empty());
}

#[test]
fn d002_flags_ambient_randomness() {
    let f = lint("fn f() { let mut rng = rand::thread_rng(); }");
    assert_eq!(rules_of(&f), ["D002"]);
    let f = lint("fn f() { let s = RandomState::new(); }");
    assert_eq!(rules_of(&f), ["D002"]);
    // Explicitly seeded generators are the sanctioned pattern.
    assert!(lint("fn f(seed: u64) { let rng = Lcg::seed_from(seed); }").is_empty());
}

#[test]
fn d003_flags_environment_reads() {
    let f = lint("fn f() { let v = std::env::var(\"DLP_FORCE_FAIL\"); }");
    assert_eq!(rules_of(&f), ["D003"]);
    assert_eq!(f[0].token, "var");
    let f = lint("fn f() { for (k, v) in std::env::vars() {} }");
    assert_eq!(rules_of(&f), ["D003"]);
    // Non-read env API (and unrelated `env` idents) pass.
    assert!(lint("fn f() { let d = std::env::current_dir(); }").is_empty());
    assert!(lint("fn f(env: &Config) { env.lookup(3); }").is_empty());
}

#[test]
fn d004_flags_hash_container_iteration() {
    // Method-call iteration on a declared HashMap.
    let f = lint(
        "struct S { entries: HashMap<u64, u32> }\n\
         impl S { fn f(&self) -> usize { self.entries.values().count() } }",
    );
    assert_eq!(rules_of(&f), ["D004"]);
    // For-loop iteration on a HashSet local.
    let f = lint(
        "fn f() { let seen: HashSet<u64> = HashSet::new();\n\
         for x in &seen { drop(x); } }",
    );
    assert_eq!(rules_of(&f), ["D004"]);
    // Point lookups are order-free; BTreeMap iteration is sorted.
    assert!(lint(
        "struct S { entries: HashMap<u64, u32> }\n\
         impl S { fn f(&self, k: u64) -> Option<&u32> { self.entries.get(&k) } }",
    )
    .is_empty());
    assert!(lint(
        "fn f(m: &BTreeMap<u64, u32>) -> usize { m.values().count() }",
    )
    .is_empty());
}

// ---------------------------------------------------------------------------
// F — fidelity
// ---------------------------------------------------------------------------

#[test]
fn f101_flags_unmasked_narrowing_of_addresses_and_cycles() {
    let f = lint("fn f(addr: u64) -> u32 { addr as u32 }");
    assert_eq!(rules_of(&f), ["F101"]);
    assert_eq!(f[0].token, "addr");
    let f = lint("fn f(cycle: u64) -> usize { (cycle + 1) as usize }");
    assert_eq!(rules_of(&f), ["F101"]);
    // An explicit mask or bound makes the narrowing intentional.
    assert!(lint("fn f(addr: u64) -> usize { (addr & 0x7f) as usize }").is_empty());
    assert!(lint("fn f(now: u64) -> u32 { (now % 1024) as u32 }").is_empty());
    // Widening and non-watched identifiers pass.
    assert!(lint("fn f(addr: u32) -> u64 { addr as u64 }").is_empty());
    assert!(lint("fn f(idx: u64) -> usize { idx as usize }").is_empty());
}

#[test]
fn f102_flags_float_typed_state() {
    let f = lint("struct Stats { hit_rate: f64, misses: u64 }");
    assert_eq!(rules_of(&f), ["F102"]);
    let f = lint("fn f(alpha: f32) {}");
    assert_eq!(rules_of(&f), ["F102"]);
    // Ratios computed at report time (return position / casts) pass.
    assert!(lint("fn ipc(&self) -> f64 { self.insns as f64 / self.cycles as f64 }").is_empty());
    assert!(lint("use std::f64::consts::PI;").is_empty());
}

#[test]
fn f103_flags_wrapping_arithmetic() {
    // The launch-cursor replay bug class: a wrapping add on a cursor or
    // cycle quantity silently corrupts state instead of erroring.
    let f = lint("fn f(cursor: usize, slots: usize) -> usize { cursor.wrapping_add(slots) }");
    assert_eq!(rules_of(&f), ["F103"]);
    assert_eq!(f[0].token, "wrapping_add");
    let f = lint("fn f(a: u64, b: u64) -> u64 { a.wrapping_sub(b).wrapping_mul(3) }");
    assert_eq!(rules_of(&f), ["F103", "F103"]);
    // checked/saturating arithmetic is the sanctioned replacement.
    assert!(lint("fn f(a: u64, b: u64) -> Option<u64> { a.checked_add(b) }").is_empty());
    assert!(lint("fn f(a: u64, b: u64) -> u64 { a.saturating_sub(b) }").is_empty());
    // A bare identifier named like the method is not a call.
    assert!(lint("fn f(wrapping_add: u64) -> u64 { wrapping_add }").is_empty());
}

#[test]
fn f103_is_suppressible_for_deliberate_modular_arithmetic() {
    let src = "\
        fn fnv(h: u64, b: u8) -> u64 {\n\
            // dlp-lint: allow(F103) -- FNV-1a is modular multiplication by definition\n\
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)\n\
        }\n";
    assert!(lint(src).is_empty());
}

// ---------------------------------------------------------------------------
// E — error handling
// ---------------------------------------------------------------------------

#[test]
fn e201_flags_unwrap_calls() {
    let f = lint("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
    assert_eq!(rules_of(&f), ["E201"]);
    // unwrap_or and friends are total — no abort path.
    assert!(lint("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
    assert!(lint("fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }").is_empty());
}

#[test]
fn e202_flags_expect_calls() {
    let f = lint("fn f(x: Option<u32>) -> u32 { x.expect(\"live warp\") }");
    assert_eq!(rules_of(&f), ["E202"]);
    assert!(lint("fn f(x: Option<u32>) -> u32 { x.map_or(0, |v| v) }").is_empty());
}

#[test]
fn e203_flags_panicking_macros() {
    assert_eq!(rules_of(&lint("fn f() { panic!(\"boom\"); }")), ["E203"]);
    assert_eq!(rules_of(&lint("fn f() { unreachable!(); }")), ["E203"]);
    assert_eq!(rules_of(&lint("fn f() { todo!(); }")), ["E203"]);
    // assert!/debug_assert! document invariants without being flagged.
    assert!(lint("fn f(n: usize) { debug_assert!(n > 0); assert!(n < 64); }").is_empty());
}

// ---------------------------------------------------------------------------
// P — hot-path performance
// ---------------------------------------------------------------------------

#[test]
fn p301_flags_heap_allocation_in_hot_functions() {
    let f = lint("fn cycle(&mut self, now: u64) { let buf: Vec<u64> = Vec::new(); drop(buf); }");
    assert_eq!(rules_of(&f), ["P301"]);
    assert_eq!(f[0].token, "Vec");
    let f = lint("fn tick(&mut self) { let v = vec![0u64; 4]; drop(v); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint("fn step(&mut self) { let b = Box::new(Report::default()); drop(b); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint("fn cycle(&mut self, lines: &[u64]) { let c = lines.to_vec(); drop(c); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint(
        "fn step(&mut self) { let ids: Vec<u64> = self.warps.ids().collect(); drop(ids); }",
    );
    assert_eq!(rules_of(&f), ["P301"]);
    // The sharded epoch engine's per-cycle bodies are held to the same
    // discipline as the sequential ones.
    let f = lint("fn step_local(&mut self, now: u64) { let v = vec![0u64; 4]; drop(v); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint("fn run_round(&mut self, s: u64, e: u64) { let b: Vec<u64> = Vec::new(); drop(b); }");
    assert_eq!(rules_of(&f), ["P301"]);
}

#[test]
fn p301_only_applies_inside_hot_function_bodies() {
    // The same allocations are fine in constructors and cold helpers.
    assert!(lint("fn new() -> Self { Self { buf: Vec::new(), q: vec![0; 8] } }").is_empty());
    assert!(lint("fn report(&self) -> Vec<u64> { self.lines.to_vec() }").is_empty());
    // A bodyless trait declaration marks nothing …
    assert!(lint("trait Clocked { fn cycle(&mut self, now: u64); }").is_empty());
    // … and the mask ends at the hot body's closing brace.
    let f = lint(
        "fn cycle(&mut self) { self.n += 1; }\n\
         fn drain(&mut self) -> Vec<u64> { self.q.drain(..).collect() }",
    );
    assert!(f.is_empty(), "allocation after the hot body must not be flagged: {f:?}");
    // Reused preallocated buffers — the sanctioned pattern — pass.
    assert!(lint("fn cycle(&mut self) { self.scratch.clear(); self.scratch.push(1); }").is_empty());
}

#[test]
fn p301_respects_suppression_directives_and_cfg_test() {
    let src = "\
        fn step(&mut self) {\n\
            // dlp-lint: allow(P301) -- cold hang-report arm, runs once per abort\n\
            let r = Box::new(Report::default());\n\
            drop(r);\n\
        }\n";
    assert!(lint(src).is_empty());
    let src = "\
        #[cfg(test)]\n\
        mod tests {\n\
            fn cycle_harness() { fn cycle() { let v: Vec<u64> = Vec::new(); drop(v); } }\n\
        }\n";
    assert!(lint(src).is_empty());
}

#[test]
fn p302_flags_vec_traceop_return_types() {
    let src = "fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> { Vec::new() }";
    // Fires in the sim tier…
    let f = lint(src);
    assert_eq!(rules_of(&f), ["P302"]);
    assert_eq!(f[0].token, "Vec<TraceOp>");
    // …and in the workload-generator crate, where no other rule applies.
    let f = lint_source("crates/gpu-workloads/src/apps/fixture.rs", src);
    assert_eq!(rules_of(&f), ["P302"]);
}

#[test]
fn p302_trace_tier_carries_no_other_rules() {
    // Seeded-RNG setup, Vec-built segments, even an unwrap: the
    // generator crate is harness-adjacent, only P302 patrols it.
    let noise = "fn f(x: Option<u32>) -> u32 { let t = Instant::now(); drop(t); x.unwrap() }";
    assert!(lint_source("crates/gpu-workloads/src/gen.rs", noise).is_empty());
}

#[test]
fn p302_permits_out_params_and_other_element_types() {
    // The segment-buffer idiom — filling a caller-owned buffer — is
    // the sanctioned replacement, not a finding.
    assert!(lint("fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool { true }").is_empty());
    // Other Vec returns (addresses, lines) are not trace materialization.
    assert!(lint("fn addrs(&self) -> Vec<u64> { Vec::new() }").is_empty());
}

#[test]
fn p302_exempts_the_stream_adapter_and_test_code() {
    let src = "fn materialize(stream: Box<dyn OpStream>) -> Vec<TraceOp> { Vec::new() }";
    // The compatibility adapter implements materialization; it is the
    // one file carved out of the trace tier.
    assert!(lint_source("crates/gpu-sim/src/stream.rs", src).is_empty());
    // Test helpers materialize freely.
    let test_src = "#[cfg(test)]\nmod tests { fn trace() -> Vec<TraceOp> { Vec::new() } }";
    assert!(lint(test_src).is_empty());
    assert!(lint_source("crates/gpu-workloads/src/apps/fixture.rs", test_src).is_empty());
}

#[test]
fn p302_is_suppressible_at_the_sanctioned_delegation_point() {
    let src = "\
        // dlp-lint: allow(P302) -- delegates to warp_stream, used only off the simulation path\n\
        fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> { Vec::new() }\n";
    assert!(lint(src).is_empty());
}

#[test]
fn trace_tier_covers_workloads_and_sim_but_not_the_adapter() {
    use dlp_lint::is_trace_tier;
    assert!(is_trace_tier("crates/gpu-workloads/src/gen.rs"));
    assert!(is_trace_tier("crates/gpu-workloads/src/apps/mm.rs"));
    assert!(is_trace_tier("crates/gpu-sim/src/kernel.rs"));
    assert!(!is_trace_tier("crates/gpu-sim/src/stream.rs"));
    assert!(!is_trace_tier("crates/gpu-workloads/tests/stream_equivalence.rs"));
    assert!(!is_trace_tier("crates/dlp-bench/src/harness.rs"));
}

#[test]
fn cfg_test_items_are_exempt_from_every_rule() {
    let src = "\
        fn live() -> u64 { 1 }\n\
        #[cfg(test)]\n\
        mod tests {\n\
            fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n\
            fn clock() { let t = Instant::now(); panic!(\"{t:?}\"); }\n\
        }\n";
    assert!(lint(src).is_empty());
    // …but code after the test module is scanned again.
    let trailing = format!("{src}fn late(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    assert_eq!(rules_of(&lint(&trailing)), ["E201"]);
}

// ---------------------------------------------------------------------------
// R — store-tier crash safety
// ---------------------------------------------------------------------------

/// Lint a fixture as if it lived in the store tier.
fn lint_store(src: &str) -> Vec<Finding> {
    lint_source("crates/dlp-store/src/fixture.rs", src)
}

#[test]
fn store_tier_covers_store_and_daemon_but_not_the_atomic_impl() {
    use dlp_lint::is_store_tier;
    assert!(is_store_tier("crates/dlp-store/src/store.rs"));
    assert!(is_store_tier("crates/dlp-store/src/fault.rs"));
    assert!(is_store_tier("crates/dlp-sweepd/src/server.rs"));
    // The atomic helpers implement the discipline; they are exempt.
    assert!(!is_store_tier("crates/dlp-store/src/atomic.rs"));
    // Tests, the harness, and the simulator crates are out of scope.
    assert!(!is_store_tier("crates/dlp-store/tests/corruption_roundtrip.rs"));
    assert!(!is_store_tier("crates/dlp-bench/src/persist.rs"));
    assert!(!is_store_tier("crates/gpu-mem/src/l1d.rs"));
}

#[test]
fn r401_flags_raw_file_mutation_in_store_tier() {
    let f = lint_store("fn f(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }");
    assert_eq!(rules_of(&f), ["R401"]);
    assert_eq!(f[0].token, "write");
    let f = lint_store("fn f(a: &Path, b: &Path) { fs::rename(a, b).unwrap(); }");
    assert_eq!(rules_of(&f), ["R401"]);
    let f = lint_store("fn f(p: &Path) { let _ = File::create(p); }");
    assert_eq!(rules_of(&f), ["R401"]);
    let f = lint_store("fn f(p: &Path) { OpenOptions::new().append(true).open(p).unwrap(); }");
    assert_eq!(rules_of(&f), ["R401"]);
}

#[test]
fn r401_permits_reads_dir_creation_and_the_atomic_helpers() {
    let ok = "\
        fn f(p: &Path) {\n\
            std::fs::create_dir_all(p).unwrap();\n\
            let _ = std::fs::read(p);\n\
            let _ = std::fs::read_dir(p);\n\
            let _ = std::fs::read_to_string(p);\n\
            let _ = File::open(p);\n\
            atomic::atomic_write(p, b\"x\").unwrap();\n\
            atomic::append_line(p, \"l\").unwrap();\n\
        }\n";
    assert!(lint_store(ok).is_empty(), "{:?}", lint_store(ok));
}

#[test]
fn r401_is_scoped_exempt_in_tests_and_suppressible() {
    // The same mutation outside the store tier is not a finding.
    let src = "fn f(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }";
    assert!(lint_source("crates/rd-tools/src/fixture.rs", src).is_empty());
    // The sim rules do not leak into the store tier: unwrap/env/floats
    // are the harness's business there, not dlp-lint's.
    let sim_noise = "fn f() { let t = Instant::now(); t.elapsed().unwrap(); }";
    assert!(lint_store(sim_noise).is_empty());
    // cfg(test) items are exempt, as everywhere.
    let test_src = "\
        #[cfg(test)]\n\
        mod tests {\n\
            fn f(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }\n\
        }\n";
    assert!(lint_store(test_src).is_empty());
    // And the allow directive works with a reason.
    let suppressed = "\
        // dlp-lint: allow(R401) -- socket file, not a store entry\n\
        fn f(p: &Path) { std::fs::remove_file(p).unwrap(); }\n";
    assert!(lint_store(suppressed).is_empty());
}

// ---------------------------------------------------------------------------
// Suppression directives and X001
// ---------------------------------------------------------------------------

#[test]
fn directive_on_preceding_line_suppresses_next_line() {
    let src = "\
        fn f(m: &HashMap<u64, u32>) -> usize {\n\
            let m: HashMap<u64, u32> = HashMap::new();\n\
            // dlp-lint: allow(D004) -- sum over values is order-independent\n\
            m.values().count()\n\
        }\n";
    assert!(lint(src).is_empty(), "directive should suppress the D004 below it");
}

#[test]
fn trailing_directive_suppresses_its_own_line() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // dlp-lint: allow(E201) -- fixture\n";
    assert!(lint(src).is_empty());
}

#[test]
fn directive_for_a_different_rule_does_not_suppress() {
    // The wrong-rule directive both fails to suppress the E201 and is
    // itself flagged unused (X002).
    let src = "\
        // dlp-lint: allow(D004) -- wrong rule\n\
        fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_of(&lint(src)), ["X002", "E201"]);
}

#[test]
fn directive_covers_a_comma_separated_rule_list() {
    let src = "\
        // dlp-lint: allow(E201, E203) -- fixture exercising both\n\
        fn f(x: Option<u32>) -> u32 { if x.is_none() { panic!(\"gone\") } x.unwrap() }\n";
    assert!(lint(src).is_empty());
}

#[test]
fn x001_reports_malformed_directives() {
    // Missing reason.
    let f = lint("// dlp-lint: allow(D004)\nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
    // Unknown rule ID.
    let f = lint("// dlp-lint: allow(Z999) -- because\nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
    // Not an allow() form at all.
    let f = lint("// dlp-lint: disable D004 -- nope\nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
    // Empty reason after the separator.
    let f = lint("// dlp-lint: allow(D004) --   \nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
}

// ---------------------------------------------------------------------------
// Baseline behaviour over real scan output
// ---------------------------------------------------------------------------

#[test]
fn baseline_written_from_findings_accepts_exactly_those_findings() {
    let src = "\
        fn f(a: Option<u32>, b: Option<u32>) -> u32 { a.unwrap() + b.unwrap() }\n";
    let mut findings = lint(src);
    assert_eq!(rules_of(&findings), ["E201", "E201"]);

    // A baseline generated from the findings covers both occurrences…
    let rendered = Baseline::render(&findings, "fixture debt accepted for this test");
    let baseline = Baseline::parse(&rendered).unwrap();
    assert_eq!(baseline.entries.len(), 1, "identical findings collapse into one counted entry");
    assert_eq!(baseline.entries[0].count, 2);
    let stale = baseline.apply(&mut findings);
    assert_eq!(stale, 0);
    assert!(findings.iter().all(|f| f.baselined));

    // …but a third, new unwrap is NOT covered.
    let grown = "\
        fn f(a: Option<u32>, b: Option<u32>) -> u32 { a.unwrap() + b.unwrap() }\n\
        fn g(c: Option<u32>) -> u32 { c.unwrap() }\n";
    let mut findings = lint(grown);
    baseline.apply(&mut findings);
    assert_eq!(findings.iter().filter(|f| !f.baselined).count(), 1);
}

#[test]
fn fixed_findings_surface_as_stale_baseline_slots() {
    let mut findings = lint("fn f(a: Option<u32>) -> u32 { a.unwrap() }");
    let baseline =
        Baseline::parse(&Baseline::render(&findings, "fixture debt accepted for this test"))
            .unwrap();
    // The unwrap gets fixed: nothing matches the baseline entry any more.
    let mut clean = lint("fn f(a: Option<u32>) -> u32 { a.unwrap_or(0) }");
    assert!(clean.is_empty());
    assert_eq!(baseline.apply(&mut clean), 1);
    // Meanwhile the original findings are still covered.
    assert_eq!(baseline.apply(&mut findings), 0);
}

// ---------------------------------------------------------------------------
// S — shard safety (semantic pass)
// ---------------------------------------------------------------------------

#[test]
fn s501_flags_concurrency_primitives_outside_the_shard_engine() {
    let f = lint("fn f() { let m = Mutex::new(0u64); }");
    assert_eq!(rules_of(&f), ["S501"]);
    let f = lint("fn f() { let c = AtomicU64::new(0); }");
    assert_eq!(rules_of(&f), ["S501"]);
    let f = lint("fn f() { std::thread::spawn(|| {}); }");
    assert_eq!(rules_of(&f), ["S501"]);
    // The sharded epoch engine is the sanctioned home for all of it.
    let shard = "fn f() { let m = Mutex::new(0u64); let c = AtomicU64::new(0); }";
    assert!(lint_source("crates/gpu-sim/src/shard.rs", shard).is_empty());
}

#[test]
fn s502_bans_relaxed_ordering_even_inside_the_shard_engine() {
    let src = "fn f(x: &AtomicU64) { x.store(1, Ordering::Relaxed); }";
    let f = lint_source("crates/gpu-sim/src/shard.rs", src);
    assert_eq!(rules_of(&f), ["S502"]);
    assert_eq!(f[0].token, "Relaxed");
    // Acquire/Release are what the rule steers to.
    let ok = "fn f(x: &AtomicU64) { x.store(1, Ordering::Release); let _ = x.load(Ordering::Acquire); }";
    assert!(lint_source("crates/gpu-sim/src/shard.rs", ok).is_empty());
    // `std::cmp::Ordering` has no Relaxed variant, so qualified cmp uses
    // cannot collide with the pattern.
    assert!(lint_source("crates/gpu-sim/src/shard.rs", "fn g(o: Ordering) -> bool { o == Ordering::Less }").is_empty());
}

#[test]
fn s503_flags_interconnect_access_reachable_from_the_parallel_region() {
    // `helper` is only dangerous because `step_local` reaches it.
    let shard = "impl Shard { fn step_local(&mut self, now: u64) { self.helper(now); } \
                 fn helper(&mut self, now: u64) { self.icnt.push(now); } }";
    let f = lint_source("crates/gpu-sim/src/shard.rs", shard);
    assert_eq!(rules_of(&f), ["S503"]);
    assert_eq!(
        f[0].reachable_from.as_deref(),
        Some("Shard::step_local -> Shard::helper"),
        "the finding carries the root-to-site chain"
    );
    // The same helper unreachable from any parallel root is fine.
    let quiet = "impl Shard { fn report(&mut self, now: u64) { self.helper(now); } \
                 fn helper(&mut self, now: u64) { self.icnt.push(now); } }";
    assert!(lint_source("crates/gpu-sim/src/shard.rs", quiet).is_empty());
}

#[test]
fn s503_flags_interconnect_typed_params_in_the_parallel_region() {
    let files = [
        (
            "crates/gpu-sim/src/shard.rs",
            "impl Shard { fn step_local(&mut self, now: u64) { merge_stats(now); } }",
        ),
        (
            "crates/gpu-sim/src/gpu.rs",
            "fn merge_stats(icnt: &Interconnect) { let _ = icnt; }",
        ),
    ];
    let f = dlp_lint::lint_sources(&files);
    let s503: Vec<_> = f.iter().filter(|f| f.rule == "S503").collect();
    assert_eq!(s503.len(), 1, "{f:?}");
    assert_eq!(s503[0].token, "Interconnect");
    assert_eq!(s503[0].file, "crates/gpu-sim/src/gpu.rs");
}

// ---------------------------------------------------------------------------
// L — leap contract (semantic pass)
// ---------------------------------------------------------------------------

#[test]
fn l601_requires_a_catchup_method_beside_next_event() {
    // Deleting the catch-up method from a next_event implementor is the
    // exact regression this fixture pins.
    let missing = "impl Part { pub fn next_event(&mut self, now: u64) -> Option<u64> { Some(now + 1) } }";
    let f = lint(missing);
    assert_eq!(rules_of(&f), ["L601"]);
    assert_eq!(f[0].token, "Part");
    // Any of the three catch-up spellings satisfies the contract…
    for catchup in ["advance_quiet", "leap_catchup", "catch_up"] {
        let ok = format!(
            "impl Part {{ pub fn next_event(&mut self, now: u64) -> Option<u64> {{ Some(now + 1) }} \
             pub fn {catchup}(&mut self, skipped: u64) {{ let _ = skipped; }} }}"
        );
        assert!(lint(&ok).is_empty(), "{catchup} should satisfy L601");
    }
    // …even when it lives in another impl block or file of the type.
    let split = [
        ("crates/gpu-mem/src/a.rs", "impl Part { pub fn next_event(&mut self, now: u64) -> Option<u64> { Some(now + 1) } }"),
        ("crates/gpu-mem/src/b.rs", "impl Part { pub fn advance_quiet(&mut self, now: u64) { let _ = now; } }"),
    ];
    assert!(dlp_lint::lint_sources(&split).is_empty());
}

#[test]
fn l602_flags_stats_writes_in_probe_reachable_code_without_a_delta() {
    // `bound` is reachable from next_event and mutates a stats counter
    // with no cycle-delta parameter: the leap would undercount. (The
    // impl carries an advance_quiet so L601 stays out of the picture.)
    let bad = "impl Part { fn next_event(&mut self, now: u64) -> Option<u64> { self.bound(now) } \
               fn advance_quiet(&mut self, skipped: u64) { let _ = skipped; } \
               fn bound(&mut self, now: u64) -> Option<u64> { self.stats.probes += 1; Some(now + 1) } }";
    let f = lint(bad);
    assert_eq!(rules_of(&f), ["L602"]);
    assert_eq!(f[0].token, "self.stats.probes");
    // A delta-shaped parameter (skipped/delta/ticks/…) licenses the write.
    let ok = "impl Part { fn next_event(&mut self, now: u64) -> Option<u64> { self.bound(now, 0) } \
              fn advance_quiet(&mut self, skipped: u64) { let _ = skipped; } \
              fn bound(&mut self, now: u64, skipped: u64) -> Option<u64> { self.stats.probes += skipped; Some(now + 1) } }";
    assert!(lint(ok).is_empty());
    // The same write outside the probe's reach is not L602's business.
    let quiet = "impl Part { fn cycle(&mut self) { self.stats.probes += 1; } }";
    assert!(lint(quiet).is_empty());
}

// ---------------------------------------------------------------------------
// Transitive hot-path propagation (P301/F103 v2)
// ---------------------------------------------------------------------------

#[test]
fn p301_propagates_through_callees_of_a_hot_root() {
    // The allocation sits two calls below `cycle`, in a different file.
    let files = [
        ("crates/gpu-mem/src/a.rs", "impl Sm { pub fn cycle(&mut self, now: u64) { self.l1d.process(now); } }"),
        ("crates/gpu-mem/src/b.rs", "impl L1dCache { pub fn process(&mut self, now: u64) { helper(now); } } \
          fn helper(now: u64) { let v = vec![now]; let _ = v; }"),
    ];
    let f = dlp_lint::lint_sources(&files);
    assert_eq!(rules_of(&f), ["P301"]);
    assert_eq!(f[0].file, "crates/gpu-mem/src/b.rs");
    assert_eq!(
        f[0].reachable_from.as_deref(),
        Some("Sm::cycle -> L1dCache::process -> helper")
    );
    // The identical helper with no hot caller is clean.
    let cold = [("crates/gpu-mem/src/b.rs", "fn helper(now: u64) { let v = vec![now]; let _ = v; }")];
    assert!(dlp_lint::lint_sources(&cold).is_empty());
}

#[test]
fn cold_attribute_stops_hot_propagation() {
    let src = "impl Sm { pub fn cycle(&mut self, now: u64) { if now == 0 { self.abort(now); } } \
               #[cold] fn abort(&self, now: u64) { let b = Box::new(now); let _ = b; } }";
    assert!(lint(src).is_empty(), "#[cold] is the declared escape hatch");
}

#[test]
fn f103_in_a_hot_callee_carries_the_reachability_chain() {
    // F103 fires everywhere in the tier; when the site is transitively
    // hot the finding additionally explains *how* it got hot.
    let files = [
        ("crates/gpu-mem/src/a.rs", "impl Sm { pub fn tick(&mut self, now: u64) { bump(now); } }"),
        ("crates/gpu-mem/src/b.rs", "fn bump(now: u64) -> u64 { now.wrapping_add(1) }"),
    ];
    let f = dlp_lint::lint_sources(&files);
    assert_eq!(rules_of(&f), ["F103"]);
    assert_eq!(f[0].reachable_from.as_deref(), Some("Sm::tick -> bump"));
    // The same wrapping call with no hot caller is still F103, but
    // carries no chain.
    let cold = [("crates/gpu-mem/src/b.rs", "fn bump(now: u64) -> u64 { now.wrapping_add(1) }")];
    let f = dlp_lint::lint_sources(&cold);
    assert_eq!(rules_of(&f), ["F103"]);
    assert!(f[0].reachable_from.is_none());
}

// ---------------------------------------------------------------------------
// X002 — unused suppressions
// ---------------------------------------------------------------------------

#[test]
fn x002_flags_a_directive_that_suppresses_nothing() {
    let f = lint("// dlp-lint: allow(E201) -- nothing here uses unwrap\nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X002"]);
    assert_eq!(f[0].line, 1);
    // A used directive is not flagged.
    let ok = "// dlp-lint: allow(E201) -- fixture\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint(ok).is_empty());
}

#[test]
fn x002_exempts_directives_inside_test_modules() {
    // Test code is lint-exempt, so its directives necessarily match
    // nothing; flagging them would force deleting documentation.
    let src = "\
        fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
        #[cfg(test)]\n\
        mod tests {\n\
            // dlp-lint: allow(E201) -- exercised only under cfg(test)\n\
            fn probe(x: Option<u32>) -> u32 { x.unwrap() }\n\
        }\n";
    assert!(lint(src).is_empty());
}
