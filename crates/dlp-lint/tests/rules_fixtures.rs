//! Fixture-based tests: one positive and one negative case per rule,
//! plus suppression-directive and baseline behaviour over real
//! `lint_source` runs. Fixtures are linted under a simulator-tier path
//! (`crates/gpu-mem/src/…`) so the full rule set applies.

use dlp_lint::{is_sim_tier, lint_source, Baseline, Finding};

/// Lint a fixture as if it lived in the simulator tier.
fn lint(src: &str) -> Vec<Finding> {
    lint_source("crates/gpu-mem/src/fixture.rs", src)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// Tier scoping
// ---------------------------------------------------------------------------

#[test]
fn sim_tier_covers_exactly_the_three_simulator_crates() {
    assert!(is_sim_tier("crates/dlp-core/src/vta.rs"));
    assert!(is_sim_tier("crates/gpu-mem/src/deep/nested.rs"));
    assert!(is_sim_tier("crates/gpu-sim/src/sm.rs"));
    // Harness, tooling, tests and examples are exempt.
    assert!(!is_sim_tier("crates/dlp-bench/src/telemetry.rs"));
    assert!(!is_sim_tier("crates/rd-tools/src/walk.rs"));
    assert!(!is_sim_tier("crates/gpu-mem/tests/l1d_properties.rs"));
    assert!(!is_sim_tier("examples/quickstart.rs"));
    assert!(!is_sim_tier("crates/gpu-mem/src/"));
}

#[test]
fn non_sim_tier_files_produce_no_findings() {
    let src = "fn f() { let t = Instant::now(); t.elapsed().unwrap(); }";
    assert!(lint_source("crates/dlp-bench/src/perf.rs", src).is_empty());
    assert!(!lint_source("crates/gpu-mem/src/perf.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// D — determinism
// ---------------------------------------------------------------------------

#[test]
fn d001_flags_wall_clock_types() {
    let f = lint("fn f() { let t0 = std::time::Instant::now(); }");
    assert_eq!(rules_of(&f), ["D001"]);
    assert_eq!(f[0].token, "Instant");
    let f = lint("fn f() -> SystemTime { SystemTime::now() }");
    assert!(f.iter().all(|f| f.rule == "D001"));
    // Simulated time is the cycle counter — not a wall clock.
    assert!(lint("fn f(now: u64) -> u64 { now + 4 }").is_empty());
}

#[test]
fn d002_flags_ambient_randomness() {
    let f = lint("fn f() { let mut rng = rand::thread_rng(); }");
    assert_eq!(rules_of(&f), ["D002"]);
    let f = lint("fn f() { let s = RandomState::new(); }");
    assert_eq!(rules_of(&f), ["D002"]);
    // Explicitly seeded generators are the sanctioned pattern.
    assert!(lint("fn f(seed: u64) { let rng = Lcg::seed_from(seed); }").is_empty());
}

#[test]
fn d003_flags_environment_reads() {
    let f = lint("fn f() { let v = std::env::var(\"DLP_FORCE_FAIL\"); }");
    assert_eq!(rules_of(&f), ["D003"]);
    assert_eq!(f[0].token, "var");
    let f = lint("fn f() { for (k, v) in std::env::vars() {} }");
    assert_eq!(rules_of(&f), ["D003"]);
    // Non-read env API (and unrelated `env` idents) pass.
    assert!(lint("fn f() { let d = std::env::current_dir(); }").is_empty());
    assert!(lint("fn f(env: &Config) { env.lookup(3); }").is_empty());
}

#[test]
fn d004_flags_hash_container_iteration() {
    // Method-call iteration on a declared HashMap.
    let f = lint(
        "struct S { entries: HashMap<u64, u32> }\n\
         impl S { fn f(&self) -> usize { self.entries.values().count() } }",
    );
    assert_eq!(rules_of(&f), ["D004"]);
    // For-loop iteration on a HashSet local.
    let f = lint(
        "fn f() { let seen: HashSet<u64> = HashSet::new();\n\
         for x in &seen { drop(x); } }",
    );
    assert_eq!(rules_of(&f), ["D004"]);
    // Point lookups are order-free; BTreeMap iteration is sorted.
    assert!(lint(
        "struct S { entries: HashMap<u64, u32> }\n\
         impl S { fn f(&self, k: u64) -> Option<&u32> { self.entries.get(&k) } }",
    )
    .is_empty());
    assert!(lint(
        "fn f(m: &BTreeMap<u64, u32>) -> usize { m.values().count() }",
    )
    .is_empty());
}

// ---------------------------------------------------------------------------
// F — fidelity
// ---------------------------------------------------------------------------

#[test]
fn f101_flags_unmasked_narrowing_of_addresses_and_cycles() {
    let f = lint("fn f(addr: u64) -> u32 { addr as u32 }");
    assert_eq!(rules_of(&f), ["F101"]);
    assert_eq!(f[0].token, "addr");
    let f = lint("fn f(cycle: u64) -> usize { (cycle + 1) as usize }");
    assert_eq!(rules_of(&f), ["F101"]);
    // An explicit mask or bound makes the narrowing intentional.
    assert!(lint("fn f(addr: u64) -> usize { (addr & 0x7f) as usize }").is_empty());
    assert!(lint("fn f(now: u64) -> u32 { (now % 1024) as u32 }").is_empty());
    // Widening and non-watched identifiers pass.
    assert!(lint("fn f(addr: u32) -> u64 { addr as u64 }").is_empty());
    assert!(lint("fn f(idx: u64) -> usize { idx as usize }").is_empty());
}

#[test]
fn f102_flags_float_typed_state() {
    let f = lint("struct Stats { hit_rate: f64, misses: u64 }");
    assert_eq!(rules_of(&f), ["F102"]);
    let f = lint("fn f(alpha: f32) {}");
    assert_eq!(rules_of(&f), ["F102"]);
    // Ratios computed at report time (return position / casts) pass.
    assert!(lint("fn ipc(&self) -> f64 { self.insns as f64 / self.cycles as f64 }").is_empty());
    assert!(lint("use std::f64::consts::PI;").is_empty());
}

#[test]
fn f103_flags_wrapping_arithmetic() {
    // The launch-cursor replay bug class: a wrapping add on a cursor or
    // cycle quantity silently corrupts state instead of erroring.
    let f = lint("fn f(cursor: usize, slots: usize) -> usize { cursor.wrapping_add(slots) }");
    assert_eq!(rules_of(&f), ["F103"]);
    assert_eq!(f[0].token, "wrapping_add");
    let f = lint("fn f(a: u64, b: u64) -> u64 { a.wrapping_sub(b).wrapping_mul(3) }");
    assert_eq!(rules_of(&f), ["F103", "F103"]);
    // checked/saturating arithmetic is the sanctioned replacement.
    assert!(lint("fn f(a: u64, b: u64) -> Option<u64> { a.checked_add(b) }").is_empty());
    assert!(lint("fn f(a: u64, b: u64) -> u64 { a.saturating_sub(b) }").is_empty());
    // A bare identifier named like the method is not a call.
    assert!(lint("fn f(wrapping_add: u64) -> u64 { wrapping_add }").is_empty());
}

#[test]
fn f103_is_suppressible_for_deliberate_modular_arithmetic() {
    let src = "\
        fn fnv(h: u64, b: u8) -> u64 {\n\
            // dlp-lint: allow(F103) -- FNV-1a is modular multiplication by definition\n\
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)\n\
        }\n";
    assert!(lint(src).is_empty());
}

// ---------------------------------------------------------------------------
// E — error handling
// ---------------------------------------------------------------------------

#[test]
fn e201_flags_unwrap_calls() {
    let f = lint("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
    assert_eq!(rules_of(&f), ["E201"]);
    // unwrap_or and friends are total — no abort path.
    assert!(lint("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
    assert!(lint("fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }").is_empty());
}

#[test]
fn e202_flags_expect_calls() {
    let f = lint("fn f(x: Option<u32>) -> u32 { x.expect(\"live warp\") }");
    assert_eq!(rules_of(&f), ["E202"]);
    assert!(lint("fn f(x: Option<u32>) -> u32 { x.map_or(0, |v| v) }").is_empty());
}

#[test]
fn e203_flags_panicking_macros() {
    assert_eq!(rules_of(&lint("fn f() { panic!(\"boom\"); }")), ["E203"]);
    assert_eq!(rules_of(&lint("fn f() { unreachable!(); }")), ["E203"]);
    assert_eq!(rules_of(&lint("fn f() { todo!(); }")), ["E203"]);
    // assert!/debug_assert! document invariants without being flagged.
    assert!(lint("fn f(n: usize) { debug_assert!(n > 0); assert!(n < 64); }").is_empty());
}

// ---------------------------------------------------------------------------
// P — hot-path performance
// ---------------------------------------------------------------------------

#[test]
fn p301_flags_heap_allocation_in_hot_functions() {
    let f = lint("fn cycle(&mut self, now: u64) { let buf: Vec<u64> = Vec::new(); drop(buf); }");
    assert_eq!(rules_of(&f), ["P301"]);
    assert_eq!(f[0].token, "Vec");
    let f = lint("fn tick(&mut self) { let v = vec![0u64; 4]; drop(v); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint("fn step(&mut self) { let b = Box::new(Report::default()); drop(b); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint("fn cycle(&mut self, lines: &[u64]) { let c = lines.to_vec(); drop(c); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint(
        "fn step(&mut self) { let ids: Vec<u64> = self.warps.ids().collect(); drop(ids); }",
    );
    assert_eq!(rules_of(&f), ["P301"]);
    // The sharded epoch engine's per-cycle bodies are held to the same
    // discipline as the sequential ones.
    let f = lint("fn step_local(&mut self, now: u64) { let v = vec![0u64; 4]; drop(v); }");
    assert_eq!(rules_of(&f), ["P301"]);
    let f = lint("fn run_round(&mut self, s: u64, e: u64) { let b: Vec<u64> = Vec::new(); drop(b); }");
    assert_eq!(rules_of(&f), ["P301"]);
}

#[test]
fn p301_only_applies_inside_hot_function_bodies() {
    // The same allocations are fine in constructors and cold helpers.
    assert!(lint("fn new() -> Self { Self { buf: Vec::new(), q: vec![0; 8] } }").is_empty());
    assert!(lint("fn report(&self) -> Vec<u64> { self.lines.to_vec() }").is_empty());
    // A bodyless trait declaration marks nothing …
    assert!(lint("trait Clocked { fn cycle(&mut self, now: u64); }").is_empty());
    // … and the mask ends at the hot body's closing brace.
    let f = lint(
        "fn cycle(&mut self) { self.n += 1; }\n\
         fn drain(&mut self) -> Vec<u64> { self.q.drain(..).collect() }",
    );
    assert!(f.is_empty(), "allocation after the hot body must not be flagged: {f:?}");
    // Reused preallocated buffers — the sanctioned pattern — pass.
    assert!(lint("fn cycle(&mut self) { self.scratch.clear(); self.scratch.push(1); }").is_empty());
}

#[test]
fn p301_respects_suppression_directives_and_cfg_test() {
    let src = "\
        fn step(&mut self) {\n\
            // dlp-lint: allow(P301) -- cold hang-report arm, runs once per abort\n\
            let r = Box::new(Report::default());\n\
            drop(r);\n\
        }\n";
    assert!(lint(src).is_empty());
    let src = "\
        #[cfg(test)]\n\
        mod tests {\n\
            fn cycle_harness() { fn cycle() { let v: Vec<u64> = Vec::new(); drop(v); } }\n\
        }\n";
    assert!(lint(src).is_empty());
}

#[test]
fn cfg_test_items_are_exempt_from_every_rule() {
    let src = "\
        fn live() -> u64 { 1 }\n\
        #[cfg(test)]\n\
        mod tests {\n\
            fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n\
            fn clock() { let t = Instant::now(); panic!(\"{t:?}\"); }\n\
        }\n";
    assert!(lint(src).is_empty());
    // …but code after the test module is scanned again.
    let trailing = format!("{src}fn late(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    assert_eq!(rules_of(&lint(&trailing)), ["E201"]);
}

// ---------------------------------------------------------------------------
// R — store-tier crash safety
// ---------------------------------------------------------------------------

/// Lint a fixture as if it lived in the store tier.
fn lint_store(src: &str) -> Vec<Finding> {
    lint_source("crates/dlp-store/src/fixture.rs", src)
}

#[test]
fn store_tier_covers_store_and_daemon_but_not_the_atomic_impl() {
    use dlp_lint::is_store_tier;
    assert!(is_store_tier("crates/dlp-store/src/store.rs"));
    assert!(is_store_tier("crates/dlp-store/src/fault.rs"));
    assert!(is_store_tier("crates/dlp-sweepd/src/server.rs"));
    // The atomic helpers implement the discipline; they are exempt.
    assert!(!is_store_tier("crates/dlp-store/src/atomic.rs"));
    // Tests, the harness, and the simulator crates are out of scope.
    assert!(!is_store_tier("crates/dlp-store/tests/corruption_roundtrip.rs"));
    assert!(!is_store_tier("crates/dlp-bench/src/persist.rs"));
    assert!(!is_store_tier("crates/gpu-mem/src/l1d.rs"));
}

#[test]
fn r401_flags_raw_file_mutation_in_store_tier() {
    let f = lint_store("fn f(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }");
    assert_eq!(rules_of(&f), ["R401"]);
    assert_eq!(f[0].token, "write");
    let f = lint_store("fn f(a: &Path, b: &Path) { fs::rename(a, b).unwrap(); }");
    assert_eq!(rules_of(&f), ["R401"]);
    let f = lint_store("fn f(p: &Path) { let _ = File::create(p); }");
    assert_eq!(rules_of(&f), ["R401"]);
    let f = lint_store("fn f(p: &Path) { OpenOptions::new().append(true).open(p).unwrap(); }");
    assert_eq!(rules_of(&f), ["R401"]);
}

#[test]
fn r401_permits_reads_dir_creation_and_the_atomic_helpers() {
    let ok = "\
        fn f(p: &Path) {\n\
            std::fs::create_dir_all(p).unwrap();\n\
            let _ = std::fs::read(p);\n\
            let _ = std::fs::read_dir(p);\n\
            let _ = std::fs::read_to_string(p);\n\
            let _ = File::open(p);\n\
            atomic::atomic_write(p, b\"x\").unwrap();\n\
            atomic::append_line(p, \"l\").unwrap();\n\
        }\n";
    assert!(lint_store(ok).is_empty(), "{:?}", lint_store(ok));
}

#[test]
fn r401_is_scoped_exempt_in_tests_and_suppressible() {
    // The same mutation outside the store tier is not a finding.
    let src = "fn f(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }";
    assert!(lint_source("crates/rd-tools/src/fixture.rs", src).is_empty());
    // The sim rules do not leak into the store tier: unwrap/env/floats
    // are the harness's business there, not dlp-lint's.
    let sim_noise = "fn f() { let t = Instant::now(); t.elapsed().unwrap(); }";
    assert!(lint_store(sim_noise).is_empty());
    // cfg(test) items are exempt, as everywhere.
    let test_src = "\
        #[cfg(test)]\n\
        mod tests {\n\
            fn f(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }\n\
        }\n";
    assert!(lint_store(test_src).is_empty());
    // And the allow directive works with a reason.
    let suppressed = "\
        // dlp-lint: allow(R401) -- socket file, not a store entry\n\
        fn f(p: &Path) { std::fs::remove_file(p).unwrap(); }\n";
    assert!(lint_store(suppressed).is_empty());
}

// ---------------------------------------------------------------------------
// Suppression directives and X001
// ---------------------------------------------------------------------------

#[test]
fn directive_on_preceding_line_suppresses_next_line() {
    let src = "\
        fn f(m: &HashMap<u64, u32>) -> usize {\n\
            let m: HashMap<u64, u32> = HashMap::new();\n\
            // dlp-lint: allow(D004) -- sum over values is order-independent\n\
            m.values().count()\n\
        }\n";
    assert!(lint(src).is_empty(), "directive should suppress the D004 below it");
}

#[test]
fn trailing_directive_suppresses_its_own_line() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // dlp-lint: allow(E201) -- fixture\n";
    assert!(lint(src).is_empty());
}

#[test]
fn directive_for_a_different_rule_does_not_suppress() {
    let src = "\
        // dlp-lint: allow(D004) -- wrong rule\n\
        fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_of(&lint(src)), ["E201"]);
}

#[test]
fn directive_covers_a_comma_separated_rule_list() {
    let src = "\
        // dlp-lint: allow(E201, E203) -- fixture exercising both\n\
        fn f(x: Option<u32>) -> u32 { if x.is_none() { panic!(\"gone\") } x.unwrap() }\n";
    assert!(lint(src).is_empty());
}

#[test]
fn x001_reports_malformed_directives() {
    // Missing reason.
    let f = lint("// dlp-lint: allow(D004)\nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
    // Unknown rule ID.
    let f = lint("// dlp-lint: allow(Z999) -- because\nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
    // Not an allow() form at all.
    let f = lint("// dlp-lint: disable D004 -- nope\nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
    // Empty reason after the separator.
    let f = lint("// dlp-lint: allow(D004) --   \nfn f() {}\n");
    assert_eq!(rules_of(&f), ["X001"]);
}

// ---------------------------------------------------------------------------
// Baseline behaviour over real scan output
// ---------------------------------------------------------------------------

#[test]
fn baseline_written_from_findings_accepts_exactly_those_findings() {
    let src = "\
        fn f(a: Option<u32>, b: Option<u32>) -> u32 { a.unwrap() + b.unwrap() }\n";
    let mut findings = lint(src);
    assert_eq!(rules_of(&findings), ["E201", "E201"]);

    // A baseline generated from the findings covers both occurrences…
    let rendered = Baseline::render(&findings);
    let baseline = Baseline::parse(&rendered).unwrap();
    assert_eq!(baseline.entries.len(), 1, "identical findings collapse into one counted entry");
    assert_eq!(baseline.entries[0].count, 2);
    let stale = baseline.apply(&mut findings);
    assert_eq!(stale, 0);
    assert!(findings.iter().all(|f| f.baselined));

    // …but a third, new unwrap is NOT covered.
    let grown = "\
        fn f(a: Option<u32>, b: Option<u32>) -> u32 { a.unwrap() + b.unwrap() }\n\
        fn g(c: Option<u32>) -> u32 { c.unwrap() }\n";
    let mut findings = lint(grown);
    baseline.apply(&mut findings);
    assert_eq!(findings.iter().filter(|f| !f.baselined).count(), 1);
}

#[test]
fn fixed_findings_surface_as_stale_baseline_slots() {
    let mut findings = lint("fn f(a: Option<u32>) -> u32 { a.unwrap() }");
    let baseline = Baseline::parse(&Baseline::render(&findings)).unwrap();
    // The unwrap gets fixed: nothing matches the baseline entry any more.
    let mut clean = lint("fn f(a: Option<u32>) -> u32 { a.unwrap_or(0) }");
    assert!(clean.is_empty());
    assert_eq!(baseline.apply(&mut clean), 1);
    // Meanwhile the original findings are still covered.
    assert_eq!(baseline.apply(&mut findings), 0);
}
