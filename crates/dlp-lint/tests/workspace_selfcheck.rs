//! Self-check: lint the real workspace the test runs inside. This is
//! the same gate CI applies (`cargo run -p dlp-lint -- --format json
//! --baseline lint-baseline.json`), expressed as a library call so a
//! regression fails `cargo test` too, not just the CI job.

use std::path::{Path, PathBuf};

use dlp_lint::{json, lint_workspace, render_json, Baseline};

fn workspace_root() -> PathBuf {
    // crates/dlp-lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn load_baseline(root: &Path) -> Baseline {
    match std::fs::read_to_string(root.join("lint-baseline.json")) {
        Ok(src) => Baseline::parse(&src).unwrap(),
        Err(_) => Baseline::default(),
    }
}

#[test]
fn workspace_has_no_unbaselined_findings() {
    let root = workspace_root();
    let mut report = lint_workspace(&root).unwrap();
    load_baseline(&root).apply(&mut report.findings);
    let fresh: Vec<_> = report.findings.iter().filter(|f| !f.baselined).collect();
    assert!(
        fresh.is_empty(),
        "new dlp-lint findings — fix them or justify in lint-baseline.json:\n{}",
        fresh
            .iter()
            .map(|f| format!("  {}:{}:{}: {} {}", f.file, f.line, f.col, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned >= 30,
        "suspiciously few files scanned ({}) — walker or tier filter broke",
        report.files_scanned
    );
}

#[test]
fn the_checked_in_baseline_is_empty() {
    // Since the PR 8 semantic engine every surfaced finding is fixed or
    // suppressed inline with a reason; the baseline exists only as the
    // escape hatch for *future* accepted debt and must stay empty.
    let baseline = load_baseline(&workspace_root());
    assert!(
        baseline.entries.is_empty(),
        "lint-baseline.json grew entries — fix the findings or suppress inline with a reason:\n{:?}",
        baseline.entries.iter().map(|e| (e.rule.as_str(), e.file.as_str())).collect::<Vec<_>>()
    );
}

#[test]
fn the_checked_in_baseline_carries_no_todo_placeholders() {
    // `--write-baseline` once emitted "TODO: justify or fix" for every
    // entry; entries that never got a real justification are debt
    // nobody signed off on. The parser rejects the marker outright,
    // but a raw-text sweep also catches it outside `reason` fields
    // (and keeps failing even if the parse-time gate regresses).
    let root = workspace_root();
    if let Ok(src) = std::fs::read_to_string(root.join("lint-baseline.json")) {
        assert!(
            !src.contains(dlp_lint::TODO_REASON_MARKER),
            "lint-baseline.json contains \"{}\" — replace it with a real justification",
            dlp_lint::TODO_REASON_MARKER
        );
        Baseline::parse(&src).expect("checked-in baseline must parse");
    }
}

#[test]
fn workspace_report_round_trips_through_the_json_schema() {
    let root = workspace_root();
    let report = lint_workspace(&root).unwrap();
    let out = render_json(&report.findings, report.files_scanned);
    let v = json::parse(&out).unwrap();
    let obj = v.as_object().unwrap();
    let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    assert_eq!(get("schema").and_then(|v| v.as_str()), Some(dlp_lint::DIAG_SCHEMA));
    assert_eq!(
        get("files_scanned").and_then(|v| v.as_usize()),
        Some(report.files_scanned)
    );
    let findings = get("findings").and_then(|v| v.as_array()).unwrap();
    assert_eq!(findings.len(), report.findings.len());
    for f in findings {
        let fo = f.as_object().unwrap();
        for key in ["rule", "name", "family", "file", "token", "message", "hint"] {
            assert!(
                fo.iter().any(|(k, v)| k == key && v.as_str().is_some()),
                "finding missing string field `{key}`"
            );
        }
        // v2: reachable_from is present on every finding, string or null.
        assert!(
            fo.iter().any(|(k, v)| k == "reachable_from"
                && (v.as_str().is_some() || matches!(v, dlp_lint::json::Value::Null))),
            "finding missing `reachable_from`"
        );
    }
}

#[test]
fn a_seeded_violation_is_caught_and_suppressible() {
    // End-to-end through lint_source with a realistic seeded defect:
    // the exact shape the CI job exists to reject.
    let seeded = "\
        pub fn drain(&mut self, now: u64) {\n\
            let pending: HashMap<u64, Packet> = HashMap::new();\n\
            for (line, pkt) in pending.iter() {\n\
                self.out.push(pkt.clone());\n\
                self.done.insert(*line as u32, now);\n\
            }\n\
        }\n";
    let findings = dlp_lint::lint_source("crates/gpu-mem/src/seeded.rs", seeded);
    let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"D004"), "seeded hash iteration not caught: {rules:?}");
    assert!(rules.contains(&"F101"), "seeded truncating cast not caught: {rules:?}");
}
