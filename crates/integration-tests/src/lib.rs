//! Host crate for the repository-root `tests/` integration suites —
//! see the `[[test]]` entries in this crate's manifest. Each suite
//! exercises the full simulator stack across crate boundaries:
//!
//! * `end_to_end` — whole-GPU runs of every benchmark under every
//!   scheme, checking completion and global invariants;
//! * `determinism` — bit-identical statistics across repeated runs;
//! * `policy_behaviour` — directional properties the paper reports
//!   (protection raises hit rates on thrashing workloads, bypassing
//!   reduces traffic, CS apps stay within a few percent);
//! * `conservation` — flow conservation between pipeline stages
//!   (responses = transactions, hits+misses = accesses, ...);
//! * `figures_smoke` — the experiment harness end to end at tiny scale.
