//! Property tests for the L1D controller: under arbitrary request
//! streams and arbitrary (but causal) memory service order, every
//! transaction is answered exactly once, accounting is exhaustive, and
//! the cache drains to quiescence — for all four schemes.

// Integration tests assert on failure paths directly; the
// unwrap_used/expect_used denies target shipping simulator code.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use dlp_core::{build_policy, CacheGeometry, PolicyKind};
use gpu_mem::l1d::{L1dCache, L1dConfig};
use gpu_mem::packet::{MemReq, Packet, PacketKind};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

#[derive(Clone, Debug)]
struct Req {
    line: u16,
    is_write: bool,
    pc: u8,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (0u16..600, any::<bool>(), 0u8..12).prop_map(|(line, is_write, pc)| Req { line, is_write, pc })
}

/// A memory that answers fetches after a pseudo-random (bounded) delay,
/// exercising out-of-order reply arrival relative to issue order.
struct ScriptedMemory {
    in_flight: VecDeque<(u64, Packet)>,
}

impl ScriptedMemory {
    fn new() -> Self {
        ScriptedMemory { in_flight: VecDeque::new() }
    }

    fn accept(&mut self, pkt: Packet, now: u64) {
        if pkt.kind.expects_reply() {
            // Deterministic pseudo-random latency from the address.
            let delay = 3 + (pkt.addr / 128 * 2654435761 % 37);
            let kind = match pkt.kind {
                PacketKind::ReadReq => PacketKind::ReadReply,
                PacketKind::BypassReadReq => PacketKind::BypassReadReply,
                _ => unreachable!(),
            };
            self.in_flight.push_back((now + delay, Packet { kind, ..pkt }));
        }
    }

    fn deliver(&mut self, l1: &mut L1dCache, now: u64) {
        // Deliver everything due, in a shuffled-by-delay order.
        let mut rest = VecDeque::new();
        while let Some((ready, pkt)) = self.in_flight.pop_front() {
            if ready <= now {
                l1.on_reply(pkt, now).unwrap();
            } else {
                rest.push_back((ready, pkt));
            }
        }
        self.in_flight = rest;
    }

    fn idle(&self) -> bool {
        self.in_flight.is_empty()
    }
}

fn run_stream(kind: PolicyKind, reqs: &[Req]) {
    let geom = CacheGeometry::fermi_l1d_16k();
    let cfg = L1dConfig { geom, ..L1dConfig::fermi_baseline() };
    let mut l1 = L1dCache::new(cfg, build_policy(kind, geom));
    let mut mem = ScriptedMemory::new();

    let mut cycle = 0u64;
    let mut submitted = 0usize;
    let mut outstanding_loads: HashSet<u64> = HashSet::new();
    let mut store_acks_expected = 0u64;
    let mut store_acks_seen = 0u64;

    let mut next = 0usize;
    let budget = reqs.len() as u64 * 600 + 10_000;
    while cycle < budget {
        cycle += 1;
        l1.cycle(cycle).unwrap();
        while let Some(pkt) = l1.pop_outgoing() {
            mem.accept(pkt, cycle);
        }
        mem.deliver(&mut l1, cycle);
        while let Some(resp) = l1.pop_response() {
            if resp.req.is_write {
                store_acks_seen += 1;
            } else {
                assert!(
                    outstanding_loads.remove(&resp.req.id),
                    "{kind:?}: duplicate or phantom load response id {}",
                    resp.req.id
                );
            }
        }
        if next < reqs.len() {
            let r = &reqs[next];
            let mreq = MemReq {
                id: next as u64,
                addr: r.line as u64 * 128,
                is_write: r.is_write,
                pc: r.pc as u32,
                sm: 0,
                warp: 0,
                dst_reg: 1,
                born: 0,
            };
            if l1.submit(mreq, cycle).unwrap() {
                if r.is_write {
                    store_acks_expected += 1;
                } else {
                    outstanding_loads.insert(next as u64);
                }
                submitted += 1;
                next += 1;
            }
        } else if outstanding_loads.is_empty()
            && store_acks_seen == store_acks_expected
            && l1.quiescent()
            && mem.idle()
        {
            break;
        }
    }

    assert_eq!(submitted, reqs.len(), "{kind:?}: stream did not finish within budget");
    assert!(outstanding_loads.is_empty(), "{kind:?}: {} loads unanswered", outstanding_loads.len());
    assert_eq!(store_acks_seen, store_acks_expected, "{kind:?}: store acks");
    assert!(l1.quiescent(), "{kind:?}: cache not quiescent after drain");

    // Exhaustive accounting.
    let s = l1.stats();
    assert_eq!(s.accesses as usize, reqs.len());
    assert_eq!(
        s.hits + s.misses_allocated + s.mshr_merges + s.bypassed_loads + s.bypassed_stores,
        s.accesses,
        "{kind:?}: accounting leak"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_scheme_answers_every_request_exactly_once(
        reqs in prop::collection::vec(req_strategy(), 1..300),
    ) {
        for kind in PolicyKind::ALL {
            run_stream(kind, &reqs);
        }
    }

    #[test]
    fn hot_set_streams_drain(line_base in 0u16..32) {
        // Worst case: everything maps to one set (multiples of 32 lines
        // under the linear part of the hash fold hit few sets).
        let reqs: Vec<Req> = (0..200)
            .map(|i| Req { line: line_base + (i % 13) * 32, is_write: i % 5 == 0, pc: (i % 6) as u8 })
            .collect();
        for kind in PolicyKind::ALL {
            run_stream(kind, &reqs);
        }
    }
}
