//! The SM ↔ memory-partition crossbar.
//!
//! A packet-granular model of a crossbar with 32-byte flits: each
//! destination port serializes arriving packets at one flit per
//! interconnect cycle, packets then traverse a fixed hop latency, and
//! bounded per-destination queues provide backpressure. Flits are
//! counted in both directions — the paper's interconnect-traffic metric
//! (Figure 13).
//!
//! The model captures what the DLP evaluation depends on: bandwidth
//! contention at hot memory partitions, serialization of data-carrying
//! packets (5 flits) vs control packets (1 flit), and finite buffering.

use crate::fault::{FaultInjector, FaultKind, FaultSite};
use crate::packet::Packet;
use crate::stats::IcntStats;
use std::collections::VecDeque;

/// Crossbar parameters.
#[derive(Clone, Copy, Debug)]
pub struct IcntConfig {
    /// Number of SM-side ports.
    pub num_sms: usize,
    /// Number of partition-side ports.
    pub num_partitions: usize,
    /// Pipeline latency (cycles) added to every traversal.
    pub hop_latency: u64,
    /// Packets a destination queue holds before refusing traffic.
    pub queue_capacity: usize,
    /// Flits a port serializes per cycle (Fermi's crossbar runs ahead
    /// of the core clock, moving ~2 flits per core cycle).
    pub flits_per_cycle: u64,
}

impl IcntConfig {
    /// Table 1's platform: 16 SMs, 12 memory partitions.
    pub fn fermi() -> Self {
        IcntConfig {
            num_sms: 16,
            num_partitions: 12,
            hop_latency: 40,
            queue_capacity: 16,
            flits_per_cycle: 2,
        }
    }
}

/// The address → partition mapping as a free function, for callers
/// that route packets without holding the crossbar (the sharded epoch
/// engine defers sends to per-shard logs and must agree on the
/// destination before the merge).
pub fn partition_for(addr: u64, num_partitions: usize) -> usize {
    ((addr / 256) % num_partitions as u64) as usize
}

struct Port {
    /// Cycle until which this destination port is busy serializing.
    busy_until: u64,
    /// Delivered packets waiting to be popped, with their ready cycles
    /// (monotonically nondecreasing by construction).
    queue: VecDeque<(u64, Packet)>,
}

impl Port {
    fn new() -> Self {
        Port { busy_until: 0, queue: VecDeque::new() }
    }
}

/// The crossbar.
pub struct Interconnect {
    cfg: IcntConfig,
    /// Forward direction: one port per partition.
    fwd: Vec<Port>,
    /// Return direction: one port per SM.
    ret: Vec<Port>,
    /// Optional deterministic packet corruption (integrity testing).
    fault: Option<FaultInjector>,
    /// Undelivered packets across all ports, maintained incrementally so
    /// [`Interconnect::in_flight`] is O(1) (it is polled every cycle by
    /// the GPU's `finished()` check).
    in_flight_count: usize,
    stats: IcntStats,
}

impl Interconnect {
    /// Build for the given shape.
    pub fn new(cfg: IcntConfig) -> Self {
        Interconnect {
            fwd: (0..cfg.num_partitions).map(|_| Port::new()).collect(),
            ret: (0..cfg.num_sms).map(|_| Port::new()).collect(),
            fault: None,
            in_flight_count: 0,
            stats: IcntStats::default(),
            cfg,
        }
    }

    /// Attach a fault injector corrupting traffic at its configured
    /// site ([`FaultSite::IcntForward`] or [`FaultSite::IcntReturn`]).
    pub fn set_fault_injector(&mut self, inj: FaultInjector) {
        self.fault = Some(inj);
    }

    /// Faults injected so far (0 when no injector is attached).
    pub fn faults_injected(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.injected())
    }

    /// Which partition services a byte address: 256-byte chunks are
    /// interleaved across partitions (GPGPU-Sim's default mapping).
    pub fn partition_of(&self, addr: u64) -> usize {
        partition_for(addr, self.cfg.num_partitions)
    }

    fn try_send(
        port: &mut Port,
        cfg: &IcntConfig,
        pkt: Packet,
        now: u64,
        extra: u64,
        slack: usize,
    ) -> Option<u64> {
        if port.queue.len() + slack >= cfg.queue_capacity {
            return None;
        }
        let start = port.busy_until.max(now);
        let done = start + pkt.flits().div_ceil(cfg.flits_per_cycle);
        port.busy_until = done;
        port.queue.push_back((done + cfg.hop_latency + extra, pkt));
        Some(pkt.flits())
    }

    /// Accept an already-admitted packet, applying any injected fault.
    /// Returns the flits serialized (0 when the packet was dropped or a
    /// misrouted copy found its new port full — both are faults).
    /// `slack(port)` is extra occupancy charged against a queue's
    /// capacity (zero on the direct path; see
    /// [`Interconnect::merge_send_fwd`]).
    fn send_faulted(
        &mut self,
        forward: bool,
        dst: usize,
        pkt: Packet,
        now: u64,
        slack: &mut dyn FnMut(usize) -> usize,
    ) -> u64 {
        let site = if forward { FaultSite::IcntForward } else { FaultSite::IcntReturn };
        let (mut dst, mut extra, mut copies) = (dst, 0, 1);
        match self.fault.as_mut().and_then(|f| f.should_inject(site)) {
            Some(FaultKind::Drop) => {
                // The sender saw the packet accepted; it was serialized
                // but never reaches a queue.
                return pkt.flits();
            }
            Some(FaultKind::Duplicate) => copies = 2,
            Some(FaultKind::Delay) => {
                extra = self.fault.as_ref().map_or(0, |f| f.delay_cycles());
            }
            Some(FaultKind::Misroute) => {
                let ports = if forward { self.cfg.num_partitions } else { self.cfg.num_sms };
                dst = (dst + 1) % ports;
            }
            None => {}
        }
        let mut flits = 0;
        for _ in 0..copies {
            let headroom = slack(dst);
            let port = if forward { &mut self.fwd[dst] } else { &mut self.ret[dst] };
            if let Some(f) = Self::try_send(port, &self.cfg, pkt, now, extra, headroom) {
                flits += f;
                self.in_flight_count += 1;
            }
        }
        flits
    }

    /// Inject a packet toward partition `dst`. `false` means the
    /// destination queue is full (sender must retry later).
    pub fn try_send_fwd(&mut self, dst: usize, pkt: Packet, now: u64) -> bool {
        if self.fwd[dst].queue.len() >= self.cfg.queue_capacity {
            self.stats.rejects += 1;
            return false;
        }
        self.stats.fwd_flits += self.send_faulted(true, dst, pkt, now, &mut |_| 0).max(pkt.flits());
        true
    }

    /// Inject a packet toward SM `dst` (return direction).
    pub fn try_send_ret(&mut self, dst: usize, pkt: Packet, now: u64) -> bool {
        if self.ret[dst].queue.len() >= self.cfg.queue_capacity {
            self.stats.rejects += 1;
            return false;
        }
        self.stats.ret_flits += self.send_faulted(false, dst, pkt, now, &mut |_| 0).max(pkt.flits());
        true
    }

    // ---- Sharded-execution support --------------------------------
    //
    // The sharded epoch engine (gpu-sim's shard module) runs disjoint
    // component sets in parallel for a crossbar-latency-bounded epoch
    // and keeps this struct authoritative only at epoch barriers. The
    // entry points below exist for that engine alone: extraction hands
    // a port's ripe FIFO prefix to the owning shard at round start,
    // restore returns the unconsumed tail at the barrier, and the
    // merge sends replay the epoch's deferred traffic in canonical
    // order with capacity evaluated against the *sequential* queue
    // occupancy (extracted-but-not-yet-popped packets re-counted via
    // the `slack` closure).

    fn extract_ready(port: &mut Port, horizon: u64) -> VecDeque<(u64, Packet)> {
        let mut out = VecDeque::new();
        loop {
            match port.queue.front() {
                Some(&(ready, _)) if ready <= horizon => {
                    if let Some(item) = port.queue.pop_front() {
                        out.push_back(item);
                    }
                }
                _ => break,
            }
        }
        out
    }

    fn restore_front(port: &mut Port, mut leftover: VecDeque<(u64, Packet)>) -> usize {
        let n = leftover.len();
        while let Some(item) = leftover.pop_back() {
            port.queue.push_front(item);
        }
        n
    }

    /// Detach the FIFO prefix of partition `dst`'s forward queue whose
    /// packets become poppable by `horizon` (inclusive). Ejection is
    /// head-gated, so the prefix is exactly what [`Interconnect::pop_fwd`]
    /// could ever deliver through that cycle.
    pub fn extract_ready_fwd(&mut self, dst: usize, horizon: u64) -> VecDeque<(u64, Packet)> {
        let out = Self::extract_ready(&mut self.fwd[dst], horizon);
        self.in_flight_count -= out.len();
        out
    }

    /// Detach the ripe FIFO prefix of SM `dst`'s return queue (see
    /// [`Interconnect::extract_ready_fwd`]).
    pub fn extract_ready_ret(&mut self, dst: usize, horizon: u64) -> VecDeque<(u64, Packet)> {
        let out = Self::extract_ready(&mut self.ret[dst], horizon);
        self.in_flight_count -= out.len();
        out
    }

    /// Return the unconsumed tail of an extracted forward prefix to the
    /// head of its queue, preserving FIFO order (the leftovers are older
    /// than everything still enqueued).
    pub fn restore_front_fwd(&mut self, dst: usize, leftover: VecDeque<(u64, Packet)>) {
        self.in_flight_count += Self::restore_front(&mut self.fwd[dst], leftover);
    }

    /// Return the unconsumed tail of an extracted return prefix (see
    /// [`Interconnect::restore_front_fwd`]).
    pub fn restore_front_ret(&mut self, dst: usize, leftover: VecDeque<(u64, Packet)>) {
        self.in_flight_count += Self::restore_front(&mut self.ret[dst], leftover);
    }

    /// Replay an epoch-deferred forward send at the barrier merge.
    ///
    /// Identical to [`Interconnect::try_send_fwd`] except every
    /// capacity check — on the intended port and on any port a fault
    /// redirects a copy to — charges `slack(port)` phantom entries:
    /// packets the shards already popped this round that the
    /// sequential machine would still hold at the send's cycle.
    /// `false` means the sequential machine would have refused the
    /// packet (a shard misspeculation); nothing is enqueued and no
    /// reject is counted, because the caller restarts the whole run on
    /// the sequential path, which re-counts it.
    pub fn merge_send_fwd(
        &mut self,
        dst: usize,
        pkt: Packet,
        now: u64,
        slack: &mut dyn FnMut(usize) -> usize,
    ) -> bool {
        if self.fwd[dst].queue.len() + slack(dst) >= self.cfg.queue_capacity {
            return false;
        }
        self.stats.fwd_flits += self.send_faulted(true, dst, pkt, now, slack).max(pkt.flits());
        true
    }

    /// Replay an epoch-deferred return send at the barrier merge (see
    /// [`Interconnect::merge_send_fwd`]).
    pub fn merge_send_ret(
        &mut self,
        dst: usize,
        pkt: Packet,
        now: u64,
        slack: &mut dyn FnMut(usize) -> usize,
    ) -> bool {
        if self.ret[dst].queue.len() + slack(dst) >= self.cfg.queue_capacity {
            return false;
        }
        self.stats.ret_flits += self.send_faulted(false, dst, pkt, now, slack).max(pkt.flits());
        true
    }

    fn pop(port: &mut Port, now: u64) -> Option<Packet> {
        match port.queue.front() {
            Some(&(ready, _)) if ready <= now => port.queue.pop_front().map(|(_, p)| p),
            _ => None,
        }
    }

    /// Eject the next delivered packet at partition `dst`, if one has
    /// arrived by `now`.
    pub fn pop_fwd(&mut self, dst: usize, now: u64) -> Option<Packet> {
        let pkt = Self::pop(&mut self.fwd[dst], now);
        if pkt.is_some() {
            self.in_flight_count -= 1;
        }
        pkt
    }

    /// Eject the next delivered packet at SM `dst`.
    pub fn pop_ret(&mut self, dst: usize, now: u64) -> Option<Packet> {
        let pkt = Self::pop(&mut self.ret[dst], now);
        if pkt.is_some() {
            self.in_flight_count -= 1;
        }
        pkt
    }

    /// Packets still somewhere in the network (either direction). O(1).
    pub fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.in_flight_count,
            self.fwd.iter().chain(self.ret.iter()).map(|p| p.queue.len()).sum::<usize>(),
            "incremental in-flight census out of sync"
        );
        self.in_flight_count
    }

    /// Ready cycle of the oldest undelivered forward packet for
    /// partition `dst`, if any. Ejection is FIFO ([`Interconnect::pop_fwd`]
    /// only ever examines the queue head), so the head's ready cycle is
    /// exactly the earliest cycle at which this port can deliver — even
    /// when an injected delay gives the head a later ready cycle than
    /// its followers. Used by the cycle-leap event core.
    pub fn next_fwd_ready(&self, dst: usize) -> Option<u64> {
        self.fwd[dst].queue.front().map(|&(ready, _)| ready)
    }

    /// Ready cycle of the oldest undelivered return packet for SM
    /// `dst`, if any (see [`Interconnect::next_fwd_ready`]).
    pub fn next_ret_ready(&self, dst: usize) -> Option<u64> {
        self.ret[dst].queue.front().map(|&(ready, _)| ready)
    }

    /// Per-partition forward-queue depths (hang diagnostics).
    pub fn fwd_queue_depths(&self) -> Vec<usize> {
        self.fwd.iter().map(|p| p.queue.len()).collect()
    }

    /// Per-SM return-queue depths (hang diagnostics).
    pub fn ret_queue_depths(&self) -> Vec<usize> {
        self.ret.iter().map(|p| p.queue.len()).collect()
    }

    /// In-flight forward packets that expect a reply — the reply-
    /// conservation auditor's census of requests still in the network.
    pub fn fwd_expecting_reply(&self) -> usize {
        self.fwd
            .iter()
            .flat_map(|p| p.queue.iter())
            .filter(|(_, pkt)| pkt.kind.expects_reply())
            .count()
    }

    /// In-flight return-direction packets.
    pub fn ret_in_flight(&self) -> usize {
        self.ret.iter().map(|p| p.queue.len()).sum()
    }

    /// Flits bound up in undelivered packets, `(forward, return)` — the
    /// flit-conservation auditor compares these against the cumulative
    /// counters.
    pub fn in_flight_flits(&self) -> (u64, u64) {
        let sum = |ports: &[Port]| {
            ports.iter().flat_map(|p| p.queue.iter()).map(|(_, pkt)| pkt.flits()).sum()
        };
        (sum(&self.fwd), sum(&self.ret))
    }

    /// Traffic counters.
    pub fn stats(&self) -> &IcntStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MemReq, PacketKind};

    fn pkt(kind: PacketKind, addr: u64) -> Packet {
        Packet {
            kind,
            addr,
            req: MemReq { id: 0, addr, is_write: false, pc: 0, sm: 0, warp: 0, dst_reg: 0, born: 0 },
        }
    }

    fn small() -> Interconnect {
        Interconnect::new(IcntConfig {
            num_sms: 2,
            num_partitions: 2,
            hop_latency: 4,
            queue_capacity: 2,
            flits_per_cycle: 1,
        })
    }

    #[test]
    fn packet_arrives_after_serialization_plus_hop() {
        let mut icnt = small();
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 10));
        // 1 flit serialization ends at 11, +4 hop -> ready at 15.
        assert!(icnt.pop_fwd(0, 14).is_none());
        assert!(icnt.pop_fwd(0, 15).is_some());
        assert!(icnt.pop_fwd(0, 16).is_none(), "only one packet was sent");
    }

    #[test]
    fn data_packets_serialize_longer() {
        let mut icnt = small();
        assert!(icnt.try_send_ret(1, pkt(PacketKind::ReadReply, 0), 0));
        // 5 flits -> done at 5, +4 hop -> 9.
        assert!(icnt.pop_ret(1, 8).is_none());
        assert!(icnt.pop_ret(1, 9).is_some());
    }

    #[test]
    fn port_bandwidth_is_shared() {
        let mut icnt = small();
        // Two 5-flit packets sent the same cycle to one port: the second
        // serializes after the first.
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::Writeback, 0), 0));
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::Writeback, 128), 0));
        assert!(icnt.pop_fwd(0, 9).is_some()); // 5 + 4
        assert!(icnt.pop_fwd(0, 13).is_none());
        assert!(icnt.pop_fwd(0, 14).is_some()); // 10 + 4
    }

    #[test]
    fn distinct_ports_do_not_contend() {
        let mut icnt = small();
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::Writeback, 0), 0));
        assert!(icnt.try_send_fwd(1, pkt(PacketKind::Writeback, 0), 0));
        assert!(icnt.pop_fwd(0, 9).is_some());
        assert!(icnt.pop_fwd(1, 9).is_some());
    }

    #[test]
    fn full_queue_refuses_and_counts_reject() {
        let mut icnt = small();
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0));
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 128), 0));
        assert!(!icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 256), 0));
        assert_eq!(icnt.stats().rejects, 1);
        // Draining makes room again.
        assert!(icnt.pop_fwd(0, 100).is_some());
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 256), 100));
    }

    #[test]
    fn flit_accounting_by_direction() {
        let mut icnt = small();
        icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0); // 1 flit
        icnt.try_send_ret(0, pkt(PacketKind::ReadReply, 0), 0); // 5 flits
        assert_eq!(icnt.stats().fwd_flits, 1);
        assert_eq!(icnt.stats().ret_flits, 5);
        assert_eq!(icnt.stats().total_flits(), 6);
    }

    #[test]
    fn partition_mapping_interleaves_256b_chunks() {
        let icnt = Interconnect::new(IcntConfig::fermi());
        assert_eq!(icnt.partition_of(0), 0);
        assert_eq!(icnt.partition_of(255), 0);
        assert_eq!(icnt.partition_of(256), 1);
        assert_eq!(icnt.partition_of(256 * 12), 0);
    }

    #[test]
    fn in_flight_counts_undelivered_packets() {
        let mut icnt = small();
        icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0);
        assert_eq!(icnt.in_flight(), 1);
        icnt.pop_fwd(0, 100);
        assert_eq!(icnt.in_flight(), 0);
    }

    #[test]
    fn census_accessors_track_queued_packets() {
        let mut icnt = small();
        icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0); // expects reply, 1 flit
        icnt.try_send_fwd(1, pkt(PacketKind::Writeback, 0), 0); // no reply, 5 flits
        icnt.try_send_ret(1, pkt(PacketKind::ReadReply, 0), 0); // 5 flits
        assert_eq!(icnt.fwd_expecting_reply(), 1);
        assert_eq!(icnt.ret_in_flight(), 1);
        assert_eq!(icnt.fwd_queue_depths(), vec![1, 1]);
        assert_eq!(icnt.ret_queue_depths(), vec![0, 1]);
        assert_eq!(icnt.in_flight_flits(), (6, 5));
    }

    use crate::fault::{FaultConfig, FaultInjector, FaultKind, FaultSite};

    #[test]
    fn drop_fault_counts_flits_but_delivers_nothing() {
        let mut icnt = small();
        icnt.set_fault_injector(FaultInjector::new(FaultConfig::single(
            FaultKind::Drop,
            FaultSite::IcntForward,
            1,
        )));
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0), "sender sees success");
        assert_eq!(icnt.stats().fwd_flits, 1, "flits were serialized");
        assert_eq!(icnt.in_flight(), 0, "...but the packet vanished");
        assert_eq!(icnt.faults_injected(), 1);
        // Subsequent traffic is untouched (max_faults = 1).
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 256), 0));
        assert_eq!(icnt.in_flight(), 1);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let mut icnt = small();
        icnt.set_fault_injector(FaultInjector::new(FaultConfig::single(
            FaultKind::Duplicate,
            FaultSite::IcntReturn,
            1,
        )));
        assert!(icnt.try_send_ret(0, pkt(PacketKind::ReadReply, 0), 0));
        assert_eq!(icnt.ret_in_flight(), 2);
        assert!(icnt.pop_ret(0, 1000).is_some());
        assert!(icnt.pop_ret(0, 1000).is_some());
    }

    #[test]
    fn delay_fault_postpones_delivery() {
        let mut icnt = small();
        let cfg = FaultConfig {
            delay_cycles: 100,
            ..FaultConfig::single(FaultKind::Delay, FaultSite::IcntForward, 1)
        };
        icnt.set_fault_injector(FaultInjector::new(cfg));
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 10));
        // Nominal arrival would be 15 (1-flit serialization + 4 hop).
        assert!(icnt.pop_fwd(0, 114).is_none());
        assert!(icnt.pop_fwd(0, 115).is_some());
    }

    #[test]
    fn extract_restore_roundtrip_preserves_fifo_and_census() {
        let mut icnt = small();
        // Two packets: ready at 5 (1 flit + 4 hop) and 10 (5+4 after
        // serializing behind the first).
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0));
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::Writeback, 128), 0));
        assert_eq!(icnt.in_flight(), 2);

        // Horizon 5 captures only the head.
        let ripe = icnt.extract_ready_fwd(0, 5);
        assert_eq!(ripe.len(), 1);
        assert_eq!(icnt.in_flight(), 1);

        // Restoring it puts it back at the head, older than the tail.
        icnt.restore_front_fwd(0, ripe);
        assert_eq!(icnt.in_flight(), 2);
        assert_eq!(icnt.pop_fwd(0, 100).map(|p| p.addr), Some(0));
        assert_eq!(icnt.pop_fwd(0, 100).map(|p| p.addr), Some(128));
    }

    #[test]
    fn extraction_is_head_gated_like_pop() {
        let mut icnt = small();
        let delayed = FaultConfig {
            delay_cycles: 100,
            ..FaultConfig::single(FaultKind::Delay, FaultSite::IcntForward, 1)
        };
        icnt.set_fault_injector(FaultInjector::new(delayed));
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0)); // ready at 105
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 256), 0)); // ready at 6
        // The head is not ripe, so nothing is extractable even though
        // its follower is — exactly mirroring pop_fwd's gating.
        assert!(icnt.extract_ready_fwd(0, 50).is_empty());
        assert_eq!(icnt.extract_ready_fwd(0, 200).len(), 2);
    }

    #[test]
    fn merge_send_slack_reproduces_sequential_capacity() {
        let mut icnt = small(); // capacity 2
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0));
        // Physically one entry, but the shards popped one this round
        // that the sequential machine still held: slack 1 makes the
        // queue full, so the merge refuses without counting a reject.
        assert!(!icnt.merge_send_fwd(0, pkt(PacketKind::ReadReq, 256), 0, &mut |_| 1));
        assert_eq!(icnt.stats().rejects, 0);
        assert_eq!(icnt.in_flight(), 1);
        // With no slack the same send is admitted and counted.
        assert!(icnt.merge_send_fwd(0, pkt(PacketKind::ReadReq, 256), 0, &mut |_| 0));
        assert_eq!(icnt.stats().fwd_flits, 2);
        assert_eq!(icnt.in_flight(), 2);
    }

    #[test]
    fn misroute_fault_diverts_to_neighbouring_port() {
        let mut icnt = small();
        icnt.set_fault_injector(FaultInjector::new(FaultConfig::single(
            FaultKind::Misroute,
            FaultSite::IcntForward,
            1,
        )));
        assert!(icnt.try_send_fwd(0, pkt(PacketKind::ReadReq, 0), 0));
        assert!(icnt.pop_fwd(0, 1000).is_none(), "intended port never sees it");
        assert!(icnt.pop_fwd(1, 1000).is_some(), "neighbour does");
    }
}
