//! A memory partition: one L2 slice in front of one GDDR5 channel.
//!
//! Table 1's GPU has 12 partitions; 256-byte address chunks interleave
//! across them. Each partition ejects packets from the interconnect,
//! services them in its L2 slice (64 KB, 8-way, linear index,
//! write-back / write-allocate), and spills misses to the DRAM model.
//! The partition logic runs at the interconnect clock; DRAM advances at
//! the 924 MHz command clock via a fractional accumulator.

use crate::dram::{Dram, DramCmd, DramConfig};
use crate::error::MemError;
use crate::fault::FaultInjector;
use crate::packet::{Packet, PacketKind};
use crate::stats::CacheStats;
use crate::tag_array::{Lookup, TagArray};
use dlp_core::{AccessCtx, CacheGeometry, LruBaseline, MissDecision, ReplacementPolicy};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Partition parameters.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// L2 slice geometry (Table 1: 64 sets × 8 ways × 128 B).
    pub l2_geom: CacheGeometry,
    /// Interconnect cycles from an L2 hit to its reply injection.
    pub l2_latency: u64,
    /// Distinct lines the L2 MSHR tracks.
    pub l2_mshr_entries: usize,
    /// Merge capacity per L2 MSHR entry.
    pub l2_mshr_merge: usize,
    /// Input queue depth (packets accepted from the interconnect).
    pub input_queue: usize,
    /// DRAM channel parameters.
    pub dram: DramConfig,
    /// DRAM command-clock numerator (Table 1: 924 MHz)...
    pub dram_clock_khz: u64,
    /// ...relative to the interconnect clock (650 MHz).
    pub icnt_clock_khz: u64,
}

impl PartitionConfig {
    /// The Tesla M2090 memory partition.
    pub fn fermi() -> Self {
        PartitionConfig {
            l2_geom: CacheGeometry::fermi_l2_slice(),
            l2_latency: 120,
            l2_mshr_entries: 64,
            l2_mshr_merge: 16,
            input_queue: 16,
            dram: DramConfig::gddr5(),
            dram_clock_khz: 924_000,
            icnt_clock_khz: 650_000,
        }
    }
}

struct L2MshrEntry {
    set: usize,
    way: usize,
    pkts: Vec<Packet>,
}

struct PendingReply {
    ready: u64,
    seq: u64,
    pkt: Packet,
}

impl PartialEq for PendingReply {
    fn eq(&self, other: &Self) -> bool {
        (self.ready, self.seq) == (other.ready, other.seq)
    }
}
impl Eq for PendingReply {}
impl PartialOrd for PendingReply {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingReply {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}

/// One L2-slice + DRAM-channel pair.
pub struct MemoryPartition {
    cfg: PartitionConfig,
    tags: TagArray,
    policy: LruBaseline,
    mshr: HashMap<u64, L2MshrEntry>,
    in_queue: VecDeque<Packet>,
    pending: BinaryHeap<Reverse<PendingReply>>,
    seq: u64,
    out_queue: VecDeque<Packet>,
    dram: Dram,
    dram_acc: u64,
    /// Interconnect cycle of the last [`MemoryPartition::cycle`] call.
    /// When the caller skips cycling this partition while it is idle,
    /// the gap is caught up arithmetically (DRAM-clock accumulation and
    /// idle DRAM ticks are pure counter advances), keeping skipped runs
    /// byte-identical to fully ticked ones.
    last_now: Option<u64>,
    stats: CacheStats,
}

impl MemoryPartition {
    /// Build an idle partition.
    pub fn new(cfg: PartitionConfig) -> Self {
        MemoryPartition {
            tags: TagArray::new(cfg.l2_geom),
            policy: LruBaseline::new(cfg.l2_geom),
            mshr: HashMap::new(),
            in_queue: VecDeque::new(),
            pending: BinaryHeap::new(),
            seq: 0,
            out_queue: VecDeque::new(),
            dram: Dram::new(cfg.dram),
            dram_acc: 0,
            last_now: None,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// Room for another packet from the interconnect?
    pub fn can_accept(&self) -> bool {
        self.in_queue.len() < self.cfg.input_queue
    }

    /// Hand over an ejected packet. Caller checked [`Self::can_accept`].
    pub fn enqueue(&mut self, pkt: Packet) {
        assert!(self.can_accept(), "partition input overflow");
        self.in_queue.push_back(pkt);
    }

    /// Next reply bound for the interconnect.
    pub fn pop_reply(&mut self) -> Option<Packet> {
        self.out_queue.pop_front()
    }

    /// Put back a reply the interconnect refused (retried next cycle).
    pub fn unpop_reply(&mut self, pkt: Packet) {
        self.out_queue.push_front(pkt);
    }

    /// The core cycle this partition last caught its clocks up to (0 if
    /// never cycled). [`Self::next_event`] computes its DRAM-domain
    /// term relative to the *internal* clock state, so callers probing
    /// a partition they have not just cycled — the sharded engine's
    /// barrier planner — must pass this as `now` to get correct
    /// absolute event times.
    pub fn last_cycled(&self) -> u64 {
        self.last_now.unwrap_or(0)
    }

    /// All queues drained and DRAM idle?
    pub fn idle(&self) -> bool {
        self.in_queue.is_empty()
            && self.mshr.is_empty()
            && self.pending.is_empty()
            && self.out_queue.is_empty()
            && self.dram.idle()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> &CacheStats {
        &self.stats
    }

    /// DRAM counters.
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.dram.stats()
    }

    /// Attach a fault injector to this partition's DRAM channel
    /// ([`crate::fault::FaultSite::Dram`]).
    pub fn set_dram_fault_injector(&mut self, inj: FaultInjector) {
        self.dram.set_fault_injector(inj);
    }

    /// Packets waiting in the input queue (hang diagnostics).
    pub fn in_queue_len(&self) -> usize {
        self.in_queue.len()
    }

    /// Outstanding L2 MSHR entries (hang diagnostics).
    pub fn l2_mshr_occupancy(&self) -> usize {
        self.mshr.len()
    }

    /// Replies ready for the interconnect (hang diagnostics).
    pub fn out_queue_len(&self) -> usize {
        self.out_queue.len()
    }

    /// Is the DRAM channel idle (hang diagnostics)?
    pub fn dram_idle(&self) -> bool {
        self.dram.idle()
    }

    /// Reply-expecting packets this partition currently holds, in any
    /// stage: input queue, L2 MSHR merge lists, ripening replies, or
    /// the output queue. The reply-conservation auditor sums this
    /// census across partitions.
    pub fn held_reply_packets(&self) -> usize {
        self.in_queue.iter().filter(|p| p.kind.expects_reply()).count()
            + self
                // dlp-lint: allow(D004) -- integer count over values is order-independent
                .mshr
                .values()
                .flat_map(|e| e.pkts.iter())
                .filter(|p| p.kind.expects_reply())
                .count()
            + self.pending.len()
            + self.out_queue.len()
    }

    /// Structural self-check for the runtime invariant auditor.
    pub fn audit(&self) -> Result<(), String> {
        if self.mshr.len() > self.cfg.l2_mshr_entries {
            return Err(format!(
                "L2 MSHR holds {} entries but capacity is {}",
                self.mshr.len(),
                self.cfg.l2_mshr_entries
            ));
        }
        // Visit entries in sorted line order so the *first* violation
        // reported is deterministic across runs.
        // dlp-lint: allow(D004) -- keys are collected and sorted before use
        let mut lines: Vec<u64> = self.mshr.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let e = &self.mshr[&line];
            if e.pkts.is_empty() {
                return Err(format!("L2 MSHR entry for line {line:#x} has no waiting packets"));
            }
            if e.pkts.len() > self.cfg.l2_mshr_merge {
                return Err(format!(
                    "L2 MSHR entry for line {line:#x} holds {} packets, merge limit is {}",
                    e.pkts.len(),
                    self.cfg.l2_mshr_merge
                ));
            }
        }
        if self.in_queue.len() > self.cfg.input_queue {
            return Err(format!(
                "partition input queue holds {} packets but capacity is {}",
                self.in_queue.len(),
                self.cfg.input_queue
            ));
        }
        Ok(())
    }

    fn schedule_reply(&mut self, pkt: Packet, ready: u64) {
        self.seq += 1;
        self.pending.push(Reverse(PendingReply { ready, seq: self.seq, pkt }));
    }

    fn reply_kind(req_kind: PacketKind) -> Result<PacketKind, MemError> {
        match req_kind {
            PacketKind::ReadReq => Ok(PacketKind::ReadReply),
            PacketKind::BypassReadReq => Ok(PacketKind::BypassReadReply),
            other => Err(MemError::NoReplyKind { kind: other }),
        }
    }

    /// Catch up on cycles the caller skipped while this partition was
    /// idle — the leap-contract counterpart to [`Self::next_event`]. An
    /// idle DRAM tick is a pure `now += 1`, so the skipped interval
    /// collapses to one division on the fractional clock accumulator —
    /// exactly what ticking every cycle would do.
    ///
    /// A partition that has never been cycled has been idle since
    /// cycle 0 — it must catch up from there, or its fractional DRAM
    /// clock would start out of phase with a fully ticked run.
    pub fn advance_quiet(&mut self, now: u64) {
        let prev = self.last_now.unwrap_or(0);
        let skipped = now.saturating_sub(prev).saturating_sub(1);
        self.last_now = Some(now);
        if skipped > 0 {
            // Input packets may have just arrived (that is what woke us
            // up), and with the cycle-leap event core the partition may
            // even be *busy* — outstanding MSHR fetches, unripe replies,
            // in-flight DRAM commands. The gap is only sound if nothing
            // would have *happened* in it: no reply ripened (the heap
            // head is still in the future) and no reply waited at the
            // output port. DRAM quietness over the granted ticks is
            // asserted by [`Dram::advance_quiet`] itself.
            debug_assert!(
                self.out_queue.is_empty(),
                "cycles were skipped while replies waited at the output port"
            );
            debug_assert!(
                self.pending.peek().is_none_or(|Reverse(h)| h.ready >= now),
                "cycles were skipped across a reply ripening"
            );
            let total = self.dram_acc + skipped * self.cfg.dram_clock_khz;
            self.dram.advance_quiet(total / self.cfg.icnt_clock_khz);
            self.dram_acc = total % self.cfg.icnt_clock_khz;
        }
    }

    /// Advance one interconnect cycle. Fails with a typed error when a
    /// DRAM completion matches no outstanding L2 fetch — the symptom of
    /// a duplicated or address-corrupted command.
    pub fn cycle(&mut self, now: u64) -> Result<(), MemError> {
        // 0. Catch up on any skipped quiet span first.
        self.advance_quiet(now);

        // 1. DRAM advances at its own clock.
        self.dram_acc += self.cfg.dram_clock_khz;
        while self.dram_acc >= self.cfg.icnt_clock_khz {
            self.dram_acc -= self.cfg.icnt_clock_khz;
            self.dram.tick();
        }

        // 2. Retire DRAM completions: reads fill the L2 and answer all
        //    merged requesters; writes vanish.
        while let Some(cmd) = self.dram.pop_completed() {
            if cmd.is_write {
                continue;
            }
            let line = self.cfg.l2_geom.line_addr(cmd.addr);
            let entry =
                self.mshr.remove(&line).ok_or(MemError::L2MshrMissingFill { line })?;
            let dirty = entry
                .pkts
                .iter()
                .any(|p| matches!(p.kind, PacketKind::WriteThrough | PacketKind::Writeback));
            self.tags.fill(entry.set, entry.way, dirty);
            let ctx = AccessCtx { insn_id: 0, is_write: false };
            self.policy.on_fill(entry.set, entry.way, line, &ctx);
            for pkt in entry.pkts {
                if pkt.kind.expects_reply() {
                    let reply = Packet { kind: Self::reply_kind(pkt.kind)?, ..pkt };
                    self.schedule_reply(reply, now + 1);
                }
            }
        }

        // 3. Ripen pending replies.
        while self.pending.peek().is_some_and(|Reverse(head)| head.ready <= now) {
            let Some(Reverse(p)) = self.pending.pop() else { break };
            self.out_queue.push_back(p.pkt);
        }

        // 4. Service one input packet; the head blocks on structural
        //    hazards (head-of-line, as in the real ejection port).
        if let Some(&pkt) = self.in_queue.front() {
            if self.process(pkt, now)? {
                self.in_queue.pop_front();
            }
        }
        Ok(())
    }

    /// Earliest future interconnect cycle (strictly after `now`, the
    /// cycle whose [`Self::cycle`] call just ran) at which this
    /// partition could do observable work, or `None` when it is fully
    /// idle. The cycle-leap event core skips straight to the minimum of
    /// these bounds across all components.
    ///
    /// The bound is *conservative*: every cycle in `now+1..bound` is a
    /// provable no-op. Three sources of activity exist:
    ///
    /// - a reply waiting at the output port or an input head that would
    ///   make progress → the very next cycle is an event;
    /// - a pending reply ripening → its heap-head `ready` cycle;
    /// - DRAM — [`Dram::next_activity`] is in *command-clock* cycles, so
    ///   it is translated through the fractional-accumulator domain
    ///   crossing: after `k` interconnect cycles the channel has been
    ///   granted `floor((dram_acc + k·dram_khz) / icnt_khz)` ticks, and
    ///   the smallest `k` granting `dt` ticks is
    ///   `ceil((dt·icnt_khz − dram_acc) / dram_khz)`.
    ///
    /// A blocked input head (MSHR full, merge list full, every way
    /// reserved, or DRAM admission refused) only unblocks via a DRAM
    /// event — a completion freeing an MSHR entry / reserved way, or a
    /// command start draining a bank queue — so it needs no extra term.
    /// Retrying a blocked head in the skipped window would have been
    /// stat-neutral anyway: `accesses` is incremented and then undone on
    /// every refusal path, leaving only the (never-reported) L2 policy
    /// query count, which the reference-mode equivalence suite pins.
    pub fn next_event(&mut self, now: u64) -> Option<u64> {
        // Cheap terms first; `head_would_process` replays the whole
        // admission chain (tag lookup, MSHR probes, victim peek, DRAM
        // acceptance) and is only worth paying when nothing cheaper
        // already forces a tick. The computed minimum is unchanged.
        if !self.out_queue.is_empty() {
            return Some(now + 1);
        }
        let mut t = u64::MAX;
        if let Some(Reverse(head)) = self.pending.peek() {
            let ready = head.ready.max(now + 1);
            if ready == now + 1 {
                return Some(ready);
            }
            t = t.min(ready);
        }
        if let Some(act) = self.dram.next_activity() {
            let dt = act - self.dram.now();
            let k = (dt * self.cfg.icnt_clock_khz)
                .saturating_sub(self.dram_acc)
                .div_ceil(self.cfg.dram_clock_khz)
                .max(1);
            if k == 1 {
                return Some(now + 1);
            }
            t = t.min(now + k);
        }
        if self.head_would_process() {
            return Some(now + 1);
        }
        (t != u64::MAX).then_some(t)
    }

    /// Read-only mirror of [`Self::process`] for the input-queue head:
    /// would it be fully handled next cycle, or retry behind a
    /// structural hazard? Mirrors the decision chain exactly — tag hit,
    /// MSHR merge (refused when the merge list is full), MSHR entry
    /// exhaustion, victim selection via [`LruBaseline::peek_victim`]
    /// (side-effect-free), and the atomic DRAM-admission check for the
    /// fetch + victim writeback.
    fn head_would_process(&mut self) -> bool {
        let Some(&pkt) = self.in_queue.front() else { return false };
        let geom = self.cfg.l2_geom;
        let line = geom.line_addr(pkt.addr);
        let (set, tag) = (geom.set_of_line(line), geom.tag_of_line(line));
        if matches!(self.tags.lookup(set, tag), Lookup::Hit { .. }) {
            return true;
        }
        if let Some(entry) = self.mshr.get(&line) {
            return entry.pkts.len() < self.cfg.l2_mshr_merge;
        }
        if self.mshr.len() >= self.cfg.l2_mshr_entries {
            return false;
        }
        let views = self.tags.view_set(set);
        let way = match self.policy.peek_victim(set, views) {
            MissDecision::Allocate { way } => way,
            // `process` would surface these at the event cycle (a stall
            // retries, a bypass is a typed error) — either way the head
            // is "handled" enough that the next cycle is an event only
            // for Bypass; a Stall blocks until a fill frees a way.
            MissDecision::Stall => return false,
            MissDecision::Bypass => return true,
        };
        let victim = self.tags.line(set, way);
        let victim_dirty = victim.valid && victim.dirty;
        let is_write = matches!(pkt.kind, PacketKind::WriteThrough | PacketKind::Writeback);
        let fetch_needed = !is_write;
        let wb_addr = victim.tag * geom.line_bytes;
        match (fetch_needed, victim_dirty) {
            (true, true) if self.dram.same_bank(pkt.addr, wb_addr) => {
                self.dram.can_accept_n(pkt.addr, 2)
            }
            (true, true) => self.dram.can_accept(pkt.addr) && self.dram.can_accept(wb_addr),
            (true, false) => self.dram.can_accept(pkt.addr),
            (false, true) => self.dram.can_accept(wb_addr),
            (false, false) => true,
        }
    }

    /// State-only L2 access for sampling-mode fast-forward: the same
    /// query/hit/evict/fill protocol as [`Self::process`] with timing
    /// collapsed — misses fill instantly and touch no DRAM command
    /// queue. Must not run while L2 MSHR entries exist (their reserved
    /// ways would collide with the instant fills); callers drain first.
    pub fn l2_touch_functional(&mut self, addr: u64, is_write: bool) {
        debug_assert!(self.mshr.is_empty(), "functional L2 touch with in-flight fills");
        let geom = self.cfg.l2_geom;
        let line = geom.line_addr(addr);
        let (set, tag) = (geom.set_of_line(line), geom.tag_of_line(line));
        let ctx = AccessCtx { insn_id: 0, is_write };
        self.stats.accesses += 1;
        self.policy.on_query(set);
        if let Lookup::Hit { way } = self.tags.lookup(set, tag) {
            self.policy.on_hit(set, way, &ctx);
            self.stats.hits += 1;
            if is_write {
                self.tags.mark_dirty(set, way);
            }
            return;
        }
        let views = self.tags.view_set(set);
        let way = match self.policy.decide_replacement(set, views, &ctx) {
            MissDecision::Allocate { way } => way,
            // With no reserved ways the LRU baseline always allocates;
            // it never bypasses at L2.
            MissDecision::Stall | MissDecision::Bypass => {
                debug_assert!(false, "L2 LRU refused a functional allocation");
                return;
            }
        };
        if let Some(old) = self.tags.evict_and_reserve(set, way, tag) {
            self.policy.on_evict(set, way, old.tag);
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.dirty_evictions += 1;
            }
        }
        self.tags.fill(set, way, is_write);
        self.policy.on_fill(set, way, line, &ctx);
        self.stats.misses_allocated += 1;
    }

    /// Route one request packet through the L2 functionally and return
    /// the reply it owes, if any (sampling-mode drain and fast-forward;
    /// write traffic is absorbed silently, exactly as the detailed path
    /// eventually would).
    pub fn apply_functional(&mut self, pkt: Packet) -> Option<Packet> {
        let is_write = matches!(pkt.kind, PacketKind::WriteThrough | PacketKind::Writeback);
        self.l2_touch_functional(pkt.addr, is_write);
        match pkt.kind {
            PacketKind::ReadReq => Some(Packet { kind: PacketKind::ReadReply, ..pkt }),
            PacketKind::BypassReadReq => Some(Packet { kind: PacketKind::BypassReadReply, ..pkt }),
            _ => None,
        }
    }

    /// Window-edge drain for sampling mode: force every in-flight fill
    /// to complete, flush ripening and queued replies, service the
    /// input queue functionally, and discard the DRAM channel's pending
    /// commands (their results were just materialized here). Returns
    /// every reply packet the partition owed; afterwards the partition
    /// is [`Self::idle`].
    pub fn drain_functional(&mut self) -> Vec<Packet> {
        let mut replies = Vec::new();
        // 1. Complete outstanding L2 fills in sorted line order so the
        //    fill/reply order — and thus every downstream consumer — is
        //    deterministic.
        // dlp-lint: allow(D004) -- keys are collected and sorted before use
        let mut lines: Vec<u64> = self.mshr.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let Some(entry) = self.mshr.remove(&line) else { continue };
            let dirty = entry
                .pkts
                .iter()
                .any(|p| matches!(p.kind, PacketKind::WriteThrough | PacketKind::Writeback));
            self.tags.fill(entry.set, entry.way, dirty);
            let ctx = AccessCtx { insn_id: 0, is_write: false };
            self.policy.on_fill(entry.set, entry.way, line, &ctx);
            for pkt in entry.pkts {
                match pkt.kind {
                    PacketKind::ReadReq => {
                        replies.push(Packet { kind: PacketKind::ReadReply, ..pkt });
                    }
                    PacketKind::BypassReadReq => {
                        replies.push(Packet { kind: PacketKind::BypassReadReply, ..pkt });
                    }
                    _ => {}
                }
            }
        }
        // 2. Replies already scheduled or queued go out as-is.
        while let Some(Reverse(p)) = self.pending.pop() {
            replies.push(p.pkt);
        }
        while let Some(pkt) = self.out_queue.pop_front() {
            replies.push(pkt);
        }
        // 3. Input packets are serviced functionally (the MSHR is empty
        //    now, so the state-only path is sound).
        while let Some(pkt) = self.in_queue.pop_front() {
            if let Some(reply) = self.apply_functional(pkt) {
                replies.push(reply);
            }
        }
        // 4. DRAM commands for the fills above (and queued victim
        //    writebacks) must not resurface in the next detailed window.
        self.dram.discard_in_flight();
        replies
    }

    /// Returns `Ok(true)` if the packet was fully handled, `Ok(false)`
    /// if it must retry next cycle behind a structural hazard.
    fn process(&mut self, pkt: Packet, now: u64) -> Result<bool, MemError> {
        let geom = self.cfg.l2_geom;
        let line = geom.line_addr(pkt.addr);
        let (set, tag) = (geom.set_of_line(line), geom.tag_of_line(line));
        let is_write = matches!(pkt.kind, PacketKind::WriteThrough | PacketKind::Writeback);
        let ctx = AccessCtx { insn_id: 0, is_write };

        self.stats.accesses += 1;
        self.policy.on_query(set);

        // Hit.
        if let Lookup::Hit { way } = self.tags.lookup(set, tag) {
            self.policy.on_hit(set, way, &ctx);
            self.stats.hits += 1;
            if is_write {
                self.tags.mark_dirty(set, way);
            } else {
                let reply = Packet { kind: Self::reply_kind(pkt.kind)?, ..pkt };
                self.schedule_reply(reply, now + self.cfg.l2_latency);
            }
            return Ok(true);
        }

        // Merge into an in-flight fetch.
        if let Some(entry) = self.mshr.get_mut(&line) {
            if entry.pkts.len() >= self.cfg.l2_mshr_merge {
                self.stats.accesses -= 1; // retried next cycle, recounted
                return Ok(false);
            }
            entry.pkts.push(pkt);
            self.stats.mshr_merges += 1;
            return Ok(true);
        }

        if self.mshr.len() >= self.cfg.l2_mshr_entries {
            self.stats.accesses -= 1;
            return Ok(false);
        }

        // Allocate a victim way (views live in the tag array's scratch
        // buffer — no allocation on the access path).
        let views = self.tags.view_set(set);
        let way = match self.policy.decide_replacement(set, views, &ctx) {
            MissDecision::Allocate { way } => way,
            MissDecision::Stall => {
                self.stats.accesses -= 1;
                return Ok(false);
            }
            MissDecision::Bypass => return Err(MemError::L2BypassUnsupported { line }),
        };
        let victim = self.tags.line(set, way);
        let victim_dirty = victim.valid && victim.dirty;

        // DRAM admission: the fetch (for reads) and the victim writeback
        // must both be enqueueable — atomically, since they may share a
        // bank queue — else retry next cycle.
        let fetch_needed = !is_write;
        let wb_addr = victim.tag * geom.line_bytes;
        let admissible = match (fetch_needed, victim_dirty) {
            (true, true) if self.dram.same_bank(pkt.addr, wb_addr) => {
                self.dram.can_accept_n(pkt.addr, 2)
            }
            (true, true) => self.dram.can_accept(pkt.addr) && self.dram.can_accept(wb_addr),
            (true, false) => self.dram.can_accept(pkt.addr),
            (false, true) => self.dram.can_accept(wb_addr),
            (false, false) => true,
        };
        if !admissible {
            self.stats.accesses -= 1;
            return Ok(false);
        }

        if let Some(old) = self.tags.evict_and_reserve(set, way, tag) {
            self.policy.on_evict(set, way, old.tag);
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.dirty_evictions += 1;
                let wb_addr = old.tag * geom.line_bytes;
                self.dram.enqueue(DramCmd { addr: wb_addr, is_write: true, pkt: None });
            }
        }

        if is_write {
            // Write-allocate without fetch: a full-line write validates
            // the line immediately.
            self.tags.fill(set, way, true);
            self.policy.on_fill(set, way, line, &ctx);
            self.stats.misses_allocated += 1;
        } else {
            // dlp-lint: allow(P301) -- one Vec per L2 MSHR entry (per miss, not per cycle); the merge list's ownership moves out at fill, so a pool cannot reclaim it
            self.mshr.insert(line, L2MshrEntry { set, way, pkts: vec![pkt] });
            self.dram.enqueue(DramCmd { addr: pkt.addr, is_write: false, pkt: Some(pkt) });
            self.stats.misses_allocated += 1;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MemReq;

    fn part() -> MemoryPartition {
        MemoryPartition::new(PartitionConfig::fermi())
    }

    fn read_pkt(kind: PacketKind, addr: u64, id: u64) -> Packet {
        Packet {
            kind,
            addr,
            req: MemReq { id, addr, is_write: false, pc: 0, sm: 3, warp: 0, dst_reg: 0, born: 0 },
        }
    }

    fn run_until_reply(p: &mut MemoryPartition, start: u64, max: u64) -> (u64, Packet) {
        for now in start..start + max {
            p.cycle(now).unwrap();
            if let Some(r) = p.pop_reply() {
                return (now, r);
            }
        }
        panic!("no reply within {max} cycles");
    }

    #[test]
    fn l2_miss_goes_to_dram_and_replies() {
        let mut p = part();
        p.enqueue(read_pkt(PacketKind::ReadReq, 0x8000, 7));
        let (when, reply) = run_until_reply(&mut p, 0, 500);
        assert_eq!(reply.kind, PacketKind::ReadReply);
        assert_eq!(reply.req.id, 7);
        assert!(when > 30, "DRAM latency must be visible, got {when}");
        assert_eq!(p.l2_stats().misses_allocated, 1);
        assert_eq!(p.dram_stats().reads, 1);
    }

    #[test]
    fn l2_hit_is_much_faster_than_miss() {
        let mut p = part();
        p.enqueue(read_pkt(PacketKind::ReadReq, 0x8000, 1));
        let (t_miss, _) = run_until_reply(&mut p, 0, 500);
        p.enqueue(read_pkt(PacketKind::ReadReq, 0x8000, 2));
        let (t_hit, reply) = run_until_reply(&mut p, t_miss + 1, 500);
        assert_eq!(reply.req.id, 2);
        assert!(t_hit - t_miss <= PartitionConfig::fermi().l2_latency + 3);
        assert_eq!(p.l2_stats().hits, 1);
        assert_eq!(p.dram_stats().reads, 1, "hit must not touch DRAM");
    }

    #[test]
    fn bypass_read_gets_bypass_reply() {
        let mut p = part();
        p.enqueue(read_pkt(PacketKind::BypassReadReq, 0x100, 9));
        let (_, reply) = run_until_reply(&mut p, 0, 500);
        assert_eq!(reply.kind, PacketKind::BypassReadReply);
        assert_eq!(reply.req.id, 9);
    }

    #[test]
    fn concurrent_reads_to_same_line_merge() {
        let mut p = part();
        p.enqueue(read_pkt(PacketKind::ReadReq, 0x4000, 1));
        p.cycle(0).unwrap(); // processes first -> MSHR allocated
        p.enqueue(read_pkt(PacketKind::BypassReadReq, 0x4000, 2));
        let mut replies = Vec::new();
        for now in 1..500 {
            p.cycle(now).unwrap();
            while let Some(r) = p.pop_reply() {
                replies.push(r);
            }
            if replies.len() == 2 {
                break;
            }
        }
        assert_eq!(replies.len(), 2);
        assert_eq!(p.dram_stats().reads, 1, "one fetch serves both");
        assert_eq!(p.l2_stats().mshr_merges, 1);
        let kinds: Vec<_> = replies.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&PacketKind::ReadReply));
        assert!(kinds.contains(&PacketKind::BypassReadReply));
    }

    #[test]
    fn writeback_allocates_without_fetch_and_dirty_eviction_reaches_dram() {
        let mut p = part();
        let geom = CacheGeometry::fermi_l2_slice();
        // Write-allocate a line (no DRAM traffic), then evict it by
        // filling the set with 8 reads mapping to the same set.
        let wb = Packet {
            kind: PacketKind::Writeback,
            addr: 0,
            req: MemReq { id: 0, addr: 0, is_write: true, pc: 0, sm: 0, warp: 0, dst_reg: 0, born: 0 },
        };
        p.enqueue(wb);
        p.cycle(0).unwrap();
        assert_eq!(p.dram_stats().reads + p.dram_stats().writes, 0);
        assert_eq!(p.l2_stats().misses_allocated, 1);

        // Lines mapping to set of addr 0 are spaced num_sets*line_bytes.
        let stride = geom.num_sets as u64 * geom.line_bytes;
        let mut now = 1;
        for i in 1..=8u64 {
            while !p.can_accept() {
                p.cycle(now).unwrap();
                now += 1;
            }
            p.enqueue(read_pkt(PacketKind::ReadReq, i * stride, i));
            for _ in 0..200 {
                p.cycle(now).unwrap();
                now += 1;
                p.pop_reply();
            }
        }
        assert!(p.l2_stats().evictions >= 1);
        assert_eq!(p.dram_stats().writes, 1, "the dirty victim was written back");
    }

    #[test]
    fn duplicated_dram_completion_yields_typed_error() {
        use crate::fault::{FaultConfig, FaultKind, FaultSite};
        let mut p = part();
        p.set_dram_fault_injector(FaultInjector::new(FaultConfig::single(
            FaultKind::Duplicate,
            FaultSite::Dram,
            3,
        )));
        p.enqueue(read_pkt(PacketKind::ReadReq, 0x8000, 1));
        let err = (0..500)
            .find_map(|now| p.cycle(now).err())
            .expect("the duplicated completion must surface as an error");
        assert_eq!(err, MemError::L2MshrMissingFill { line: 0x8000 >> 7 });
    }

    #[test]
    fn audit_accepts_busy_partition() {
        let mut p = part();
        p.enqueue(read_pkt(PacketKind::ReadReq, 0x8000, 1));
        for now in 0..50 {
            p.cycle(now).unwrap();
            assert_eq!(p.audit(), Ok(()));
        }
        assert!(p.held_reply_packets() > 0, "the fetch is still in flight somewhere");
    }

    #[test]
    fn driving_only_at_next_event_matches_ticking_every_cycle() {
        // Tick one partition every cycle; drive its twin only at the
        // cycles `next_event` names. Replies must surface at identical
        // cycles with identical observable statistics — the core
        // conservative-bound invariant of the cycle-leap event core.
        let mut ticked = part();
        let mut leaped = part();
        for p in [&mut ticked, &mut leaped] {
            p.enqueue(read_pkt(PacketKind::ReadReq, 0x8000, 1));
            p.enqueue(read_pkt(PacketKind::ReadReq, 0x8000 + 0x40_000, 2));
        }
        let mut tick_replies = Vec::new();
        for now in 0..600 {
            ticked.cycle(now).unwrap();
            while let Some(r) = ticked.pop_reply() {
                tick_replies.push((now, r.req.id));
            }
        }
        assert_eq!(tick_replies.len(), 2, "both fetches must complete");

        let mut leap_replies = Vec::new();
        let mut now = 0;
        let mut cycles_run = 0u64;
        while now < 600 {
            leaped.cycle(now).unwrap();
            cycles_run += 1;
            while let Some(r) = leaped.pop_reply() {
                leap_replies.push((now, r.req.id));
            }
            match leaped.next_event(now) {
                Some(ev) => {
                    assert!(ev > now, "next_event must be strictly in the future");
                    now = ev;
                }
                None => break,
            }
        }
        assert_eq!(leap_replies, tick_replies, "replies must land on identical cycles");
        assert!(cycles_run < 600, "leaping must actually skip dead cycles");
        assert_eq!(leaped.l2_stats().misses_allocated, ticked.l2_stats().misses_allocated);
        assert_eq!(leaped.dram_stats().reads, ticked.dram_stats().reads);
        assert_eq!(leaped.dram_stats().row_hits, ticked.dram_stats().row_hits);
    }

    #[test]
    fn idle_reflects_outstanding_work() {
        let mut p = part();
        assert!(p.idle());
        p.enqueue(read_pkt(PacketKind::ReadReq, 0, 1));
        assert!(!p.idle());
        let _ = run_until_reply(&mut p, 0, 500);
        assert!(p.idle());
    }
}
