//! Typed errors raised by the memory hierarchy.
//!
//! The hierarchy's structural invariants ("every fill reply matches an
//! outstanding MSHR entry") used to be `panic!`/`expect` calls; they are
//! now values so the simulator can abort a run with a diagnosis instead
//! of tearing the process down. Each variant names the smallest piece of
//! state needed to locate the corruption.

use crate::packet::PacketKind;
use std::fmt;

/// A structural invariant of the memory hierarchy was violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// A fill reply reached an L1D whose MSHR has no entry for the
    /// line — the reply is a duplicate, was misrouted, or the entry was
    /// corrupted.
    MshrMissingFill {
        /// Line address of the orphaned reply.
        line: u64,
    },
    /// An L1D was handed a packet kind it can never consume (anything
    /// but a read reply).
    UnexpectedPacket {
        /// The offending kind.
        kind: PacketKind,
    },
    /// A DRAM read completed at a partition whose L2 MSHR has no entry
    /// for the line.
    L2MshrMissingFill {
        /// Line address of the orphaned completion.
        line: u64,
    },
    /// A request was merged into an MSHR entry that does not exist or
    /// whose merge list is already at capacity — the caller skipped or
    /// ignored the `probe` step.
    MshrBadMerge {
        /// Line address of the bad merge.
        line: u64,
    },
    /// A reply was synthesised for a packet kind that has no reply
    /// (anything but a read request or writeback).
    NoReplyKind {
        /// The offending kind.
        kind: PacketKind,
    },
    /// The L2 replacement policy produced a bypass decision; the L2 is
    /// plain LRU by construction and has no bypass path.
    L2BypassUnsupported {
        /// Line address whose replacement decision went wrong.
        line: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::MshrMissingFill { line } => {
                write!(f, "fill reply for line {line:#x} matches no outstanding L1D MSHR entry")
            }
            MemError::UnexpectedPacket { kind } => {
                write!(f, "L1D received a packet kind it cannot consume: {kind:?}")
            }
            MemError::L2MshrMissingFill { line } => {
                write!(f, "DRAM read completion for line {line:#x} matches no L2 MSHR entry")
            }
            MemError::MshrBadMerge { line } => {
                write!(f, "merge into line {line:#x} without a matching probed MSHR entry")
            }
            MemError::NoReplyKind { kind } => {
                write!(f, "no reply kind exists for packet kind {kind:?}")
            }
            MemError::L2BypassUnsupported { line } => {
                write!(f, "L2 replacement for line {line:#x} chose bypass, but L2 is plain LRU")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_line() {
        let e = MemError::MshrMissingFill { line: 0x1a80 };
        assert!(e.to_string().contains("0x1a80"));
        let e = MemError::UnexpectedPacket { kind: PacketKind::Writeback };
        assert!(e.to_string().contains("Writeback"));
    }
}
