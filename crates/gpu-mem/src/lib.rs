//! # gpu-mem — the GPU memory-hierarchy substrate
//!
//! Cycle-level model of everything between an SM's load/store unit and
//! DRAM, mirroring the organization GPGPU-Sim gives a Fermi-class GPU
//! (the platform the DLP paper evaluates on):
//!
//! ```text
//!  LD/ST unit ──► L1D (+ MSHR, miss queue, pipeline register)   [per SM]
//!                   │ ▲
//!                   ▼ │           crossbar, 32-byte flits
//!                 interconnect ◄──────────────────────────┐
//!                   │ ▲                                    │
//!                   ▼ │                                    │
//!        memory partition (L2 slice + GDDR5 DRAM banks)  × 12
//! ```
//!
//! The L1D controller ([`l1d::L1dCache`]) implements the access path of
//! the paper's Figures 1 and 8: hit check, MSHR merge, line reservation
//! through a pluggable [`dlp_core::ReplacementPolicy`], the bypass path,
//! and the retry-in-pipeline-register stall semantics that make L1D
//! stalls so expensive on a GPU (§2).
//!
//! Everything is driven by explicit `cycle()` calls from the top-level
//! clock loop in `gpu-sim`; components exchange [`packet::Packet`]s
//! through bounded queues so backpressure propagates exactly as in
//! hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Unit tests exercise failure paths where unwrap/expect is the point;
// the unwrap_used/expect_used denies apply to shipping simulator code.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod dram;
pub mod error;
pub mod fault;
pub mod icnt;
pub mod l1d;
pub mod mshr;
pub mod observer;
pub mod packet;
pub mod partition;
pub mod stats;
pub mod tag_array;

pub use dlp_core::{CacheGeometry, PolicyKind};
pub use error::MemError;
pub use fault::{FaultConfig, FaultInjector, FaultKind, FaultSite, SplitMix64};
pub use icnt::Interconnect;
pub use l1d::{L1dCache, L1dConfig};
pub use observer::AccessObserver;
pub use packet::{MemReq, MemResp, Packet, PacketKind};
pub use partition::{MemoryPartition, PartitionConfig};
pub use stats::{CacheStats, IcntStats};
