//! The L1 data cache controller — the paper's Figure 1/8 access path.
//!
//! Per core cycle the cache accepts at most one coalesced transaction
//! from the LD/ST unit. The handling order for a transaction is:
//!
//! 1. **Hit check** against the tag array — a hit responds after the hit
//!    latency.
//! 2. **MSHR probe** — a miss to a line already in flight merges into
//!    the existing entry.
//! 3. **Line reservation** through the replacement policy — the policy
//!    may pick a victim (evicting it, possibly generating a writeback),
//!    **bypass** the access to the interconnect, or declare that nothing
//!    can be replaced.
//! 4. Any structural obstruction (full MSHR, full miss queue, no
//!    reservable way) **stalls** the access in the pipeline register; it
//!    retries every cycle and blocks all younger accesses until resolved
//!    (§2). Policies with `bypass_on_stall()` (Stall-Bypass) convert
//!    those stalls into bypasses.
//!
//! The cache is write-back / write-allocate: store hits dirty the line,
//! store misses fetch-and-allocate, and dirty victims generate
//! `Writeback` packets — the L1D eviction traffic of Figure 11b.

use crate::error::MemError;
use crate::mshr::{Mshr, MshrLookup};
use crate::observer::AccessObserver;
use crate::packet::{MemReq, MemResp, Packet, PacketKind};
use crate::stats::CacheStats;
use crate::tag_array::{Lookup, TagArray};
use dlp_core::{hash_pc, pc_wraps, AccessCtx, CacheGeometry, MissDecision, ReplacementPolicy, PDPT_ENTRIES};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Static configuration of one L1D instance.
#[derive(Clone, Copy, Debug)]
pub struct L1dConfig {
    /// Cache shape (16 KB / 32 sets / 4 ways in the baseline).
    pub geom: CacheGeometry,
    /// Core cycles from a hit to the data response.
    pub hit_latency: u64,
    /// Distinct lines the MSHR can track.
    pub mshr_entries: usize,
    /// Requests mergeable per MSHR entry.
    pub mshr_merge: usize,
    /// Capacity of the miss queue toward the interconnect.
    pub miss_queue: usize,
}

impl L1dConfig {
    /// The paper's baseline L1D configuration.
    pub fn fermi_baseline() -> Self {
        L1dConfig {
            geom: CacheGeometry::fermi_l1d_16k(),
            hit_latency: 4,
            mshr_entries: 128,
            mshr_merge: 48,
            miss_queue: 8,
        }
    }
}

/// Outcome of processing one access attempt (internal).
enum Outcome {
    /// The access finished (hit scheduled, merged, queued, or bypassed).
    Consumed,
    /// The access must park in the pipeline register and retry.
    Stalled,
}

/// Why a parked access would stall again this cycle, as classified by
/// [`L1dCache::classify_stalled_retry`]. Each variant names the stall
/// counter a tick-by-tick retry would have bumped, letting the
/// cycle-leap event core replay a skipped window of retries
/// arithmetically (`counter += skipped`) with byte-identical statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallClass {
    /// The line is in flight and its merge list is full
    /// (`stall_merge_full`).
    MergeFull,
    /// No MSHR entry is free for a new line (`stall_mshr_full`).
    MshrFull,
    /// Every way of the set is reserved by in-flight fills
    /// (`stall_all_reserved`).
    AllReserved,
    /// The miss queue toward the interconnect is full
    /// (`stall_miss_queue`).
    MissQueue,
}

struct PendingResp {
    ready: u64,
    seq: u64,
    resp: MemResp,
}

impl PartialEq for PendingResp {
    fn eq(&self, other: &Self) -> bool {
        (self.ready, self.seq) == (other.ready, other.seq)
    }
}
impl Eq for PendingResp {}
impl PartialOrd for PendingResp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingResp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}

/// One L1 data cache with its MSHRs, miss queue and pipeline register.
pub struct L1dCache {
    cfg: L1dConfig,
    tags: TagArray,
    policy: Box<dyn ReplacementPolicy>,
    mshr: Mshr,
    /// Packets waiting to enter the interconnect.
    outgoing: VecDeque<Packet>,
    /// Responses ripening toward the core, ordered by ready cycle.
    pending: BinaryHeap<Reverse<PendingResp>>,
    resp_seq: u64,
    /// Ready responses the core can pop.
    responses: VecDeque<MemResp>,
    /// The blocked access retrying at the head of the memory pipeline.
    pipeline_reg: Option<MemReq>,
    /// Lines ever touched, for compulsory-miss accounting.
    seen_lines: HashSet<u64>,
    observer: Option<Box<dyn AccessObserver>>,
    stats: CacheStats,
    /// Accesses whose PC exceeded the 7-bit instruction-id space (the
    /// `hash_pc` fold was lossy). Observability only — kept off
    /// [`CacheStats`] so the pinned fidelity digest is untouched.
    insn_id_wraps: u64,
    /// Last full PC seen per hashed instruction id. The PDPT itself is
    /// direct-indexed and never evicts, so "eviction pressure" on it is
    /// exactly an ownership flip: a *different* PC hashing onto a slot
    /// another PC was just using.
    pdpt_shadow: Vec<u32>,
    /// Ownership flips counted through `pdpt_shadow`.
    pdpt_evict_pressure: u64,
}

impl L1dCache {
    /// Build a cache around a replacement policy. The policy must have
    /// been constructed for `cfg.geom`.
    pub fn new(cfg: L1dConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        L1dCache {
            tags: TagArray::new(cfg.geom),
            policy,
            mshr: Mshr::new(cfg.mshr_entries, cfg.mshr_merge),
            outgoing: VecDeque::new(),
            pending: BinaryHeap::new(),
            resp_seq: 0,
            responses: VecDeque::new(),
            pipeline_reg: None,
            seen_lines: HashSet::new(),
            observer: None,
            stats: CacheStats::default(),
            insn_id_wraps: 0,
            pdpt_shadow: vec![u32::MAX; PDPT_ENTRIES],
            pdpt_evict_pressure: 0,
            cfg,
        }
    }

    /// Attach an access observer (reuse-distance profiling).
    pub fn set_observer(&mut self, obs: Box<dyn AccessObserver>) {
        self.observer = Some(obs);
    }

    /// Is the input blocked by a stalled access?
    pub fn input_blocked(&self) -> bool {
        self.pipeline_reg.is_some()
    }

    /// Present a new transaction. Returns `Ok(false)` (and leaves the
    /// transaction with the caller) if the pipeline register is occupied
    /// by a stalled access — the §2 blocking behaviour. An `Err` means
    /// the cache's own structural state is corrupt (bad MSHR merge).
    pub fn submit(&mut self, mut req: MemReq, cycle: u64) -> Result<bool, MemError> {
        if self.pipeline_reg.is_some() {
            self.stats.rejected_submits += 1;
            return Ok(false);
        }
        req.born = cycle;
        match self.process(req, true, cycle)? {
            Outcome::Consumed => Ok(true),
            Outcome::Stalled => {
                self.pipeline_reg = Some(req);
                Ok(true)
            }
        }
    }

    /// Advance one core cycle: retry the stalled access (if any) and
    /// ripen pending responses.
    pub fn cycle(&mut self, cycle: u64) -> Result<(), MemError> {
        if let Some(req) = self.pipeline_reg.take() {
            self.stats.stall_cycles += 1;
            match self.process(req, false, cycle)? {
                Outcome::Consumed => {}
                Outcome::Stalled => self.pipeline_reg = Some(req),
            }
        }
        while self.pending.peek().is_some_and(|Reverse(head)| head.ready <= cycle) {
            let Some(Reverse(p)) = self.pending.pop() else { break };
            self.responses.push_back(p.resp);
        }
        Ok(())
    }

    /// A reply arrived from the interconnect. Fails with a typed error
    /// (instead of panicking) when the reply matches no outstanding
    /// fetch — the symptom of a duplicated or misrouted packet.
    pub fn on_reply(&mut self, pkt: Packet, cycle: u64) -> Result<(), MemError> {
        let line = self.cfg.geom.line_addr(pkt.addr);
        match pkt.kind {
            PacketKind::ReadReply => {
                let entry =
                    self.mshr.complete(line).ok_or(MemError::MshrMissingFill { line })?;
                if let Some((set, way)) = entry.target {
                    let dirty = entry.reqs.iter().any(|r| r.is_write);
                    self.tags.fill(set, way, dirty);
                    let first = entry.reqs[0];
                    let ctx = AccessCtx { insn_id: hash_pc(first.pc), is_write: first.is_write };
                    self.policy.on_fill(set, way, self.cfg.geom.tag_of_line(line), &ctx);
                }
                for req in entry.reqs {
                    self.schedule_resp(req, cycle + 1);
                }
                Ok(())
            }
            PacketKind::BypassReadReply => {
                // Reply to a bypassed load: route straight to the requester.
                self.schedule_resp(pkt.req, cycle + 1);
                Ok(())
            }
            other => Err(MemError::UnexpectedPacket { kind: other }),
        }
    }

    /// Next packet bound for the interconnect, if any.
    pub fn peek_outgoing(&self) -> Option<&Packet> {
        self.outgoing.front()
    }

    /// Remove the packet returned by [`L1dCache::peek_outgoing`].
    pub fn pop_outgoing(&mut self) -> Option<Packet> {
        self.outgoing.pop_front()
    }

    /// Pop a completed response for the core.
    pub fn pop_response(&mut self) -> Option<MemResp> {
        self.responses.pop_front()
    }

    /// Cache counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Policy-internal counters.
    pub fn policy_stats(&self) -> dlp_core::PolicyStats {
        self.policy.stats()
    }

    /// Accesses whose PC overflowed the 7-bit instruction-id space.
    pub fn insn_id_wraps(&self) -> u64 {
        self.insn_id_wraps
    }

    /// Distinct-PC ownership flips on PDPT slots (see the field docs).
    pub fn pdpt_evict_pressure(&self) -> u64 {
        self.pdpt_evict_pressure
    }

    /// First-attempt instruction-id bookkeeping shared by the detailed
    /// and functional access paths.
    #[inline]
    fn note_insn_id(&mut self, pc: u32, id: dlp_core::InsnId) {
        if pc_wraps(pc) {
            self.insn_id_wraps += 1;
        }
        let slot = &mut self.pdpt_shadow[id as usize];
        if *slot != pc {
            if *slot != u32::MAX {
                self.pdpt_evict_pressure += 1;
            }
            *slot = pc;
        }
    }

    /// Force the policy's sampling period to close (§4.1.4 instruction
    /// cap for cache-sufficient kernels).
    pub fn force_policy_sample(&mut self) {
        self.policy.force_sample();
    }

    /// The policy driving replacement (diagnostics).
    pub fn policy(&self) -> &dyn ReplacementPolicy {
        self.policy.as_ref()
    }

    /// Outstanding MSHR entries (diagnostics).
    pub fn mshr_occupancy(&self) -> usize {
        self.mshr.occupancy()
    }

    /// Packets queued toward the interconnect (diagnostics).
    pub fn outgoing_len(&self) -> usize {
        self.outgoing.len()
    }

    /// Responses ripening or ready for the core (diagnostics).
    pub fn pending_responses(&self) -> usize {
        self.pending.len() + self.responses.len()
    }

    /// Structural self-check for the runtime invariant auditor: MSHR
    /// integrity, miss-queue bound, and the replacement scheme's own
    /// invariants (for DLP: protected-life counters within the PD cap).
    pub fn audit(&self) -> Result<(), String> {
        self.mshr.audit()?;
        if self.outgoing.len() > self.cfg.miss_queue {
            return Err(format!(
                "miss queue holds {} packets but capacity is {}",
                self.outgoing.len(),
                self.cfg.miss_queue
            ));
        }
        self.policy.audit()
    }

    /// Nothing in flight anywhere in this cache: no stalled access, no
    /// outstanding misses, no queued packets or undelivered responses.
    pub fn quiescent(&self) -> bool {
        self.pipeline_reg.is_none()
            && self.mshr.occupancy() == 0
            && self.outgoing.is_empty()
            && self.pending.is_empty()
            && self.responses.is_empty()
    }

    /// Ready cycle of the earliest ripening response, if any. One input
    /// to the owning SM's cycle-leap `next_event` bound.
    pub fn next_pending_ready(&self) -> Option<u64> {
        self.pending.peek().map(|Reverse(head)| head.ready)
    }

    /// Are responses already ripe and waiting for the core to pop?
    pub fn has_ready_responses(&self) -> bool {
        !self.responses.is_empty()
    }

    /// Classify why the access parked in the pipeline register would
    /// stall *again* this cycle, without mutating anything — a read-only
    /// mirror of the [`Self::process`] retry path. `None` means the
    /// retry would make progress (so the next cycle is an event and must
    /// not be leapt over).
    ///
    /// The mirror is **exact** whenever the miss queue is empty — which
    /// is always the case when the cycle-leap event core consults it,
    /// since a non-empty miss queue already forces the SM's `next_event`
    /// to `now + 1`. With packets in the queue the `Absent` arm answers
    /// conservatively (`MissQueue`) rather than replaying the policy's
    /// (potentially mutating) `decide_replacement`.
    pub fn classify_stalled_retry(&mut self) -> Option<StallClass> {
        let req = self.pipeline_reg?;
        let line = self.cfg.geom.line_addr(req.addr);
        let (set, tag) = (self.cfg.geom.set_of_line(line), self.cfg.geom.tag_of_line(line));
        if matches!(self.tags.lookup(set, tag), Lookup::Hit { .. }) {
            return None;
        }
        match self.mshr.probe(line) {
            MshrLookup::Merged => {
                if self.mshr.is_bypass(line) && req.is_write {
                    // A store cannot ride the no-fill fetch: it needs a
                    // miss-queue slot to write through.
                    return (self.miss_queue_free() < 1).then_some(StallClass::MissQueue);
                }
                None
            }
            MshrLookup::MergeFull => Some(StallClass::MergeFull),
            MshrLookup::Full => {
                if self.policy.bypass_on_stall() && self.miss_queue_free() >= 1 {
                    None
                } else {
                    Some(StallClass::MshrFull)
                }
            }
            MshrLookup::Absent => {
                let views = self.tags.view_set(set);
                if self.policy.replacement_would_stall(set, views) {
                    return Some(StallClass::AllReserved);
                }
                // An allocation needs up to 2 slots (fetch + dirty
                // victim writeback), a bypass needs 1. With ≥ 2 free the
                // retry progresses no matter what the policy decides;
                // below that, be conservative instead of consulting the
                // mutating `decide_replacement`.
                if self.miss_queue_free() < 2 {
                    Some(StallClass::MissQueue)
                } else {
                    None
                }
            }
        }
    }

    /// Replay `skipped` provably-no-op cycles arithmetically after a
    /// leap. The only L1D state a dead-time tick mutates is the aging
    /// counters: each skipped cycle would have burned one retry of the
    /// parked access (`stall_cycles` plus exactly one stall-class
    /// counter) and — when the LD/ST queue had a transaction waiting
    /// behind it (`submits_pending`) — one rejected submit.
    pub fn leap_catchup(&mut self, skipped: u64, submits_pending: bool) {
        debug_assert!(
            self.outgoing.is_empty(),
            "leapt while packets waited for the interconnect"
        );
        if self.pipeline_reg.is_none() {
            return;
        }
        self.stats.stall_cycles += skipped;
        match self.classify_stalled_retry() {
            Some(StallClass::MergeFull) => self.stats.stall_merge_full += skipped,
            Some(StallClass::MshrFull) => self.stats.stall_mshr_full += skipped,
            Some(StallClass::AllReserved) => self.stats.stall_all_reserved += skipped,
            Some(StallClass::MissQueue) => self.stats.stall_miss_queue += skipped,
            None => debug_assert!(false, "leapt across a retry that would have progressed"),
        }
        if submits_pending {
            self.stats.rejected_submits += skipped;
        }
    }

    /// State-only access for sampling-mode fast-forward: the full
    /// policy-visible protocol of [`Self::process`] (query, hit/miss,
    /// eviction, bypass, fill) with the *timing* collapsed — fills
    /// complete instantly, so no MSHR entry, miss-queue packet, or
    /// pipeline stall ever forms. `effects` receives the L2-bound
    /// traffic as `(addr, is_write)` so the caller can keep partition
    /// state warm; `respond` pushes an immediate response for callers
    /// whose warps are scoreboard-blocked on it (the window-edge drain).
    ///
    /// Latency statistics (`load_latency_sum`/`load_count`, stall
    /// counters) are untouched: latency is only meaningful inside
    /// detailed windows.
    pub fn access_functional(
        &mut self,
        req: MemReq,
        first_attempt: bool,
        respond: bool,
        effects: &mut Vec<(u64, bool)>,
    ) {
        debug_assert_eq!(
            self.mshr.occupancy(),
            0,
            "functional access with in-flight detailed misses — drain first"
        );
        let line = self.cfg.geom.line_addr(req.addr);
        let (set, tag) = (self.cfg.geom.set_of_line(line), self.cfg.geom.tag_of_line(line));
        let ctx = AccessCtx { insn_id: hash_pc(req.pc), is_write: req.is_write };

        if first_attempt {
            self.stats.accesses += 1;
            self.note_insn_id(req.pc, ctx.insn_id);
            if self.seen_lines.insert(line) {
                self.stats.compulsory_misses += 1;
            }
            if let Some(obs) = self.observer.as_mut() {
                obs.on_access(set, line, req.pc, req.is_write);
            }
            self.policy.on_query(set);
        }

        if let Lookup::Hit { way } = self.tags.lookup(set, tag) {
            self.policy.on_hit(set, way, &ctx);
            self.stats.hits += 1;
            if req.is_write {
                self.tags.mark_dirty(set, way);
            }
            if respond {
                self.responses.push_back(MemResp { req });
            }
            return;
        }

        if first_attempt {
            self.policy.on_miss(set, tag, &ctx);
        }
        let views = self.tags.view_set(set);
        match self.policy.decide_replacement(set, views, &ctx) {
            MissDecision::Allocate { way } => {
                if let Some(old) = self.tags.evict_and_reserve(set, way, tag) {
                    self.policy.on_evict(set, way, old.tag);
                    self.stats.evictions += 1;
                    if old.dirty {
                        self.stats.dirty_evictions += 1;
                        effects.push((old.tag * self.cfg.geom.line_bytes, true));
                    }
                }
                // The fetch completes instantly: fill now, as the
                // detailed path's on_reply would.
                self.tags.fill(set, way, req.is_write);
                self.policy.on_fill(set, way, tag, &ctx);
                self.stats.misses_allocated += 1;
                effects.push((req.addr, false));
            }
            MissDecision::Bypass => {
                self.policy.on_bypass(set, tag, &ctx);
                if req.is_write {
                    self.stats.bypassed_stores += 1;
                    effects.push((req.addr, true));
                } else {
                    self.stats.bypassed_loads += 1;
                    self.stats.bypass_fetches += 1;
                    effects.push((req.addr, false));
                }
            }
            MissDecision::Stall => {
                // Unreachable functionally: instant fills mean no way is
                // ever left reserved for a policy to stall on.
                debug_assert!(false, "policy stalled a functional access");
            }
        }
        if respond {
            self.responses.push_back(MemResp { req });
        }
    }

    /// Window-edge drain for sampling mode: flush every ripening
    /// response to the core regardless of ready cycle and resolve the
    /// parked access functionally. Must run *after* all outstanding
    /// fills were answered (the MSHR is empty), so afterwards the cache
    /// is [`Self::quiescent`] once the outgoing queue is consumed.
    pub fn drain_functional(&mut self, effects: &mut Vec<(u64, bool)>) {
        while let Some(Reverse(p)) = self.pending.pop() {
            self.responses.push_back(p.resp);
        }
        if let Some(req) = self.pipeline_reg.take() {
            // The parked access already paid its first-attempt
            // accounting (access count, observer, policy query/miss)
            // when it was submitted in the detailed window.
            self.access_functional(req, false, true, effects);
        }
    }

    fn schedule_resp(&mut self, req: MemReq, ready: u64) {
        if !req.is_write {
            self.stats.load_latency_sum += ready.saturating_sub(req.born);
            self.stats.load_count += 1;
        }
        self.resp_seq += 1;
        self.pending.push(Reverse(PendingResp { ready, seq: self.resp_seq, resp: MemResp { req } }));
    }

    fn miss_queue_free(&self) -> usize {
        self.cfg.miss_queue.saturating_sub(self.outgoing.len())
    }

    fn push_packet(&mut self, kind: PacketKind, addr: u64, req: MemReq) {
        debug_assert!(self.outgoing.len() < self.cfg.miss_queue);
        self.outgoing.push_back(Packet { kind, addr, req });
    }

    /// Bypass `req` around the cache. Caller checked miss-queue space.
    fn do_bypass(&mut self, req: MemReq, cycle: u64) {
        if req.is_write {
            self.push_packet(PacketKind::WriteThrough, req.addr, req);
            self.stats.bypassed_stores += 1;
            // The store retires as soon as it is on its way to L2.
            self.schedule_resp(req, cycle + 1);
        } else {
            self.push_packet(PacketKind::BypassReadReq, req.addr, req);
            self.stats.bypassed_loads += 1;
            self.stats.bypass_fetches += 1;
        }
    }

    fn process(
        &mut self,
        req: MemReq,
        first_attempt: bool,
        cycle: u64,
    ) -> Result<Outcome, MemError> {
        let line = self.cfg.geom.line_addr(req.addr);
        let (set, tag) = (self.cfg.geom.set_of_line(line), self.cfg.geom.tag_of_line(line));
        let ctx = AccessCtx { insn_id: hash_pc(req.pc), is_write: req.is_write };

        if first_attempt {
            self.stats.accesses += 1;
            self.note_insn_id(req.pc, ctx.insn_id);
            if self.seen_lines.insert(line) {
                self.stats.compulsory_misses += 1;
            }
            if let Some(obs) = self.observer.as_mut() {
                obs.on_access(set, line, req.pc, req.is_write);
            }
            self.policy.on_query(set);
        }

        // 1. Hit check.
        if let Lookup::Hit { way } = self.tags.lookup(set, tag) {
            self.policy.on_hit(set, way, &ctx);
            self.stats.hits += 1;
            if req.is_write {
                self.tags.mark_dirty(set, way);
            }
            self.schedule_resp(req, cycle + self.cfg.hit_latency);
            return Ok(Outcome::Consumed);
        }

        // 2. MSHR probe (covers the Reserved lookup state).
        match self.mshr.probe(line) {
            MshrLookup::Merged => {
                if first_attempt {
                    self.policy.on_miss(set, tag, &ctx);
                }
                if self.mshr.is_bypass(line) {
                    if req.is_write {
                        // A store cannot ride a no-fill fetch (its data
                        // would be dropped): write it through instead.
                        return if self.miss_queue_free() >= 1 {
                            self.do_bypass(req, cycle);
                            Ok(Outcome::Consumed)
                        } else {
                            self.stats.stall_miss_queue += 1;
                            Ok(Outcome::Stalled)
                        };
                    }
                    self.mshr.merge(line, req)?;
                    self.stats.bypassed_loads += 1;
                } else {
                    self.mshr.merge(line, req)?;
                    self.stats.mshr_merges += 1;
                }
                return Ok(Outcome::Consumed);
            }
            MshrLookup::MergeFull => {
                self.stats.stall_merge_full += 1;
                return Ok(Outcome::Stalled);
            }
            MshrLookup::Full => {
                if first_attempt {
                    self.policy.on_miss(set, tag, &ctx);
                }
                // Cannot track a new line. Stall-Bypass sidesteps the
                // MSHR entirely; everyone else waits.
                return if self.policy.bypass_on_stall() && self.miss_queue_free() >= 1 {
                    self.do_bypass(req, cycle);
                    Ok(Outcome::Consumed)
                } else {
                    self.stats.stall_mshr_full += 1;
                    Ok(Outcome::Stalled)
                };
            }
            MshrLookup::Absent => {}
        }

        if first_attempt {
            self.policy.on_miss(set, tag, &ctx);
        }

        // 3. Line reservation via the policy. The views live in the tag
        // array's scratch buffer — no allocation on the access path.
        let views = self.tags.view_set(set);
        match self.policy.decide_replacement(set, views, &ctx) {
            MissDecision::Allocate { way } => {
                let victim = self.tags.line(set, way);
                let needed = 1 + (victim.valid && victim.dirty) as usize;
                if self.miss_queue_free() < needed {
                    return if self.policy.bypass_on_stall() && self.miss_queue_free() >= 1 {
                        self.do_bypass(req, cycle);
                        Ok(Outcome::Consumed)
                    } else {
                        self.stats.stall_miss_queue += 1;
                        Ok(Outcome::Stalled)
                    };
                }
                if let Some(old) = self.tags.evict_and_reserve(set, way, tag) {
                    self.policy.on_evict(set, way, old.tag);
                    self.stats.evictions += 1;
                    if old.dirty {
                        self.stats.dirty_evictions += 1;
                        let wb_addr = old.tag * self.cfg.geom.line_bytes;
                        self.push_packet(PacketKind::Writeback, wb_addr, MemReq {
                            id: 0,
                            addr: wb_addr,
                            is_write: true,
                            pc: 0,
                            sm: req.sm,
                            warp: 0,
                            dst_reg: 0,
                            born: cycle,
                        });
                    }
                }
                self.mshr.allocate(line, Some((set, way)), req);
                self.push_packet(PacketKind::ReadReq, req.addr, req);
                self.stats.misses_allocated += 1;
                Ok(Outcome::Consumed)
            }
            MissDecision::Bypass => {
                if self.miss_queue_free() < 1 {
                    self.stats.stall_miss_queue += 1;
                    return Ok(Outcome::Stalled);
                }
                // The line will never enter the TDA: let the policy
                // restore the victim tag its on_miss probe consumed.
                self.policy.on_bypass(set, tag, &ctx);
                if req.is_write {
                    self.do_bypass(req, cycle);
                } else {
                    // Track the bypassed fetch in the MSHR without a
                    // fill target: redundant misses to the line merge
                    // into it instead of multiplying interconnect
                    // traffic, but no cache line is reserved or filled
                    // (see DESIGN.md "bypass tracking").
                    self.mshr.allocate(line, None, req);
                    self.push_packet(PacketKind::ReadReq, req.addr, req);
                    self.stats.bypassed_loads += 1;
                    self.stats.bypass_fetches += 1;
                }
                Ok(Outcome::Consumed)
            }
            MissDecision::Stall => {
                self.stats.stall_all_reserved += 1;
                Ok(Outcome::Stalled)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_core::{build_policy, PolicyKind};

    fn cache(kind: PolicyKind) -> L1dCache {
        let cfg = L1dConfig::fermi_baseline();
        L1dCache::new(cfg, build_policy(kind, cfg.geom))
    }

    fn load(id: u64, addr: u64, pc: u32) -> MemReq {
        MemReq { id, addr, is_write: false, pc, sm: 0, warp: 0, dst_reg: 0, born: 0 }
    }

    fn store(id: u64, addr: u64, pc: u32) -> MemReq {
        MemReq { is_write: true, ..load(id, addr, pc) }
    }

    /// Drive `n` cycles, collecting responses.
    fn run(c: &mut L1dCache, from: u64, n: u64) -> Vec<MemResp> {
        let mut out = Vec::new();
        for cyc in from..from + n {
            c.cycle(cyc).unwrap();
            while let Some(r) = c.pop_response() {
                out.push(r);
            }
        }
        out
    }

    /// Serve every outgoing read with a reply at `cycle`.
    fn serve_memory(c: &mut L1dCache, cycle: u64) -> usize {
        let mut served = 0;
        while let Some(pkt) = c.pop_outgoing() {
            let reply = match pkt.kind {
                PacketKind::ReadReq => PacketKind::ReadReply,
                PacketKind::BypassReadReq => PacketKind::BypassReadReply,
                _ => continue,
            };
            c.on_reply(Packet { kind: reply, ..pkt }, cycle).unwrap();
            served += 1;
        }
        served
    }

    #[test]
    fn cold_miss_fetches_then_hits() {
        let mut c = cache(PolicyKind::Baseline);
        assert!(c.submit(load(1, 0x1000, 4), 0).unwrap());
        assert_eq!(c.stats().misses_allocated, 1);
        assert_eq!(c.stats().compulsory_misses, 1);
        assert_eq!(serve_memory(&mut c, 5), 1);
        let resps = run(&mut c, 6, 4);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].req.id, 1);

        // Second access to the same line hits.
        assert!(c.submit(load(2, 0x1000 + 64, 4), 10).unwrap());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().compulsory_misses, 1, "same line is not compulsory twice");
        let resps = run(&mut c, 11, 10);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].req.id, 2);
    }

    #[test]
    fn misses_to_same_line_merge_in_mshr() {
        let mut c = cache(PolicyKind::Baseline);
        assert!(c.submit(load(1, 0x2000, 4), 0).unwrap());
        assert!(c.submit(load(2, 0x2000, 8), 1).unwrap());
        assert_eq!(c.stats().mshr_merges, 1);
        assert_eq!(c.stats().misses_allocated, 1);
        // Only one fetch goes out.
        assert_eq!(c.pop_outgoing().map(|p| p.kind), Some(PacketKind::ReadReq));
        assert!(c.pop_outgoing().is_none());
        // The fill answers both.
        c.on_reply(
            Packet { kind: PacketKind::ReadReply, addr: 0x2000, req: load(1, 0x2000, 4) },
            5,
        )
        .unwrap();
        let resps = run(&mut c, 6, 3);
        assert_eq!(resps.len(), 2);
    }

    #[test]
    fn store_hit_dirties_line_and_eviction_writes_back() {
        let mut c = cache(PolicyKind::Baseline);
        let geom = CacheGeometry::fermi_l1d_16k();
        // Fill a line, dirty it with a store hit.
        assert!(c.submit(load(1, 0x3000, 4), 0).unwrap());
        serve_memory(&mut c, 2);
        run(&mut c, 3, 3);
        assert!(c.submit(store(2, 0x3000, 5), 6).unwrap());
        assert_eq!(c.stats().hits, 1);

        // Now force eviction of that line: fill the set with 4 more
        // lines mapping to the same set.
        let (set0, _) = geom.locate(0x3000);
        let mut filled = 0;
        let mut candidate = 0x3000u64 + 128;
        let mut cyc = 10;
        while filled < 4 {
            let (s, _) = geom.locate(candidate);
            if s == set0 {
                assert!(c.submit(load(100 + filled, candidate, 4), cyc).unwrap());
                serve_memory(&mut c, cyc + 1);
                run(&mut c, cyc + 1, 3);
                filled += 1;
                cyc += 5;
            }
            candidate += 128;
        }
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn baseline_stalls_when_all_ways_reserved() {
        let mut c = cache(PolicyKind::Baseline);
        let geom = CacheGeometry::fermi_l1d_16k();
        // Issue 4 misses to the same set (all ways reserved), then a 5th
        // miss to that set must stall the pipeline register.
        let (set0, _) = geom.locate(0);
        let mut addrs = Vec::new();
        let mut candidate = 0u64;
        while addrs.len() < 5 {
            let (s, _) = geom.locate(candidate);
            if s == set0 {
                addrs.push(candidate);
            }
            candidate += 128;
        }
        for (i, &a) in addrs[..4].iter().enumerate() {
            assert!(c.submit(load(i as u64, a, 4), i as u64).unwrap());
        }
        assert_eq!(c.stats().misses_allocated, 4);
        assert!(c.submit(load(99, addrs[4], 4), 10).unwrap(), "submit accepts, then stalls internally");
        assert!(c.input_blocked());
        // Younger accesses are rejected while stalled.
        assert!(!c.submit(load(100, 0x9999 * 128, 4), 11).unwrap());
        assert_eq!(c.stats().rejected_submits, 1);
        // Retry burns stall cycles.
        c.cycle(12).unwrap();
        c.cycle(13).unwrap();
        assert!(c.stats().stall_cycles >= 2);
        // A fill frees a way; the stalled access then allocates it.
        serve_memory(&mut c, 14);
        c.cycle(15).unwrap();
        assert!(!c.input_blocked());
        assert_eq!(c.stats().misses_allocated, 5);
    }

    #[test]
    fn stall_bypass_bypasses_instead_of_stalling() {
        let mut c = cache(PolicyKind::StallBypass);
        let geom = CacheGeometry::fermi_l1d_16k();
        let (set0, _) = geom.locate(0);
        let mut addrs = Vec::new();
        let mut candidate = 0u64;
        while addrs.len() < 5 {
            let (s, _) = geom.locate(candidate);
            if s == set0 {
                addrs.push(candidate);
            }
            candidate += 128;
        }
        for (i, &a) in addrs[..4].iter().enumerate() {
            assert!(c.submit(load(i as u64, a, 4), i as u64).unwrap());
        }
        assert!(c.submit(load(99, addrs[4], 4), 10).unwrap());
        assert!(!c.input_blocked(), "Stall-Bypass must not block");
        assert_eq!(c.stats().bypassed_loads, 1);
        // The bypassed fetch is MSHR-tracked (no fill target); its reply
        // routes to the requester without filling a line.
        let valid_before = c.tags.valid_count();
        serve_memory(&mut c, 20);
        let resps = run(&mut c, 21, 3);
        assert_eq!(resps.len(), 5);
        assert!(resps.iter().any(|r| r.req.id == 99));
        assert_eq!(c.tags.valid_count(), valid_before + 4, "bypassed line must not fill");
    }

    #[test]
    fn bypassed_store_is_write_through() {
        let mut c = cache(PolicyKind::StallBypass);
        let geom = CacheGeometry::fermi_l1d_16k();
        let (set0, _) = geom.locate(0);
        let mut addrs = Vec::new();
        let mut candidate = 0u64;
        while addrs.len() < 5 {
            let (s, _) = geom.locate(candidate);
            if s == set0 {
                addrs.push(candidate);
            }
            candidate += 128;
        }
        for (i, &a) in addrs[..4].iter().enumerate() {
            assert!(c.submit(load(i as u64, a, 4), i as u64).unwrap());
        }
        assert!(c.submit(store(99, addrs[4], 4), 10).unwrap());
        assert_eq!(c.stats().bypassed_stores, 1);
        // Store retires without a memory round trip.
        let resps = run(&mut c, 11, 3);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].req.id, 99);
    }

    #[test]
    fn full_miss_queue_stalls_baseline() {
        let mut c = L1dCache::new(
            L1dConfig { miss_queue: 2, ..L1dConfig::fermi_baseline() },
            build_policy(PolicyKind::Baseline, CacheGeometry::fermi_l1d_16k()),
        );
        // Two misses fill the queue (never drained), third stalls.
        assert!(c.submit(load(1, 0, 4), 0).unwrap());
        assert!(c.submit(load(2, 128 * 1000, 4), 1).unwrap());
        assert!(c.submit(load(3, 128 * 2000, 4), 2).unwrap());
        assert!(c.input_blocked());
        // Draining the queue lets the retry through.
        c.pop_outgoing();
        c.cycle(3).unwrap();
        assert!(!c.input_blocked());
        assert_eq!(c.stats().misses_allocated, 3);
    }

    #[test]
    fn mshr_full_stalls_baseline_but_bypasses_sb() {
        let mk = |kind| {
            L1dCache::new(
                L1dConfig { mshr_entries: 2, miss_queue: 64, ..L1dConfig::fermi_baseline() },
                build_policy(kind, CacheGeometry::fermi_l1d_16k()),
            )
        };
        let mut base = mk(PolicyKind::Baseline);
        let mut sb = mk(PolicyKind::StallBypass);
        for (i, c) in [&mut base, &mut sb].into_iter().enumerate() {
            let _ = i;
            assert!(c.submit(load(1, 0, 4), 0).unwrap());
            assert!(c.submit(load(2, 128 * 1000, 4), 1).unwrap());
            assert!(c.submit(load(3, 128 * 2000, 4), 2).unwrap());
        }
        assert!(base.input_blocked());
        assert!(!sb.input_blocked());
        assert_eq!(sb.stats().bypassed_loads, 1);
    }

    #[test]
    fn observer_sees_each_access_once_despite_stalls() {
        use crate::observer::CountingObserver;
        let mut c = L1dCache::new(
            L1dConfig { miss_queue: 1, ..L1dConfig::fermi_baseline() },
            build_policy(PolicyKind::Baseline, CacheGeometry::fermi_l1d_16k()),
        );
        c.set_observer(Box::new(CountingObserver::default()));
        assert!(c.submit(load(1, 0, 4), 0).unwrap());
        assert!(c.submit(load(2, 128 * 1000, 4), 1).unwrap()); // stalls: queue full
        assert!(c.input_blocked());
        for cyc in 2..6 {
            c.cycle(cyc).unwrap(); // retries do not re-observe
        }
        assert_eq!(c.stats().accesses, 2);
        // Two accesses -> the policy saw exactly two queries too.
        assert_eq!(c.policy_stats().queries, 2);
    }

    #[test]
    fn orphan_or_malformed_replies_yield_typed_errors() {
        let mut c = cache(PolicyKind::Baseline);
        // A fill with no matching MSHR entry (e.g. a duplicated packet).
        let err = c
            .on_reply(Packet { kind: PacketKind::ReadReply, addr: 0x7000, req: load(1, 0x7000, 4) }, 3)
            .unwrap_err();
        assert_eq!(err, MemError::MshrMissingFill { line: 0x7000 >> 7 });
        // A packet kind the L1D can never consume.
        let err = c
            .on_reply(Packet { kind: PacketKind::Writeback, addr: 0x7000, req: load(1, 0x7000, 4) }, 4)
            .unwrap_err();
        assert_eq!(err, MemError::UnexpectedPacket { kind: PacketKind::Writeback });
        // Neither corrupted the cache: a normal access still works.
        assert!(c.submit(load(2, 0x8000, 4), 5).unwrap());
        assert_eq!(c.audit(), Ok(()));
    }

    /// Addresses of distinct lines all mapping to the set of address 0.
    fn same_set_addrs(n: usize) -> Vec<u64> {
        let geom = CacheGeometry::fermi_l1d_16k();
        let (set0, _) = geom.locate(0);
        let mut addrs = Vec::new();
        let mut candidate = 0u64;
        while addrs.len() < n {
            let (s, _) = geom.locate(candidate);
            if s == set0 {
                addrs.push(candidate);
            }
            candidate += 128;
        }
        addrs
    }

    #[test]
    fn classify_stalled_retry_names_the_counter_a_retry_would_bump() {
        // All ways reserved -> AllReserved, and classification is pure:
        // repeated calls agree, and a real retry bumps the named counter.
        let mut c = cache(PolicyKind::Baseline);
        let addrs = same_set_addrs(5);
        for (i, &a) in addrs[..4].iter().enumerate() {
            assert!(c.submit(load(i as u64, a, 4), i as u64).unwrap());
        }
        for _ in 0..4 {
            c.pop_outgoing();
        }
        assert!(c.submit(load(99, addrs[4], 4), 10).unwrap());
        assert_eq!(c.classify_stalled_retry(), Some(StallClass::AllReserved));
        assert_eq!(c.classify_stalled_retry(), Some(StallClass::AllReserved));
        let before = c.stats().stall_all_reserved;
        c.cycle(11).unwrap();
        assert_eq!(c.stats().stall_all_reserved, before + 1);
        // A fill frees a way: the classification flips to "would
        // progress" before the retry actually lands.
        c.on_reply(
            Packet { kind: PacketKind::ReadReply, addr: addrs[0], req: load(0, addrs[0], 4) },
            12,
        )
        .unwrap();
        assert_eq!(c.classify_stalled_retry(), None);
        c.cycle(13).unwrap();
        assert!(!c.input_blocked());
    }

    #[test]
    fn classify_covers_mshr_full_and_merge_full() {
        let mut c = L1dCache::new(
            L1dConfig { mshr_entries: 1, mshr_merge: 1, miss_queue: 64, ..L1dConfig::fermi_baseline() },
            build_policy(PolicyKind::Baseline, CacheGeometry::fermi_l1d_16k()),
        );
        assert!(c.submit(load(1, 0, 4), 0).unwrap());
        while c.pop_outgoing().is_some() {}
        // Same line again: the single-entry merge list is full.
        assert!(c.submit(load(2, 0, 4), 1).unwrap());
        assert_eq!(c.classify_stalled_retry(), Some(StallClass::MergeFull));
        // Clear it, then a different line: no MSHR entry free.
        c.on_reply(Packet { kind: PacketKind::ReadReply, addr: 0, req: load(1, 0, 4) }, 2)
            .unwrap();
        c.cycle(3).unwrap();
        assert!(!c.input_blocked());
        assert!(c.submit(load(3, 128 * 1000, 4), 4).unwrap());
        while c.pop_outgoing().is_some() {}
        assert!(c.submit(load(4, 128 * 2000, 4), 5).unwrap());
        assert_eq!(c.classify_stalled_retry(), Some(StallClass::MshrFull));
        // No parked access at all -> no classification.
        let mut fresh = cache(PolicyKind::Baseline);
        assert_eq!(fresh.classify_stalled_retry(), None);
    }

    #[test]
    fn leap_catchup_matches_ticking_through_the_stall() {
        // Two identical caches with a parked all-reserved access: tick
        // one through N dead cycles, leap the other, compare counters.
        let mk = || {
            let mut c = cache(PolicyKind::Baseline);
            let addrs = same_set_addrs(5);
            for (i, &a) in addrs[..4].iter().enumerate() {
                assert!(c.submit(load(i as u64, a, 4), i as u64).unwrap());
            }
            for _ in 0..4 {
                c.pop_outgoing();
            }
            assert!(c.submit(load(99, addrs[4], 4), 10).unwrap());
            assert!(c.input_blocked());
            c
        };
        let (mut ticked, mut leaped) = (mk(), mk());
        for cyc in 11..11 + 37 {
            ticked.cycle(cyc).unwrap();
        }
        leaped.leap_catchup(37, false);
        assert_eq!(leaped.stats().stall_cycles, ticked.stats().stall_cycles);
        assert_eq!(leaped.stats().stall_all_reserved, ticked.stats().stall_all_reserved);
        assert_eq!(leaped.stats().rejected_submits, ticked.stats().rejected_submits);
        // With a transaction waiting behind the parked one, every dead
        // cycle also burns a rejected submit.
        let (mut ticked, mut leaped) = (mk(), mk());
        for cyc in 11..11 + 21 {
            assert!(!ticked.submit(load(200, 0x4_0000, 4), cyc).unwrap());
            ticked.cycle(cyc).unwrap();
        }
        leaped.leap_catchup(21, true);
        assert_eq!(leaped.stats().rejected_submits, ticked.stats().rejected_submits);
        assert_eq!(leaped.stats().stall_cycles, ticked.stats().stall_cycles);
    }

    #[test]
    fn responses_ripen_in_ready_order() {
        let mut c = cache(PolicyKind::Baseline);
        // Miss at cycle 0, hit at cycle 1: the hit (latency 4) ripens at
        // 5; the fill (arrives at 2) ripens at 3.
        assert!(c.submit(load(1, 0x5000, 4), 0).unwrap());
        serve_memory(&mut c, 2);
        assert!(c.submit(load(2, 0x5000, 4), 10).unwrap());
        let resps = run(&mut c, 3, 20);
        assert_eq!(resps.len(), 2);
        assert_eq!(resps[0].req.id, 1);
        assert_eq!(resps[1].req.id, 2);
    }
}
