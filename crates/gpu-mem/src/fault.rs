//! Deterministic fault injection for the memory hierarchy.
//!
//! The injector corrupts packet flow at a chosen site (interconnect
//! forward/return direction, or DRAM completion) in a chosen way
//! (drop, duplicate, delay, misroute). It exists to *prove* the
//! integrity layer works: every fault class must be caught by the
//! watchdog, the invariant auditor, or a typed [`crate::error::MemError`]
//! — never by silently wrong results. Injection is driven by a seeded
//! SplitMix64 stream, so a given `(seed, rate)` corrupts the same
//! packets on every run.

/// How an eligible packet is corrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The packet vanishes (the sender believes it was accepted).
    Drop,
    /// The packet is delivered twice.
    Duplicate,
    /// The packet is delivered late by the configured extra latency.
    Delay,
    /// The packet is delivered to the wrong port (or, at the DRAM site,
    /// its completion address is shifted to a neighbouring line).
    Misroute,
}

/// Where in the hierarchy faults are injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// SM → partition crossbar injection.
    IcntForward,
    /// Partition → SM crossbar injection.
    IcntReturn,
    /// DRAM read-burst completion.
    Dram,
}

/// Full description of a fault campaign.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// PRNG seed; identical seeds corrupt identical packets.
    pub seed: u64,
    /// Injection probability in parts per million of eligible packets
    /// (1_000_000 = every packet).
    pub rate_ppm: u32,
    /// Cap on total injections (0 = unlimited). `rate_ppm: 1_000_000`
    /// with `max_faults: 1` corrupts exactly the first eligible packet.
    pub max_faults: u64,
    /// The corruption applied.
    pub kind: FaultKind,
    /// Where it is applied.
    pub site: FaultSite,
    /// Extra latency for [`FaultKind::Delay`], in cycles of the
    /// afflicted component's clock.
    pub delay_cycles: u64,
}

impl FaultConfig {
    /// A campaign injecting `kind` at `site` on the first eligible
    /// packet only — the deterministic single-fault setup the integrity
    /// tests use.
    pub fn single(kind: FaultKind, site: FaultSite, seed: u64) -> Self {
        FaultConfig { seed, rate_ppm: 1_000_000, max_faults: 1, kind, site, delay_cycles: 2000 }
    }
}

/// A seeded SplitMix64 decision stream — the deterministic randomness
/// source behind every fault-injection site in the workspace. The
/// packet-level [`FaultInjector`] draws from one, and the `dlp-store`
/// crate reuses it to corrupt on-disk result entries (torn writes,
/// truncations, checksum flips) with the same reproducibility
/// guarantee: a given seed makes identical decisions on every run.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Stream seeded by `seed` with a salt mixed in, giving replicated
    /// components distinct but still reproducible streams.
    pub fn with_salt(seed: u64, salt: u64) -> Self {
        // dlp-lint: allow(F103) -- SplitMix64 salt mixing is modular by construction
        SplitMix64 { state: seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// Next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        // dlp-lint: allow(F103) -- the SplitMix64 increment is modular 2^64 by definition
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        // dlp-lint: allow(F103) -- SplitMix64 finalizer multiply is a modular mixer
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        // dlp-lint: allow(F103) -- SplitMix64 finalizer multiply is a modular mixer
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Stateful injector owned by the faulted component.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    stream: SplitMix64,
    injected: u64,
}

impl FaultInjector {
    /// Build from a campaign description.
    pub fn new(cfg: FaultConfig) -> Self {
        Self::with_salt(cfg, 0)
    }

    /// Build with a salt mixed into the seed — used to give replicated
    /// components (the 12 DRAM channels) distinct but still
    /// reproducible streams.
    pub fn with_salt(cfg: FaultConfig, salt: u64) -> Self {
        FaultInjector { stream: SplitMix64::with_salt(cfg.seed, salt), injected: 0, cfg }
    }

    /// The campaign being run.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decide whether the current eligible packet at `site` gets the
    /// fault. Advances the PRNG only for matching sites so unrelated
    /// traffic does not perturb the stream.
    pub fn should_inject(&mut self, site: FaultSite) -> Option<FaultKind> {
        if site != self.cfg.site {
            return None;
        }
        if self.cfg.max_faults > 0 && self.injected >= self.cfg.max_faults {
            return None;
        }
        if self.stream.next_u64() % 1_000_000 < self.cfg.rate_ppm as u64 {
            self.injected += 1;
            Some(self.cfg.kind)
        } else {
            None
        }
    }

    /// Extra latency applied by [`FaultKind::Delay`].
    pub fn delay_cycles(&self) -> u64 {
        self.cfg.delay_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_never_injects() {
        let cfg = FaultConfig {
            rate_ppm: 0,
            ..FaultConfig::single(FaultKind::Drop, FaultSite::IcntReturn, 1)
        };
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..10_000 {
            assert_eq!(inj.should_inject(FaultSite::IcntReturn), None);
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn single_fault_fires_once_on_first_eligible_packet() {
        let mut inj = FaultInjector::new(FaultConfig::single(FaultKind::Drop, FaultSite::Dram, 7));
        assert_eq!(inj.should_inject(FaultSite::IcntForward), None, "wrong site");
        assert_eq!(inj.should_inject(FaultSite::Dram), Some(FaultKind::Drop));
        for _ in 0..100 {
            assert_eq!(inj.should_inject(FaultSite::Dram), None, "max_faults reached");
        }
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = FaultConfig {
            rate_ppm: 50_000,
            max_faults: 0,
            ..FaultConfig::single(FaultKind::Delay, FaultSite::IcntForward, 99)
        };
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for _ in 0..5_000 {
            assert_eq!(a.should_inject(FaultSite::IcntForward), b.should_inject(FaultSite::IcntForward));
        }
        assert!(a.injected() > 0, "a 5% rate should fire within 5000 draws");
    }

    #[test]
    fn salt_decorrelates_replicas() {
        let cfg = FaultConfig {
            rate_ppm: 500_000,
            max_faults: 0,
            ..FaultConfig::single(FaultKind::Drop, FaultSite::Dram, 42)
        };
        let mut a = FaultInjector::with_salt(cfg, 0);
        let mut b = FaultInjector::with_salt(cfg, 1);
        let decisions = |inj: &mut FaultInjector| {
            (0..64).map(|_| inj.should_inject(FaultSite::Dram).is_some()).collect::<Vec<_>>()
        };
        assert_ne!(decisions(&mut a), decisions(&mut b));
    }
}
