//! The tag side of a set-associative cache: valid/reserved/dirty state
//! per way. Replacement decisions live in the policy (`dlp-core`); this
//! type only records what is where.

use dlp_core::policy::WayView;
use dlp_core::CacheGeometry;

/// State of one way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Line {
    /// Holds valid data.
    pub valid: bool,
    /// Reserved by an in-flight fill (miss outstanding).
    pub reserved: bool,
    /// Modified relative to the next level (write-back caches).
    pub dirty: bool,
    /// Tag of the resident or incoming line.
    pub tag: u64,
}

/// Result of a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Valid line present in `way`.
    Hit {
        /// Way holding the line.
        way: usize,
    },
    /// The line is currently being fetched into `way` (MSHR will merge).
    Reserved {
        /// Way reserved for the line.
        way: usize,
    },
    /// Not present.
    Miss,
}

/// Tags for a whole cache.
pub struct TagArray {
    geom: CacheGeometry,
    lines: Vec<Line>,
    /// Reusable per-set snapshot buffer so `view_set` never allocates on
    /// the access path (it is called once per miss on every L1D/L2 probe).
    view_scratch: Vec<WayView>,
}

impl TagArray {
    /// All-invalid array for the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        TagArray {
            geom,
            lines: vec![Line::default(); geom.num_lines()],
            view_scratch: vec![WayView::invalid(); geom.assoc],
        }
    }

    /// Geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        debug_assert!(set < self.geom.num_sets && way < self.geom.assoc);
        set * self.geom.assoc + way
    }

    /// Inspect one way.
    pub fn line(&self, set: usize, way: usize) -> Line {
        self.lines[self.idx(set, way)]
    }

    /// Search `set` for `tag`.
    pub fn lookup(&self, set: usize, tag: u64) -> Lookup {
        for way in 0..self.geom.assoc {
            let l = self.lines[self.idx(set, way)];
            if l.tag == tag {
                if l.valid {
                    return Lookup::Hit { way };
                }
                if l.reserved {
                    return Lookup::Reserved { way };
                }
            }
        }
        Lookup::Miss
    }

    /// Snapshot the set as the policy-facing [`WayView`]s.
    ///
    /// The views are written into an internal scratch buffer sized at
    /// construction, so repeated calls are allocation-free; each call
    /// overwrites the previous snapshot.
    pub fn view_set(&mut self, set: usize) -> &[WayView] {
        let base = set * self.geom.assoc;
        debug_assert!(set < self.geom.num_sets);
        for (way, view) in self.view_scratch.iter_mut().enumerate() {
            let l = self.lines[base + way];
            *view = WayView { valid: l.valid, reserved: l.reserved, tag: l.tag };
        }
        &self.view_scratch
    }

    /// Evict the current occupant of `way` (caller already told the
    /// policy) and reserve it for `tag`. Returns the evicted line, if a
    /// valid one was present.
    pub fn evict_and_reserve(&mut self, set: usize, way: usize, tag: u64) -> Option<Line> {
        let i = self.idx(set, way);
        let old = self.lines[i];
        assert!(!old.reserved, "cannot evict a reserved way");
        self.lines[i] = Line { valid: false, reserved: true, dirty: false, tag };
        old.valid.then_some(old)
    }

    /// Complete the fill of a previously reserved way.
    pub fn fill(&mut self, set: usize, way: usize, dirty: bool) {
        let i = self.idx(set, way);
        let l = &mut self.lines[i];
        assert!(l.reserved && !l.valid, "fill target must be reserved");
        l.valid = true;
        l.reserved = false;
        l.dirty = dirty;
    }

    /// Mark a resident line dirty (store hit in a write-back cache).
    pub fn mark_dirty(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        assert!(self.lines[i].valid);
        self.lines[i].dirty = true;
    }

    /// Invalidate a resident line, returning whether it was dirty.
    pub fn invalidate(&mut self, set: usize, way: usize) -> bool {
        let i = self.idx(set, way);
        let was_dirty = self.lines[i].dirty;
        self.lines[i] = Line::default();
        was_dirty
    }

    /// Number of valid lines (diagnostics).
    pub fn valid_count(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Number of reserved ways (diagnostics).
    pub fn reserved_count(&self) -> usize {
        self.lines.iter().filter(|l| l.reserved).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> TagArray {
        TagArray::new(CacheGeometry::fermi_l1d_16k())
    }

    #[test]
    fn lookup_misses_in_empty_array() {
        let t = array();
        assert_eq!(t.lookup(0, 42), Lookup::Miss);
    }

    #[test]
    fn reserve_then_fill_then_hit() {
        let mut t = array();
        assert_eq!(t.evict_and_reserve(3, 1, 42), None);
        assert_eq!(t.lookup(3, 42), Lookup::Reserved { way: 1 });
        t.fill(3, 1, false);
        assert_eq!(t.lookup(3, 42), Lookup::Hit { way: 1 });
        assert!(!t.line(3, 1).dirty);
    }

    #[test]
    fn evicting_valid_line_returns_it() {
        let mut t = array();
        t.evict_and_reserve(0, 0, 7);
        t.fill(0, 0, true);
        let old = t.evict_and_reserve(0, 0, 8).expect("line was valid");
        assert_eq!(old.tag, 7);
        assert!(old.dirty);
        assert_eq!(t.lookup(0, 7), Lookup::Miss);
    }

    #[test]
    #[should_panic(expected = "cannot evict a reserved way")]
    fn evicting_reserved_way_panics() {
        let mut t = array();
        t.evict_and_reserve(0, 0, 7);
        t.evict_and_reserve(0, 0, 8);
    }

    #[test]
    fn mark_dirty_and_invalidate() {
        let mut t = array();
        t.evict_and_reserve(1, 2, 9);
        t.fill(1, 2, false);
        t.mark_dirty(1, 2);
        assert!(t.line(1, 2).dirty);
        assert!(t.invalidate(1, 2));
        assert_eq!(t.lookup(1, 9), Lookup::Miss);
        assert_eq!(t.valid_count(), 0);
    }

    #[test]
    fn view_set_reflects_state() {
        let mut t = array();
        t.evict_and_reserve(0, 0, 5);
        t.fill(0, 0, false);
        t.evict_and_reserve(0, 1, 6);
        let v = t.view_set(0);
        assert!(v[0].valid && !v[0].reserved && v[0].tag == 5);
        assert!(!v[1].valid && v[1].reserved);
        assert!(!v[2].valid && !v[2].reserved);
    }
}
