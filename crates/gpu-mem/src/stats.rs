//! Counters collected by the memory hierarchy, shaped after the metrics
//! the paper's figures report.

use serde::{Deserialize, Serialize};

/// Per-cache counters (one per L1D; merged across SMs for reports).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Transactions presented to the cache (excluding retries of stalled
    /// accesses).
    pub accesses: u64,
    /// Tag-array hits.
    pub hits: u64,
    /// Misses that allocated a line (i.e. became L1D fills).
    pub misses_allocated: u64,
    /// Misses merged into an existing MSHR entry.
    pub mshr_merges: u64,
    /// Load misses sent around the cache (no allocation). Includes
    /// loads merged into an outstanding bypassed fetch.
    pub bypassed_loads: u64,
    /// Fetch packets actually emitted for bypassed loads (each may
    /// serve several merged `bypassed_loads`).
    pub bypass_fetches: u64,
    /// Stores sent around the cache (write-through path).
    pub bypassed_stores: u64,
    /// Valid lines evicted to make room for a fill.
    pub evictions: u64,
    /// Subset of `evictions` that were dirty (generated writebacks).
    pub dirty_evictions: u64,
    /// Accesses to lines never seen before by this cache (compulsory
    /// misses by definition; Figure 4 excludes them).
    pub compulsory_misses: u64,
    /// Cycles the input pipeline register held a stalled access, gating
    /// all younger accesses (§2).
    pub stall_cycles: u64,
    /// Accesses that found the input blocked and were rejected.
    pub rejected_submits: u64,
    /// Stalls (first attempt) caused by a full MSHR merge list.
    pub stall_merge_full: u64,
    /// Stalls caused by a full MSHR (no free entry).
    pub stall_mshr_full: u64,
    /// Stalls caused by a full miss queue.
    pub stall_miss_queue: u64,
    /// Stalls caused by every way in the set being reserved.
    pub stall_all_reserved: u64,
    /// Sum of load completion latencies (cycles from L1D acceptance to
    /// response readiness).
    pub load_latency_sum: u64,
    /// Loads contributing to `load_latency_sum`.
    pub load_count: u64,
}

impl CacheStats {
    /// Mean load latency in core cycles (acceptance to response).
    pub fn avg_load_latency(&self) -> f64 {
        if self.load_count == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.load_count as f64
        }
    }

    /// Misses of any flavour (allocated, merged, bypassed loads).
    pub fn misses(&self) -> u64 {
        self.misses_allocated + self.mshr_merges + self.bypassed_loads
    }

    /// "L1D traffic" in the paper's Figure 11a sense: accesses actually
    /// serviced by the cache (hits + misses handled through it),
    /// excluding bypassed accesses.
    pub fn cache_traffic(&self) -> u64 {
        self.accesses - self.bypassed_loads - self.bypassed_stores
    }

    /// Hit rate over non-bypassed accesses (Figure 12a's definition:
    /// bypassed accesses don't count toward the rate).
    pub fn hit_rate(&self) -> f64 {
        let den = self.cache_traffic();
        if den == 0 {
            0.0
        } else {
            self.hits as f64 / den as f64
        }
    }

    /// Miss rate over reuse accesses only (compulsory misses excluded),
    /// as plotted in Figure 4. Every non-hit access is a miss of some
    /// flavour, and every compulsory access is a non-hit, so the reuse
    /// miss rate is `(accesses − hits − compulsory) / (accesses − compulsory)`.
    pub fn reuse_miss_rate(&self) -> f64 {
        let reuse_accesses = self.accesses.saturating_sub(self.compulsory_misses);
        let reuse_misses =
            self.accesses.saturating_sub(self.hits).saturating_sub(self.compulsory_misses);
        if reuse_accesses == 0 {
            return 0.0;
        }
        reuse_misses as f64 / reuse_accesses as f64
    }

    /// Merge counters from another cache (aggregating SMs).
    pub fn merge(&mut self, o: &CacheStats) {
        self.accesses += o.accesses;
        self.hits += o.hits;
        self.misses_allocated += o.misses_allocated;
        self.mshr_merges += o.mshr_merges;
        self.bypassed_loads += o.bypassed_loads;
        self.bypass_fetches += o.bypass_fetches;
        self.bypassed_stores += o.bypassed_stores;
        self.evictions += o.evictions;
        self.dirty_evictions += o.dirty_evictions;
        self.compulsory_misses += o.compulsory_misses;
        self.stall_cycles += o.stall_cycles;
        self.rejected_submits += o.rejected_submits;
        self.stall_merge_full += o.stall_merge_full;
        self.stall_mshr_full += o.stall_mshr_full;
        self.stall_miss_queue += o.stall_miss_queue;
        self.stall_all_reserved += o.stall_all_reserved;
        self.load_latency_sum += o.load_latency_sum;
        self.load_count += o.load_count;
    }
}

/// Interconnect counters (Figure 13's metric).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcntStats {
    /// Flits injected SM → partition.
    pub fwd_flits: u64,
    /// Flits injected partition → SM.
    pub ret_flits: u64,
    /// Packets that could not be accepted because the destination queue
    /// was full (backpressure events).
    pub rejects: u64,
}

impl IcntStats {
    /// Total flits both directions — the Figure 13 quantity.
    pub fn total_flits(&self) -> u64 {
        self.fwd_flits + self.ret_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_excludes_bypasses() {
        let s = CacheStats {
            accesses: 100,
            hits: 40,
            bypassed_loads: 25,
            bypassed_stores: 5,
            ..Default::default()
        };
        assert_eq!(s.cache_traffic(), 70);
        assert!((s.hit_rate() - 40.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_of_idle_cache_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().reuse_miss_rate(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CacheStats { accesses: 1, hits: 1, ..Default::default() };
        let b = CacheStats { accesses: 2, evictions: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.evictions, 3);
    }

    #[test]
    fn icnt_totals() {
        let s = IcntStats { fwd_flits: 10, ret_flits: 5, rejects: 0 };
        assert_eq!(s.total_flits(), 15);
    }
}
