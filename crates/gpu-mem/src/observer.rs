//! Hook for observing the L1D access stream (used by `rd-tools` to
//! compute reuse-distance distributions from exactly the stream the
//! policies see).

/// Receives one event per *new* L1D access (retries of stalled accesses
//  are not replayed).
pub trait AccessObserver: Send {
    /// `set`/`line_addr` locate the access in the cache, `pc` is the
    /// static memory instruction, `is_write` distinguishes stores.
    fn on_access(&mut self, set: usize, line_addr: u64, pc: u32, is_write: bool);
}

/// An observer that drops everything (the default).
pub struct NullObserver;

impl AccessObserver for NullObserver {
    fn on_access(&mut self, _set: usize, _line_addr: u64, _pc: u32, _is_write: bool) {}
}

/// An observer that simply counts events — handy in tests.
#[derive(Default)]
pub struct CountingObserver {
    /// Number of events received.
    pub count: u64,
}

impl AccessObserver for CountingObserver {
    fn on_access(&mut self, _set: usize, _line_addr: u64, _pc: u32, _is_write: bool) {
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_observer_counts() {
        let mut o = CountingObserver::default();
        o.on_access(0, 1, 2, false);
        o.on_access(1, 2, 3, true);
        assert_eq!(o.count, 2);
    }
}
