//! Banked GDDR5-style DRAM timing for one memory partition.
//!
//! Table 1: each of the 12 partitions owns a 32-bit-wide GDDR5 channel
//! with 6 banks at 924 MHz command clock. GDDR5 is quad-pumped, so a
//! 128-byte line transfers in 8 command-clock cycles (16 bytes per
//! cycle). The model keeps per-bank row-buffer state and a shared data
//! bus:
//!
//! * row-buffer hit → `tCL` before data;
//! * row-buffer miss → `tRP + tRCD + tCL` (precharge, activate, CAS);
//! * data occupies the bus for `burst` cycles; the bus serializes
//!   transfers across banks.
//!
//! Requests are scheduled FCFS per bank with round-robin arbitration for
//! the bus — deliberately simpler than FR-FCFS, but it preserves what
//! the evaluation needs: bank-level parallelism, row locality, and a
//! hard bandwidth ceiling.

use crate::fault::{FaultInjector, FaultKind, FaultSite};
use crate::packet::Packet;
use std::collections::VecDeque;

/// DRAM timing/geometry parameters (command-clock cycles).
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Banks per partition (Table 1: 6).
    pub num_banks: usize,
    /// Row precharge.
    pub t_rp: u64,
    /// Row activate (RAS-to-CAS).
    pub t_rcd: u64,
    /// CAS latency.
    pub t_cl: u64,
    /// Data-bus cycles per 128-byte transfer (quad-pumped 32-bit bus →
    /// 16 B/cycle → 8 cycles).
    pub burst: u64,
    /// Bytes per DRAM row (row-buffer reach per bank).
    pub row_bytes: u64,
    /// Per-bank request queue depth.
    pub queue_depth: usize,
}

impl DramConfig {
    /// GDDR5 timings in the Tesla M2090 ballpark.
    pub fn gddr5() -> Self {
        DramConfig {
            num_banks: 6,
            t_rp: 12,
            t_rcd: 12,
            t_cl: 12,
            burst: 8,
            row_bytes: 2048,
            queue_depth: 16,
        }
    }
}

/// One queued DRAM operation. Reads carry the packet to answer; writes
/// (L2 writebacks) complete silently.
#[derive(Clone, Copy, Debug)]
pub struct DramCmd {
    /// Line-aligned byte address.
    pub addr: u64,
    /// Write (no reply needed).
    pub is_write: bool,
    /// For reads: the L2-level packet awaiting this data.
    pub pkt: Option<Packet>,
}

struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
    queue: VecDeque<DramCmd>,
}

/// DRAM counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read bursts completed.
    pub reads: u64,
    /// Write bursts completed.
    pub writes: u64,
    /// Accesses that found their row open.
    pub row_hits: u64,
    /// Accesses that needed precharge + activate.
    pub row_misses: u64,
}

/// One partition's DRAM channel. Advanced by [`Dram::tick`] at the
/// memory command clock (924 MHz in Table 1).
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_busy_until: u64,
    now: u64,
    rr_next_bank: usize,
    /// Commands sitting in bank queues (all banks), maintained
    /// incrementally so [`Dram::idle`] is O(1).
    queued: usize,
    /// Earliest command-clock cycle at which any bank with queued work
    /// could start its next burst (`u64::MAX` when no bank has work).
    /// Lets [`Dram::tick`] skip the round-robin scan while every queued
    /// bank is still busy — a pure fast path, since no command could
    /// start in that window anyway.
    earliest_start: u64,
    completed: VecDeque<(u64, DramCmd)>,
    /// Optional deterministic corruption of read completions.
    fault: Option<FaultInjector>,
    stats: DramStats,
}

impl Dram {
    /// Build an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            banks: (0..cfg.num_banks)
                .map(|_| Bank { open_row: None, busy_until: 0, queue: VecDeque::new() })
                .collect(),
            bus_busy_until: 0,
            now: 0,
            rr_next_bank: 0,
            queued: 0,
            earliest_start: u64::MAX,
            completed: VecDeque::new(),
            fault: None,
            stats: DramStats::default(),
            cfg,
        }
    }

    /// Attach a fault injector corrupting read completions
    /// ([`FaultSite::Dram`]).
    pub fn set_fault_injector(&mut self, inj: FaultInjector) {
        self.fault = Some(inj);
    }

    /// Faults injected so far (0 when no injector is attached).
    pub fn faults_injected(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.injected())
    }

    #[inline]
    fn bank_of(&self, addr: u64) -> usize {
        // Consecutive rows map to different banks so streams exploit
        // bank-level parallelism.
        ((addr / self.cfg.row_bytes) % self.cfg.num_banks as u64) as usize
    }

    #[inline]
    fn row_of(&self, addr: u64) -> u64 {
        addr / (self.cfg.row_bytes * self.cfg.num_banks as u64)
    }

    /// Can another command be queued for `addr`'s bank?
    pub fn can_accept(&self, addr: u64) -> bool {
        self.can_accept_n(addr, 1)
    }

    /// Can `n` more commands be queued for `addr`'s bank? Callers that
    /// must enqueue a fetch *and* a victim writeback atomically check
    /// with the combined count when both map to one bank.
    pub fn can_accept_n(&self, addr: u64, n: usize) -> bool {
        self.banks[self.bank_of(addr)].queue.len() + n <= self.cfg.queue_depth
    }

    /// Do two addresses share a bank queue?
    pub fn same_bank(&self, a: u64, b: u64) -> bool {
        self.bank_of(a) == self.bank_of(b)
    }

    /// Queue a command. Caller must have checked [`Dram::can_accept`].
    pub fn enqueue(&mut self, cmd: DramCmd) {
        let b = self.bank_of(cmd.addr);
        assert!(self.banks[b].queue.len() < self.cfg.queue_depth, "DRAM bank queue overflow");
        self.banks[b].queue.push_back(cmd);
        self.queued += 1;
        self.earliest_start = self.earliest_start.min(self.banks[b].busy_until);
    }

    /// Advance one command-clock cycle: start at most one new burst (the
    /// bus admits one transfer at a time) and retire finished ones.
    pub fn tick(&mut self) {
        self.now += 1;
        if self.earliest_start > self.now {
            // No bank with queued work can start yet: the scan below
            // would find nothing, so skip it (round-robin state only
            // changes on a successful start).
            return;
        }
        let n = self.banks.len();
        for i in 0..n {
            let b = (self.rr_next_bank + i) % n;
            if self.try_start(b) {
                self.rr_next_bank = (b + 1) % n;
                break;
            }
        }
        self.earliest_start = self
            .banks
            .iter()
            .filter(|b| !b.queue.is_empty())
            .map(|b| b.busy_until)
            .min()
            .unwrap_or(u64::MAX);
    }

    fn try_start(&mut self, b: usize) -> bool {
        let Some(&cmd) = self.banks[b].queue.front() else {
            return false;
        };
        if self.banks[b].busy_until > self.now {
            return false;
        }
        let row = self.row_of(cmd.addr);
        let access_lat = if self.banks[b].open_row == Some(row) {
            self.stats.row_hits += 1;
            self.cfg.t_cl
        } else {
            self.stats.row_misses += 1;
            self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl
        };
        let data_start = (self.now + access_lat).max(self.bus_busy_until);
        let done = data_start + self.cfg.burst;
        self.bus_busy_until = done;
        let bank = &mut self.banks[b];
        bank.busy_until = done;
        bank.open_row = Some(row);
        bank.queue.pop_front();
        self.queued -= 1;
        if cmd.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        // Fault injection acts on read completions only: writes finish
        // silently, so corrupting them would be invisible by design.
        let injected = if cmd.is_write {
            None
        } else {
            self.fault.as_mut().and_then(|f| f.should_inject(FaultSite::Dram))
        };
        match injected {
            Some(FaultKind::Drop) => {} // the burst never reports completion
            Some(FaultKind::Duplicate) => {
                self.completed.push_back((done, cmd));
                self.completed.push_back((done, cmd));
            }
            Some(FaultKind::Delay) => {
                let delay = self.fault.as_ref().map_or(0, |f| f.delay_cycles());
                self.completed.push_back((done + delay, cmd));
            }
            Some(FaultKind::Misroute) => {
                // Address corruption: the completion names a different
                // line than was fetched.
                self.completed.push_back((done, DramCmd { addr: cmd.addr ^ (1 << 20), ..cmd }));
            }
            None => self.completed.push_back((done, cmd)),
        }
        true
    }

    /// Pop the next finished command (data on the bus by now), if any.
    /// Writes are popped too so the caller can drop them.
    pub fn pop_completed(&mut self) -> Option<DramCmd> {
        // Completions were pushed in bus-grant order, which is also
        // data-completion order (the bus serializes), so FIFO works.
        match self.completed.front() {
            Some(&(ready, _)) if ready <= self.now => self.completed.pop_front().map(|(_, c)| c),
            _ => None,
        }
    }

    /// Outstanding work (queued + in flight)? O(1): the queue census is
    /// maintained incrementally, so idle-skip can poll this every cycle.
    pub fn idle(&self) -> bool {
        self.completed.is_empty() && self.queued == 0
    }

    /// Earliest command-clock cycle at which this channel could do
    /// anything observable: retire the oldest completed burst (the
    /// completion queue is FIFO in data order, so its head gates
    /// [`Dram::pop_completed`]) or start a queued command (the
    /// `earliest_start` watermark). `None` when the channel is idle.
    ///
    /// Conservative by construction: every [`Dram::tick`] strictly
    /// before the returned cycle reduces to `now += 1` — no bank can
    /// start (the watermark says so) and no completion can surface
    /// (the head is not ready) — which is what licenses
    /// [`Dram::advance_quiet`] over the gap.
    pub fn next_activity(&self) -> Option<u64> {
        let mut t = u64::MAX;
        if let Some(&(ready, _)) = self.completed.front() {
            t = t.min(ready.max(self.now + 1));
        }
        if self.queued > 0 {
            t = t.min(self.earliest_start.max(self.now + 1));
        }
        (t != u64::MAX).then_some(t)
    }

    /// Fast-forward a **quiet** channel by `ticks` command-clock cycles.
    ///
    /// Generalizes the idle-skip of PR 2: whenever every skipped tick
    /// falls strictly before [`Dram::next_activity`], each [`Dram::tick`]
    /// reduces to `now += 1` (no bank can start, no completion ripens),
    /// so the stretch can be accounted arithmetically. Bank and bus
    /// `busy_until` marks as well as open rows are left untouched —
    /// exactly what repeated quiet ticks would have done — which keeps
    /// leapt runs byte-identical to fully ticked ones.
    pub fn advance_quiet(&mut self, ticks: u64) {
        debug_assert!(
            self.next_activity().is_none_or(|a| a > self.now + ticks),
            "advance_quiet across a scheduled DRAM event (now {}, ticks {ticks})",
            self.now
        );
        self.now += ticks;
    }

    /// Discard all queued and completed commands (sampling-mode
    /// fast-forward). The partition resolves every outstanding line
    /// functionally during the drain, so commands still sitting here
    /// would otherwise surface as duplicate fills in the next detailed
    /// window. Timing residue (`busy_until`, open rows, `now`) is left
    /// in place: it only ages the first post-gap accesses, exactly like
    /// a real warm-up.
    pub fn discard_in_flight(&mut self) {
        for b in &mut self.banks {
            b.queue.clear();
        }
        self.queued = 0;
        self.earliest_start = u64::MAX;
        self.completed.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Current command-clock time (tests).
    pub fn now(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(addr: u64) -> DramCmd {
        DramCmd { addr, is_write: false, pkt: None }
    }

    fn drain_one(d: &mut Dram, max_ticks: u64) -> u64 {
        for _ in 0..max_ticks {
            d.tick();
            if d.pop_completed().is_some() {
                return d.now();
            }
        }
        panic!("command did not complete in {max_ticks} ticks");
    }

    #[test]
    fn closed_row_access_takes_full_latency() {
        let mut d = Dram::new(DramConfig::gddr5());
        d.enqueue(read(0));
        // tRP+tRCD+tCL = 36, +burst 8 = 44, started at tick 1.
        let done = drain_one(&mut d, 100);
        assert_eq!(done, 1 + 36 + 8);
    }

    #[test]
    fn open_row_access_is_faster() {
        let mut d = Dram::new(DramConfig::gddr5());
        d.enqueue(read(0));
        let first = drain_one(&mut d, 100);
        d.enqueue(read(128)); // same row
        let second = drain_one(&mut d, 100);
        assert!(second - first < 36 + 8 + 2, "row hit must be much faster");
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn different_banks_overlap_but_share_the_bus() {
        let mut d = Dram::new(DramConfig::gddr5());
        // Two reads to different banks issued together: activations
        // overlap, bursts serialize on the bus -> both done well before
        // 2× the serial time.
        d.enqueue(read(0));
        d.enqueue(read(2048)); // next bank
        let mut done = Vec::new();
        for _ in 0..200 {
            d.tick();
            while d.pop_completed().is_some() {
                done.push(d.now());
            }
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done[1] <= 1 + 36 + 8 + 8 + 1, "second burst should only add bus time, got {}", done[1]);
    }

    #[test]
    fn same_bank_requests_serialize() {
        let mut d = Dram::new(DramConfig::gddr5());
        d.enqueue(read(0));
        d.enqueue(read(0)); // same row, same bank
        let mut done = Vec::new();
        for _ in 0..300 {
            d.tick();
            while d.pop_completed().is_some() {
                done.push(d.now());
            }
            if done.len() == 2 {
                break;
            }
        }
        assert!(done[1] > done[0]);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn writes_complete_silently_and_count() {
        let mut d = Dram::new(DramConfig::gddr5());
        d.enqueue(DramCmd { addr: 0, is_write: true, pkt: None });
        let _ = drain_one(&mut d, 100);
        assert_eq!(d.stats().writes, 1);
        assert!(d.idle());
    }

    #[test]
    fn backpressure_via_can_accept() {
        let cfg = DramConfig { queue_depth: 2, ..DramConfig::gddr5() };
        let mut d = Dram::new(cfg);
        assert!(d.can_accept(0));
        d.enqueue(read(0));
        d.enqueue(read(0));
        assert!(!d.can_accept(0));
        assert!(d.can_accept(2048), "other banks unaffected");
    }

    #[test]
    fn dropped_read_never_completes() {
        use crate::fault::FaultConfig;
        let mut d = Dram::new(DramConfig::gddr5());
        d.set_fault_injector(FaultInjector::new(FaultConfig::single(
            FaultKind::Drop,
            FaultSite::Dram,
            5,
        )));
        d.enqueue(read(0));
        for _ in 0..500 {
            d.tick();
            assert!(d.pop_completed().is_none(), "the dropped burst must never surface");
        }
        assert_eq!(d.stats().reads, 1, "the burst was issued and counted");
        assert_eq!(d.faults_injected(), 1);
    }

    #[test]
    fn next_activity_predicts_first_observable_tick() {
        let mut d = Dram::new(DramConfig::gddr5());
        assert_eq!(d.next_activity(), None);
        d.enqueue(read(0));
        let start = d.next_activity().unwrap();
        d.advance_quiet(start - d.now() - 1);
        d.tick();
        assert_eq!(d.stats().reads, 1, "command starts at the predicted cycle");
        let done = d.next_activity().unwrap();
        d.advance_quiet(done - d.now() - 1);
        assert!(d.pop_completed().is_none(), "completion must not surface early");
        d.tick();
        assert!(d.pop_completed().is_some(), "completion surfaces at the predicted cycle");
        assert_eq!(d.next_activity(), None);
    }

    #[test]
    fn next_activity_covers_delayed_completions() {
        use crate::fault::FaultConfig;
        let mut d = Dram::new(DramConfig::gddr5());
        d.set_fault_injector(FaultInjector::new(FaultConfig::single(
            FaultKind::Delay,
            FaultSite::Dram,
            5,
        )));
        d.enqueue(read(0));
        // Tick until the burst starts, then the completion (including the
        // injected delay) must be exactly where next_activity says.
        while d.stats().reads == 0 {
            d.tick();
        }
        let done = d.next_activity().unwrap();
        d.advance_quiet(done - d.now() - 1);
        assert!(d.pop_completed().is_none());
        d.tick();
        assert!(d.pop_completed().is_some());
    }

    #[test]
    fn bandwidth_ceiling_respected() {
        // Saturate with row hits across banks: steady state must not
        // exceed one 128B burst per `burst` cycles.
        let mut d = Dram::new(DramConfig::gddr5());
        let mut completed = 0u64;
        let mut issued = 0u64;
        for t in 0..10_000u64 {
            if t % 4 == 0 && d.can_accept(issued * 128) {
                d.enqueue(read((issued * 128) % (2048 * 6)));
                issued += 1;
            }
            d.tick();
            while d.pop_completed().is_some() {
                completed += 1;
            }
        }
        let max_possible = 10_000 / DramConfig::gddr5().burst;
        assert!(completed <= max_possible);
        assert!(completed > max_possible / 2, "should approach the ceiling, got {completed}");
    }
}
