//! Requests, responses and interconnect packets.

/// One 128-byte-sector memory transaction produced by the LD/ST unit's
/// coalescer. This is the unit of work the L1D sees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemReq {
    /// Globally unique transaction id (assigned by the issuing SM).
    pub id: u64,
    /// Byte address of the 128-byte sector.
    pub addr: u64,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// PC of the static memory instruction (feeds DLP's insn-ID hash).
    pub pc: u32,
    /// Issuing SM (for response routing through the interconnect).
    pub sm: u16,
    /// Issuing warp, encoded by the core; opaque to the hierarchy.
    pub warp: u32,
    /// Destination register the load writes, opaque to the hierarchy.
    pub dst_reg: u8,
    /// Cycle the transaction first entered the L1D (set by the cache;
    /// used for latency accounting).
    pub born: u64,
}

/// Completion notice delivered back to the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemResp {
    /// The original transaction.
    pub req: MemReq,
}

/// What a packet traveling the interconnect carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// Line fetch on behalf of an L1D miss that reserved a line.
    ReadReq,
    /// Line fetch for a bypassed access: no line reserved, the reply is
    /// routed straight to the requesting warp.
    BypassReadReq,
    /// A bypassed (write-through) store: full transaction sent to L2.
    WriteThrough,
    /// A dirty line evicted from the L1D, written back to L2.
    Writeback,
    /// L2 → SM data reply for `ReadReq` (fills a reserved line).
    ReadReply,
    /// L2 → SM data reply for `BypassReadReq` (routed straight to the
    /// requesting warp; no line fill).
    BypassReadReply,
}

impl PacketKind {
    /// Interconnect size in 32-byte flits: control-only packets are one
    /// flit, packets carrying a 128-byte line add four data flits.
    pub fn flits(self) -> u64 {
        match self {
            PacketKind::ReadReq | PacketKind::BypassReadReq => 1,
            PacketKind::WriteThrough
            | PacketKind::Writeback
            | PacketKind::ReadReply
            | PacketKind::BypassReadReply => 5,
        }
    }

    /// Does this packet expect a reply from the memory partition?
    pub fn expects_reply(self) -> bool {
        matches!(self, PacketKind::ReadReq | PacketKind::BypassReadReq)
    }
}

/// A packet in flight between an SM's L1D and a memory partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Payload type.
    pub kind: PacketKind,
    /// 128-byte-aligned byte address the packet concerns.
    pub addr: u64,
    /// The originating transaction. For `Writeback` there is no live
    /// requester; the field holds the evicting SM for routing/stats.
    pub req: MemReq,
}

impl Packet {
    /// Size of this packet in flits.
    pub fn flits(&self) -> u64 {
        self.kind.flits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packets_are_one_flit_data_packets_five() {
        assert_eq!(PacketKind::ReadReq.flits(), 1);
        assert_eq!(PacketKind::BypassReadReq.flits(), 1);
        assert_eq!(PacketKind::WriteThrough.flits(), 5);
        assert_eq!(PacketKind::Writeback.flits(), 5);
        assert_eq!(PacketKind::ReadReply.flits(), 5);
        assert_eq!(PacketKind::BypassReadReply.flits(), 5);
    }

    #[test]
    fn only_reads_expect_replies() {
        assert!(PacketKind::ReadReq.expects_reply());
        assert!(PacketKind::BypassReadReq.expects_reply());
        assert!(!PacketKind::WriteThrough.expects_reply());
        assert!(!PacketKind::Writeback.expects_reply());
        assert!(!PacketKind::ReadReply.expects_reply());
    }
}
