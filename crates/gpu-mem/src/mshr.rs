//! Miss Status Holding Registers.
//!
//! One entry per in-flight missed line; requests to a line that is
//! already being fetched merge into the existing entry (up to a merge
//! limit). A full MSHR is one of the structural stall conditions of §2.

use crate::error::MemError;
use crate::packet::MemReq;
use std::collections::HashMap;

/// Outcome of presenting a missed request to the MSHR.
#[derive(Debug, PartialEq, Eq)]
pub enum MshrLookup {
    /// Merged into an existing entry for the same line.
    Merged,
    /// The line has an entry but its merge list is full — stall.
    MergeFull,
    /// No entry for this line; one can be allocated.
    Absent,
    /// No entry for this line and the MSHR is full — stall (or bypass).
    Full,
}

/// A filled entry popped on fill completion.
#[derive(Debug)]
pub struct MshrEntry {
    /// The `(set, way)` reserved for the incoming line, or `None` for a
    /// bypassed fetch: the data is forwarded to the requesters without
    /// filling the cache (the paper's bypass path still tracks the
    /// outstanding request so redundant misses merge instead of
    /// flooding the miss queue).
    pub target: Option<(usize, usize)>,
    /// All requests (original + merged) waiting on the line.
    pub reqs: Vec<MemReq>,
}

/// The MSHR file.
pub struct Mshr {
    entries: HashMap<u64, MshrEntry>,
    max_entries: usize,
    max_merge: usize,
    peak_occupancy: usize,
}

impl Mshr {
    /// Create with capacity for `max_entries` distinct lines and
    /// `max_merge` requests per line.
    pub fn new(max_entries: usize, max_merge: usize) -> Self {
        assert!(max_entries > 0 && max_merge > 0);
        Mshr { entries: HashMap::new(), max_entries, max_merge, peak_occupancy: 0 }
    }

    /// Current number of in-flight lines.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Highest occupancy seen (diagnostics).
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Is the line already being fetched?
    pub fn contains(&self, line_addr: u64) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// Try to merge `req` into an existing entry; report what's possible.
    pub fn probe(&self, line_addr: u64) -> MshrLookup {
        match self.entries.get(&line_addr) {
            Some(e) if e.reqs.len() >= self.max_merge => MshrLookup::MergeFull,
            Some(_) => MshrLookup::Merged,
            None if self.entries.len() >= self.max_entries => MshrLookup::Full,
            None => MshrLookup::Absent,
        }
    }

    /// Merge `req` into the existing entry for `line_addr`.
    /// Caller must have seen `MshrLookup::Merged` from [`Mshr::probe`];
    /// merging without a matching entry (or past the merge limit) is a
    /// structural violation reported as a typed error.
    pub fn merge(&mut self, line_addr: u64, req: MemReq) -> Result<(), MemError> {
        let Some(e) = self.entries.get_mut(&line_addr) else {
            return Err(MemError::MshrBadMerge { line: line_addr });
        };
        if e.reqs.len() >= self.max_merge {
            return Err(MemError::MshrBadMerge { line: line_addr });
        }
        e.reqs.push(req);
        Ok(())
    }

    /// Allocate a new entry for `line_addr`, fetching into `target`
    /// (`None` = bypassed fetch, data forwarded without a fill).
    /// Caller must have seen `MshrLookup::Absent`.
    pub fn allocate(&mut self, line_addr: u64, target: Option<(usize, usize)>, req: MemReq) {
        assert!(self.entries.len() < self.max_entries, "MSHR overflow");
        // dlp-lint: allow(P301) -- one Vec per MSHR entry (per miss, not per cycle); the merge list's ownership moves out at complete(), so a pool cannot reclaim it
        let prev = self.entries.insert(line_addr, MshrEntry { target, reqs: vec![req] });
        assert!(prev.is_none(), "duplicate MSHR entry for line {line_addr:#x}");
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
    }

    /// Is the entry for `line_addr` a bypassed (no-fill) fetch?
    /// Meaningful only when the entry exists.
    pub fn is_bypass(&self, line_addr: u64) -> bool {
        self.entries.get(&line_addr).is_some_and(|e| e.target.is_none())
    }

    /// The fill for `line_addr` arrived: pop and return its entry.
    pub fn complete(&mut self, line_addr: u64) -> Option<MshrEntry> {
        self.entries.remove(&line_addr)
    }

    /// Total requests (original + merged) waiting across all entries.
    pub fn outstanding_requests(&self) -> usize {
        // dlp-lint: allow(D004) -- integer sum over values is order-independent
        self.entries.values().map(|e| e.reqs.len()).sum()
    }

    /// Structural self-check for the runtime invariant auditor:
    /// occupancy within capacity, every entry non-empty and within its
    /// merge limit. Entries are visited in sorted line order so the
    /// *first* violation reported is deterministic across runs.
    pub fn audit(&self) -> Result<(), String> {
        if self.entries.len() > self.max_entries {
            return Err(format!(
                "MSHR holds {} entries but capacity is {}",
                self.entries.len(),
                self.max_entries
            ));
        }
        // dlp-lint: allow(D004) -- keys are collected and sorted before use
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let e = &self.entries[&line];
            if e.reqs.is_empty() {
                return Err(format!("MSHR entry for line {line:#x} has no waiting requests"));
            }
            if e.reqs.len() > self.max_merge {
                return Err(format!(
                    "MSHR entry for line {line:#x} holds {} requests, merge limit is {}",
                    e.reqs.len(),
                    self.max_merge
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> MemReq {
        MemReq { id, addr: id * 128, is_write: false, pc: 0, sm: 0, warp: 0, dst_reg: 0, born: 0 }
    }

    #[test]
    fn allocate_then_merge_then_complete() {
        let mut m = Mshr::new(4, 4);
        assert_eq!(m.probe(10), MshrLookup::Absent);
        m.allocate(10, Some((2, 1)), req(0));
        assert_eq!(m.probe(10), MshrLookup::Merged);
        m.merge(10, req(1)).unwrap();
        m.merge(10, req(2)).unwrap();
        let e = m.complete(10).unwrap();
        assert_eq!(e.target, Some((2, 1)));
        assert_eq!(e.reqs.len(), 3);
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.complete(10).map(|e| e.reqs.len()), None);
    }

    #[test]
    fn merge_limit_reported() {
        let mut m = Mshr::new(4, 2);
        m.allocate(10, Some((0, 0)), req(0));
        m.merge(10, req(1)).unwrap();
        assert_eq!(m.probe(10), MshrLookup::MergeFull);
    }

    #[test]
    fn merge_without_entry_or_past_limit_is_typed_error() {
        let mut m = Mshr::new(4, 1);
        assert_eq!(m.merge(9, req(0)), Err(MemError::MshrBadMerge { line: 9 }));
        m.allocate(9, Some((0, 0)), req(0));
        assert_eq!(m.merge(9, req(1)), Err(MemError::MshrBadMerge { line: 9 }));
        // The failed merges did not disturb the entry.
        assert_eq!(m.complete(9).map(|e| e.reqs.len()), Some(1));
    }

    #[test]
    fn full_mshr_reported() {
        let mut m = Mshr::new(2, 4);
        m.allocate(1, Some((0, 0)), req(0));
        m.allocate(2, Some((0, 1)), req(1));
        assert_eq!(m.probe(3), MshrLookup::Full);
        // ...but merging into existing entries is still possible.
        assert_eq!(m.probe(1), MshrLookup::Merged);
        m.complete(1);
        assert_eq!(m.probe(3), MshrLookup::Absent);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut m = Mshr::new(8, 1);
        for line in 0..5u64 {
            m.allocate(line, Some((0, 0)), req(line));
        }
        for line in 0..5u64 {
            m.complete(line);
        }
        assert_eq!(m.peak_occupancy(), 5);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn audit_accepts_well_formed_state() {
        let mut m = Mshr::new(4, 2);
        m.allocate(1, Some((0, 0)), req(0));
        m.merge(1, req(1)).unwrap();
        m.allocate(2, None, req(2));
        assert_eq!(m.audit(), Ok(()));
        assert_eq!(m.outstanding_requests(), 3);
    }

    #[test]
    #[should_panic(expected = "MSHR overflow")]
    fn allocate_beyond_capacity_panics() {
        let mut m = Mshr::new(1, 1);
        m.allocate(1, Some((0, 0)), req(0));
        m.allocate(2, Some((0, 1)), req(1));
    }
}
