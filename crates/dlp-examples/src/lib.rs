//! Host crate for the repository-root `examples/` binaries.
//!
//! The examples themselves live in `examples/*.rs` at the workspace root
//! (see the `[[example]]` entries in this crate's manifest):
//!
//! * `quickstart` — simulate one benchmark under the baseline and DLP
//!   and compare IPC;
//! * `custom_policy` — implement a new `ReplacementPolicy` (random
//!   replacement) and drive it through an L1D;
//! * `reuse_analysis` — regenerate Figure 3/7-style reuse-distance
//!   distributions for any benchmark;
//! * `protection_tuning` — sweep DLP's protection parameters on one
//!   application.
//!
//! Run one with `cargo run --release -p dlp-examples --example quickstart`.
