//! Seeded fault injection for the store's write path.
//!
//! Mirrors `gpu-mem`'s packet-level [`gpu_mem::FaultConfig`] design:
//! a campaign names a corruption kind, a seed, a rate, and a cap, and
//! the decisions come from the same [`SplitMix64`] stream — so a given
//! campaign corrupts exactly the same entries on every run, which is
//! what makes the recovery paths (detect → quarantine → recompute)
//! testable in CI. The env hook `DLP_STORE_FAULT` (parsed here, read
//! in `dlp-bench` mirroring `DLP_FORCE_FAIL`) uses the string form
//! `<kind>[:<seed>[:<rate_ppm>[:<max_faults>]]]`.

use gpu_mem::SplitMix64;

/// How an entry being written is corrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFaultKind {
    /// The file is cut mid-payload, as if the writer died half way
    /// through a non-atomic write.
    TornWrite,
    /// Only the header survives; the payload is gone entirely.
    TruncatedEntry,
    /// One payload bit flips after the checksum was computed —
    /// bit-rot, a bad sector, a buggy codec.
    ChecksumFlip,
}

impl StoreFaultKind {
    /// The env-hook spelling of this kind.
    pub fn label(self) -> &'static str {
        match self {
            StoreFaultKind::TornWrite => "torn-write",
            StoreFaultKind::TruncatedEntry => "truncate",
            StoreFaultKind::ChecksumFlip => "checksum-flip",
        }
    }
}

/// Full description of a store-fault campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreFaultConfig {
    /// The corruption applied.
    pub kind: StoreFaultKind,
    /// Decision-stream seed; identical seeds corrupt identical puts.
    pub seed: u64,
    /// Injection probability in parts per million of puts
    /// (1_000_000 = every put).
    pub rate_ppm: u32,
    /// Cap on total injections (0 = unlimited).
    pub max_faults: u64,
}

impl StoreFaultConfig {
    /// Corrupt exactly the first put — the deterministic single-fault
    /// setup the recovery tests use.
    pub fn single(kind: StoreFaultKind) -> Self {
        StoreFaultConfig { kind, seed: 1, rate_ppm: 1_000_000, max_faults: 1 }
    }

    /// Parse the `DLP_STORE_FAULT` string form:
    /// `<kind>[:<seed>[:<rate_ppm>[:<max_faults>]]]` with kind one of
    /// `torn-write`, `truncate`, `checksum-flip`. Omitted fields
    /// default to the [`Self::single`] campaign (seed 1, every put,
    /// one fault).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let kind = match parts.next().unwrap_or("") {
            "torn-write" => StoreFaultKind::TornWrite,
            "truncate" => StoreFaultKind::TruncatedEntry,
            "checksum-flip" => StoreFaultKind::ChecksumFlip,
            other => {
                return Err(format!(
                    "unknown store-fault kind {other:?} (expected torn-write | truncate | checksum-flip)"
                ))
            }
        };
        let mut cfg = StoreFaultConfig::single(kind);
        let num = |name: &str, v: Option<&str>| -> Result<Option<u64>, String> {
            match v {
                None | Some("") => Ok(None),
                Some(s) => s
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| format!("bad {name} {s:?} in store-fault spec")),
            }
        };
        if let Some(seed) = num("seed", parts.next())? {
            cfg.seed = seed;
        }
        if let Some(rate) = num("rate_ppm", parts.next())? {
            cfg.rate_ppm = rate.min(1_000_000) as u32;
        }
        if let Some(max) = num("max_faults", parts.next())? {
            cfg.max_faults = max;
        }
        if parts.next().is_some() {
            return Err("too many `:`-separated fields in store-fault spec".to_string());
        }
        Ok(cfg)
    }
}

/// Stateful injector owned by a [`crate::Store`].
#[derive(Clone, Debug)]
pub struct StoreFaultInjector {
    cfg: StoreFaultConfig,
    stream: SplitMix64,
    injected: u64,
}

impl StoreFaultInjector {
    /// Build from a campaign description.
    pub fn new(cfg: StoreFaultConfig) -> Self {
        StoreFaultInjector { stream: SplitMix64::new(cfg.seed), injected: 0, cfg }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Maybe corrupt the full on-disk image (`header_len` bytes of
    /// header followed by the payload) of the entry about to be
    /// written. Returns the kind applied, if any. The checksum in the
    /// header was computed *before* this runs, so every corruption is
    /// detectable at read time.
    pub fn corrupt(&mut self, image: &mut Vec<u8>, header_len: usize) -> Option<StoreFaultKind> {
        if self.cfg.max_faults > 0 && self.injected >= self.cfg.max_faults {
            return None;
        }
        if self.stream.next_u64() % 1_000_000 >= self.cfg.rate_ppm as u64 {
            return None;
        }
        if image.len() <= header_len {
            return None; // nothing corruptible (empty payload)
        }
        self.injected += 1;
        match self.cfg.kind {
            StoreFaultKind::TornWrite => {
                let keep = header_len + (image.len() - header_len) / 2;
                image.truncate(keep);
            }
            StoreFaultKind::TruncatedEntry => image.truncate(header_len),
            StoreFaultKind::ChecksumFlip => {
                let span = (image.len() - header_len) as u64;
                let off = header_len + (self.stream.next_u64() % span) as usize;
                let bit = (self.stream.next_u64() % 8) as u8;
                image[off] ^= 1 << bit;
            }
        }
        Some(self.cfg.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_forms() {
        assert_eq!(
            StoreFaultConfig::parse("torn-write").unwrap(),
            StoreFaultConfig::single(StoreFaultKind::TornWrite)
        );
        let full = StoreFaultConfig::parse("checksum-flip:42:250000:7").unwrap();
        assert_eq!(full.kind, StoreFaultKind::ChecksumFlip);
        assert_eq!(full.seed, 42);
        assert_eq!(full.rate_ppm, 250_000);
        assert_eq!(full.max_faults, 7);
        assert_eq!(StoreFaultConfig::parse("truncate:9").unwrap().seed, 9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(StoreFaultConfig::parse("rm-rf").is_err());
        assert!(StoreFaultConfig::parse("truncate:xyz").is_err());
        assert!(StoreFaultConfig::parse("truncate:1:2:3:4").is_err());
        assert!(StoreFaultConfig::parse("").is_err());
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let cfg = StoreFaultConfig {
            rate_ppm: 500_000,
            max_faults: 0,
            ..StoreFaultConfig::single(StoreFaultKind::ChecksumFlip)
        };
        let run = || {
            let mut inj = StoreFaultInjector::new(cfg);
            (0..32)
                .map(|i| {
                    let mut img = vec![0u8; 64 + i];
                    inj.corrupt(&mut img, 40).map(|_| img)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kinds_corrupt_as_described() {
        let header = 40usize;
        let image = || (0u8..200).collect::<Vec<u8>>();

        let mut torn = StoreFaultInjector::new(StoreFaultConfig::single(StoreFaultKind::TornWrite));
        let mut img = image();
        assert_eq!(torn.corrupt(&mut img, header), Some(StoreFaultKind::TornWrite));
        assert!(img.len() > header && img.len() < 200);

        let mut trunc =
            StoreFaultInjector::new(StoreFaultConfig::single(StoreFaultKind::TruncatedEntry));
        let mut img = image();
        trunc.corrupt(&mut img, header).unwrap();
        assert_eq!(img.len(), header);

        let mut flip =
            StoreFaultInjector::new(StoreFaultConfig::single(StoreFaultKind::ChecksumFlip));
        let mut img = image();
        flip.corrupt(&mut img, header).unwrap();
        assert_eq!(img.len(), 200);
        let diff: Vec<usize> = image()
            .iter()
            .zip(&img)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff.len(), 1, "exactly one byte flipped");
        assert!(diff[0] >= header, "flip lands in the payload");

        // The cap holds: a single-fault campaign never fires twice.
        let mut img = image();
        assert_eq!(flip.corrupt(&mut img, header), None);
    }
}
