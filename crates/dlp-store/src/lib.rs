//! # dlp-store — crash-safe on-disk result store
//!
//! A content-addressed store for completed sweep results, keyed by
//! `(config digest, code digest)`. It is the persistence layer behind
//! the `dlp-bench` run cache and the `dlp-sweepd` daemon: a sweep that
//! dies — panic, OOM kill, `kill -9` — resumes serving every job it
//! had completed from disk, and a corrupted entry is *detected,
//! quarantined and recomputed*, never silently served.
//!
//! Durability model, in order of defense:
//!
//! 1. **Atomic entry writes.** Every entry lands via write-to-temp +
//!    fsync + rename ([`atomic`]), so the entries directory only ever
//!    contains complete files or stale temp files (cleaned at open).
//! 2. **Self-verifying entries.** Each entry file carries a magic,
//!    format version, its own key, the payload length, and an FNV-1a
//!    checksum of the payload. [`Store::get`] re-verifies all of it on
//!    every read.
//! 3. **Crash-recovery journal.** An append-only text journal records
//!    completed entries; replay at [`Store::open`] rebuilds the index,
//!    ignoring torn trailing lines. Entries present on disk but missing
//!    from the journal (the process died between rename and append) are
//!    adopted after full verification.
//! 4. **Quarantine, not trust.** Any verification failure moves the
//!    entry file into `quarantine/` and reports a miss, forcing the
//!    caller to recompute. Corruption is counted, never propagated.
//!
//! Fault injection ([`fault`]) corrupts the write path on purpose —
//! torn writes, truncated entries, checksum flips — from the same
//! seeded [`gpu_mem::SplitMix64`] decision stream the packet-level
//! injector uses, so every recovery path above is testable
//! deterministically (`DLP_STORE_FAULT`, wired in `dlp-bench`,
//! mirrors `DLP_FORCE_FAIL`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atomic;
pub mod fault;
pub mod store;

pub use fault::{StoreFaultConfig, StoreFaultInjector, StoreFaultKind};
pub use store::{Store, StoreCounters, StoreError, StoreKey};

/// FNV-1a 64-bit — the workspace's standard fingerprint (the golden
/// digest tests use the same constants), vendored here so the store
/// has no dependency beyond `gpu-mem`'s decision stream.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Offset basis for the empty string; avalanche on one byte.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"dlp"), fnv1a(b"dlp"));
    }
}
