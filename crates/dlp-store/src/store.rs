//! The store proper: index, entry format, journal replay, quarantine.

use crate::atomic;
use crate::fault::{StoreFaultConfig, StoreFaultInjector};
use crate::fnv1a;
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

/// Magic prefix of every entry file.
const MAGIC: [u8; 4] = *b"DLPS";
/// On-disk format version; bumped on any layout change.
const FORMAT_VERSION: u16 = 1;
/// Fixed header size: magic(4) + version(2) + reserved(2) + config(8)
/// + code(8) + payload_len(8) + payload_fnv(8).
pub const HEADER_LEN: usize = 40;

/// Content address of one result: what was asked (`config`) and what
/// code computed it (`code`). Both are caller-supplied digests; the
/// store never interprets them beyond equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey {
    /// Digest of the full experiment configuration (app + parameters).
    pub config: u64,
    /// Digest of the producing code generation (golden digest + codec
    /// version in `dlp-bench`); a fidelity change invalidates every
    /// cached result by moving this half of the key.
    pub code: u64,
}

impl StoreKey {
    fn file_name(&self) -> String {
        format!("{:016x}-{:016x}.bin", self.config, self.code)
    }

    fn from_file_name(name: &str) -> Option<Self> {
        let hex = name.strip_suffix(".bin")?;
        let (c, k) = hex.split_once('-')?;
        if c.len() != 16 || k.len() != 16 {
            return None;
        }
        Some(StoreKey {
            config: u64::from_str_radix(c, 16).ok()?,
            code: u64::from_str_radix(k, 16).ok()?,
        })
    }
}

/// A failed store operation, carrying enough context to render a
/// one-line diagnosis (`store put …/entries/ab…cd.bin: disk full`).
#[derive(Debug, Clone)]
pub struct StoreError {
    /// Operation that failed ("open", "get", "put", "journal").
    pub op: &'static str,
    /// File or directory involved.
    pub path: PathBuf,
    /// Underlying error rendering.
    pub detail: String,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store {} {}: {}", self.op, self.path.display(), self.detail)
    }
}

impl std::error::Error for StoreError {}

/// Observable health counters, for telemetry and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// `get` calls served with verified bytes.
    pub hits: u64,
    /// `get` calls with no (usable) entry.
    pub misses: u64,
    /// Entries written by `put`.
    pub puts: u64,
    /// `put` calls skipped because a verified entry already existed.
    pub put_skipped: u64,
    /// Entries that failed verification and were moved to quarantine.
    pub quarantined: u64,
    /// Entries found on disk without a journal line and adopted after
    /// verification (the writer died between rename and append).
    pub adopted: u64,
    /// Index entries recovered from the journal at open.
    pub replayed: u64,
    /// Torn or malformed journal lines discarded at open.
    pub torn_journal_lines: u64,
    /// Stale temp files removed at open.
    pub stale_temps_removed: u64,
    /// Corruptions injected by the active fault campaign.
    pub faults_injected: u64,
}

#[derive(Clone, Copy, Debug)]
struct EntryMeta {
    len: u64,
    fnv: u64,
}

/// A crash-safe content-addressed store rooted at one directory:
///
/// ```text
/// <root>/entries/<config>-<code>.bin   self-verifying entry files
/// <root>/journal.log                   append-only completion journal
/// <root>/quarantine/                   corrupt entries, kept for autopsy
/// ```
pub struct Store {
    entries_dir: PathBuf,
    quarantine_dir: PathBuf,
    journal: PathBuf,
    index: BTreeMap<StoreKey, EntryMeta>,
    counters: StoreCounters,
    fault: Option<StoreFaultInjector>,
}

impl Store {
    /// Open (creating if needed) the store at `root` and recover its
    /// index: stale temps are deleted, the journal is replayed (torn
    /// tail lines discarded), journaled entries whose files vanished
    /// are dropped, and unjournaled entry files are adopted after full
    /// verification.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        Self::open_with_faults(root, None)
    }

    /// [`Store::open`] with a seeded fault-injection campaign active on
    /// the write path (testing the recovery machinery).
    pub fn open_with_faults(
        root: &Path,
        fault: Option<StoreFaultConfig>,
    ) -> Result<Store, StoreError> {
        let err = |op: &'static str, path: &Path, e: &dyn std::fmt::Display| StoreError {
            op,
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let entries_dir = root.join("entries");
        let quarantine_dir = root.join("quarantine");
        let journal = root.join("journal.log");
        for d in [&entries_dir, &quarantine_dir] {
            std::fs::create_dir_all(d).map_err(|e| err("open", d, &e))?;
        }
        let mut store = Store {
            entries_dir,
            quarantine_dir,
            journal,
            index: BTreeMap::new(),
            counters: StoreCounters::default(),
            fault: fault.map(StoreFaultInjector::new),
        };
        store.counters.stale_temps_removed = atomic::clean_stale_temps(&store.entries_dir)
            .map_err(|e| err("open", &store.entries_dir, &e))?
            as u64;
        store.replay_journal()?;
        store.adopt_unjournaled()?;
        Ok(store)
    }

    /// Number of indexed (believed-good) entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no entry is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Keys currently indexed, in sorted order.
    pub fn keys(&self) -> Vec<StoreKey> {
        self.index.keys().copied().collect()
    }

    /// Health counters so far.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// Fetch the payload stored under `key`, verifying the entry file's
    /// magic, version, key echo, length, and checksum. A verification
    /// failure quarantines the file and reports a miss (`Ok(None)`):
    /// corrupt data is never returned. IO failures other than a
    /// missing file are errors.
    pub fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(meta) = self.index.get(key).copied() else {
            self.counters.misses += 1;
            return Ok(None);
        };
        let path = self.entries_dir.join(key.file_name());
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                // Journaled but gone — treat like corruption minus the
                // quarantine move (there is nothing to move).
                self.index.remove(key);
                self.counters.misses += 1;
                return Ok(None);
            }
            Err(e) => {
                return Err(StoreError { op: "get", path, detail: e.to_string() });
            }
        };
        if Self::verify(key, &meta, &bytes) {
            self.counters.hits += 1;
            Ok(Some(bytes[HEADER_LEN..].to_vec()))
        } else {
            self.quarantine(key, &path)?;
            self.counters.misses += 1;
            Ok(None)
        }
    }

    /// Store `payload` under `key`. Returns `true` if a new entry was
    /// written, `false` if a verified entry already existed (results
    /// are content-addressed: same key ⇒ same bytes, so rewriting is
    /// pointless). The journal line is appended only after the entry
    /// file is durably renamed into place; a crash between the two is
    /// healed by adoption at the next open.
    pub fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<bool, StoreError> {
        if self.index.contains_key(key) {
            self.counters.put_skipped += 1;
            return Ok(false);
        }
        let meta = EntryMeta { len: payload.len() as u64, fnv: fnv1a(payload) };
        let mut image = Vec::with_capacity(HEADER_LEN + payload.len());
        image.extend_from_slice(&MAGIC);
        image.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        image.extend_from_slice(&[0u8; 2]);
        image.extend_from_slice(&key.config.to_le_bytes());
        image.extend_from_slice(&key.code.to_le_bytes());
        image.extend_from_slice(&meta.len.to_le_bytes());
        image.extend_from_slice(&meta.fnv.to_le_bytes());
        image.extend_from_slice(payload);
        if let Some(inj) = &mut self.fault {
            if inj.corrupt(&mut image, HEADER_LEN).is_some() {
                self.counters.faults_injected += 1;
            }
        }
        let path = self.entries_dir.join(key.file_name());
        atomic::atomic_write(&path, &image)
            .map_err(|e| StoreError { op: "put", path, detail: e.to_string() })?;
        self.journal_append(key, &meta)?;
        self.index.insert(*key, meta);
        self.counters.puts += 1;
        Ok(true)
    }

    /// Does the on-disk image check out against the key and journal
    /// metadata?
    fn verify(key: &StoreKey, meta: &EntryMeta, bytes: &[u8]) -> bool {
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
            return false;
        }
        let u16_at = |o: usize| u16::from_le_bytes([bytes[o], bytes[o + 1]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let payload = &bytes[HEADER_LEN..];
        u16_at(4) == FORMAT_VERSION
            && u64_at(8) == key.config
            && u64_at(16) == key.code
            && u64_at(24) == meta.len
            && payload.len() as u64 == meta.len
            && u64_at(32) == meta.fnv
            && fnv1a(payload) == meta.fnv
    }

    fn quarantine(&mut self, key: &StoreKey, path: &Path) -> Result<(), StoreError> {
        self.index.remove(key);
        self.counters.quarantined += 1;
        match atomic::move_into(path, &self.quarantine_dir) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError {
                op: "quarantine",
                path: path.to_path_buf(),
                detail: e.to_string(),
            }),
        }
    }

    fn journal_append(&self, key: &StoreKey, meta: &EntryMeta) -> Result<(), StoreError> {
        let line = format!(
            "put {:016x} {:016x} {} {:016x}",
            key.config, key.code, meta.len, meta.fnv
        );
        atomic::append_line(&self.journal, &line).map_err(|e| StoreError {
            op: "journal",
            path: self.journal.clone(),
            detail: e.to_string(),
        })
    }

    /// Rebuild the index from the journal. Only complete,
    /// well-formed lines count; anything else (the torn tail of a
    /// crashed append, editor damage) is discarded and tallied.
    fn replay_journal(&mut self) -> Result<(), StoreError> {
        let text = match std::fs::read_to_string(&self.journal) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(()),
            Err(e) => {
                return Err(StoreError {
                    op: "journal",
                    path: self.journal.clone(),
                    detail: e.to_string(),
                })
            }
        };
        let mut lines: Vec<&str> = text.split('\n').collect();
        // text ends with '\n' ⇒ last fragment is ""; anything else is a
        // torn final line. Cut it off so the next append starts on a
        // clean line boundary rather than concatenating onto garbage.
        let tail = lines.pop().unwrap_or("");
        if !tail.is_empty() {
            self.counters.torn_journal_lines += 1;
            atomic::truncate(&self.journal, (text.len() - tail.len()) as u64).map_err(|e| {
                StoreError { op: "journal", path: self.journal.clone(), detail: e.to_string() }
            })?;
        }
        for line in lines {
            match Self::parse_journal_line(line) {
                Some((key, meta)) => {
                    if self.entries_dir.join(key.file_name()).exists() {
                        self.index.insert(key, meta);
                        self.counters.replayed += 1;
                    }
                    // Journaled but no file: nothing to serve; drop.
                }
                None => self.counters.torn_journal_lines += 1,
            }
        }
        Ok(())
    }

    fn parse_journal_line(line: &str) -> Option<(StoreKey, EntryMeta)> {
        let mut f = line.split_ascii_whitespace();
        if f.next()? != "put" {
            return None;
        }
        let config = u64::from_str_radix(f.next()?, 16).ok()?;
        let code = u64::from_str_radix(f.next()?, 16).ok()?;
        let len: u64 = f.next()?.parse().ok()?;
        let fnv = u64::from_str_radix(f.next()?, 16).ok()?;
        if f.next().is_some() {
            return None;
        }
        Some((StoreKey { config, code }, EntryMeta { len, fnv }))
    }

    /// Index every entry file the journal does not know about. Such a
    /// file is complete (writes are atomic) but its writer died before
    /// the journal append; it is adopted only after full verification
    /// against its own header, and re-journaled so the next open is a
    /// plain replay. Unparseable or failing files are quarantined.
    fn adopt_unjournaled(&mut self) -> Result<(), StoreError> {
        let read = std::fs::read_dir(&self.entries_dir).map_err(|e| StoreError {
            op: "open",
            path: self.entries_dir.clone(),
            detail: e.to_string(),
        })?;
        let mut found: Vec<(StoreKey, PathBuf)> = Vec::new();
        for ent in read {
            let ent = ent.map_err(|e| StoreError {
                op: "open",
                path: self.entries_dir.clone(),
                detail: e.to_string(),
            })?;
            let name = ent.file_name().to_string_lossy().into_owned();
            match StoreKey::from_file_name(&name) {
                Some(key) if !self.index.contains_key(&key) => found.push((key, ent.path())),
                Some(_) => {}
                None => {
                    // Not an entry, not a temp (those were cleaned):
                    // junk. Quarantine rather than delete or trust.
                    let p = ent.path();
                    atomic::move_into(&p, &self.quarantine_dir).map_err(|e| StoreError {
                        op: "quarantine",
                        path: p,
                        detail: e.to_string(),
                    })?;
                    self.counters.quarantined += 1;
                }
            }
        }
        found.sort_by_key(|(k, _)| *k); // deterministic adoption order
        for (key, path) in found {
            let bytes = std::fs::read(&path).map_err(|e| StoreError {
                op: "get",
                path: path.clone(),
                detail: e.to_string(),
            })?;
            // Trust nothing: derive the meta from the header, then
            // verify the whole image against it (checksum included).
            let meta = (bytes.len() >= HEADER_LEN)
                .then(|| {
                    let u64_at = |o: usize| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(&bytes[o..o + 8]);
                        u64::from_le_bytes(b)
                    };
                    EntryMeta { len: u64_at(24), fnv: u64_at(32) }
                })
                .filter(|meta| Self::verify(&key, meta, &bytes));
            match meta {
                Some(meta) => {
                    self.journal_append(&key, &meta)?;
                    self.index.insert(key, meta);
                    self.counters.adopted += 1;
                }
                None => self.quarantine(&key, &path)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StoreFaultKind;

    fn tmproot(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dlp-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    const K1: StoreKey = StoreKey { config: 0x1111, code: 0xaaaa };
    const K2: StoreKey = StoreKey { config: 0x2222, code: 0xaaaa };

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let root = tmproot("roundtrip");
        let mut s = Store::open(&root).unwrap();
        assert!(s.get(&K1).unwrap().is_none());
        assert!(s.put(&K1, b"hello stats").unwrap());
        assert!(!s.put(&K1, b"hello stats").unwrap(), "second put is skipped");
        assert_eq!(s.get(&K1).unwrap().unwrap(), b"hello stats");

        // A fresh process (new Store) resumes from the journal.
        let mut s2 = Store::open(&root).unwrap();
        assert_eq!(s2.len(), 1);
        assert_eq!(s2.counters().replayed, 1);
        assert_eq!(s2.get(&K1).unwrap().unwrap(), b"hello stats");
    }

    #[test]
    fn torn_journal_tail_is_discarded_but_entry_adopted() {
        let root = tmproot("torn-journal");
        let mut s = Store::open(&root).unwrap();
        s.put(&K1, b"alpha").unwrap();
        s.put(&K2, b"beta").unwrap();
        drop(s);
        // Simulate a crash mid-append: chop the final journal line in
        // half. The entry file itself is fine, so reopen must adopt it.
        let journal = root.join("journal.log");
        let text = std::fs::read_to_string(&journal).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&journal, &text[..cut]).unwrap();
        let mut s = Store::open(&root).unwrap();
        assert_eq!(s.counters().torn_journal_lines, 1);
        assert_eq!(s.counters().replayed, 1);
        assert_eq!(s.counters().adopted, 1, "file without journal line is re-indexed");
        assert_eq!(s.get(&K2).unwrap().unwrap(), b"beta");
        // And the adoption re-journaled it: a third open replays both.
        drop(s);
        assert_eq!(Store::open(&root).unwrap().counters().replayed, 2);
    }

    #[test]
    fn bit_flip_is_quarantined_never_served() {
        let root = tmproot("bitflip");
        let mut s = Store::open(&root).unwrap();
        s.put(&K1, b"precious result bytes").unwrap();
        let path = root.join("entries").join(K1.file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        let off = HEADER_LEN + 3;
        bytes[off] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(s.get(&K1).unwrap(), None, "corrupt entry reads as a miss");
        assert_eq!(s.counters().quarantined, 1);
        assert!(!path.exists(), "entry moved out of entries/");
        assert_eq!(std::fs::read_dir(root.join("quarantine")).unwrap().count(), 1);
        // Recompute path: a fresh put of the same key works again.
        assert!(s.put(&K1, b"precious result bytes").unwrap());
        assert_eq!(s.get(&K1).unwrap().unwrap(), b"precious result bytes");
    }

    #[test]
    fn truncated_entry_detected_at_reopen_adoption() {
        let root = tmproot("trunc-adopt");
        let mut s = Store::open(&root).unwrap();
        s.put(&K1, b"0123456789").unwrap();
        drop(s);
        // Lose the journal entirely and truncate the entry: reopen must
        // quarantine it during adoption, not index it.
        atomic::remove_file(&root.join("journal.log")).unwrap();
        let path = root.join("entries").join(K1.file_name());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..HEADER_LEN + 4]).unwrap();
        let mut s = Store::open(&root).unwrap();
        assert_eq!(s.len(), 0);
        assert_eq!(s.counters().quarantined, 1);
        assert_eq!(s.get(&K1).unwrap(), None);
    }

    #[test]
    fn key_mismatch_in_header_is_corruption() {
        let root = tmproot("keyswap");
        let mut s = Store::open(&root).unwrap();
        s.put(&K1, b"payload").unwrap();
        drop(s);
        // Rename K1's file to K2's name (a misplaced entry must not be
        // served under the wrong key even though its checksum is fine).
        std::fs::rename(
            root.join("entries").join(K1.file_name()),
            root.join("entries").join(K2.file_name()),
        )
        .unwrap();
        let mut s = Store::open(&root).unwrap();
        assert_eq!(s.get(&K2).unwrap(), None);
        assert!(s.counters().quarantined >= 1);
    }

    #[test]
    fn injected_faults_are_caught_by_get() {
        for kind in
            [StoreFaultKind::TornWrite, StoreFaultKind::TruncatedEntry, StoreFaultKind::ChecksumFlip]
        {
            let root = tmproot(kind.label());
            let mut s =
                Store::open_with_faults(&root, Some(StoreFaultConfig::single(kind))).unwrap();
            s.put(&K1, b"will be corrupted").unwrap();
            assert_eq!(s.counters().faults_injected, 1);
            assert_eq!(s.get(&K1).unwrap(), None, "{kind:?} must be detected");
            assert_eq!(s.counters().quarantined, 1, "{kind:?} must be quarantined");
            // The campaign is spent (max_faults 1): recompute sticks.
            s.put(&K1, b"will be corrupted").unwrap();
            assert_eq!(s.get(&K1).unwrap().unwrap(), b"will be corrupted");
        }
    }

    #[test]
    fn stale_temps_are_cleaned_at_open() {
        let root = tmproot("stale");
        let s = Store::open(&root).unwrap();
        drop(s);
        std::fs::write(root.join("entries").join("x.bin.tmp-1-0"), b"junk").unwrap();
        let s = Store::open(&root).unwrap();
        assert_eq!(s.counters().stale_temps_removed, 1);
    }

    #[test]
    fn foreign_files_in_entries_are_quarantined() {
        let root = tmproot("foreign");
        drop(Store::open(&root).unwrap());
        std::fs::write(root.join("entries").join("README.txt"), b"what").unwrap();
        let s = Store::open(&root).unwrap();
        assert_eq!(s.counters().quarantined, 1);
        assert_eq!(s.len(), 0);
    }
}
