//! The only module allowed to mutate files on disk.
//!
//! Every write the store performs goes through one of these helpers,
//! so the crash-safety argument lives in one place: entry files are
//! written to a temp name and renamed into place (readers never see a
//! half-written entry under its final name), the journal is appended
//! in one write call (a torn tail line is detected and ignored at
//! replay), and quarantine moves are plain renames (atomic on the same
//! filesystem). dlp-lint rule R401 enforces the discipline: any bare
//! `fs::write` / `File::create` / `OpenOptions` / `fs::rename` /
//! `fs::remove_file` elsewhere in the store tier is a lint error.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Suffix marker for in-flight temp files; [`clean_stale_temps`]
/// removes leftovers from crashed writers at open time.
const TMP_MARKER: &str = ".tmp-";

/// Process-unique counter so concurrent writers in one process never
/// collide on a temp name. Combined with the pid, two *processes*
/// sharing a store directory cannot collide either.
fn unique_suffix() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!("{TMP_MARKER}{}-{}", std::process::id(), NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Write `bytes` to `path` atomically: temp file in the same
/// directory, flush + fsync, then rename over the final name. After a
/// crash at any point, `path` either does not exist or holds the
/// complete previous/new contents — never a prefix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = temp_sibling(path);
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Don't leave the temp file behind on a failed rename.
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The temp-file name `atomic_write` uses next to `path`.
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(unique_suffix());
    path.with_file_name(name)
}

/// Append one line (newline added here) to `path`, creating it if
/// missing. The line is issued as a single `write` call and fsynced:
/// a crash mid-append leaves at most one torn final line, which the
/// journal replayer discards.
pub fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    f.write_all(&buf)?;
    f.sync_all()
}

/// Move `src` into `dest_dir`, keeping its file name and suffixing a
/// counter on collision (`entry.bin`, `entry.bin.1`, …). Used for
/// quarantining corrupt entries; rename within one filesystem is
/// atomic, so a crash mid-quarantine leaves the file in exactly one
/// of the two places.
pub fn move_into(src: &Path, dest_dir: &Path) -> std::io::Result<PathBuf> {
    let base = src.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    let mut dest = dest_dir.join(&base);
    let mut n = 0u32;
    while dest.exists() {
        n += 1;
        let mut name = base.clone();
        name.push(format!(".{n}"));
        dest = dest_dir.join(name);
    }
    fs::rename(src, &dest)?;
    Ok(dest)
}

/// Delete every leftover temp file (a crashed writer's debris) in
/// `dir`. Complete entries are never named like temps, so this cannot
/// remove committed data.
pub fn clean_stale_temps(dir: &Path) -> std::io::Result<usize> {
    let mut removed = 0;
    for ent in fs::read_dir(dir)? {
        let ent = ent?;
        let name = ent.file_name();
        if name.to_string_lossy().contains(TMP_MARKER) {
            fs::remove_file(ent.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Truncate `path` to `len` bytes. The journal replayer uses this to
/// cut off a torn trailing line left by a crashed append, so the next
/// append starts on a clean line boundary instead of concatenating
/// onto the garbage.
pub fn truncate(path: &Path, len: u64) -> std::io::Result<()> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()
}

/// Remove one file (journal rewrite during compaction, test cleanup).
pub fn remove_file(path: &Path) -> std::io::Result<()> {
    fs::remove_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dlp-store-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_contents_completely() {
        let d = tmpdir("write");
        let p = d.join("e.bin");
        atomic_write(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        atomic_write(&p, b"second, longer").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second, longer");
        // No temp debris left behind.
        assert_eq!(fs::read_dir(&d).unwrap().count(), 1);
    }

    #[test]
    fn append_line_accumulates_and_survives_reopen() {
        let d = tmpdir("append");
        let p = d.join("journal.log");
        append_line(&p, "one").unwrap();
        append_line(&p, "two").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "one\ntwo\n");
    }

    #[test]
    fn move_into_quarantine_handles_collisions() {
        let d = tmpdir("move");
        let q = d.join("q");
        fs::create_dir_all(&q).unwrap();
        for i in 0..3 {
            let src = d.join("victim.bin");
            atomic_write(&src, format!("v{i}").as_bytes()).unwrap();
            move_into(&src, &q).unwrap();
            assert!(!src.exists());
        }
        let mut names: Vec<_> = fs::read_dir(&q)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, ["victim.bin", "victim.bin.1", "victim.bin.2"]);
    }

    #[test]
    fn clean_stale_temps_spares_real_entries() {
        let d = tmpdir("clean");
        atomic_write(&d.join("real.bin"), b"data").unwrap();
        fs::File::create(d.join(format!("orphan.bin{TMP_MARKER}999-0"))).unwrap();
        assert_eq!(clean_stale_temps(&d).unwrap(), 1);
        assert!(d.join("real.bin").exists());
    }
}
