//! Property tests for the store's central safety contract: whatever
//! happens to the bytes on disk — injected write-path faults or
//! arbitrary after-the-fact mutation — `get` returns either the exact
//! payload that was `put`, or `None`. Wrong bytes are never served,
//! and after a detected corruption a recompute-and-reput always heals.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dlp_store::store::HEADER_LEN;
use dlp_store::{Store, StoreFaultConfig, StoreFaultKind, StoreKey};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh store root per generated case (cases run in one process).
fn case_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir()
        .join(format!("dlp-store-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn kind_strategy() -> impl Strategy<Value = StoreFaultKind> {
    prop_oneof![
        Just(StoreFaultKind::TornWrite),
        Just(StoreFaultKind::TruncatedEntry),
        Just(StoreFaultKind::ChecksumFlip),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clean roundtrip: put → get → reopen → get is the identity, for
    /// arbitrary payloads (including empty) and arbitrary keys.
    #[test]
    fn roundtrip_is_identity(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        config in any::<u64>(),
        code in any::<u64>(),
    ) {
        let root = case_root("clean");
        let key = StoreKey { config, code };
        let mut s = Store::open(&root).unwrap();
        prop_assert!(s.put(&key, &payload).unwrap());
        prop_assert_eq!(s.get(&key).unwrap().as_deref(), Some(&payload[..]));
        drop(s);
        let mut s = Store::open(&root).unwrap();
        prop_assert_eq!(s.get(&key).unwrap().as_deref(), Some(&payload[..]));
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Injected write-path faults: the first put is corrupted by a
    /// seeded campaign. `get` must detect it (miss, quarantine), and a
    /// recompute put must heal the entry to the exact original bytes.
    #[test]
    fn injected_fault_never_serves_wrong_bytes(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        kind in kind_strategy(),
        seed in any::<u64>(),
    ) {
        let root = case_root("fault");
        let key = StoreKey { config: 7, code: 9 };
        let cfg = StoreFaultConfig { seed, ..StoreFaultConfig::single(kind) };
        let mut s = Store::open_with_faults(&root, Some(cfg)).unwrap();
        s.put(&key, &payload).unwrap();
        prop_assert_eq!(s.counters().faults_injected, 1);
        prop_assert_eq!(s.get(&key).unwrap(), None, "corruption must read as a miss");
        prop_assert_eq!(s.counters().quarantined, 1);
        // Campaign spent (max_faults = 1): the recompute put sticks.
        prop_assert!(s.put(&key, &payload).unwrap());
        prop_assert_eq!(s.get(&key).unwrap().as_deref(), Some(&payload[..]));
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Adversarial mutation: flip one arbitrary bit anywhere in the
    /// entry file, then reopen the store cold (journal replay) and
    /// read. The result is the original payload or a miss — never a
    /// different payload.
    #[test]
    fn arbitrary_bit_flip_is_original_or_miss(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let root = case_root("flip");
        let key = StoreKey { config: 3, code: 5 };
        let mut s = Store::open(&root).unwrap();
        s.put(&key, &payload).unwrap();
        drop(s);
        let path = root.join("entries").join(format!("{:016x}-{:016x}.bin", 3, 5));
        let mut bytes = std::fs::read(&path).unwrap();
        let off = (byte_pick % bytes.len() as u64) as usize;
        bytes[off] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let mut s = Store::open(&root).unwrap();
        let got = s.get(&key).unwrap();
        match got {
            Some(served) => prop_assert_eq!(served, payload, "served bytes must be the original"),
            None => {
                // Detected: the entry must be out of circulation.
                prop_assert!(!path.exists());
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Truncate the entry file to an arbitrary prefix: always a miss
    /// (a strict prefix can never verify), and always quarantined.
    #[test]
    fn arbitrary_truncation_is_always_a_miss(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        keep_pick in any::<u64>(),
    ) {
        let root = case_root("trunc");
        let key = StoreKey { config: 11, code: 13 };
        let mut s = Store::open(&root).unwrap();
        s.put(&key, &payload).unwrap();
        let path = root.join("entries").join(format!("{:016x}-{:016x}.bin", 11, 13));
        let bytes = std::fs::read(&path).unwrap();
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let keep = (keep_pick % bytes.len() as u64) as usize; // strict prefix
        std::fs::write(&path, &bytes[..keep]).unwrap();

        prop_assert_eq!(s.get(&key).unwrap(), None);
        prop_assert_eq!(s.counters().quarantined, 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
