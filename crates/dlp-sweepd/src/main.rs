//! Daemon entry point.
//!
//! ```text
//! dlp-sweepd --socket <path> [--store <dir>] [--fault <spec>]
//! ```
//!
//! `--store` opens (or creates) the crash-safe result store; without
//! it the `DLP_STORE_DIR` / `DLP_STORE_FAULT` env hooks apply. A store
//! that fails to open does not kill the daemon — it serves pings and
//! answers sweeps with a typed `store-poisoned` error instead, so an
//! operator sees the reason rather than a connection refused.

use dlp_sweepd::server;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: dlp-sweepd --socket <path> [--store <dir>] [--fault <spec>]");
    exit(2);
}

fn main() {
    let mut socket: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut fault: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--store" => store = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--fault" => fault = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let Some(socket) = socket else { usage() };

    if let Some(dir) = &store {
        if let Err(e) = dlp_bench::persist::init_store(dir, fault.as_deref()) {
            eprintln!("dlp-sweepd: store init: {e}");
        }
    }
    let daemon = server::Daemon::from_env();
    if let Some(p) = &daemon.store_poison {
        eprintln!("dlp-sweepd: store poisoned, sweeps will be refused: {p}");
    }

    let listener = match server::bind(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dlp-sweepd: bind {}: {e}", socket.display());
            exit(1);
        }
    };
    eprintln!("dlp-sweepd: listening on {}", socket.display());
    if let Err(e) = server::serve(listener, daemon) {
        eprintln!("dlp-sweepd: {e}");
        exit(1);
    }
}
