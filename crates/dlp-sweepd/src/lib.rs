//! # dlp-sweepd — hardened sweep daemon
//!
//! Serves simulation jobs over a length-prefixed unix-socket protocol,
//! backed by the same harness tiers the `figures` binary uses: the
//! in-memory run cache, then the crash-safe `dlp-store` result store,
//! then a fresh (retried, deadline-bounded) simulation. Protocol
//! failures are answered with typed error frames — malformed frame,
//! version skew, store poisoned, job failed — never a silent hang-up.
//!
//! See `proto` for the wire format, `server` for the daemon, `client`
//! for the caller side.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use proto::{ErrorCode, Request, Response};
pub use server::{bind, serve, Daemon};
