//! The daemon: accept loop, per-connection request handling, and the
//! request → harness bridge.
//!
//! Each connection is served by one thread; the harness underneath is
//! already thread-safe (its in-memory run cache and the on-disk store
//! are mutex-guarded), so concurrent clients simply share the same
//! memoization tiers. Every protocol failure is answered with a typed
//! [`Response::Error`] before the connection is dropped — a client
//! never sees a silent hang-up for a decodable reason.

use crate::proto::{
    self, ErrorCode, Request, Response, WireError,
};
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

/// Per-process request handling policy, captured once at startup so
/// tests can exercise refusal paths without touching global state.
#[derive(Debug, Clone, Default)]
pub struct Daemon {
    /// Why the result store is unusable, if it failed to open. A
    /// poisoned store refuses sweeps outright: recomputing without
    /// persistence would silently violate the daemon's contract.
    pub store_poison: Option<String>,
}

impl Daemon {
    /// Capture the current process-wide store state (set up earlier
    /// via `persist::init_store` or the `DLP_STORE_DIR` env hook).
    pub fn from_env() -> Self {
        Daemon { store_poison: dlp_bench::persist::store_poisoned() }
    }

    /// Answer one decoded request.
    pub fn respond(&self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Sweep { abbr, deadline_ms, config } => {
                self.sweep(&abbr, deadline_ms, &config)
            }
        }
    }

    fn sweep(&self, abbr: &str, deadline_ms: u64, config: &[u8]) -> Response {
        if let Some(poison) = &self.store_poison {
            return Response::Error {
                code: ErrorCode::StorePoisoned,
                detail: poison.clone(),
            };
        }
        let Some(cfg) = dlp_bench::persist::decode_config(config) else {
            return Response::Error {
                code: ErrorCode::MalformedFrame,
                detail: format!("sweep config for {abbr:?} does not decode"),
            };
        };
        if !gpu_registry_has(abbr) {
            return Response::Error {
                code: ErrorCode::MalformedFrame,
                detail: format!("unknown workload {abbr:?}"),
            };
        }
        // The deadline comes from the request frame, never from the
        // daemon's own environment: one daemon process serves many
        // clients, each with its own wall-clock budget. (Reading the
        // env here — worse, caching it — would pin every job to the
        // value in force when the daemon started.)
        let deadline = (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms));
        match dlp_bench::harness::run_app_with_retry_deadline(abbr, cfg, deadline) {
            Ok(run) => Response::SweepResult(dlp_bench::persist::encode_run(abbr, &run)),
            Err(f) => Response::Error { code: ErrorCode::JobFailed, detail: f.to_string() },
        }
    }

    /// Serve one connection until the peer hangs up or a frame is
    /// unrecoverably broken. Protocol errors are answered with a typed
    /// error frame; the connection then closes (a peer that cannot
    /// frame correctly cannot be resynchronized).
    pub fn serve_connection(&self, stream: &mut (impl Read + Write)) -> io::Result<()> {
        loop {
            let payload = match proto::read_frame(stream) {
                Ok(Some(p)) => p,
                Ok(None) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    let resp = Response::Error {
                        code: ErrorCode::MalformedFrame,
                        detail: e.to_string(),
                    };
                    proto::write_frame(stream, &proto::encode_response(&resp))?;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            let resp = match proto::decode_request(&payload) {
                Ok(req) => self.respond(req),
                Err(WireError { code, detail }) => {
                    let resp = Response::Error { code, detail };
                    proto::write_frame(stream, &proto::encode_response(&resp))?;
                    // Framing was intact (the length prefix parsed), so
                    // the stream is still synchronized; keep serving.
                    continue;
                }
            };
            proto::write_frame(stream, &proto::encode_response(&resp))?;
        }
    }
}

/// True if `abbr` names a registered workload — checked before the
/// harness, whose registry lookup panics on unknown names.
fn gpu_registry_has(abbr: &str) -> bool {
    dlp_bench::persist::known_app(abbr)
}

/// Bind the unix socket, replacing a stale socket file from a previous
/// (crashed) daemon if nothing is listening on it.
pub fn bind(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            // Alive daemon? Then refuse; otherwise adopt the path.
            if UnixStream::connect(path).is_ok() {
                return Err(e);
            }
            // dlp-lint: allow(R401) -- a socket path is not a store entry; unlinking a dead daemon's stale socket before re-binding is the standard unix idiom
            std::fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

/// Accept loop: one thread per connection, forever. Accept errors are
/// logged and skipped — one bad handshake must not kill the daemon.
pub fn serve(listener: UnixListener, daemon: Daemon) -> io::Result<()> {
    for conn in listener.incoming() {
        match conn {
            Ok(mut stream) => {
                let d = daemon.clone();
                std::thread::spawn(move || {
                    if let Err(e) = d.serve_connection(&mut stream) {
                        eprintln!("dlp-sweepd: connection error: {e}");
                    }
                });
            }
            Err(e) => eprintln!("dlp-sweepd: accept error: {e}"),
        }
    }
    Ok(())
}
